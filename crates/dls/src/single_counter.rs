//! The single-shared-counter formulation of the distributed
//! chunk-calculation approach (Eleliemy & Ciorba, PDP 2019 — the
//! paper's reference [15]).
//!
//! Instead of a work queue holding *two* values (step and scheduled)
//! updated under a lock, the shared state is **one counter**: the
//! latest scheduling step. A worker atomically fetch-and-increments it
//! and then computes its chunk's start *and* size locally, as a pure
//! function of the step index — no lock, no master, one atomic.
//!
//! [`assignment`] is that pure function for every technique in this
//! crate (by exact replay of the deterministic schedule), and
//! [`assignment_fast`] provides the O(1)/O(log) closed forms the PDP
//! paper derives where they exist.

use crate::chunk::{LoopSpec, SchedState};
use crate::nonadaptive::FixedSizeChunking;
use crate::sequence::ChunkSequence;
use crate::technique::{ChunkCalculator, Technique, WorkerCtx};

/// The chunk assigned to scheduling step `step`, as `(start, len)`, or
/// `None` when the schedule has fewer steps. Pure in `step`: any worker
/// computes the same assignment from the same counter value.
///
/// Exact for every technique (deterministic replay of the preceding
/// steps — `O(step)` worst case); use [`assignment_fast`] when a closed
/// form exists.
pub fn assignment(technique: &Technique, spec: &LoopSpec, step: u64) -> Option<(u64, u64)> {
    let mut state = SchedState::START;
    for _ in 0..step {
        if state.exhausted(spec) {
            return None;
        }
        let size = technique.chunk_size(spec, state, WorkerCtx::default());
        state.take(spec, size)?;
    }
    if state.exhausted(spec) {
        return None;
    }
    let size = technique.chunk_size(spec, state, WorkerCtx::default());
    let chunk = state.take(spec, size)?;
    Some((chunk.start, chunk.len))
}

/// Closed-form assignment where one exists (STATIC, SS, FSC): `O(1)`,
/// no replay. Returns `None` for techniques without a practical closed
/// form — callers fall back to [`assignment`].
pub fn assignment_fast(technique: &Technique, spec: &LoopSpec, step: u64) -> Option<(u64, u64)> {
    let n = spec.n_iters;
    match technique {
        Technique::Ss(_) => (step < n).then_some((step, 1)),
        Technique::Static(_) => {
            let chunk = n.div_ceil(spec.p()).max(1);
            let start = step.checked_mul(chunk)?;
            (start < n).then(|| (start, chunk.min(n - start)))
        }
        Technique::Fsc(fsc) => {
            let chunk = FixedSizeChunking::resolved(fsc, spec).max(1);
            let start = step.checked_mul(chunk)?;
            (start < n).then(|| (start, chunk.min(n - start)))
        }
        _ => None,
    }
}

/// Number of scheduling steps in the full schedule — the exclusive
/// upper bound on counter values that receive work.
pub fn total_steps(technique: &Technique, spec: &LoopSpec) -> u64 {
    ChunkSequence::new(spec, technique).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technique::Kind;
    use crate::verify::check_exactly_once;

    #[test]
    fn assignment_matches_sequence_for_every_technique() {
        let spec = LoopSpec::new(1_000, 4).with_stats(1.0, 0.4).with_overhead(0.02);
        for kind in Kind::ALL {
            let t = Technique::from_kind(kind);
            for (s, chunk) in ChunkSequence::new(&spec, &t).enumerate() {
                let (start, len) =
                    assignment(&t, &spec, s as u64).unwrap_or_else(|| panic!("{kind} step {s}"));
                assert_eq!((start, len), (chunk.start, chunk.len), "{kind} step {s}");
            }
        }
    }

    #[test]
    fn assignment_none_past_schedule_end() {
        let spec = LoopSpec::new(100, 4);
        for kind in Kind::ALL {
            let t = Technique::from_kind(kind);
            let steps = total_steps(&t, &spec);
            assert!(assignment(&t, &spec, steps).is_none(), "{kind}");
            assert!(assignment(&t, &spec, steps + 7).is_none(), "{kind}");
        }
    }

    #[test]
    fn fast_matches_exact_where_defined() {
        let spec = LoopSpec::new(997, 6);
        for kind in [Kind::STATIC, Kind::SS, Kind::FSC] {
            let t = Technique::from_kind(kind);
            for step in 0..total_steps(&t, &spec) + 3 {
                assert_eq!(
                    assignment_fast(&t, &spec, step),
                    assignment(&t, &spec, step),
                    "{kind} step {step}"
                );
            }
        }
    }

    #[test]
    fn fast_declines_dynamic_remainder_techniques() {
        let spec = LoopSpec::new(100, 4);
        assert!(assignment_fast(&Technique::gss(), &spec, 0).is_none());
        assert!(assignment_fast(&Technique::fac2(), &spec, 0).is_none());
    }

    #[test]
    fn out_of_order_steps_still_partition() {
        // Workers may observe counter values in any order; the union of
        // assignments must still partition the loop.
        let spec = LoopSpec::new(500, 3);
        let t = Technique::fac2();
        let steps = total_steps(&t, &spec);
        let mut order: Vec<u64> = (0..steps).collect();
        order.reverse();
        order.swap(0, steps as usize / 2);
        let chunks: Vec<crate::Chunk> = order
            .iter()
            .map(|&s| {
                let (start, len) = assignment(&t, &spec, s).unwrap();
                crate::Chunk { start, len, step: s }
            })
            .collect();
        check_exactly_once(&chunks, 500).unwrap();
    }
}
