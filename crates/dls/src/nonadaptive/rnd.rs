//! RND: random self-scheduling — chunk sizes drawn uniformly from a
//! configurable range, deterministically keyed by the scheduling step so
//! the distributed chunk-calculation property still holds (any worker
//! computes the same size for the same step).

use super::div_ceil;
use crate::chunk::{LoopSpec, SchedState};
use crate::technique::{ChunkCalculator, WorkerCtx};

/// Random chunking with step-keyed deterministic sizes.
///
/// Default range is `[ceil(N/(100P)), ceil(N/(2P))]`, following the
/// LaPeSD-libGOMP RND implementation.
#[derive(Clone, Copy, Debug)]
pub struct RandomChunking {
    /// Seed mixed into the per-step hash.
    pub seed: u64,
    /// Explicit inclusive size range; `None` selects the default range.
    pub range: Option<(u64, u64)>,
}

impl RandomChunking {
    /// RND with the default range and the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, range: None }
    }

    /// RND with an explicit inclusive chunk-size range.
    pub fn with_range(seed: u64, min: u64, max: u64) -> Self {
        let min = min.max(1);
        Self { seed, range: Some((min, max.max(min))) }
    }

    /// The resolved inclusive range for a given loop.
    pub fn resolved_range(&self, spec: &LoopSpec) -> (u64, u64) {
        self.range.unwrap_or_else(|| {
            // 100P <= 100 * 2^32 — the saturating products cannot
            // actually saturate, they just encode the bound.
            let min = div_ceil(spec.n_iters, spec.p().saturating_mul(100)).max(1);
            let max = div_ceil(spec.n_iters, spec.p().saturating_mul(2)).max(min);
            (min, max)
        })
    }
}

/// SplitMix64 — tiny, high-quality 64-bit mixer; enough for chunk sizing
/// and dependency-free.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChunkCalculator for RandomChunking {
    #[inline]
    fn chunk_size(&self, spec: &LoopSpec, state: SchedState, _ctx: WorkerCtx) -> u64 {
        let (min, max) = self.resolved_range(spec);
        // min >= 1 and max >= min (both constructors enforce it), so the
        // inclusive span fits u64 and is never zero.
        let span = max.saturating_sub(min).saturating_add(1);
        let draw = splitmix64(self.seed ^ state.step.wrapping_mul(0xA24B_AED4_963E_E407))
            .checked_rem(span)
            .unwrap_or(0);
        min.saturating_add(draw)
    }

    fn name(&self) -> &'static str {
        "RND"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::ChunkSequence;
    use crate::technique::Technique;
    use crate::verify::assert_partition;

    #[test]
    fn deterministic_per_step() {
        let spec = LoopSpec::new(10_000, 4);
        let rnd = RandomChunking::new(7);
        let st = SchedState { step: 5, scheduled: 100 };
        let a = rnd.chunk_size(&spec, st, WorkerCtx::default());
        let b = rnd.chunk_size(&spec, st, WorkerCtx::worker(3));
        assert_eq!(a, b, "size must not depend on the requesting worker");
    }

    #[test]
    fn sizes_within_range() {
        let spec = LoopSpec::new(10_000, 4);
        let rnd = RandomChunking::with_range(42, 10, 50);
        for step in 0..200 {
            let s = rnd.chunk_size(&spec, SchedState { step, scheduled: 0 }, WorkerCtx::default());
            assert!((10..=50).contains(&s), "step {step}: {s}");
        }
    }

    #[test]
    fn default_range_sane() {
        let spec = LoopSpec::new(10_000, 4);
        let (min, max) = RandomChunking::new(0).resolved_range(&spec);
        assert_eq!(min, 25); // ceil(10000/400)
        assert_eq!(max, 1250); // ceil(10000/8)
    }

    #[test]
    fn covers_loop() {
        let spec = LoopSpec::new(12_345, 6);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::rnd(99)).collect();
        assert_partition(&chunks, 12_345);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = LoopSpec::new(100_000, 4);
        let a: Vec<_> = ChunkSequence::new(&spec, &Technique::rnd(1)).take(10).collect();
        let b: Vec<_> = ChunkSequence::new(&spec, &Technique::rnd(2)).take(10).collect();
        assert_ne!(
            a.iter().map(|c| c.len).collect::<Vec<_>>(),
            b.iter().map(|c| c.len).collect::<Vec<_>>()
        );
    }
}
