//! TFSS: trapezoid factoring self-scheduling (Chronopoulos et al., 2001) —
//! combines TSS's linearly decreasing sizes with FAC's batching: each
//! batch consists of `P` equal chunks whose size is the *mean* of the next
//! `P` TSS chunk sizes.

use super::tss::Trapezoid;
use crate::chunk::{LoopSpec, SchedState};
use crate::technique::{ChunkCalculator, WorkerCtx};

/// Trapezoid factoring self-scheduling.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrapezoidFactoring {
    /// Underlying trapezoid parameters (first/last chunk sizes).
    pub tss: Trapezoid,
}

impl TrapezoidFactoring {
    /// Chunk size at scheduling step `step`.
    pub fn chunk_at_step(spec: &LoopSpec, tss: &Trapezoid, step: u64) -> u64 {
        let p = spec.p();
        let params = tss.params(spec);
        let batch = step.checked_div(p).unwrap_or(0); // p() >= 1
                                                      // Mean of TSS sizes for steps [batch*p, batch*p + p):
                                                      // F - delta*(batch*p + (p-1)/2), clamped to [L, F]. The clamp is
                                                      // done in u64 — a round-trip through i64 would wrap for
                                                      // F > i64::MAX — and the f64 -> u64 `as` cast saturates, so a
                                                      // negative mean floors to 0 and is raised back to L.
        let mid = batch as f64 * p as f64 + (p as f64 - 1.0) / 2.0;
        let mean = params.first as f64 - params.delta * mid;
        #[allow(clippy::cast_possible_truncation)]
        let size = mean.floor().max(0.0) as u64;
        size.clamp(params.last, params.first)
    }
}

impl ChunkCalculator for TrapezoidFactoring {
    #[inline]
    fn chunk_size(&self, spec: &LoopSpec, state: SchedState, _ctx: WorkerCtx) -> u64 {
        Self::chunk_at_step(spec, &self.tss, state.step)
    }

    fn name(&self) -> &'static str {
        "TFSS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::ChunkSequence;
    use crate::technique::Technique;
    use crate::verify::{assert_partition, is_nonincreasing};

    #[test]
    fn covers_loop_nonincreasing() {
        for (n, p) in [(1000u64, 4u32), (9999, 8), (64, 16), (100_000, 16)] {
            let spec = LoopSpec::new(n, p);
            let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::tfss()).collect();
            assert_partition(&chunks, n);
            assert!(is_nonincreasing(&chunks), "n={n} p={p}");
        }
    }

    #[test]
    fn batch_chunks_equal() {
        let spec = LoopSpec::new(10_000, 4);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::tfss()).collect();
        for batch in chunks.chunks(4) {
            let full = &batch[..batch.len().saturating_sub(1)];
            if let Some(first) = full.first() {
                assert!(full.iter().all(|c| c.len == first.len));
            }
        }
    }

    #[test]
    fn first_chunk_smaller_than_tss_first() {
        let spec = LoopSpec::new(10_000, 8);
        let tfss_first = TrapezoidFactoring::chunk_at_step(&spec, &Trapezoid::default(), 0);
        let tss_first = Trapezoid::default().params(&spec).first;
        assert!(tfss_first <= tss_first);
        assert!(tfss_first > 0);
    }

    #[test]
    fn decreases_across_batches() {
        let spec = LoopSpec::new(100_000, 8);
        let c0 = TrapezoidFactoring::chunk_at_step(&spec, &Trapezoid::default(), 0);
        let c1 = TrapezoidFactoring::chunk_at_step(&spec, &Trapezoid::default(), 8);
        let c2 = TrapezoidFactoring::chunk_at_step(&spec, &Trapezoid::default(), 16);
        assert!(c0 > c1 && c1 > c2, "{c0} {c1} {c2}");
    }
}
