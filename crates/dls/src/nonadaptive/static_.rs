//! STATIC: classic block scheduling — one chunk of `ceil(N/P)` iterations
//! per worker, fixed before execution. Lowest scheduling overhead, no
//! ability to react to imbalance.

use super::div_ceil;
use crate::chunk::{LoopSpec, SchedState};
use crate::technique::{ChunkCalculator, WorkerCtx};

/// Block scheduling. Every one of the first `P` scheduling steps yields a
/// chunk of `ceil(N/P)`; the last chunk is clamped by the caller, so the
/// loop is covered in at most `P` steps.
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticChunking;

impl ChunkCalculator for StaticChunking {
    #[inline]
    fn chunk_size(&self, spec: &LoopSpec, _state: SchedState, _ctx: WorkerCtx) -> u64 {
        div_ceil(spec.n_iters, spec.p()).max(1)
    }

    fn name(&self) -> &'static str {
        "STATIC"
    }

    fn is_dynamic(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::ChunkSequence;
    use crate::technique::Technique;
    use crate::verify::assert_partition;

    #[test]
    fn exact_division() {
        let spec = LoopSpec::new(100, 4);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::static_()).collect();
        assert_eq!(chunks.len(), 4);
        assert!(chunks.iter().all(|c| c.len == 25));
        assert_partition(&chunks, 100);
    }

    #[test]
    fn uneven_division_last_chunk_short() {
        let spec = LoopSpec::new(10, 4);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::static_()).collect();
        // ceil(10/4) = 3 -> 3,3,3,1
        assert_eq!(chunks.iter().map(|c| c.len).collect::<Vec<_>>(), vec![3, 3, 3, 1]);
        assert_partition(&chunks, 10);
    }

    #[test]
    fn fewer_iterations_than_workers() {
        let spec = LoopSpec::new(3, 8);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::static_()).collect();
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| c.len == 1));
        assert_partition(&chunks, 3);
    }

    #[test]
    fn single_worker_gets_everything() {
        let spec = LoopSpec::new(42, 1);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::static_()).collect();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].len, 42);
    }
}
