//! TSS: trapezoid self-scheduling (Tzen & Ni, 1993) — chunk sizes decrease
//! *linearly* from a first size `F` to a last size `L`, so each scheduling
//! step only needs one subtraction (cheaper per step than GSS's division).

use super::div_ceil;
use crate::chunk::{LoopSpec, SchedState};
use crate::technique::{ChunkCalculator, WorkerCtx};

/// Trapezoid self-scheduling.
///
/// With the Tzen & Ni defaults, `F = ceil(N / (2P))` and `L = 1`. The
/// number of scheduling steps is `S = ceil(2N / (F + L))` and the linear
/// decrement is `delta = (F - L) / (S - 1)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Trapezoid {
    /// Explicit first chunk size; `None` selects `ceil(N / (2P))`.
    pub first: Option<u64>,
    /// Explicit last chunk size; `None` selects 1.
    pub last: Option<u64>,
}

impl Trapezoid {
    /// TSS with explicit first and last chunk sizes.
    pub fn with_bounds(first: u64, last: u64) -> Self {
        Self { first: Some(first.max(1)), last: Some(last.max(1)) }
    }

    /// Resolved `(F, L, S, delta)` for a given loop.
    pub fn params(&self, spec: &LoopSpec) -> TssParams {
        let n = spec.n_iters;
        // 2P <= 2^33, but 2N and F + L can exceed u64 when N (or an
        // explicit F) is near u64::MAX; widen the step count to u128.
        // F + L >= 2 keeps the quotient within u64 again.
        let f = self.first.unwrap_or_else(|| div_ceil(n, spec.p().saturating_mul(2))).max(1);
        let l = self.last.unwrap_or(1).clamp(1, f);
        let steps_wide =
            u128::from(n).saturating_mul(2).div_ceil(u128::from(f).saturating_add(u128::from(l)));
        let steps = u64::try_from(steps_wide).unwrap_or(u64::MAX).max(1);
        let delta = if steps > 1 {
            f.saturating_sub(l) as f64 / steps.saturating_sub(1) as f64
        } else {
            0.0
        };
        TssParams { first: f, last: l, steps, delta }
    }
}

/// Resolved TSS parameters for a specific loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TssParams {
    /// First chunk size `F`.
    pub first: u64,
    /// Last chunk size `L`.
    pub last: u64,
    /// Planned number of scheduling steps `S`.
    pub steps: u64,
    /// Linear decrement per step.
    pub delta: f64,
}

impl ChunkCalculator for Trapezoid {
    #[inline]
    fn chunk_size(&self, spec: &LoopSpec, state: SchedState, _ctx: WorkerCtx) -> u64 {
        let p = self.params(spec);
        // Linear interpolation F - s*delta, floored, never below L. The
        // f64 -> u64 `as` cast saturates (no wrap); any rounding slop is
        // pulled back into [L, F] by the clamp.
        let s = state.step.min(p.steps.saturating_sub(1));
        #[allow(clippy::cast_possible_truncation)]
        let size = (p.first as f64 - s as f64 * p.delta).floor().max(0.0) as u64;
        size.clamp(p.last, p.first)
    }

    fn name(&self) -> &'static str {
        "TSS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::ChunkSequence;
    use crate::technique::Technique;
    use crate::verify::{assert_partition, is_nonincreasing};

    #[test]
    fn default_params() {
        let spec = LoopSpec::new(1000, 4);
        let p = Trapezoid::default().params(&spec);
        assert_eq!(p.first, 125); // ceil(1000/8)
        assert_eq!(p.last, 1);
        assert_eq!(p.steps, div_ceil(2000, 126)); // 16
    }

    #[test]
    fn covers_loop_and_decreases() {
        let spec = LoopSpec::new(1000, 4);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::tss()).collect();
        assert_partition(&chunks, 1000);
        assert!(is_nonincreasing(&chunks));
        assert_eq!(chunks[0].len, 125);
    }

    #[test]
    fn linear_decrement_between_consecutive_steps() {
        let spec = LoopSpec::new(10_000, 8);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::tss()).collect();
        let p = Trapezoid::default().params(&spec);
        // Every consecutive difference is delta rounded to a neighbour
        // integer (floor interpolation), except the clamped tail.
        for w in chunks.windows(2).take(p.steps as usize - 2) {
            let diff = w[0].len as i64 - w[1].len as i64;
            let d = p.delta;
            assert!((diff as f64 - d).abs() <= 1.0, "diff {diff} not within 1 of delta {d}");
        }
    }

    #[test]
    fn explicit_bounds() {
        let spec = LoopSpec::new(100, 4);
        let t = Technique::Tss(Trapezoid::with_bounds(20, 5));
        let chunks: Vec<_> = ChunkSequence::new(&spec, &t).collect();
        assert_eq!(chunks[0].len, 20);
        assert_partition(&chunks, 100);
        for c in &chunks[..chunks.len() - 1] {
            assert!(c.len >= 5);
        }
    }

    #[test]
    fn tiny_loop_single_step() {
        let spec = LoopSpec::new(1, 4);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::tss()).collect();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].len, 1);
    }

    #[test]
    fn last_never_exceeds_first() {
        let t = Trapezoid::with_bounds(3, 50);
        let spec = LoopSpec::new(100, 2);
        let p = t.params(&spec);
        assert!(p.last <= p.first);
    }
}
