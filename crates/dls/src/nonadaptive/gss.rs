//! GSS: guided self-scheduling (Polychronopoulos & Kuck, 1987) — each
//! request receives `ceil(R/P)` iterations, where `R` is the remaining
//! loop size. A compromise between the balance of SS and the low overhead
//! of STATIC.

use super::div_ceil;
use crate::chunk::{LoopSpec, SchedState};
use crate::technique::{ChunkCalculator, WorkerCtx};

/// Guided self-scheduling with a configurable minimum chunk size
/// (OpenMP's `schedule(guided, k)` uses the same rule with minimum `k`).
///
/// ```
/// use dls::{sequence::schedule_all, LoopSpec, Technique};
///
/// let sizes: Vec<u64> = schedule_all(&LoopSpec::new(100, 4), &Technique::gss())
///     .iter().map(|c| c.len).collect();
/// assert_eq!(&sizes[..4], &[25, 19, 14, 11]); // ceil(R/P) cascade
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Guided {
    /// Lower bound on the chunk size; the classic GSS uses 1.
    pub min_chunk: u64,
}

impl Default for Guided {
    fn default() -> Self {
        Self { min_chunk: 1 }
    }
}

impl Guided {
    /// GSS with a minimum chunk of `min_chunk` iterations.
    pub fn with_min_chunk(min_chunk: u64) -> Self {
        Self { min_chunk: min_chunk.max(1) }
    }
}

impl ChunkCalculator for Guided {
    #[inline]
    fn chunk_size(&self, spec: &LoopSpec, state: SchedState, _ctx: WorkerCtx) -> u64 {
        let remaining = state.remaining(spec);
        div_ceil(remaining, spec.p()).max(self.min_chunk)
    }

    fn name(&self) -> &'static str {
        "GSS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::ChunkSequence;
    use crate::technique::Technique;
    use crate::verify::{assert_partition, is_nonincreasing};

    #[test]
    fn first_chunk_is_n_over_p() {
        let spec = LoopSpec::new(1000, 4);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::gss()).collect();
        assert_eq!(chunks[0].len, 250);
        assert_partition(&chunks, 1000);
    }

    #[test]
    fn sizes_never_increase() {
        let spec = LoopSpec::new(12345, 7);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::gss()).collect();
        assert!(is_nonincreasing(&chunks));
        assert_partition(&chunks, 12345);
    }

    #[test]
    fn known_sequence_n100_p4() {
        // R: 100 -> 25; 75 -> 19; 56 -> 14; 42 -> 11; 31 -> 8; 23 -> 6;
        // 17 -> 5; 12 -> 3; 9 -> 3; 6 -> 2; 4 -> 1; 3 -> 1; 2 -> 1; 1 -> 1
        let spec = LoopSpec::new(100, 4);
        let sizes: Vec<u64> = ChunkSequence::new(&spec, &Technique::gss()).map(|c| c.len).collect();
        assert_eq!(sizes, vec![25, 19, 14, 11, 8, 6, 5, 3, 3, 2, 1, 1, 1, 1]);
    }

    #[test]
    fn min_chunk_respected() {
        let spec = LoopSpec::new(100, 4);
        let t = Technique::Gss(Guided::with_min_chunk(10));
        let chunks: Vec<_> = ChunkSequence::new(&spec, &t).collect();
        // All chunks except possibly the final clamped one are >= 10.
        for c in &chunks[..chunks.len() - 1] {
            assert!(c.len >= 10, "{c:?}");
        }
        assert_partition(&chunks, 100);
    }

    #[test]
    fn tail_is_all_ones() {
        let spec = LoopSpec::new(50, 5);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::gss()).collect();
        let last = chunks.last().unwrap();
        assert_eq!(last.len, 1);
    }
}
