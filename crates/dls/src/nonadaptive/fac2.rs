//! FAC2: the practical factoring variant — every batch assigns **half of
//! the remaining iterations**, split into `P` equal chunks. Its first
//! chunk is half of GSS's first chunk, which balances front-loaded
//! workloads better than GSS.

use super::fac::{half_remainder_chunk, remainder_at_batch};
use crate::chunk::{LoopSpec, SchedState};
use crate::technique::{ChunkCalculator, WorkerCtx};

/// Practical factoring: `chunk_j = ceil(R_j / (2P))` for every chunk of
/// batch `j`; `R_j` is reconstructed exactly from the scheduling step.
///
/// ```
/// use dls::{sequence::schedule_all, LoopSpec, Technique};
///
/// let sizes: Vec<u64> = schedule_all(&LoopSpec::new(1024, 4), &Technique::fac2())
///     .iter().map(|c| c.len).collect();
/// assert_eq!(&sizes[..8], &[128, 128, 128, 128, 64, 64, 64, 64]);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Factoring2;

impl Factoring2 {
    /// Chunk size at scheduling step `step` (pure replay).
    pub fn chunk_at_step(spec: &LoopSpec, step: u64) -> u64 {
        let p = spec.p();
        let r = remainder_at_batch(spec.n_iters, p, step, |r| half_remainder_chunk(r, p));
        half_remainder_chunk(r, p)
    }
}

impl ChunkCalculator for Factoring2 {
    #[inline]
    fn chunk_size(&self, spec: &LoopSpec, state: SchedState, _ctx: WorkerCtx) -> u64 {
        Self::chunk_at_step(spec, state.step)
    }

    fn name(&self) -> &'static str {
        "FAC2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonadaptive::Guided;
    use crate::sequence::ChunkSequence;
    use crate::technique::Technique;
    use crate::verify::{assert_partition, is_nonincreasing};

    #[test]
    fn first_chunk_is_half_of_gss_first_chunk() {
        let spec = LoopSpec::new(1000, 4);
        let fac2_first = Factoring2::chunk_at_step(&spec, 0);
        let gss_first =
            Guided::default().chunk_size(&spec, SchedState::START, WorkerCtx::default());
        assert_eq!(fac2_first, 125);
        assert_eq!(gss_first, 250);
        assert_eq!(fac2_first * 2, gss_first);
    }

    #[test]
    fn batches_halve() {
        let spec = LoopSpec::new(1024, 4);
        let sizes: Vec<u64> =
            ChunkSequence::new(&spec, &Technique::fac2()).map(|c| c.len).collect();
        // 1024: batch0 = 128 x4 (512 left), batch1 = 64 x4, batch2 = 32 x4, ...
        assert_eq!(&sizes[..4], &[128, 128, 128, 128]);
        assert_eq!(&sizes[4..8], &[64, 64, 64, 64]);
        assert_eq!(&sizes[8..12], &[32, 32, 32, 32]);
    }

    #[test]
    fn covers_loop() {
        for (n, p) in [(1000, 4), (999, 7), (1, 16), (65536, 16), (12345, 3)] {
            let spec = LoopSpec::new(n, p);
            let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::fac2()).collect();
            assert_partition(&chunks, n);
            assert!(is_nonincreasing(&chunks), "n={n} p={p}");
        }
    }

    #[test]
    fn replay_matches_sequence_steps() {
        let spec = LoopSpec::new(7777, 5);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::fac2()).collect();
        for c in &chunks[..chunks.len() - 1] {
            assert_eq!(c.len, Factoring2::chunk_at_step(&spec, c.step));
        }
    }

    #[test]
    fn terminates_with_ones() {
        let spec = LoopSpec::new(100, 4);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::fac2()).collect();
        assert_eq!(chunks.last().unwrap().len, 1);
    }
}
