//! FSC: fixed-size chunking (Kruskal & Weiss, 1985) — every chunk has the
//! same, statically computed size that balances scheduling overhead `h`
//! against load-imbalance cost derived from `sigma`.

use super::div_ceil;
use crate::chunk::{LoopSpec, SchedState};
use crate::technique::{ChunkCalculator, WorkerCtx};

/// Fixed-size chunking.
///
/// The optimal chunk size per Kruskal & Weiss is
///
/// ```text
/// chunk = ( sqrt(2) * N * h / (sigma * P * sqrt(ln P)) )^(2/3)
/// ```
///
/// If the statistical parameters are degenerate (`sigma = 0`, `h = 0`, or
/// `P = 1`) the formula is undefined; we fall back to `ceil(N / (k * P))`
/// with `k = 8` sub-chunks per worker, a common engineering default.
#[derive(Clone, Copy, Debug)]
pub struct FixedSizeChunking {
    /// Explicit chunk size, overriding the formula entirely.
    pub explicit: Option<u64>,
    /// Fallback sub-chunks per worker when the formula is undefined.
    pub fallback_k: u64,
}

impl Default for FixedSizeChunking {
    fn default() -> Self {
        Self { explicit: None, fallback_k: 8 }
    }
}

impl FixedSizeChunking {
    /// Fixed chunking with an explicit chunk size.
    pub fn with_chunk(chunk: u64) -> Self {
        Self { explicit: Some(chunk.max(1)), fallback_k: 8 }
    }

    /// The resolved chunk size for a given loop.
    pub fn resolved(&self, spec: &LoopSpec) -> u64 {
        if let Some(c) = self.explicit {
            return c;
        }
        let n = spec.n_iters as f64;
        let p = spec.p() as f64;
        let sigma = spec.sigma_iter_time;
        let h = spec.overhead;
        if sigma > 0.0 && h > 0.0 && p > 1.0 {
            let ln_p = p.ln();
            let raw = (2.0_f64.sqrt() * n * h / (sigma * p * ln_p.sqrt())).powf(2.0 / 3.0);
            // f64 -> u64 `as` saturates; the clamp bounds it by the loop.
            #[allow(clippy::cast_possible_truncation)]
            let chunk = raw.ceil() as u64;
            chunk.clamp(1, spec.n_iters.max(1))
        } else {
            // fallback_k is caller-controlled, so k * P may exceed u64;
            // a saturated divisor just floors the chunk at 1.
            div_ceil(spec.n_iters, self.fallback_k.max(1).saturating_mul(spec.p())).max(1)
        }
    }
}

impl ChunkCalculator for FixedSizeChunking {
    #[inline]
    fn chunk_size(&self, spec: &LoopSpec, _state: SchedState, _ctx: WorkerCtx) -> u64 {
        self.resolved(spec)
    }

    fn name(&self) -> &'static str {
        "FSC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::ChunkSequence;
    use crate::technique::Technique;
    use crate::verify::assert_partition;

    #[test]
    fn fallback_when_degenerate() {
        let spec = LoopSpec::new(1024, 4);
        let fsc = FixedSizeChunking::default();
        assert_eq!(fsc.resolved(&spec), 32); // 1024 / (8*4)
    }

    #[test]
    fn explicit_chunk_wins() {
        let spec = LoopSpec::new(1024, 4).with_stats(1.0, 1.0).with_overhead(0.1);
        let fsc = FixedSizeChunking::with_chunk(10);
        assert_eq!(fsc.resolved(&spec), 10);
    }

    #[test]
    fn formula_used_with_stats() {
        let spec = LoopSpec::new(100_000, 16).with_stats(1.0, 2.0).with_overhead(0.5);
        let c = FixedSizeChunking::default().resolved(&spec);
        // (sqrt(2)*1e5*0.5 / (2*16*sqrt(ln 16)))^(2/3) ~= (1326.8)^(2/3) ~= 120.9
        assert!((100..150).contains(&c), "chunk = {c}");
    }

    #[test]
    fn all_chunks_same_size() {
        let spec = LoopSpec::new(100, 4);
        let chunks: Vec<_> =
            ChunkSequence::new(&spec, &Technique::Fsc(FixedSizeChunking::with_chunk(7))).collect();
        assert_partition(&chunks, 100);
        for c in &chunks[..chunks.len() - 1] {
            assert_eq!(c.len, 7);
        }
        assert_eq!(chunks.last().unwrap().len, 100 % 7);
    }

    #[test]
    fn higher_overhead_means_bigger_chunks() {
        let lo = LoopSpec::new(100_000, 16).with_stats(1.0, 2.0).with_overhead(0.1);
        let hi = LoopSpec::new(100_000, 16).with_stats(1.0, 2.0).with_overhead(10.0);
        let fsc = FixedSizeChunking::default();
        assert!(fsc.resolved(&hi) > fsc.resolved(&lo));
    }
}
