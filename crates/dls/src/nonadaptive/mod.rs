//! Non-adaptive DLS techniques: the chunk size is a pure function of the
//! loop specification and the shared scheduling state, using only
//! information available before the loop starts.

mod fac;
mod fac2;
mod fsc;
mod gss;
mod rnd;
mod ss;
mod static_;
mod tfss;
mod tss;

pub use fac::Factoring;
pub use fac2::Factoring2;
pub use fsc::FixedSizeChunking;
pub use gss::Guided;
pub use rnd::RandomChunking;
pub use ss::SelfScheduling;
pub use static_::StaticChunking;
pub use tfss::TrapezoidFactoring;
pub use tss::Trapezoid;

/// Integer ceiling division; `div_ceil(0, d) == 0`.
#[inline]
pub(crate) fn div_ceil(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}
