//! SS: pure self-scheduling (Tang & Yew, 1986) — every request yields a
//! single iteration. Maximum load balance, maximum scheduling overhead.

use crate::chunk::{LoopSpec, SchedState};
use crate::technique::{ChunkCalculator, WorkerCtx};

/// One iteration per scheduling step.
#[derive(Clone, Copy, Debug, Default)]
pub struct SelfScheduling;

impl ChunkCalculator for SelfScheduling {
    #[inline]
    fn chunk_size(&self, _spec: &LoopSpec, _state: SchedState, _ctx: WorkerCtx) -> u64 {
        1
    }

    fn name(&self) -> &'static str {
        "SS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::ChunkSequence;
    use crate::technique::Technique;
    use crate::verify::assert_partition;

    #[test]
    fn one_iteration_per_step() {
        let spec = LoopSpec::new(17, 4);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::ss()).collect();
        assert_eq!(chunks.len(), 17);
        assert!(chunks.iter().all(|c| c.len == 1));
        assert_partition(&chunks, 17);
    }

    #[test]
    fn steps_are_sequential() {
        let spec = LoopSpec::new(5, 2);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::ss()).collect();
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.step, i as u64);
            assert_eq!(c.start, i as u64);
        }
    }
}
