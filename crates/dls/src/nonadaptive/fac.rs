//! FAC: factoring (Flynn Hummel, Schonberg & Flynn, 1992) — iterations are
//! scheduled in *batches* of `P` equally-sized chunks. The fraction of the
//! remaining work allocated per batch follows a probabilistic model that
//! consults the mean `mu` and standard deviation `sigma` of the iteration
//! execution times.

use super::div_ceil;
use crate::chunk::{LoopSpec, SchedState};
use crate::technique::{ChunkCalculator, WorkerCtx};

/// Probabilistic factoring.
///
/// At the start of batch `j` with `R_j` remaining iterations:
///
/// ```text
/// b_j = (P / (2 * sqrt(R_j))) * (sigma / mu)
/// x_j = 1 + b_j^2 + b_j * sqrt(b_j^2 + 2)
/// chunk_j = ceil(R_j / (x_j * P))
/// ```
///
/// With `sigma = 0` this degenerates to `x_j = 1`, i.e. each batch takes
/// the whole remainder in equal chunks (one batch total). The remaining
/// state `R_j` is reconstructed exactly from the scheduling step by
/// replaying batch sizes — an `O(batches)` pure computation, so the
/// distributed chunk-calculation property is preserved.
#[derive(Clone, Copy, Debug, Default)]
pub struct Factoring;

impl Factoring {
    /// Chunk size for batch `j` given the remainder `r` at batch start.
    fn batch_chunk(spec: &LoopSpec, r: u64) -> u64 {
        if r == 0 {
            return 1;
        }
        let p = spec.p() as f64;
        let ratio = if spec.mean_iter_time > 0.0 {
            spec.sigma_iter_time / spec.mean_iter_time
        } else {
            0.0
        };
        let b = (p / (2.0 * (r as f64).sqrt())) * ratio;
        let x = 1.0 + b * b + b * (b * b + 2.0).sqrt();
        let denom = (x * p).max(1.0);
        // r/denom <= r <= u64::MAX and the f64 -> u64 `as` cast
        // saturates, so the result stays in range.
        #[allow(clippy::cast_possible_truncation)]
        let chunk = (r as f64 / denom).ceil() as u64;
        chunk.max(1)
    }

    /// Replay batches to find the chunk size at scheduling step `step`.
    pub(crate) fn chunk_at_step(spec: &LoopSpec, step: u64) -> u64 {
        let p = spec.p();
        let batch = step.checked_div(p).unwrap_or(0); // p() >= 1
        let mut r = spec.n_iters;
        let mut chunk = Self::batch_chunk(spec, r);
        for _ in 0..batch {
            // chunk <= r but chunk * p can exceed u64 for huge loops on
            // many workers; the saturating product still zeroes r.
            r = r.saturating_sub(chunk.saturating_mul(p));
            if r == 0 {
                return 1;
            }
            chunk = Self::batch_chunk(spec, r);
        }
        chunk
    }
}

impl ChunkCalculator for Factoring {
    #[inline]
    fn chunk_size(&self, spec: &LoopSpec, state: SchedState, _ctx: WorkerCtx) -> u64 {
        Self::chunk_at_step(spec, state.step)
    }

    fn name(&self) -> &'static str {
        "FAC"
    }
}

/// Replay helper shared with FAC2/WF-style batch techniques: remainder at
/// the start of the batch containing `step`, where each batch consists of
/// `P` chunks of `chunk_of(remainder)` iterations.
pub(crate) fn remainder_at_batch(n: u64, p: u64, step: u64, chunk_of: impl Fn(u64) -> u64) -> u64 {
    let batch = step.checked_div(p.max(1)).unwrap_or(0);
    let mut r = n;
    for _ in 0..batch {
        let c = chunk_of(r);
        r = r.saturating_sub(c.saturating_mul(p));
        if r == 0 {
            break;
        }
    }
    r
}

/// FAC2-style batch chunk: half the remainder split into `P` chunks.
/// `2P <= 2^33` (P comes from a `u32`), so the product cannot saturate
/// in practice; the saturating form makes that explicit.
pub(crate) fn half_remainder_chunk(r: u64, p: u64) -> u64 {
    div_ceil(r, p.saturating_mul(2).max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::ChunkSequence;
    use crate::technique::Technique;
    use crate::verify::{assert_partition, is_nonincreasing};

    #[test]
    fn zero_sigma_takes_whole_remainder_in_one_batch() {
        let spec = LoopSpec::new(100, 4); // sigma = 0
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::fac()).collect();
        assert_eq!(chunks.len(), 4);
        assert!(chunks.iter().all(|c| c.len == 25));
        assert_partition(&chunks, 100);
    }

    #[test]
    fn positive_sigma_schedules_in_multiple_batches() {
        let spec = LoopSpec::new(1000, 4).with_stats(1.0, 0.5);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::fac()).collect();
        assert!(chunks.len() > 4, "expected several batches, got {}", chunks.len());
        assert_partition(&chunks, 1000);
        assert!(is_nonincreasing(&chunks));
    }

    #[test]
    fn batch_has_equal_chunks() {
        let spec = LoopSpec::new(10_000, 8).with_stats(1.0, 1.0);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::fac()).collect();
        // All chunks within one batch of 8 have the same size (except a
        // clamped final chunk).
        for batch in chunks.chunks(8) {
            let full = &batch[..batch.len().saturating_sub(1)];
            if let Some(first) = full.first() {
                assert!(full.iter().all(|c| c.len == first.len));
            }
        }
    }

    #[test]
    fn higher_variance_gives_smaller_first_chunk() {
        let low = LoopSpec::new(10_000, 8).with_stats(1.0, 0.1);
        let high = LoopSpec::new(10_000, 8).with_stats(1.0, 2.0);
        let c_low = Factoring::chunk_at_step(&low, 0);
        let c_high = Factoring::chunk_at_step(&high, 0);
        assert!(c_high < c_low, "{c_high} !< {c_low}");
    }

    #[test]
    fn replay_is_consistent_with_sequence() {
        let spec = LoopSpec::new(5000, 4).with_stats(2.0, 1.5);
        let chunks: Vec<_> = ChunkSequence::new(&spec, &Technique::fac()).collect();
        for c in &chunks[..chunks.len() - 1] {
            assert_eq!(c.len, Factoring::chunk_at_step(&spec, c.step), "{c:?}");
        }
    }
}
