//! Switchable scheduling: re-base any DLS technique — pure or adaptive —
//! onto a partially-consumed iteration range, so a live job can change
//! technique at a batch boundary without perturbing the two shared
//! counters that guarantee exactly-once delivery.
//!
//! The types here are the substrate of the `autotune` crate and the
//! `dls-service` AUTO job mode:
//!
//! * [`SchedKind`] — a superset of [`Kind`](crate::Kind) that also names
//!   the adaptive techniques (`AF`, `AWF-B/-C/-D/-E`) and the `AUTO`
//!   meta-mode, with a canonical wire byte (`0–15`) shared by the
//!   service protocol and the durability journal.
//! * [`SwitchableScheduler`] — wraps one active technique and exposes a
//!   uniform `next_size`/`record` interface. [`switch`] re-bases the
//!   active calculator onto the *remaining* range: the wrapper keeps an
//!   **origin** (the global `step`/`scheduled` watermarks at the moment
//!   of the switch) and sizes chunks from a private segment state, while
//!   the caller's global counters keep advancing monotonically.
//! * [`Decision`]/[`SwitchReason`] — one journaled technique switch.
//!
//! ## The re-basing invariant
//!
//! The global counters are *never* rewound or rebased. A switch replaces
//! only the *sizing view*: the new calculator sees a fresh loop of
//! `n - scheduled` iterations, and every size it produces is clamped to
//! the true remainder by the caller exactly as before. Chunk *placement*
//! (`start = scheduled`) stays a pure function of the global counters,
//! so coverage is exactly-once across any switch sequence — the model
//! checker's switch adversary proves this exhaustively.
//!
//! [`switch`]: SwitchableScheduler::switch

use crate::adaptive::{AfScheduler, AwfScheduler, AwfVariant, WorkerReport};
use crate::chunk::{Chunk, LoopSpec, SchedState};
use crate::technique::{ChunkCalculator, Kind, Technique, WorkerCtx};
use std::fmt;
use std::str::FromStr;

/// A schedulable kind on the service wire: every pure [`Kind`], the
/// stateful adaptive techniques, and the `AUTO` meta-mode (the service
/// picks and re-picks the technique at runtime).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedKind {
    /// A pure (stateless-formula) technique.
    Fixed(Kind),
    /// Adaptive factoring (stateful).
    Af,
    /// Adaptive weighted factoring, one of the four variants.
    Awf(AwfVariant),
    /// Online technique selection: the service starts at `SS` and
    /// switches along the ladder as measured overhead/imbalance shift.
    Auto,
}

impl SchedKind {
    /// Every concrete kind (excludes `Auto`, which is a mode, not a
    /// calculator): the ten pure kinds, `AF`, and the four AWF variants.
    pub const CONCRETE: [SchedKind; 15] = [
        SchedKind::Fixed(Kind::STATIC),
        SchedKind::Fixed(Kind::SS),
        SchedKind::Fixed(Kind::GSS),
        SchedKind::Fixed(Kind::TSS),
        SchedKind::Fixed(Kind::FAC),
        SchedKind::Fixed(Kind::FAC2),
        SchedKind::Fixed(Kind::TFSS),
        SchedKind::Fixed(Kind::FSC),
        SchedKind::Fixed(Kind::RND),
        SchedKind::Fixed(Kind::WF),
        SchedKind::Af,
        SchedKind::Awf(AwfVariant::B),
        SchedKind::Awf(AwfVariant::C),
        SchedKind::Awf(AwfVariant::D),
        SchedKind::Awf(AwfVariant::E),
    ];

    /// The adaptive kinds the service exposes on the wire.
    pub const ADAPTIVE: [SchedKind; 5] = [
        SchedKind::Af,
        SchedKind::Awf(AwfVariant::B),
        SchedKind::Awf(AwfVariant::C),
        SchedKind::Awf(AwfVariant::D),
        SchedKind::Awf(AwfVariant::E),
    ];

    /// Display name (e.g. `"GSS"`, `"AWF-C"`, `"AUTO"`).
    pub fn name(&self) -> &'static str {
        match self {
            SchedKind::Fixed(k) => k.name(),
            SchedKind::Af => "AF",
            SchedKind::Awf(v) => v.name(),
            SchedKind::Auto => "AUTO",
        }
    }

    /// True for the stateful techniques that must be *driven* (fed
    /// completion reports) rather than computed from a pure formula.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, SchedKind::Af | SchedKind::Awf(_))
    }

    /// The canonical wire byte, shared by the service protocol (v3) and
    /// the durability journal. Bytes `0–9` are the pure kinds in
    /// declaration order — identical to the v2 wire and to every
    /// journal ever written — so old journals replay unchanged.
    pub fn to_byte(self) -> u8 {
        match self {
            SchedKind::Fixed(Kind::STATIC) => 0,
            SchedKind::Fixed(Kind::SS) => 1,
            SchedKind::Fixed(Kind::GSS) => 2,
            SchedKind::Fixed(Kind::TSS) => 3,
            SchedKind::Fixed(Kind::FAC) => 4,
            SchedKind::Fixed(Kind::FAC2) => 5,
            SchedKind::Fixed(Kind::TFSS) => 6,
            SchedKind::Fixed(Kind::FSC) => 7,
            SchedKind::Fixed(Kind::RND) => 8,
            SchedKind::Fixed(Kind::WF) => 9,
            SchedKind::Af => 10,
            SchedKind::Awf(AwfVariant::B) => 11,
            SchedKind::Awf(AwfVariant::C) => 12,
            SchedKind::Awf(AwfVariant::D) => 13,
            SchedKind::Awf(AwfVariant::E) => 14,
            SchedKind::Auto => 15,
        }
    }

    /// Decode the canonical wire byte; `None` for anything above 15.
    pub fn from_byte(b: u8) -> Option<SchedKind> {
        Some(match b {
            0 => SchedKind::Fixed(Kind::STATIC),
            1 => SchedKind::Fixed(Kind::SS),
            2 => SchedKind::Fixed(Kind::GSS),
            3 => SchedKind::Fixed(Kind::TSS),
            4 => SchedKind::Fixed(Kind::FAC),
            5 => SchedKind::Fixed(Kind::FAC2),
            6 => SchedKind::Fixed(Kind::TFSS),
            7 => SchedKind::Fixed(Kind::FSC),
            8 => SchedKind::Fixed(Kind::RND),
            9 => SchedKind::Fixed(Kind::WF),
            10 => SchedKind::Af,
            11 => SchedKind::Awf(AwfVariant::B),
            12 => SchedKind::Awf(AwfVariant::C),
            13 => SchedKind::Awf(AwfVariant::D),
            14 => SchedKind::Awf(AwfVariant::E),
            15 => SchedKind::Auto,
            _ => return None,
        })
    }
}

impl From<Kind> for SchedKind {
    fn from(k: Kind) -> Self {
        SchedKind::Fixed(k)
    }
}

impl fmt::Display for SchedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SchedKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "AF" => Ok(SchedKind::Af),
            "AWF-B" | "AWFB" => Ok(SchedKind::Awf(AwfVariant::B)),
            "AWF-C" | "AWFC" => Ok(SchedKind::Awf(AwfVariant::C)),
            "AWF-D" | "AWFD" => Ok(SchedKind::Awf(AwfVariant::D)),
            "AWF-E" | "AWFE" => Ok(SchedKind::Awf(AwfVariant::E)),
            "AUTO" => Ok(SchedKind::Auto),
            other => other.parse::<Kind>().map(SchedKind::Fixed),
        }
    }
}

/// Why the tuner switched technique.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SwitchReason {
    /// Per-chunk scheduling overhead dominates chunk compute time:
    /// move to a coarser-chunked technique.
    Overhead,
    /// Worker latencies are skewed (stragglers): move to a
    /// finer-chunked or adaptive technique.
    Imbalance,
    /// Measurements settled; no pressure either way (informational,
    /// used when the tuner re-asserts the current technique).
    Calm,
    /// Externally requested (tests, admin tooling).
    Manual,
}

impl SwitchReason {
    /// Canonical wire byte (protocol v3 and journal record).
    pub fn to_byte(self) -> u8 {
        match self {
            SwitchReason::Overhead => 0,
            SwitchReason::Imbalance => 1,
            SwitchReason::Calm => 2,
            SwitchReason::Manual => 3,
        }
    }

    /// Decode the canonical wire byte.
    pub fn from_byte(b: u8) -> Option<SwitchReason> {
        Some(match b {
            0 => SwitchReason::Overhead,
            1 => SwitchReason::Imbalance,
            2 => SwitchReason::Calm,
            3 => SwitchReason::Manual,
            _ => return None,
        })
    }

    /// Display name, lower-case (for JSON / trace labels).
    pub fn name(&self) -> &'static str {
        match self {
            SwitchReason::Overhead => "overhead",
            SwitchReason::Imbalance => "imbalance",
            SwitchReason::Calm => "calm",
            SwitchReason::Manual => "manual",
        }
    }
}

/// One technique switch, as journaled and as reported in the decision
/// history of an AUTO job. `step`/`scheduled` are the **global** job
/// watermarks at the moment of the switch (the re-basing origin).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Dense 0-based sequence number within the job.
    pub seq: u32,
    /// Global scheduling step at the switch.
    pub step: u64,
    /// Global scheduled-iterations watermark at the switch.
    pub scheduled: u64,
    /// Technique active before the switch.
    pub from: SchedKind,
    /// Technique active after the switch.
    pub to: SchedKind,
    /// Why the tuner switched.
    pub reason: SwitchReason,
}

/// The active calculator behind a [`SwitchableScheduler`].
#[derive(Clone, Debug)]
enum Inner {
    Pure(Technique),
    Af(Box<AfScheduler>),
    Awf(Box<AwfScheduler>),
}

/// Wraps one active technique — pure or adaptive — behind a uniform
/// sizing interface, and re-bases it onto the remaining range when the
/// technique is switched mid-job.
///
/// The wrapper mirrors, in a private *segment* state, exactly the
/// advances the caller applies to its global counters; the two stay in
/// lockstep because [`next_size`](Self::next_size) both computes and
/// consumes the returned size. See the module docs for the invariant.
#[derive(Clone, Debug)]
pub struct SwitchableScheduler {
    /// The full-job specification (global `n`, `p`, statistics).
    spec: LoopSpec,
    /// Currently active concrete kind (never `Auto`).
    active: SchedKind,
    /// Global watermarks at the last switch (or `START`).
    origin: SchedState,
    /// The remaining-range view the active calculator sizes against.
    seg_spec: LoopSpec,
    /// Segment progress for a pure calculator (`seg_state.scheduled ==
    /// global.scheduled - origin.scheduled`); adaptive inners track
    /// their own equivalent state.
    seg_state: SchedState,
    inner: Inner,
    switches: u32,
}

impl SwitchableScheduler {
    /// New scheduler for `spec`, starting with `kind`. `Auto` resolves
    /// to the ladder's entry technique, [`Kind::SS`] — the service owns
    /// the tuner that will switch away from it.
    pub fn new(spec: LoopSpec, kind: SchedKind) -> Self {
        let active = Self::resolve(kind);
        Self {
            spec,
            active,
            origin: SchedState::START,
            seg_spec: spec,
            seg_state: SchedState::START,
            inner: Self::build_inner(spec, active),
            switches: 0,
        }
    }

    /// Rebuild a scheduler at recovered global watermarks (`origin`),
    /// with `kind` active — used on journal replay. Adaptive
    /// measurement state is not persisted; the restored calculator
    /// starts fresh on the remaining range, which is safe because the
    /// journal replays *granted* chunks verbatim and never re-runs the
    /// sizing formula for past grants.
    pub fn restore(spec: LoopSpec, kind: SchedKind, origin: SchedState, switches: u32) -> Self {
        let active = Self::resolve(kind);
        let seg_spec = Self::segment_spec(spec, origin);
        Self {
            spec,
            active,
            origin,
            seg_spec,
            seg_state: SchedState::START,
            inner: Self::build_inner(seg_spec, active),
            switches,
        }
    }

    fn resolve(kind: SchedKind) -> SchedKind {
        match kind {
            SchedKind::Auto => SchedKind::Fixed(Kind::SS),
            concrete => concrete,
        }
    }

    fn segment_spec(spec: LoopSpec, origin: SchedState) -> LoopSpec {
        let mut seg = spec;
        seg.n_iters = spec.n_iters.saturating_sub(origin.scheduled);
        seg
    }

    fn build_inner(seg_spec: LoopSpec, active: SchedKind) -> Inner {
        match active {
            SchedKind::Fixed(k) => Inner::Pure(Technique::from_kind(k)),
            SchedKind::Af => Inner::Af(Box::new(AfScheduler::new(seg_spec))),
            SchedKind::Awf(v) => Inner::Awf(Box::new(AwfScheduler::new(seg_spec, v))),
            // `resolve` maps Auto away before we get here.
            SchedKind::Auto => Inner::Pure(Technique::ss()),
        }
    }

    /// The concrete kind currently sizing chunks.
    pub fn active(&self) -> SchedKind {
        self.active
    }

    /// How many times the technique has been switched.
    pub fn switch_count(&self) -> u32 {
        self.switches
    }

    /// The full-job specification.
    pub fn spec(&self) -> &LoopSpec {
        &self.spec
    }

    /// Map a service worker id into the calculator's `0..p` slot space.
    fn slot(&self, worker: u32) -> u32 {
        worker.checked_rem(self.spec.n_workers.max(1)).unwrap_or(0)
    }

    /// Compute **and consume** the size of the next chunk for `ctx`,
    /// already clamped to the remaining iterations. Returns 0 once the
    /// loop is exhausted. The caller must advance its global counters
    /// by exactly the returned size (`step += 1`, `scheduled += size`)
    /// — that is the lockstep that keeps the segment view consistent.
    pub fn next_size(&mut self, ctx: WorkerCtx) -> u64 {
        let slot = self.slot(ctx.worker);
        let taken = match &mut self.inner {
            Inner::Pure(t) => {
                let ctx = WorkerCtx { worker: slot, ..ctx };
                let size = t.chunk_size(&self.seg_spec, self.seg_state, ctx);
                self.seg_state.take(&self.seg_spec, size)
            }
            Inner::Af(s) => s.next_chunk(slot),
            Inner::Awf(s) => s.next_chunk(slot),
        };
        taken.map_or(0, |c| c.len)
    }

    /// Feed a completed chunk's measured times into an adaptive inner
    /// (a no-op for pure techniques). `len` is the chunk length;
    /// `compute_ns`/`sched_ns` are execute and scheduling-overhead
    /// times. Times reach the estimators as `f64` nanoseconds, so
    /// values near `u64::MAX` degrade in precision but cannot wrap.
    pub fn record(&mut self, worker: u32, len: u64, compute_ns: u64, sched_ns: u64) {
        let slot = self.slot(worker);
        // The inners only consult `len` (placement is irrelevant to the
        // estimators), so a synthetic chunk is sufficient.
        let chunk = Chunk { start: 0, len, step: 0 };
        match &mut self.inner {
            Inner::Pure(_) => {}
            Inner::Af(s) => s.record(slot, chunk, compute_ns as f64),
            Inner::Awf(s) => s.record(WorkerReport {
                worker: slot,
                chunk,
                compute_time: compute_ns as f64,
                sched_time: sched_ns as f64,
            }),
        }
    }

    /// Switch the active technique, re-basing the new calculator onto
    /// the remaining range. `global` is the caller's current global
    /// counter pair — it becomes the new origin; the counters
    /// themselves are **not** modified (the re-basing invariant).
    pub fn switch(&mut self, to: SchedKind, global: SchedState) {
        let active = Self::resolve(to);
        self.origin = global;
        self.seg_spec = Self::segment_spec(self.spec, global);
        self.seg_state = SchedState::START;
        self.inner = Self::build_inner(self.seg_spec, active);
        self.active = active;
        self.switches = self.switches.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_exactly_once;

    /// Drive a job the way `dls-service` does — global counters outside
    /// the scheduler, switching at the given step boundaries — and
    /// return the granted chunks.
    fn drive(n: u64, p: u32, start: SchedKind, plan: &[(u64, SchedKind)]) -> Vec<Chunk> {
        let spec = LoopSpec::new(n, p);
        let mut s = SwitchableScheduler::new(spec, start);
        let (mut step, mut scheduled) = (0u64, 0u64);
        let mut chunks = Vec::new();
        let mut w = 0u32;
        while scheduled < n {
            let size = s.next_size(WorkerCtx::worker(w)).clamp(1, n - scheduled);
            chunks.push(Chunk { start: scheduled, len: size, step });
            step += 1;
            scheduled += size;
            s.record(w, size, size * 7, 3);
            w = (w + 1) % p;
            if let Some(&(_, to)) = plan.iter().find(|&&(at, _)| at == step) {
                s.switch(to, SchedState { step, scheduled });
            }
            assert!(chunks.len() < 2 * n as usize + 16, "must terminate");
        }
        chunks
    }

    #[test]
    fn byte_mapping_roundtrips_and_rejects() {
        for k in SchedKind::CONCRETE.into_iter().chain([SchedKind::Auto]) {
            assert_eq!(SchedKind::from_byte(k.to_byte()), Some(k));
        }
        // Bytes 0–9 must match the historical pure-kind wire mapping.
        assert_eq!(SchedKind::from_byte(0), Some(SchedKind::Fixed(Kind::STATIC)));
        assert_eq!(SchedKind::from_byte(9), Some(SchedKind::Fixed(Kind::WF)));
        assert_eq!(SchedKind::from_byte(15), Some(SchedKind::Auto));
        for b in 16..=u8::MAX {
            assert_eq!(SchedKind::from_byte(b), None);
        }
    }

    #[test]
    fn reason_bytes_roundtrip() {
        for r in [
            SwitchReason::Overhead,
            SwitchReason::Imbalance,
            SwitchReason::Calm,
            SwitchReason::Manual,
        ] {
            assert_eq!(SwitchReason::from_byte(r.to_byte()), Some(r));
        }
        assert_eq!(SwitchReason::from_byte(4), None);
    }

    #[test]
    fn parse_and_display() {
        for k in SchedKind::CONCRETE.into_iter().chain([SchedKind::Auto]) {
            assert_eq!(k.name().parse::<SchedKind>().unwrap(), k);
        }
        assert_eq!("auto".parse::<SchedKind>().unwrap(), SchedKind::Auto);
        assert_eq!("awf-c".parse::<SchedKind>().unwrap(), SchedKind::Awf(AwfVariant::C));
        assert_eq!("gss".parse::<SchedKind>().unwrap(), SchedKind::Fixed(Kind::GSS));
        assert!("nope".parse::<SchedKind>().is_err());
        assert_eq!(SchedKind::Awf(AwfVariant::D).to_string(), "AWF-D");
    }

    #[test]
    fn no_switch_matches_plain_technique() {
        // With zero switches the wrapper must reproduce the plain
        // calculator's schedule exactly.
        for kind in Kind::ALL {
            let spec = LoopSpec::new(5_000, 4);
            let mut plain = SchedState::START;
            let t = Technique::from_kind(kind);
            let mut s = SwitchableScheduler::new(spec, kind.into());
            let mut w = 0u32;
            loop {
                if plain.exhausted(&spec) {
                    assert_eq!(s.next_size(WorkerCtx::worker(w)), 0);
                    break;
                }
                let raw = t.chunk_size(&spec, plain, WorkerCtx::worker(w));
                let expect = plain.take(&spec, raw).unwrap().len;
                let got = s.next_size(WorkerCtx::worker(w));
                assert_eq!(got, expect, "{kind} diverged at step {}", plain.step);
                w = (w + 1) % 4;
            }
        }
    }

    #[test]
    fn exactly_once_across_switches_every_concrete_kind() {
        // Switch from every concrete kind into every other at an early
        // and a late boundary; coverage must stay exactly-once.
        for from in SchedKind::CONCRETE {
            for to in SchedKind::CONCRETE {
                let chunks = drive(2_048, 4, from, &[(3, to), (9, from)]);
                check_exactly_once(&chunks, 2_048)
                    .unwrap_or_else(|e| panic!("{from}->{to}: {e:?}"));
            }
        }
    }

    #[test]
    fn auto_starts_at_ss() {
        let s = SwitchableScheduler::new(LoopSpec::new(100, 4), SchedKind::Auto);
        assert_eq!(s.active(), SchedKind::Fixed(Kind::SS));
        assert_eq!(s.switch_count(), 0);
    }

    #[test]
    fn switch_ladder_walk_covers_loop() {
        // The tuner's ladder: SS -> GSS -> FAC2 -> AF.
        let plan = [
            (4, SchedKind::Fixed(Kind::GSS)),
            (8, SchedKind::Fixed(Kind::FAC2)),
            (12, SchedKind::Af),
        ];
        let chunks = drive(10_000, 8, SchedKind::Auto, &plan);
        check_exactly_once(&chunks, 10_000).unwrap();
    }

    #[test]
    fn restore_resumes_remaining_range() {
        // Restore at a mid-loop watermark: the scheduler must cover
        // exactly the remainder.
        let spec = LoopSpec::new(1_000, 4);
        let origin = SchedState { step: 7, scheduled: 400 };
        let mut s = SwitchableScheduler::restore(spec, SchedKind::Fixed(Kind::GSS), origin, 2);
        assert_eq!(s.switch_count(), 2);
        let (mut step, mut scheduled) = (origin.step, origin.scheduled);
        let mut chunks = Vec::new();
        while scheduled < 1_000 {
            let size = s.next_size(WorkerCtx::worker(0)).clamp(1, 1_000 - scheduled);
            chunks.push(Chunk { start: scheduled, len: size, step });
            step += 1;
            scheduled += size;
        }
        let total: u64 = chunks.iter().map(|c| c.len).sum();
        assert_eq!(total, 600);
        assert_eq!(chunks.first().unwrap().start, 400);
        assert_eq!(s.next_size(WorkerCtx::worker(0)), 0, "exhausted after remainder");
    }

    #[test]
    fn adaptive_records_shape_future_chunks() {
        // Feeding skewed times into an AF inner must shrink chunks
        // relative to a clean history (sanity that record() reaches the
        // estimator through the wrapper).
        let spec = LoopSpec::new(100_000, 4);
        let chunk_after = |noisy: bool| {
            let mut s = SwitchableScheduler::new(spec, SchedKind::Af);
            let a = s.next_size(WorkerCtx::worker(0));
            s.record(0, a, if noisy { a / 5 } else { a }, 0);
            let b = s.next_size(WorkerCtx::worker(0));
            s.record(0, b, if noisy { b * 3 } else { b }, 0);
            s.next_size(WorkerCtx::worker(0))
        };
        assert!(chunk_after(true) < chunk_after(false));
    }

    #[test]
    fn out_of_range_worker_ids_are_mapped_into_slots() {
        let spec = LoopSpec::new(512, 4);
        let mut s = SwitchableScheduler::new(spec, SchedKind::Awf(AwfVariant::C));
        let mut scheduled = 0u64;
        // Worker ids way past p: slot-mapping keeps the estimators fed.
        for w in [0u32, 1000, 7, 4_294_967_294] {
            let size = s.next_size(WorkerCtx::worker(w)).clamp(1, 512 - scheduled);
            scheduled += size;
            s.record(w, size, size, 1);
        }
        assert!(scheduled > 0);
    }

    #[test]
    fn extreme_n_switches_do_not_wrap() {
        // Near-u64::MAX loops: walk a prefix with switches; counters
        // must stay monotonic and within bounds (mirrors
        // crates/dls/tests/extreme.rs).
        for n in [u64::MAX / 2, u64::MAX - 1] {
            let spec = LoopSpec::new(n, 16);
            let mut s = SwitchableScheduler::new(spec, SchedKind::Auto);
            let (mut step, mut scheduled) = (0u64, 0u64);
            let ladder = [
                SchedKind::Fixed(Kind::GSS),
                SchedKind::Fixed(Kind::FAC2),
                SchedKind::Af,
                SchedKind::Fixed(Kind::SS),
            ];
            for (i, &to) in ladder.iter().enumerate() {
                for _ in 0..64 {
                    let size = s.next_size(WorkerCtx::worker(step as u32 % 16));
                    let size = size.clamp(1, n - scheduled);
                    let prev = scheduled;
                    step += 1;
                    scheduled += size;
                    assert!(scheduled > prev && scheduled <= n, "n={n} i={i}");
                    s.record(step as u32 % 16, size, u64::MAX / 2, u64::MAX / 4);
                }
                s.switch(to, SchedState { step, scheduled });
                assert_eq!(s.active(), to);
            }
            assert_eq!(s.switch_count(), 4);
        }
    }
}
