//! WF: weighted factoring (Flynn Hummel et al., 1996) — FAC2-style
//! batches, but each worker's chunk within the batch is scaled by the
//! worker's relative speed weight. Weights are fixed before execution
//! (the adaptive variants live in [`crate::adaptive`]).

use crate::chunk::{LoopSpec, SchedState};
use crate::technique::{ChunkCalculator, WorkerCtx};

/// Weighted factoring.
///
/// The batch chunk is `ceil(R_j / (2P))` as in FAC2 (computed by exact
/// replay with unit weights); the requesting worker receives
/// `ceil(weight * batch_chunk)` iterations. Weights are mean-normalised,
/// so the batch still assigns about half the remainder in total.
#[derive(Clone, Copy, Debug, Default)]
pub struct WeightedFactoring;

impl ChunkCalculator for WeightedFactoring {
    #[inline]
    fn chunk_size(&self, spec: &LoopSpec, state: SchedState, ctx: WorkerCtx) -> u64 {
        let base = crate::nonadaptive::Factoring2::chunk_at_step(spec, state.step);
        let w = if ctx.weight.is_finite() && ctx.weight > 0.0 { ctx.weight } else { 1.0 };
        // f64 -> u64 `as` saturates; an oversized weighted chunk is
        // clamped to the remaining iterations by `SchedState::take`.
        #[allow(clippy::cast_possible_truncation)]
        let scaled = (base as f64 * w).ceil() as u64;
        scaled.max(1)
    }

    fn name(&self) -> &'static str {
        "WF"
    }
}

/// Normalise raw speed scores so their mean is 1.0 (the convention
/// [`WorkerCtx::weight`] expects). Zero or negative scores are clamped to
/// the smallest positive score.
pub fn normalize_weights(scores: &[f64]) -> Vec<f64> {
    if scores.is_empty() {
        return Vec::new();
    }
    let min_pos = scores.iter().copied().filter(|s| *s > 0.0).fold(f64::INFINITY, f64::min);
    let floor = if min_pos.is_finite() { min_pos } else { 1.0 };
    let cleaned: Vec<f64> =
        scores.iter().map(|&s| if s > 0.0 && s.is_finite() { s } else { floor }).collect();
    let mean = cleaned.iter().sum::<f64>() / cleaned.len() as f64;
    cleaned.iter().map(|s| s / mean).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technique::Technique;

    #[test]
    fn unit_weight_equals_fac2() {
        let spec = LoopSpec::new(1024, 4);
        let wf = Technique::wf();
        let fac2 = Technique::fac2();
        for step in 0..12 {
            let st = SchedState { step, scheduled: 0 };
            assert_eq!(
                wf.chunk_size(&spec, st, WorkerCtx::default()),
                fac2.chunk_size(&spec, st, WorkerCtx::default())
            );
        }
    }

    #[test]
    fn faster_worker_gets_bigger_chunk() {
        let spec = LoopSpec::new(1024, 4);
        let wf = WeightedFactoring;
        let slow = wf.chunk_size(&spec, SchedState::START, WorkerCtx { worker: 0, weight: 0.5 });
        let fast = wf.chunk_size(&spec, SchedState::START, WorkerCtx { worker: 1, weight: 2.0 });
        assert!(fast > slow);
        assert_eq!(fast, 256); // 128 * 2
        assert_eq!(slow, 64); // 128 * 0.5
    }

    #[test]
    fn bogus_weight_falls_back_to_unit() {
        let spec = LoopSpec::new(1024, 4);
        let wf = WeightedFactoring;
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let c = wf.chunk_size(&spec, SchedState::START, WorkerCtx { worker: 0, weight: w });
            assert_eq!(c, 128, "weight {w}");
        }
    }

    #[test]
    fn normalize_weights_mean_one() {
        let w = normalize_weights(&[1.0, 2.0, 3.0, 4.0]);
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 1.0).abs() < 1e-12);
        assert!(w[3] > w[0]);
    }

    #[test]
    fn normalize_weights_handles_zeros() {
        let w = normalize_weights(&[0.0, 2.0]);
        assert!(w.iter().all(|x| *x > 0.0));
    }

    #[test]
    fn normalize_weights_empty() {
        assert!(normalize_weights(&[]).is_empty());
    }
}
