//! Sequential reference scheduler: enumerates the chunk sequence a
//! technique produces when steps are taken strictly in order. Used as the
//! ground truth in tests and by the simulators.

use crate::chunk::{Chunk, LoopSpec, SchedState};
use crate::technique::{ChunkCalculator, WorkerCtx};

/// Iterator over the chunks of a loop under a given technique, in
/// scheduling-step order with unit worker weight.
pub struct ChunkSequence<'a, C: ChunkCalculator + ?Sized> {
    spec: &'a LoopSpec,
    calc: &'a C,
    state: SchedState,
}

impl<'a, C: ChunkCalculator + ?Sized> ChunkSequence<'a, C> {
    /// Start a fresh enumeration.
    pub fn new(spec: &'a LoopSpec, calc: &'a C) -> Self {
        Self { spec, calc, state: SchedState::START }
    }

    /// The scheduling state after the chunks yielded so far.
    pub fn state(&self) -> SchedState {
        self.state
    }
}

impl<'a, C: ChunkCalculator + ?Sized> Iterator for ChunkSequence<'a, C> {
    type Item = Chunk;

    fn next(&mut self) -> Option<Chunk> {
        if self.state.exhausted(self.spec) {
            return None;
        }
        let size = self.calc.chunk_size(self.spec, self.state, WorkerCtx::default());
        self.state.take(self.spec, size)
    }
}

/// Collect the full chunk sequence of a technique for a loop.
pub fn schedule_all<C: ChunkCalculator + ?Sized>(spec: &LoopSpec, calc: &C) -> Vec<Chunk> {
    ChunkSequence::new(spec, calc).collect()
}

/// Number of scheduling steps a technique needs for a loop — the metric
/// that determines total scheduling overhead.
pub fn step_count<C: ChunkCalculator + ?Sized>(spec: &LoopSpec, calc: &C) -> u64 {
    ChunkSequence::new(spec, calc).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technique::{Kind, Technique};
    use crate::verify::assert_partition;

    #[test]
    fn all_techniques_terminate_and_cover() {
        for kind in Kind::ALL {
            let t = Technique::from_kind(kind);
            for (n, p) in [(1u64, 1u32), (1, 16), (100, 4), (1000, 16), (9973, 7)] {
                let spec = LoopSpec::new(n, p).with_stats(1.0, 0.3).with_overhead(0.01);
                let chunks = schedule_all(&spec, &t);
                assert_partition(&chunks, n);
                assert!(chunks.len() as u64 <= n, "{kind} produced more steps than iterations");
            }
        }
    }

    #[test]
    fn step_count_ordering_ss_most_static_least() {
        let spec = LoopSpec::new(10_000, 16);
        let ss = step_count(&spec, &Technique::ss());
        let gss = step_count(&spec, &Technique::gss());
        let stat = step_count(&spec, &Technique::static_());
        assert_eq!(ss, 10_000);
        assert_eq!(stat, 16);
        assert!(stat < gss && gss < ss);
    }

    #[test]
    fn sequence_state_tracks_progress() {
        let spec = LoopSpec::new(100, 4);
        let t = Technique::gss();
        let mut seq = ChunkSequence::new(&spec, &t);
        seq.next();
        assert_eq!(seq.state().step, 1);
        assert_eq!(seq.state().scheduled, 25);
    }

    #[test]
    fn empty_loop_yields_nothing() {
        let spec = LoopSpec::new(0, 4);
        assert_eq!(schedule_all(&spec, &Technique::gss()).len(), 0);
    }
}
