//! Adaptive DLS techniques: AWF and its batch/chunk variants.
//!
//! Adaptive techniques measure worker performance *during* the loop and
//! re-weight future chunks accordingly, so — unlike the non-adaptive
//! calculators — they carry mutable state and are driven through an
//! explicit scheduler object ([`AwfScheduler`]). In the hierarchical
//! executors this state lives behind the same lock/window that guards the
//! work queue, preserving the distributed-calculation structure.

mod af;
mod awf;

pub use af::AfScheduler;
pub use awf::{AwfScheduler, AwfVariant, WorkerReport};
