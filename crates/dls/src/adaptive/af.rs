//! AF: adaptive factoring (Banicescu & Liu, 2000; Cariño & Banicescu,
//! 2008 — the paper's reference [29]).
//!
//! Factoring assumes the iteration-time mean `mu` and deviation `sigma`
//! are known *before* the loop; adaptive factoring estimates both
//! **during** the loop from each worker's measured chunk times and
//! recomputes the batch chunk size accordingly:
//!
//! ```text
//! D = P * sigma^2 / mu        T = (chunk execution rate estimate)
//! chunk = (D + 2*T*R - sqrt(D^2 + 4*D*T*R)) / (2*mu)
//! ```
//!
//! where `R` is the remaining loop size. We use the practical per-worker
//! formulation: each worker keeps running estimates `(mu_i, sigma_i)`
//! and sizes its own next chunk from them.

use crate::chunk::{Chunk, LoopSpec, SchedState};

/// Per-worker running estimate of the iteration-time distribution.
#[derive(Clone, Copy, Debug, Default)]
struct Estimate {
    iters: u64,
    /// Sum of per-chunk mean times (for mu).
    sum_time: f64,
    /// Sum of squared per-iteration times, approximated per chunk.
    sum_sq: f64,
    chunks: u64,
}

impl Estimate {
    fn mu(&self) -> Option<f64> {
        (self.iters > 0).then(|| self.sum_time / self.iters as f64)
    }

    fn sigma(&self) -> f64 {
        match (self.mu(), self.iters) {
            (Some(mu), n) if n > 1 => {
                let var = (self.sum_sq / n as f64 - mu * mu).max(0.0);
                var.sqrt()
            }
            _ => 0.0,
        }
    }
}

/// Stateful adaptive-factoring scheduler. Drive with
/// [`AfScheduler::next_chunk`] and [`AfScheduler::record`], like
/// [`crate::adaptive::AwfScheduler`].
#[derive(Clone, Debug)]
pub struct AfScheduler {
    spec: LoopSpec,
    state: SchedState,
    est: Vec<Estimate>,
    /// Chunk size used before a worker has any measurements: the FAC2
    /// opening move, `ceil(N / (2P))`.
    warmup: u64,
}

impl AfScheduler {
    /// New scheduler for `spec.n_workers` workers.
    pub fn new(spec: LoopSpec) -> Self {
        let warmup = spec.n_iters.div_ceil(2 * spec.p()).max(1);
        Self {
            spec,
            state: SchedState::START,
            est: vec![Estimate::default(); spec.p() as usize],
            warmup,
        }
    }

    /// The scheduling state (step / scheduled counters).
    pub fn state(&self) -> SchedState {
        self.state
    }

    /// Obtain the next chunk for `worker`, or `None` when exhausted.
    pub fn next_chunk(&mut self, worker: u32) -> Option<Chunk> {
        if self.state.exhausted(&self.spec) {
            return None;
        }
        let remaining = self.state.remaining(&self.spec) as f64;
        let size = match self.est.get(worker as usize).and_then(|e| e.mu().map(|mu| (e, mu))) {
            Some((e, mu)) if mu > 0.0 => {
                let p = self.spec.p() as f64;
                let sigma = e.sigma();
                // D = P * sigma^2 / mu; T = mu (mean iteration time as
                // the rate scale). With sigma = 0 this collapses to
                // R / P — the deterministic optimum.
                let d = p * sigma * sigma / mu;
                let t = mu;
                let chunk = (d + 2.0 * t * remaining - (d * d + 4.0 * d * t * remaining).sqrt())
                    / (2.0 * t * p);
                chunk.ceil().max(1.0) as u64
            }
            _ => self.warmup,
        };
        self.state.take(&self.spec, size)
    }

    /// Record a completed chunk's measured execution time.
    pub fn record(&mut self, worker: u32, chunk: Chunk, time: f64) {
        if let Some(e) = self.est.get_mut(worker as usize) {
            let n = chunk.len as f64;
            e.iters += chunk.len;
            e.sum_time += time.max(0.0);
            // Approximate per-iteration second moment from the chunk
            // mean (the per-chunk variance is unobservable).
            let per_iter = (time / n).max(0.0);
            e.sum_sq += per_iter * per_iter * n;
            e.chunks += 1;
        }
    }

    /// Current `(mu, sigma)` estimate for a worker, if any.
    pub fn estimate(&self, worker: u32) -> Option<(f64, f64)> {
        let e = self.est.get(worker as usize)?;
        e.mu().map(|mu| (mu, e.sigma()))
    }

    /// True once every iteration has been assigned.
    pub fn exhausted(&self) -> bool {
        self.state.exhausted(&self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_exactly_once;

    fn run(n: u64, p: u32, time_of: impl Fn(u32, u64) -> f64) -> (Vec<Chunk>, AfScheduler) {
        let mut s = AfScheduler::new(LoopSpec::new(n, p));
        let mut all = Vec::new();
        let mut w = 0u32;
        while let Some(chunk) = s.next_chunk(w) {
            s.record(w, chunk, time_of(w, chunk.len));
            all.push(chunk);
            w = (w + 1) % p;
        }
        (all, s)
    }

    #[test]
    fn covers_loop_exactly_once() {
        let (chunks, _) = run(10_000, 4, |_, len| len as f64);
        check_exactly_once(&chunks, 10_000).unwrap();
    }

    #[test]
    fn warmup_uses_fac2_opening() {
        let mut s = AfScheduler::new(LoopSpec::new(1024, 4));
        let c = s.next_chunk(0).unwrap();
        assert_eq!(c.len, 128);
    }

    #[test]
    fn deterministic_times_converge_to_r_over_p() {
        // With sigma = 0 the AF formula gives R/P: the second chunk of a
        // worker should be about a quarter of the remainder (P = 4).
        let mut s = AfScheduler::new(LoopSpec::new(100_000, 4));
        let first = s.next_chunk(0).unwrap();
        s.record(0, first, first.len as f64 * 2.0);
        let second = s.next_chunk(0).unwrap();
        let remaining_before = 100_000 - first.len;
        let expected = remaining_before / 4;
        let diff = second.len.abs_diff(expected);
        assert!(diff <= expected / 10 + 1, "second {} vs R/P {}", second.len, expected);
    }

    #[test]
    fn noisy_times_give_smaller_chunks_than_deterministic() {
        let (_, clean) = {
            let mut s = AfScheduler::new(LoopSpec::new(100_000, 4));
            let c = s.next_chunk(0).unwrap();
            s.record(0, c, c.len as f64);
            let next = s.next_chunk(0).unwrap();
            (c, next)
        };
        // Same history volume but alternating fast/slow chunks ->
        // nonzero sigma estimate -> more conservative chunk.
        let noisy = {
            let mut s = AfScheduler::new(LoopSpec::new(100_000, 4));
            let c1 = s.next_chunk(0).unwrap();
            s.record(0, c1, c1.len as f64 * 0.2);
            let c2 = s.next_chunk(0).unwrap();
            s.record(0, c2, c2.len as f64 * 3.0);
            s.next_chunk(0).unwrap()
        };
        assert!(
            noisy.len < clean.len,
            "noisy {} should be below deterministic {}",
            noisy.len,
            clean.len
        );
    }

    #[test]
    fn estimates_track_measured_rates() {
        let mut s = AfScheduler::new(LoopSpec::new(1_000, 2));
        assert!(s.estimate(0).is_none());
        let c = s.next_chunk(0).unwrap();
        s.record(0, c, c.len as f64 * 5.0);
        let (mu, sigma) = s.estimate(0).unwrap();
        assert!((mu - 5.0).abs() < 1e-9);
        assert!(sigma.abs() < 1e-9, "single uniform chunk has no spread");
    }

    #[test]
    fn terminates_with_unmeasured_workers() {
        // Workers that never report still get warmup chunks; the loop
        // must terminate.
        let mut s = AfScheduler::new(LoopSpec::new(500, 8));
        let mut count = 0;
        while s.next_chunk(3).is_some() {
            count += 1;
            assert!(count < 100, "must terminate");
        }
        assert!(s.exhausted());
    }
}
