//! AWF: adaptive weighted factoring (Banicescu, Velusamy & Devaprasad,
//! 2003) and its -B/-C/-D/-E refinements.
//!
//! All variants are weighted factoring where the weights are *learned*
//! from measured execution:
//!
//! * **AWF**: weights updated once per *time step* (we treat each batch
//!   as a time step, equivalent to -B for a single loop).
//! * **AWF-B**: weights updated at **b**atch boundaries, from cumulative
//!   compute time per iteration.
//! * **AWF-C**: weights updated at every **c**hunk completion.
//! * **AWF-D**: like -B, but the recorded time also includes the
//!   scheduling **d**elay (overhead) of obtaining the chunk.
//! * **AWF-E**: like -C, including the scheduling overhead.

use crate::chunk::{Chunk, LoopSpec, SchedState};
use crate::weighted::normalize_weights;

/// Which AWF refinement to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AwfVariant {
    /// Batch-boundary updates, compute time only.
    B,
    /// Chunk-boundary updates, compute time only.
    C,
    /// Batch-boundary updates, compute + scheduling time.
    D,
    /// Chunk-boundary updates, compute + scheduling time.
    E,
}

impl AwfVariant {
    /// All variants.
    pub const ALL: [AwfVariant; 4] = [AwfVariant::B, AwfVariant::C, AwfVariant::D, AwfVariant::E];

    /// Display name, e.g. `"AWF-B"`.
    pub fn name(&self) -> &'static str {
        match self {
            AwfVariant::B => "AWF-B",
            AwfVariant::C => "AWF-C",
            AwfVariant::D => "AWF-D",
            AwfVariant::E => "AWF-E",
        }
    }

    fn updates_per_chunk(&self) -> bool {
        matches!(self, AwfVariant::C | AwfVariant::E)
    }

    fn includes_overhead(&self) -> bool {
        matches!(self, AwfVariant::D | AwfVariant::E)
    }
}

/// A worker's completion report for one chunk.
#[derive(Clone, Copy, Debug)]
pub struct WorkerReport {
    /// Reporting worker id.
    pub worker: u32,
    /// The chunk that was completed.
    pub chunk: Chunk,
    /// Time spent executing the chunk's iterations.
    pub compute_time: f64,
    /// Time spent obtaining the chunk (scheduling overhead).
    pub sched_time: f64,
}

#[derive(Clone, Copy, Debug, Default)]
struct WorkerHist {
    iters: u64,
    time: f64,
}

/// Stateful AWF scheduler. Drive it with [`AwfScheduler::next_chunk`] and
/// [`AwfScheduler::record`].
#[derive(Clone, Debug)]
pub struct AwfScheduler {
    spec: LoopSpec,
    variant: AwfVariant,
    state: SchedState,
    weights: Vec<f64>,
    hist: Vec<WorkerHist>,
    chunks_in_batch: u64,
    pending_updates: bool,
}

impl AwfScheduler {
    /// New scheduler for a loop over `spec.n_workers` workers, all
    /// initially weighted equally.
    pub fn new(spec: LoopSpec, variant: AwfVariant) -> Self {
        let p = spec.p() as usize;
        Self {
            spec,
            variant,
            state: SchedState::START,
            weights: vec![1.0; p],
            hist: vec![WorkerHist::default(); p],
            chunks_in_batch: 0,
            pending_updates: false,
        }
    }

    /// Current (mean-normalised) weight of each worker.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Scheduling state (step / scheduled counters).
    pub fn state(&self) -> SchedState {
        self.state
    }

    /// Obtain the next chunk for `worker`, or `None` when the loop is
    /// exhausted.
    pub fn next_chunk(&mut self, worker: u32) -> Option<Chunk> {
        if self.state.exhausted(&self.spec) {
            return None;
        }
        let p = self.spec.p();
        // Batch boundary: refresh weights for -B/-D (for -C/-E they are
        // refreshed on every record()).
        if self.chunks_in_batch >= p {
            self.chunks_in_batch = 0;
            if !self.variant.updates_per_chunk() && self.pending_updates {
                self.refresh_weights();
                self.pending_updates = false;
            }
        }
        let base = crate::nonadaptive::Factoring2::chunk_at_step(&self.spec, self.state.step);
        let w = self.weights.get(worker as usize).copied().unwrap_or(1.0);
        let size = ((base as f64 * w).ceil() as u64).max(1);
        self.chunks_in_batch += 1;
        self.state.take(&self.spec, size)
    }

    /// Record a completed chunk; may update weights depending on variant.
    pub fn record(&mut self, report: WorkerReport) {
        let idx = report.worker as usize;
        if idx >= self.hist.len() {
            return;
        }
        let time = if self.variant.includes_overhead() {
            report.compute_time + report.sched_time
        } else {
            report.compute_time
        };
        self.hist[idx].iters += report.chunk.len;
        self.hist[idx].time += time.max(0.0);
        if self.variant.updates_per_chunk() {
            self.refresh_weights();
        } else {
            self.pending_updates = true;
        }
    }

    /// Recompute weights from the measured iteration rates: a worker's
    /// raw score is `iters / time` (higher is faster); workers without
    /// measurements keep the mean rate.
    fn refresh_weights(&mut self) {
        let rates: Vec<f64> = self
            .hist
            .iter()
            .map(|h| if h.time > 0.0 && h.iters > 0 { h.iters as f64 / h.time } else { 0.0 })
            .collect();
        let measured: Vec<f64> = rates.iter().copied().filter(|r| *r > 0.0).collect();
        if measured.is_empty() {
            return;
        }
        let mean_rate = measured.iter().sum::<f64>() / measured.len() as f64;
        let scores: Vec<f64> = rates.iter().map(|&r| if r > 0.0 { r } else { mean_rate }).collect();
        self.weights = normalize_weights(&scores);
    }

    /// True when every iteration has been assigned.
    pub fn exhausted(&self) -> bool {
        self.state.exhausted(&self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_exactly_once;

    fn run_round_robin(variant: AwfVariant, n: u64, p: u32, slow_worker: u32) -> Vec<f64> {
        let spec = LoopSpec::new(n, p);
        let mut s = AwfScheduler::new(spec, variant);
        let mut all = Vec::new();
        let mut w = 0u32;
        while let Some(chunk) = s.next_chunk(w) {
            // slow_worker takes 4x time per iteration.
            let t = chunk.len as f64 * if w == slow_worker { 4.0 } else { 1.0 };
            s.record(WorkerReport { worker: w, chunk, compute_time: t, sched_time: 0.1 });
            all.push(chunk);
            w = (w + 1) % p;
        }
        check_exactly_once(&all, n).unwrap();
        s.weights().to_vec()
    }

    #[test]
    fn covers_loop_all_variants() {
        for v in AwfVariant::ALL {
            let w = run_round_robin(v, 5000, 4, 2);
            assert_eq!(w.len(), 4);
        }
    }

    #[test]
    fn slow_worker_gets_lower_weight() {
        for v in AwfVariant::ALL {
            let w = run_round_robin(v, 5000, 4, 2);
            for i in [0usize, 1, 3] {
                assert!(
                    w[2] < w[i],
                    "{}: slow worker weight {} not below worker {i} weight {}",
                    v.name(),
                    w[2],
                    w[i]
                );
            }
        }
    }

    #[test]
    fn weights_stay_normalised() {
        let w = run_round_robin(AwfVariant::C, 10_000, 8, 0);
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 1.0).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn initial_weights_equal() {
        let s = AwfScheduler::new(LoopSpec::new(100, 4), AwfVariant::B);
        assert_eq!(s.weights(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn first_chunk_matches_fac2() {
        let spec = LoopSpec::new(1024, 4);
        let mut s = AwfScheduler::new(spec, AwfVariant::B);
        let c = s.next_chunk(0).unwrap();
        assert_eq!(c.len, 128);
    }

    #[test]
    fn record_out_of_range_worker_is_ignored() {
        let spec = LoopSpec::new(100, 2);
        let mut s = AwfScheduler::new(spec, AwfVariant::C);
        let c = s.next_chunk(0).unwrap();
        s.record(WorkerReport { worker: 99, chunk: c, compute_time: 1.0, sched_time: 0.0 });
        assert_eq!(s.weights(), &[1.0, 1.0]);
    }

    #[test]
    fn variant_names() {
        assert_eq!(AwfVariant::B.name(), "AWF-B");
        assert_eq!(AwfVariant::E.name(), "AWF-E");
    }

    #[test]
    fn exhausted_after_full_schedule() {
        let spec = LoopSpec::new(10, 2);
        let mut s = AwfScheduler::new(spec, AwfVariant::B);
        while s.next_chunk(0).is_some() {}
        assert!(s.exhausted());
        assert!(s.next_chunk(1).is_none());
    }
}
