//! Schedule analysis: exact chunk-profile enumeration and theoretical
//! scheduling-step bounds per technique.
//!
//! The number of scheduling steps is the quantity that multiplies every
//! per-step overhead (an RMA round-trip, an `MPI_Win_lock` cycle, an
//! OpenMP dispatch), so the DLS literature characterises techniques by
//! it: STATIC needs at most `P` steps, SS exactly `N`, GSS `O(P log N)`
//! and the factoring family `O(P log(N/P))`. [`step_bound`] encodes
//! those bounds; the property tests verify every enumeration stays
//! within them.

use crate::chunk::LoopSpec;
use crate::sequence::ChunkSequence;
use crate::technique::{Kind, Technique};

/// Exact profile of a technique's schedule for one loop, computed by
/// enumeration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleProfile {
    /// Number of scheduling steps (chunks handed out).
    pub steps: u64,
    /// Smallest chunk.
    pub min_chunk: u64,
    /// Largest chunk.
    pub max_chunk: u64,
    /// Mean chunk size.
    pub mean_chunk: f64,
}

impl ScheduleProfile {
    /// Total scheduling overhead if every step costs `h` time units.
    pub fn overhead(&self, h: f64) -> f64 {
        self.steps as f64 * h
    }
}

/// Enumerate the schedule and summarise it.
pub fn profile(spec: &LoopSpec, technique: &Technique) -> ScheduleProfile {
    let mut steps = 0u64;
    let mut min_chunk = u64::MAX;
    let mut max_chunk = 0u64;
    for c in ChunkSequence::new(spec, technique) {
        steps = steps.saturating_add(1);
        min_chunk = min_chunk.min(c.len);
        max_chunk = max_chunk.max(c.len);
    }
    if steps == 0 {
        min_chunk = 0;
    }
    ScheduleProfile {
        steps,
        min_chunk,
        max_chunk,
        mean_chunk: if steps > 0 { spec.n_iters as f64 / steps as f64 } else { 0.0 },
    }
}

/// A proven upper bound on the number of scheduling steps a technique
/// needs for a loop of `n` iterations over `p` workers (with default
/// technique parameters). `None` when no simple closed form exists
/// (RND's step count is distribution-dependent; FAC/FSC depend on the
/// loop statistics).
pub fn step_bound(kind: Kind, n: u64, p: u32) -> Option<u64> {
    if n == 0 {
        return Some(0);
    }
    let pw = u64::from(p.max(1));
    match kind {
        Kind::STATIC => Some(pw.min(n)),
        Kind::SS => Some(n),
        Kind::GSS => {
            // Each step removes at least a 1/p fraction (ceil), so after
            // p*ln(n) steps at most ~1 iteration remains; add p slack
            // for the all-ones tail. p*ln(n) < 2^32 * 45 fits u64 and
            // the f64 -> u64 `as` cast saturates.
            let ln_n = (n as f64).ln().max(1.0);
            #[allow(clippy::cast_possible_truncation)]
            let log_term = (pw as f64 * ln_n).ceil() as u64;
            Some(log_term.saturating_add(pw.saturating_mul(2)).saturating_add(1))
        }
        Kind::TSS => {
            // By construction S = ceil(2N / (F + L)) planned steps; the
            // floor interpolation can lose up to one iteration per step,
            // each served by at most one extra unit-sized step. 2N can
            // exceed u64 near n = u64::MAX, so the quotient is taken in
            // u128 (F + 1 >= 2 brings it back under 2^64).
            let f = n.div_ceil(pw.saturating_mul(2)).max(1);
            let s = u64::try_from(
                u128::from(n).saturating_mul(2).div_ceil(u128::from(f).saturating_add(1)),
            )
            .unwrap_or(u64::MAX);
            Some(s.saturating_mul(2).saturating_add(2))
        }
        Kind::FAC2 | Kind::WF => {
            // Each batch of p chunks halves the remainder: at most
            // ceil(log2(n)) + 1 batches before chunks clamp to 1, plus
            // the tail of ones (at most p per final unit batch).
            let log2 = u64::from(64u32.saturating_sub(n.saturating_sub(1).leading_zeros()))
                .saturating_add(1);
            Some(
                pw.saturating_mul(log2.saturating_add(2))
                    .saturating_add(n.min(pw.saturating_mul(2))),
            )
        }
        Kind::TFSS => {
            // Never more steps than TSS plus one batch of slack.
            step_bound(Kind::TSS, n, p).map(|s| s.saturating_add(pw))
        }
        Kind::FAC | Kind::FSC | Kind::RND => None,
    }
}

/// Rank the paper's techniques by enumerated step count for a loop —
/// the "scheduling-overhead spectrum" (STATIC least, SS most).
pub fn overhead_spectrum(spec: &LoopSpec) -> Vec<(Kind, u64)> {
    let mut rows: Vec<(Kind, u64)> =
        Kind::PAPER.iter().map(|&k| (k, profile(spec, &Technique::from_kind(k)).steps)).collect();
    rows.sort_by_key(|&(_, steps)| steps);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_static() {
        let spec = LoopSpec::new(100, 4);
        let p = profile(&spec, &Technique::static_());
        assert_eq!(p.steps, 4);
        assert_eq!(p.min_chunk, 25);
        assert_eq!(p.max_chunk, 25);
        assert_eq!(p.mean_chunk, 25.0);
    }

    #[test]
    fn profile_empty_loop() {
        let spec = LoopSpec::new(0, 4);
        let p = profile(&spec, &Technique::gss());
        assert_eq!(p.steps, 0);
        assert_eq!(p.min_chunk, 0);
        assert_eq!(p.overhead(10.0), 0.0);
    }

    #[test]
    fn bounds_hold_for_sampled_loops() {
        for kind in [Kind::STATIC, Kind::SS, Kind::GSS, Kind::TSS, Kind::FAC2, Kind::TFSS, Kind::WF]
        {
            for (n, p) in [(1u64, 1u32), (100, 4), (1000, 16), (99_999, 7), (4096, 64)] {
                let spec = LoopSpec::new(n, p);
                let steps = profile(&spec, &Technique::from_kind(kind)).steps;
                let bound = step_bound(kind, n, p).unwrap();
                assert!(steps <= bound, "{kind}: steps {steps} > bound {bound} (n={n} p={p})");
            }
        }
    }

    #[test]
    fn spectrum_orders_static_before_ss() {
        let spec = LoopSpec::new(10_000, 16);
        let spectrum = overhead_spectrum(&spec);
        assert_eq!(spectrum.first().unwrap().0, Kind::STATIC);
        assert_eq!(spectrum.last().unwrap().0, Kind::SS);
        // Monotone non-decreasing step counts.
        assert!(spectrum.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn no_bound_for_statistics_dependent_kinds() {
        assert!(step_bound(Kind::FAC, 100, 4).is_none());
        assert!(step_bound(Kind::RND, 100, 4).is_none());
        assert!(step_bound(Kind::FSC, 100, 4).is_none());
    }

    #[test]
    fn overhead_scales_with_steps() {
        let spec = LoopSpec::new(1000, 4);
        let ss = profile(&spec, &Technique::ss());
        assert_eq!(ss.overhead(2.0), 2000.0);
    }
}
