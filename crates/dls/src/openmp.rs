//! OpenMP `schedule` clause semantics and the paper's Table 1 mapping
//! between DLS techniques and OpenMP scheduling options.
//!
//! The intra-node baseline of the paper executes chunks with the Intel
//! OpenMP runtime, which supports `static`, `dynamic`, and `guided`. This
//! module models those three dispatchers so the MPI+OpenMP executor (in
//! the `hier` crate) reproduces their chunking exactly.

use crate::chunk::{LoopSpec, SchedState};
use crate::nonadaptive::{Guided, SelfScheduling, StaticChunking};
use crate::technique::{ChunkCalculator, Kind, Technique, WorkerCtx};
use std::fmt;

/// An OpenMP `schedule(kind[, chunk])` clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OmpSchedule {
    /// `schedule(static)` (block) or `schedule(static, k)` (block-cyclic;
    /// we model the `k = None` block form the paper uses).
    Static {
        /// Optional chunk granularity.
        chunk: Option<u64>,
    },
    /// `schedule(dynamic, k)`; `k` defaults to 1.
    Dynamic {
        /// Chunk granularity (defaults to 1).
        chunk: u64,
    },
    /// `schedule(guided, k)`; `k` defaults to 1 and acts as the minimum
    /// chunk size.
    Guided {
        /// Minimum chunk size (defaults to 1).
        chunk: u64,
    },
}

impl OmpSchedule {
    /// `schedule(static)`.
    pub fn static_block() -> Self {
        OmpSchedule::Static { chunk: None }
    }

    /// `schedule(dynamic, 1)`.
    pub fn dynamic1() -> Self {
        OmpSchedule::Dynamic { chunk: 1 }
    }

    /// `schedule(guided, 1)`.
    pub fn guided1() -> Self {
        OmpSchedule::Guided { chunk: 1 }
    }

    /// The equivalent DLS technique (the inverse of Table 1).
    pub fn to_technique(self) -> Technique {
        match self {
            OmpSchedule::Static { chunk: None } => Technique::Static(StaticChunking),
            OmpSchedule::Static { chunk: Some(k) } => {
                // Block-cyclic static behaves like fixed-size chunking for
                // coverage purposes.
                Technique::Fsc(crate::nonadaptive::FixedSizeChunking::with_chunk(k))
            }
            OmpSchedule::Dynamic { chunk: 1 } => Technique::Ss(SelfScheduling),
            OmpSchedule::Dynamic { chunk: k } => {
                Technique::Fsc(crate::nonadaptive::FixedSizeChunking::with_chunk(k))
            }
            OmpSchedule::Guided { chunk: k } => Technique::Gss(Guided::with_min_chunk(k)),
        }
    }

    /// Chunk size this clause would dispatch at the given state — used by
    /// the OpenMP team model in the `hier` crate.
    pub fn chunk_size(&self, spec: &LoopSpec, state: SchedState) -> u64 {
        self.to_technique().chunk_size(spec, state, WorkerCtx::default())
    }
}

impl fmt::Display for OmpSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmpSchedule::Static { chunk: None } => write!(f, "schedule(static)"),
            OmpSchedule::Static { chunk: Some(k) } => write!(f, "schedule(static,{k})"),
            OmpSchedule::Dynamic { chunk } => write!(f, "schedule(dynamic,{chunk})"),
            OmpSchedule::Guided { chunk } => write!(f, "schedule(guided,{chunk})"),
        }
    }
}

/// A row of the paper's Table 1: a DLS technique and the OpenMP
/// `schedule` clause that implements it, if any.
#[derive(Clone, Copy, Debug)]
pub struct Table1Row {
    /// DLS technique.
    pub technique: Kind,
    /// Equivalent OpenMP schedule clause, `None` when the OpenMP standard
    /// offers no equivalent (TSS, FAC2, ...).
    pub omp: Option<OmpSchedule>,
}

/// The paper's Table 1: mapping between the DLS techniques and the OpenMP
/// `schedule` clause options. Techniques without an OpenMP equivalent are
/// included with `omp = None`, which is exactly the limitation the
/// MPI+MPI approach removes.
pub fn table1() -> Vec<Table1Row> {
    vec![
        Table1Row { technique: Kind::STATIC, omp: Some(OmpSchedule::static_block()) },
        Table1Row { technique: Kind::SS, omp: Some(OmpSchedule::dynamic1()) },
        Table1Row { technique: Kind::GSS, omp: Some(OmpSchedule::guided1()) },
        Table1Row { technique: Kind::TSS, omp: None },
        Table1Row { technique: Kind::FAC2, omp: None },
    ]
}

/// The OpenMP clause implementing a DLS technique, if the (Intel) OpenMP
/// runtime the paper uses supports one.
pub fn omp_equivalent(kind: Kind) -> Option<OmpSchedule> {
    match kind {
        Kind::STATIC => Some(OmpSchedule::static_block()),
        Kind::SS => Some(OmpSchedule::dynamic1()),
        Kind::GSS => Some(OmpSchedule::guided1()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::schedule_all;

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert_eq!(t.len(), 5);
        assert_eq!(t[0].omp, Some(OmpSchedule::Static { chunk: None }));
        assert_eq!(t[1].omp, Some(OmpSchedule::Dynamic { chunk: 1 }));
        assert_eq!(t[2].omp, Some(OmpSchedule::Guided { chunk: 1 }));
        assert!(t[3].omp.is_none()); // TSS
        assert!(t[4].omp.is_none()); // FAC2
    }

    #[test]
    fn clauses_chunk_like_their_technique() {
        let spec = LoopSpec::new(1000, 4);
        // guided,1 == GSS
        let via_clause: Vec<_> = schedule_all(&spec, &OmpSchedule::guided1().to_technique());
        let via_gss: Vec<_> = schedule_all(&spec, &Technique::gss());
        assert_eq!(
            via_clause.iter().map(|c| c.len).collect::<Vec<_>>(),
            via_gss.iter().map(|c| c.len).collect::<Vec<_>>()
        );
        // dynamic,1 == SS
        let dyn1 = schedule_all(&spec, &OmpSchedule::dynamic1().to_technique());
        assert_eq!(dyn1.len(), 1000);
        // static == STATIC
        let st = schedule_all(&spec, &OmpSchedule::static_block().to_technique());
        assert_eq!(st.len(), 4);
    }

    #[test]
    fn dynamic_k_chunks_fixed() {
        let spec = LoopSpec::new(100, 4);
        let chunks = schedule_all(&spec, &OmpSchedule::Dynamic { chunk: 8 }.to_technique());
        for c in &chunks[..chunks.len() - 1] {
            assert_eq!(c.len, 8);
        }
    }

    #[test]
    fn guided_k_min_chunk() {
        let spec = LoopSpec::new(100, 4);
        let chunks = schedule_all(&spec, &OmpSchedule::Guided { chunk: 9 }.to_technique());
        for c in &chunks[..chunks.len() - 1] {
            assert!(c.len >= 9);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(OmpSchedule::static_block().to_string(), "schedule(static)");
        assert_eq!(OmpSchedule::dynamic1().to_string(), "schedule(dynamic,1)");
        assert_eq!(OmpSchedule::Guided { chunk: 4 }.to_string(), "schedule(guided,4)");
        assert_eq!(OmpSchedule::Static { chunk: Some(2) }.to_string(), "schedule(static,2)");
    }

    #[test]
    fn omp_equivalent_only_for_intel_supported() {
        assert!(omp_equivalent(Kind::STATIC).is_some());
        assert!(omp_equivalent(Kind::SS).is_some());
        assert!(omp_equivalent(Kind::GSS).is_some());
        assert!(omp_equivalent(Kind::TSS).is_none());
        assert!(omp_equivalent(Kind::FAC2).is_none());
        assert!(omp_equivalent(Kind::TFSS).is_none());
    }
}
