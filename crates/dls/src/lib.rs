//! # dls — Dynamic Loop Self-Scheduling techniques
//!
//! This crate implements the dynamic loop self-scheduling (DLS) techniques
//! evaluated in *"Hierarchical Dynamic Loop Self-Scheduling on
//! Distributed-Memory Systems Using an MPI+MPI Approach"* (Eleliemy &
//! Ciorba, 2019), in the **distributed chunk-calculation formulation**
//! introduced by the same authors (PDP 2019): the size of the chunk handed
//! out at scheduling step `s` is a pure function of
//!
//! * the loop specification ([`LoopSpec`]: total iterations `n`, number of
//!   workers `p`, technique parameters), and
//! * the shared scheduling state ([`SchedState`]: the latest scheduling
//!   step and the total number of already-scheduled iterations).
//!
//! Because the function is pure, *any* worker that atomically advances the
//! shared state can compute its own chunk without a master process — this
//! is what makes the techniques usable over an MPI RMA window or an MPI-3
//! shared-memory window (see the `mpisim` and `hier` crates).
//!
//! ## Techniques
//!
//! | Name | Kind | Origin |
//! |---|---|---|
//! | `STATIC` | static | classic block scheduling |
//! | `SS` | dynamic, non-adaptive | Tang & Yew, 1986 |
//! | `GSS` | dynamic, non-adaptive | Polychronopoulos & Kuck, 1987 |
//! | `TSS` | dynamic, non-adaptive | Tzen & Ni, 1993 |
//! | `FAC` | dynamic, non-adaptive | Flynn Hummel et al., 1992 |
//! | `FAC2` | dynamic, non-adaptive | practical factoring variant |
//! | `TFSS` | dynamic, non-adaptive | Chronopoulos et al., 2001 |
//! | `FSC` | dynamic, non-adaptive | fixed-size chunking (Kruskal & Weiss) |
//! | `RND` | dynamic, non-adaptive | random chunk sizes |
//! | `WF` | dynamic, weighted | Flynn Hummel et al., 1996 |
//! | `AWF`(-B,-C,-D,-E) | dynamic, adaptive | Banicescu et al., 2003 |
//!
//! ## Quick example
//!
//! ```
//! use dls::{LoopSpec, Technique, sequence::ChunkSequence};
//!
//! let spec = LoopSpec::new(1000, 4);
//! let gss = Technique::gss();
//! let chunks: Vec<_> = ChunkSequence::new(&spec, &gss).collect();
//! // GSS chunks decrease and cover [0, 1000) exactly.
//! assert_eq!(chunks.iter().map(|c| c.len).sum::<u64>(), 1000);
//! assert!(chunks.windows(2).all(|w| w[0].len >= w[1].len));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod adaptive;
// The chunk formulas are the arithmetic the whole system trusts: a wrapped
// multiplication or truncating cast here silently mis-partitions the loop.
// Deny overflow-prone operators and narrowing casts in the formula modules
// (production code; tests keep plain arithmetic); every remaining `as` cast
// is audited and carries an `#[allow]` with the invariant that makes it
// safe. See `crates/dls/tests/extreme.rs` for the near-`u64::MAX` sweep.
#[cfg_attr(not(test), deny(clippy::arithmetic_side_effects, clippy::cast_possible_truncation))]
pub mod analysis;
#[cfg_attr(not(test), deny(clippy::arithmetic_side_effects, clippy::cast_possible_truncation))]
pub mod chunk;
#[cfg_attr(not(test), deny(clippy::arithmetic_side_effects, clippy::cast_possible_truncation))]
pub mod nonadaptive;
pub mod openmp;
pub mod sequence;
pub mod single_counter;
#[cfg_attr(not(test), deny(clippy::arithmetic_side_effects, clippy::cast_possible_truncation))]
pub mod switchable;
pub mod technique;
#[cfg_attr(not(test), deny(clippy::arithmetic_side_effects, clippy::cast_possible_truncation))]
pub mod verify;
#[cfg_attr(not(test), deny(clippy::arithmetic_side_effects, clippy::cast_possible_truncation))]
pub mod weighted;

pub use chunk::{Chunk, LoopSpec, SchedState};
pub use switchable::{Decision, SchedKind, SwitchReason, SwitchableScheduler};
pub use technique::{ChunkCalculator, Kind, Technique};
