//! The [`ChunkCalculator`] trait, the [`Kind`] enumeration and the
//! [`Technique`] enum that provides static dispatch over every
//! non-adaptive technique in this crate.

use crate::chunk::{LoopSpec, SchedState};
use crate::nonadaptive::{
    Factoring, Factoring2, FixedSizeChunking, Guided, RandomChunking, SelfScheduling,
    StaticChunking, Trapezoid, TrapezoidFactoring,
};
use crate::weighted::WeightedFactoring;
use std::fmt;
use std::str::FromStr;

/// Per-request context: which worker is asking and its relative weight.
///
/// Non-weighted techniques ignore both fields. Weights are normalised so
/// that the *mean* weight across workers is 1.0 (a weight of 2.0 means
/// "twice as fast as average").
#[derive(Clone, Copy, Debug)]
pub struct WorkerCtx {
    /// Requesting worker id, `0..p`.
    pub worker: u32,
    /// Relative speed weight of the requesting worker (mean-normalised).
    pub weight: f64,
}

impl Default for WorkerCtx {
    fn default() -> Self {
        Self { worker: 0, weight: 1.0 }
    }
}

impl WorkerCtx {
    /// Context for worker `w` with unit weight.
    pub fn worker(w: u32) -> Self {
        Self { worker: w, weight: 1.0 }
    }
}

/// A dynamic loop self-scheduling technique in the distributed
/// chunk-calculation formulation.
///
/// Implementations must be *pure*: the returned size may depend only on
/// `spec`, `state` and `ctx`. This is what allows any worker to compute
/// its own chunk after atomically advancing the shared state.
pub trait ChunkCalculator: Send + Sync {
    /// Size of the chunk to hand out at `state.step`, given that
    /// `state.scheduled` iterations are already assigned.
    ///
    /// The returned value may exceed the remaining iterations; callers
    /// clamp via [`SchedState::take`]. Must be at least 1 whenever
    /// iterations remain.
    fn chunk_size(&self, spec: &LoopSpec, state: SchedState, ctx: WorkerCtx) -> u64;

    /// Short upper-case display name (e.g. `"GSS"`).
    fn name(&self) -> &'static str;

    /// False only for `STATIC`, whose whole schedule is fixed up front.
    fn is_dynamic(&self) -> bool {
        true
    }
}

/// Identifies a technique without carrying its parameters; used for
/// parsing CLI arguments and labelling results.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(clippy::upper_case_acronyms)]
pub enum Kind {
    /// Fully static block scheduling.
    STATIC,
    /// Pure self-scheduling, one iteration per request.
    SS,
    /// Guided self-scheduling.
    GSS,
    /// Trapezoid self-scheduling.
    TSS,
    /// Factoring (probabilistic, needs `mu`/`sigma`).
    FAC,
    /// Practical factoring: half the remainder per batch.
    FAC2,
    /// Trapezoid factoring self-scheduling.
    TFSS,
    /// Fixed-size chunking (Kruskal & Weiss).
    FSC,
    /// Random chunk sizes.
    RND,
    /// Weighted factoring.
    WF,
}

impl Kind {
    /// All kinds, in spectrum order from least to most scheduling
    /// overhead-tolerant.
    pub const ALL: [Kind; 10] = [
        Kind::STATIC,
        Kind::FSC,
        Kind::GSS,
        Kind::TSS,
        Kind::FAC,
        Kind::FAC2,
        Kind::TFSS,
        Kind::WF,
        Kind::RND,
        Kind::SS,
    ];

    /// The four techniques the paper evaluates at each level, plus STATIC.
    pub const PAPER: [Kind; 5] = [Kind::STATIC, Kind::SS, Kind::GSS, Kind::TSS, Kind::FAC2];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Kind::STATIC => "STATIC",
            Kind::SS => "SS",
            Kind::GSS => "GSS",
            Kind::TSS => "TSS",
            Kind::FAC => "FAC",
            Kind::FAC2 => "FAC2",
            Kind::TFSS => "TFSS",
            Kind::FSC => "FSC",
            Kind::RND => "RND",
            Kind::WF => "WF",
        }
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Kind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "STATIC" => Ok(Kind::STATIC),
            "SS" => Ok(Kind::SS),
            "GSS" => Ok(Kind::GSS),
            "TSS" => Ok(Kind::TSS),
            "FAC" => Ok(Kind::FAC),
            "FAC2" => Ok(Kind::FAC2),
            "TFSS" => Ok(Kind::TFSS),
            "FSC" => Ok(Kind::FSC),
            "RND" => Ok(Kind::RND),
            "WF" => Ok(Kind::WF),
            other => Err(format!("unknown DLS technique: {other:?}")),
        }
    }
}

/// Enum-dispatched technique carrying its parameters. Cheap to copy and
/// `Send + Sync`, so a single value can serve every worker.
#[derive(Clone, Copy, Debug)]
pub enum Technique {
    /// See [`StaticChunking`].
    Static(StaticChunking),
    /// See [`SelfScheduling`].
    Ss(SelfScheduling),
    /// See [`Guided`].
    Gss(Guided),
    /// See [`Trapezoid`].
    Tss(Trapezoid),
    /// See [`Factoring`].
    Fac(Factoring),
    /// See [`Factoring2`].
    Fac2(Factoring2),
    /// See [`TrapezoidFactoring`].
    Tfss(TrapezoidFactoring),
    /// See [`FixedSizeChunking`].
    Fsc(FixedSizeChunking),
    /// See [`RandomChunking`].
    Rnd(RandomChunking),
    /// See [`WeightedFactoring`].
    Wf(WeightedFactoring),
}

impl Technique {
    /// STATIC with default parameters.
    pub fn static_() -> Self {
        Technique::Static(StaticChunking)
    }

    /// SS (one iteration per request).
    pub fn ss() -> Self {
        Technique::Ss(SelfScheduling)
    }

    /// GSS with a minimum chunk of 1.
    pub fn gss() -> Self {
        Technique::Gss(Guided::default())
    }

    /// TSS with the Tzen & Ni default first/last chunk sizes.
    pub fn tss() -> Self {
        Technique::Tss(Trapezoid::default())
    }

    /// FAC (consults `mu`/`sigma` from the [`LoopSpec`]).
    pub fn fac() -> Self {
        Technique::Fac(Factoring)
    }

    /// FAC2 (half the remainder per batch).
    pub fn fac2() -> Self {
        Technique::Fac2(Factoring2)
    }

    /// TFSS.
    pub fn tfss() -> Self {
        Technique::Tfss(TrapezoidFactoring::default())
    }

    /// FSC (consults `mu`/`sigma`/`h` from the [`LoopSpec`]).
    pub fn fsc() -> Self {
        Technique::Fsc(FixedSizeChunking::default())
    }

    /// RND with the given seed.
    pub fn rnd(seed: u64) -> Self {
        Technique::Rnd(RandomChunking::new(seed))
    }

    /// WF (weighted factoring; weights come from [`WorkerCtx`]).
    pub fn wf() -> Self {
        Technique::Wf(WeightedFactoring)
    }

    /// Build a technique with default parameters from its [`Kind`].
    pub fn from_kind(kind: Kind) -> Self {
        match kind {
            Kind::STATIC => Self::static_(),
            Kind::SS => Self::ss(),
            Kind::GSS => Self::gss(),
            Kind::TSS => Self::tss(),
            Kind::FAC => Self::fac(),
            Kind::FAC2 => Self::fac2(),
            Kind::TFSS => Self::tfss(),
            Kind::FSC => Self::fsc(),
            Kind::RND => Self::rnd(0x5eed),
            Kind::WF => Self::wf(),
        }
    }

    /// The [`Kind`] of this technique.
    pub fn kind(&self) -> Kind {
        match self {
            Technique::Static(_) => Kind::STATIC,
            Technique::Ss(_) => Kind::SS,
            Technique::Gss(_) => Kind::GSS,
            Technique::Tss(_) => Kind::TSS,
            Technique::Fac(_) => Kind::FAC,
            Technique::Fac2(_) => Kind::FAC2,
            Technique::Tfss(_) => Kind::TFSS,
            Technique::Fsc(_) => Kind::FSC,
            Technique::Rnd(_) => Kind::RND,
            Technique::Wf(_) => Kind::WF,
        }
    }
}

impl ChunkCalculator for Technique {
    #[inline]
    fn chunk_size(&self, spec: &LoopSpec, state: SchedState, ctx: WorkerCtx) -> u64 {
        match self {
            Technique::Static(t) => t.chunk_size(spec, state, ctx),
            Technique::Ss(t) => t.chunk_size(spec, state, ctx),
            Technique::Gss(t) => t.chunk_size(spec, state, ctx),
            Technique::Tss(t) => t.chunk_size(spec, state, ctx),
            Technique::Fac(t) => t.chunk_size(spec, state, ctx),
            Technique::Fac2(t) => t.chunk_size(spec, state, ctx),
            Technique::Tfss(t) => t.chunk_size(spec, state, ctx),
            Technique::Fsc(t) => t.chunk_size(spec, state, ctx),
            Technique::Rnd(t) => t.chunk_size(spec, state, ctx),
            Technique::Wf(t) => t.chunk_size(spec, state, ctx),
        }
    }

    fn name(&self) -> &'static str {
        self.kind().name()
    }

    fn is_dynamic(&self) -> bool {
        !matches!(self, Technique::Static(_))
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Technique {
    type Err = String;

    /// Parse a technique with optional parameters, for CLI tools:
    ///
    /// * `"GSS"` — any [`Kind`] name, default parameters;
    /// * `"GSS:4"` — guided with minimum chunk 4;
    /// * `"TSS:100:2"` — trapezoid with first/last chunk sizes;
    /// * `"FSC:64"` — fixed chunks of 64;
    /// * `"RND:1234"` — random with seed.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or_default();
        let kind: Kind = head.parse()?;
        let args: Vec<&str> = parts.collect();
        let num = |i: usize| -> Result<u64, String> {
            args.get(i)
                .ok_or_else(|| format!("{kind}: missing parameter {i}"))?
                .parse::<u64>()
                .map_err(|e| format!("{kind}: bad parameter {:?}: {e}", args[i]))
        };
        match (kind, args.len()) {
            (_, 0) => Ok(Technique::from_kind(kind)),
            (Kind::GSS, 1) => Ok(Technique::Gss(Guided::with_min_chunk(num(0)?))),
            (Kind::TSS, 2) => Ok(Technique::Tss(Trapezoid::with_bounds(num(0)?, num(1)?))),
            (Kind::FSC, 1) => Ok(Technique::Fsc(FixedSizeChunking::with_chunk(num(0)?))),
            (Kind::RND, 1) => Ok(Technique::Rnd(RandomChunking::new(num(0)?))),
            (Kind::RND, 3) => {
                Ok(Technique::Rnd(RandomChunking::with_range(num(0)?, num(1)?, num(2)?)))
            }
            _ => Err(format!("{kind} does not take {} parameter(s)", args.len())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip_via_str() {
        for kind in Kind::ALL {
            let parsed: Kind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("nope".parse::<Kind>().is_err());
    }

    #[test]
    fn kind_parse_is_case_insensitive() {
        assert_eq!("gss".parse::<Kind>().unwrap(), Kind::GSS);
        assert_eq!("fac2".parse::<Kind>().unwrap(), Kind::FAC2);
    }

    #[test]
    fn technique_from_kind_roundtrip() {
        for kind in Kind::ALL {
            assert_eq!(Technique::from_kind(kind).kind(), kind);
        }
    }

    #[test]
    fn only_static_is_not_dynamic() {
        for kind in Kind::ALL {
            let t = Technique::from_kind(kind);
            assert_eq!(t.is_dynamic(), kind != Kind::STATIC, "{kind}");
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Technique::gss().to_string(), "GSS");
        assert_eq!(Kind::FAC2.to_string(), "FAC2");
    }

    #[test]
    fn technique_parsing_with_parameters() {
        let t: Technique = "gss:8".parse().unwrap();
        assert!(matches!(t, Technique::Gss(Guided { min_chunk: 8 })));
        let t: Technique = "TSS:100:2".parse().unwrap();
        assert!(matches!(t, Technique::Tss(Trapezoid { first: Some(100), last: Some(2) })));
        let t: Technique = "FSC:64".parse().unwrap();
        assert!(matches!(t, Technique::Fsc(FixedSizeChunking { explicit: Some(64), .. })));
        let t: Technique = "RND:7".parse().unwrap();
        assert!(matches!(t, Technique::Rnd(RandomChunking { seed: 7, range: None })));
        let t: Technique = "RND:7:10:50".parse().unwrap();
        assert!(matches!(t, Technique::Rnd(RandomChunking { seed: 7, range: Some((10, 50)) })));
    }

    #[test]
    fn technique_parsing_rejects_bad_input() {
        assert!("BOGUS".parse::<Technique>().is_err());
        assert!("SS:3".parse::<Technique>().is_err());
        assert!("GSS:x".parse::<Technique>().is_err());
        assert!("TSS:5".parse::<Technique>().is_err());
    }

    #[test]
    fn technique_parsing_defaults() {
        for kind in Kind::ALL {
            let t: Technique = kind.name().parse().unwrap();
            assert_eq!(t.kind(), kind);
        }
    }
}
