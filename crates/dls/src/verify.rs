//! Invariant checkers shared by unit tests, property tests, and the
//! executors' debug assertions.

use crate::chunk::Chunk;

/// Error describing how a chunk sequence fails to partition `[0, n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A chunk has zero length.
    EmptyChunk {
        /// Index of the offending chunk in the sequence.
        index: usize,
    },
    /// Chunk `index` does not start where the previous one ended.
    Gap {
        /// Index of the offending chunk in the sequence.
        index: usize,
        /// Expected start.
        expected: u64,
        /// Actual start.
        actual: u64,
    },
    /// The sequence covers fewer or more than `n` iterations.
    WrongTotal {
        /// Sum of chunk lengths.
        total: u64,
        /// Expected loop size.
        n: u64,
    },
    /// Chunk `index` has `start + len > u64::MAX` — its range cannot be
    /// represented, so it cannot be part of any partition of `[0, n)`.
    Overflow {
        /// Index of the offending chunk in the sequence.
        index: usize,
    },
}

/// Check that `chunks`, in order, exactly partition `[0, n)`:
/// contiguous, non-empty, and totalling `n`.
pub fn check_partition(chunks: &[Chunk], n: u64) -> Result<(), PartitionError> {
    let mut next = 0u64;
    for (index, c) in chunks.iter().enumerate() {
        if c.len == 0 {
            return Err(PartitionError::EmptyChunk { index });
        }
        if c.start != next {
            return Err(PartitionError::Gap { index, expected: next, actual: c.start });
        }
        // `Chunk::end()` saturates; reject the wrap explicitly instead of
        // letting a saturated end masquerade as a short chunk.
        next = match c.start.checked_add(c.len) {
            Some(end) => end,
            None => return Err(PartitionError::Overflow { index }),
        };
    }
    if next != n {
        return Err(PartitionError::WrongTotal { total: next, n });
    }
    Ok(())
}

/// Panic with a descriptive message if the sequence is not a partition.
#[track_caller]
pub fn assert_partition(chunks: &[Chunk], n: u64) {
    if let Err(e) = check_partition(chunks, n) {
        panic!("chunk sequence is not a partition of [0, {n}): {e:?}");
    }
}

/// True if chunk lengths never increase along the sequence (allowing the
/// final clamped chunk to be anything not larger than its predecessor).
pub fn is_nonincreasing(chunks: &[Chunk]) -> bool {
    chunks.windows(2).all(|w| w[0].len >= w[1].len)
}

/// True when chunks assigned to the same `[0, n)` range from *multiple
/// unordered* sources (e.g. several workers) still cover every iteration
/// exactly once. Sorts by start first.
pub fn check_exactly_once(chunks: &[Chunk], n: u64) -> Result<(), PartitionError> {
    let mut sorted: Vec<Chunk> = chunks.to_vec();
    sorted.sort_by_key(|c| c.start);
    check_partition(&sorted, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(start: u64, len: u64, step: u64) -> Chunk {
        Chunk { start, len, step }
    }

    #[test]
    fn accepts_valid_partition() {
        let chunks = [c(0, 3, 0), c(3, 2, 1), c(5, 5, 2)];
        assert!(check_partition(&chunks, 10).is_ok());
    }

    #[test]
    fn detects_gap() {
        let chunks = [c(0, 3, 0), c(4, 6, 1)];
        assert_eq!(
            check_partition(&chunks, 10),
            Err(PartitionError::Gap { index: 1, expected: 3, actual: 4 })
        );
    }

    #[test]
    fn detects_overlap_as_gap() {
        let chunks = [c(0, 5, 0), c(3, 7, 1)];
        assert!(matches!(check_partition(&chunks, 10), Err(PartitionError::Gap { .. })));
    }

    #[test]
    fn detects_wrong_total() {
        let chunks = [c(0, 5, 0)];
        assert_eq!(
            check_partition(&chunks, 10),
            Err(PartitionError::WrongTotal { total: 5, n: 10 })
        );
    }

    #[test]
    fn detects_empty_chunk() {
        let chunks = [c(0, 0, 0)];
        assert_eq!(check_partition(&chunks, 0), Err(PartitionError::EmptyChunk { index: 0 }));
    }

    #[test]
    fn exactly_once_ignores_order() {
        let chunks = [c(5, 5, 1), c(0, 5, 0)];
        assert!(check_exactly_once(&chunks, 10).is_ok());
    }

    #[test]
    fn nonincreasing_checks() {
        assert!(is_nonincreasing(&[c(0, 5, 0), c(5, 5, 1), c(10, 1, 2)]));
        assert!(!is_nonincreasing(&[c(0, 1, 0), c(1, 5, 1)]));
    }
}
