//! Core data types shared by every technique: loop specification, shared
//! scheduling state, and the chunk handed to a worker.

use std::fmt;

/// A half-open range `[start, start + len)` of loop iterations assigned to
/// one worker at one scheduling step.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Chunk {
    /// First iteration index of the chunk.
    pub start: u64,
    /// Number of iterations in the chunk. Always non-zero for a chunk
    /// returned by a scheduler.
    pub len: u64,
    /// The scheduling step at which this chunk was obtained (0-based,
    /// global across all workers of the level that produced it).
    pub step: u64,
}

impl Chunk {
    /// One-past-the-end iteration index. Saturates at `u64::MAX`: a
    /// scheduler never produces `start + len > n_iters`, but a
    /// hand-built chunk must not wrap into a *smaller* end than its
    /// start (see [`crate::verify::PartitionError::Overflow`]).
    #[inline]
    pub fn end(&self) -> u64 {
        self.start.saturating_add(self.len)
    }

    /// Iterator over the iteration indices contained in the chunk.
    #[inline]
    pub fn iter(&self) -> std::ops::Range<u64> {
        self.start..self.end()
    }

    /// True if `index` falls inside this chunk.
    #[inline]
    pub fn contains(&self, index: u64) -> bool {
        index >= self.start && index < self.end()
    }
}

impl fmt::Debug for Chunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Chunk[{}..{}) @step {}", self.start, self.end(), self.step)
    }
}

/// Immutable description of the loop being scheduled, fixed before
/// execution starts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoopSpec {
    /// Total number of loop iterations `N`.
    pub n_iters: u64,
    /// Number of workers `P` the technique divides work across. At the
    /// inter-node level this is the number of compute nodes; at the
    /// intra-node level it is the number of ranks/threads in the node.
    pub n_workers: u32,
    /// Mean per-iteration execution time, `mu`. Only FAC and FSC consult
    /// it; expressed in arbitrary but consistent time units.
    pub mean_iter_time: f64,
    /// Standard deviation of per-iteration execution time, `sigma`. Only
    /// FAC and FSC consult it.
    pub sigma_iter_time: f64,
    /// Per-chunk scheduling overhead `h`, used by FSC.
    pub overhead: f64,
}

impl LoopSpec {
    /// A specification with the statistical parameters defaulted
    /// (`mu = 1`, `sigma = 0`, `h = 0`); sufficient for every technique
    /// except FAC and FSC, which degrade gracefully to FAC2-like and
    /// STATIC-like behaviour respectively.
    pub fn new(n_iters: u64, n_workers: u32) -> Self {
        Self { n_iters, n_workers, mean_iter_time: 1.0, sigma_iter_time: 0.0, overhead: 0.0 }
    }

    /// Attach measured iteration-time statistics (used by FAC, FSC).
    pub fn with_stats(mut self, mean: f64, sigma: f64) -> Self {
        self.mean_iter_time = mean;
        self.sigma_iter_time = sigma;
        self
    }

    /// Attach the per-chunk scheduling overhead (used by FSC).
    pub fn with_overhead(mut self, h: f64) -> Self {
        self.overhead = h;
        self
    }

    /// Number of workers as `u64`, never zero (clamped to 1).
    #[inline]
    pub fn p(&self) -> u64 {
        u64::from(self.n_workers.max(1))
    }
}

/// The shared scheduling state every worker reads and advances atomically.
///
/// This is exactly the pair the paper stores in the global and local work
/// queues: *"information regarding the latest scheduling step and the total
/// scheduled loop iterations"*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedState {
    /// The next scheduling step to be handed out (0-based).
    pub step: u64,
    /// Total iterations assigned so far; the next chunk starts here.
    pub scheduled: u64,
}

impl SchedState {
    /// Fresh state at loop start.
    pub const START: SchedState = SchedState { step: 0, scheduled: 0 };

    /// Iterations not yet assigned.
    #[inline]
    pub fn remaining(&self, spec: &LoopSpec) -> u64 {
        spec.n_iters.saturating_sub(self.scheduled)
    }

    /// True once every iteration has been assigned.
    #[inline]
    pub fn exhausted(&self, spec: &LoopSpec) -> bool {
        self.scheduled >= spec.n_iters
    }

    /// Advance the state by a chunk of `size` iterations and return the
    /// chunk. `size` is clamped to the remaining iterations; returns
    /// `None` when the loop is exhausted.
    #[inline]
    pub fn take(&mut self, spec: &LoopSpec, size: u64) -> Option<Chunk> {
        let remaining = self.remaining(spec);
        if remaining == 0 {
            return None;
        }
        let len = size.clamp(1, remaining);
        let chunk = Chunk { start: self.scheduled, len, step: self.step };
        // `len <= remaining` keeps `scheduled <= n_iters`; `step` counts
        // chunks, each of length >= 1, so it stays <= n_iters too. The
        // saturating forms encode that neither counter can wrap.
        self.step = self.step.saturating_add(1);
        self.scheduled = self.scheduled.saturating_add(len);
        Some(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_end_and_contains() {
        let c = Chunk { start: 10, len: 5, step: 3 };
        assert_eq!(c.end(), 15);
        assert!(c.contains(10));
        assert!(c.contains(14));
        assert!(!c.contains(15));
        assert!(!c.contains(9));
        assert_eq!(c.iter().count(), 5);
    }

    #[test]
    fn chunk_debug_format() {
        let c = Chunk { start: 0, len: 4, step: 0 };
        assert_eq!(format!("{c:?}"), "Chunk[0..4) @step 0");
    }

    #[test]
    fn spec_defaults() {
        let s = LoopSpec::new(100, 4);
        assert_eq!(s.n_iters, 100);
        assert_eq!(s.p(), 4);
        assert_eq!(s.mean_iter_time, 1.0);
        assert_eq!(s.sigma_iter_time, 0.0);
    }

    #[test]
    fn spec_zero_workers_clamped() {
        let s = LoopSpec::new(100, 0);
        assert_eq!(s.p(), 1);
    }

    #[test]
    fn state_take_clamps_and_advances() {
        let spec = LoopSpec::new(10, 2);
        let mut st = SchedState::START;
        let c = st.take(&spec, 7).unwrap();
        assert_eq!((c.start, c.len, c.step), (0, 7, 0));
        let c = st.take(&spec, 7).unwrap();
        assert_eq!((c.start, c.len, c.step), (7, 3, 1));
        assert!(st.exhausted(&spec));
        assert!(st.take(&spec, 7).is_none());
    }

    #[test]
    fn state_take_zero_size_becomes_one() {
        let spec = LoopSpec::new(3, 2);
        let mut st = SchedState::START;
        let c = st.take(&spec, 0).unwrap();
        assert_eq!(c.len, 1);
    }

    #[test]
    fn state_remaining() {
        let spec = LoopSpec::new(5, 1);
        let mut st = SchedState::START;
        assert_eq!(st.remaining(&spec), 5);
        st.take(&spec, 2);
        assert_eq!(st.remaining(&spec), 3);
    }
}
