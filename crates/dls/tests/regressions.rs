//! Pinned regression cases discovered by property testing.
//!
//! The committed `proptests.proptest-regressions` seed file records the
//! shrunk failure `n = 114, p = 58` — a loop where `p` exceeds `n / 2`,
//! which historically broke chunk-size *floor* rounding: with
//! `floor(114 / 58) = 1`, STATIC degenerated to 114 unit steps,
//! violating its `steps <= p` bound (the fix is ceiling division,
//! `div_ceil`). The vendored proptest shim does not replay upstream
//! seed files, so the case is pinned here explicitly and exercised for
//! every technique and every documented property.

use dls::sequence::{schedule_all, step_count};
use dls::verify::{check_partition, is_nonincreasing};
use dls::{Kind, LoopSpec, Technique};

const N: u64 = 114;
const P: u32 = 58;

#[test]
fn n114_p58_static_honours_step_bound() {
    let spec = LoopSpec::new(N, P);
    let chunk = N.div_ceil(u64::from(P));
    assert_eq!(chunk, 2, "ceil rounding must not collapse to 1");
    let steps = step_count(&spec, &Technique::static_());
    assert_eq!(steps, N.div_ceil(chunk));
    assert!(
        steps <= u64::from(P),
        "STATIC took {steps} steps for n={N} p={P}; floor-rounding regression"
    );
}

#[test]
fn n114_p58_every_technique_partitions() {
    for kind in Kind::ALL.iter().copied() {
        let t = Technique::from_kind(kind);
        for (sigma, h) in [(0.0, 0.0), (1.0, 0.5), (3.9, 1.9)] {
            let spec = LoopSpec::new(N, P).with_stats(1.0, sigma).with_overhead(h);
            let chunks = schedule_all(&spec, &t);
            assert!(
                check_partition(&chunks, N).is_ok(),
                "{kind} failed to partition n={N} p={P} sigma={sigma} h={h}"
            );
            assert!(step_count(&spec, &t) <= N, "{kind} exceeded n steps at n={N} p={P}");
        }
    }
}

#[test]
fn n114_p58_step_bounds_hold() {
    let spec = LoopSpec::new(N, P);
    for kind in Kind::ALL.iter().copied() {
        if let Some(bound) = dls::analysis::step_bound(kind, N, P) {
            let steps = step_count(&spec, &Technique::from_kind(kind));
            assert!(steps <= bound, "{kind} needed {steps} steps, bound {bound} (n={N} p={P})");
        }
    }
}

#[test]
fn n114_p58_decreasing_techniques_nonincreasing() {
    let spec = LoopSpec::new(N, P).with_stats(1.0, 1.0);
    for kind in [Kind::GSS, Kind::TSS, Kind::FAC, Kind::FAC2, Kind::TFSS] {
        let chunks = schedule_all(&spec, &Technique::from_kind(kind));
        assert!(is_nonincreasing(&chunks), "{kind} increased at n={N} p={P}");
    }
}

#[test]
fn p_exceeding_n_stays_sound() {
    // The neighbourhood the shrunk case points at: p close to or above n.
    for n in [1u64, 2, 57, 58, 113, 114, 115] {
        for p in [57u32, 58, 59, 114, 115, 200] {
            let spec = LoopSpec::new(n, p);
            for kind in Kind::ALL.iter().copied() {
                let t = Technique::from_kind(kind);
                let chunks = schedule_all(&spec, &t);
                assert!(check_partition(&chunks, n).is_ok(), "{kind} failed at n={n} p={p}");
                assert!(step_count(&spec, &t) <= n.max(1), "{kind} n={n} p={p}");
            }
        }
    }
}
