//! Golden-sequence tests: the exact chunk sequences the original DLS
//! papers tabulate (or that follow directly from their formulas), as
//! regression anchors for the chunk calculus.

use dls::sequence::schedule_all;
use dls::{LoopSpec, Technique};

fn sizes(n: u64, p: u32, t: &Technique) -> Vec<u64> {
    schedule_all(&LoopSpec::new(n, p), t).iter().map(|c| c.len).collect()
}

#[test]
fn gss_polychronopoulos_kuck_example() {
    // GSS on N=100, P=4: the classic ceil(R/P) cascade.
    assert_eq!(
        sizes(100, 4, &Technique::gss()),
        vec![25, 19, 14, 11, 8, 6, 5, 3, 3, 2, 1, 1, 1, 1]
    );
}

#[test]
fn gss_n1000_p4_head() {
    let s = sizes(1000, 4, &Technique::gss());
    assert_eq!(&s[..8], &[250, 188, 141, 106, 79, 59, 45, 33]);
}

#[test]
fn tss_tzen_ni_defaults_n1000_p4() {
    // F = ceil(1000/8) = 125, L = 1, S = ceil(2000/126) = 16,
    // delta = 124/15 ~= 8.27, floor interpolation: 125, 116, 108, ...
    let s = sizes(1000, 4, &Technique::tss());
    assert_eq!(&s[..6], &[125, 116, 108, 100, 91, 83]);
    assert_eq!(s.iter().sum::<u64>(), 1000);
}

#[test]
fn fac2_power_of_two_batches() {
    assert_eq!(
        sizes(1024, 4, &Technique::fac2())[..12],
        [128, 128, 128, 128, 64, 64, 64, 64, 32, 32, 32, 32]
    );
}

#[test]
fn fac2_odd_n_keeps_halving_with_ceil() {
    // N=1000, P=4: R0=1000 -> 125; R1=500 -> 63; R2=248 -> 31; ...
    let s = sizes(1000, 4, &Technique::fac2());
    assert_eq!(&s[..8], &[125, 125, 125, 125, 63, 63, 63, 63]);
    assert_eq!(s[8], 31);
}

#[test]
fn fac_with_hummel_parameters() {
    // FAC on N=1000, P=4, sigma/mu = 0.5:
    // b0 = (4 / (2*sqrt(1000))) * 0.5 = 0.0316...,
    // x0 = 1 + b0^2 + b0*sqrt(b0^2 + 2) = 1.0457, chunk0 = ceil(1000/4.183) = 240.
    let spec = LoopSpec::new(1000, 4).with_stats(1.0, 0.5);
    let chunks = schedule_all(&spec, &Technique::fac());
    assert_eq!(chunks[0].len, 240);
    // Full batch of equal chunks.
    assert!(chunks[..4].iter().all(|c| c.len == 240));
    assert_eq!(chunks.iter().map(|c| c.len).sum::<u64>(), 1000);
}

#[test]
fn static_even_and_uneven() {
    assert_eq!(sizes(1000, 4, &Technique::static_()), vec![250; 4]);
    assert_eq!(sizes(1001, 4, &Technique::static_()), vec![251, 251, 251, 248]);
}

#[test]
fn ss_is_all_ones() {
    assert_eq!(sizes(7, 3, &Technique::ss()), vec![1; 7]);
}

#[test]
fn tfss_batch_means_decrease_linearly() {
    // TFSS batches are the mean of the next P TSS sizes; consecutive
    // batch sizes differ by ~P*delta.
    let s = sizes(10_000, 4, &Technique::tfss());
    let batch_sizes: Vec<u64> = s.chunks(4).map(|b| b[0]).collect();
    let diffs: Vec<i64> =
        batch_sizes.windows(2).map(|w| w[0] as i64 - w[1] as i64).take(5).collect();
    // delta = (F - L)/(S - 1) with F = 1250, S = ceil(20000/1251) = 16:
    // delta ~= 83.3, so batch diffs ~= 333.
    for d in diffs {
        assert!((330..=337).contains(&d), "batch diff {d}");
    }
}

#[test]
fn wf_scales_fac2_linearly_in_weight() {
    use dls::technique::WorkerCtx;
    use dls::{ChunkCalculator, SchedState};
    let spec = LoopSpec::new(4096, 8);
    let wf = Technique::wf();
    let base = wf.chunk_size(&spec, SchedState::START, WorkerCtx::default());
    for (w, expected) in [(0.25, base / 4), (0.5, base / 2), (2.0, base * 2)] {
        let got = wf.chunk_size(&spec, SchedState::START, WorkerCtx { worker: 0, weight: w });
        assert_eq!(got, expected, "weight {w}");
    }
}
