//! Extreme-scale regression sweep: the chunk formulas must stay
//! panic-free (this workspace builds tests with `overflow-checks = on`)
//! and well-behaved with `n_iters` near `u64::MAX`, for every worker
//! count the paper's clusters imply and a pathological one. Golden
//! small-N sequences pin the formulas so the overflow fixes cannot have
//! changed any schedule.

use dls::adaptive::{AwfScheduler, AwfVariant};
use dls::analysis::step_bound;
use dls::nonadaptive::Trapezoid;
use dls::sequence::ChunkSequence;
use dls::verify::{check_partition, PartitionError};
use dls::{Chunk, ChunkCalculator, Kind, LoopSpec, SchedState, Technique};

const EXTREME_N: [u64; 2] = [u64::MAX / 2, u64::MAX - 1];
const WORKERS: [u32; 3] = [1, 3, 1024];

/// Kinds whose chunk sizes are nonincreasing along the schedule
/// (RND is random by design; FSC is constant but clamps oddly only at
/// the tail, which the prefix never reaches at these scales).
const MONOTONE: [Kind; 7] =
    [Kind::STATIC, Kind::SS, Kind::GSS, Kind::TSS, Kind::FAC, Kind::FAC2, Kind::TFSS];

/// Walk the first `steps` scheduling steps exactly as an executor
/// would, returning the clamped chunks.
fn prefix(spec: &LoopSpec, t: &Technique, steps: usize) -> Vec<Chunk> {
    let mut st = SchedState::START;
    let mut out = Vec::new();
    for _ in 0..steps {
        let size = t.chunk_size(spec, st, Default::default());
        assert!(size >= 1, "{t}: zero chunk at step {}", st.step);
        match st.take(spec, size) {
            Some(c) => out.push(c),
            None => break,
        }
    }
    out
}

#[test]
fn every_kind_survives_extreme_n() {
    for n in EXTREME_N {
        for p in WORKERS {
            let spec = LoopSpec::new(n, p);
            for kind in Kind::ALL {
                let t = Technique::from_kind(kind);
                let chunks = prefix(&spec, &t, 64);
                assert!(!chunks.is_empty(), "{kind} n={n} p={p}");
                // Contiguity of what was handed out.
                let mut next = 0u64;
                for c in &chunks {
                    assert_eq!(c.start, next, "{kind} n={n} p={p}");
                    assert!(c.len <= n, "{kind} n={n} p={p}");
                    next = c.start.checked_add(c.len).expect("no range wrap");
                }
            }
        }
    }
}

#[test]
fn monotone_kinds_stay_nonincreasing_at_extreme_n() {
    for n in EXTREME_N {
        for p in WORKERS {
            let spec = LoopSpec::new(n, p);
            for kind in MONOTONE {
                let chunks = prefix(&spec, &Technique::from_kind(kind), 64);
                assert!(
                    chunks.windows(2).all(|w| w[0].len >= w[1].len),
                    "{kind} n={n} p={p}: {:?}",
                    chunks.iter().map(|c| c.len).collect::<Vec<_>>()
                );
            }
        }
    }
}

#[test]
fn step_bound_survives_extreme_n_for_every_kind() {
    for n in EXTREME_N {
        for p in WORKERS {
            for kind in Kind::ALL {
                match step_bound(kind, n, p) {
                    Some(b) => assert!(b >= 1, "{kind} n={n} p={p}"),
                    None => assert!(
                        matches!(kind, Kind::FAC | Kind::FSC | Kind::RND),
                        "{kind} lost its bound"
                    ),
                }
            }
        }
    }
    // SS's bound is exact even at the edge.
    assert_eq!(step_bound(Kind::SS, u64::MAX - 1, 3), Some(u64::MAX - 1));
}

#[test]
fn tss_params_at_extreme_n_and_explicit_bounds() {
    for n in EXTREME_N {
        for p in WORKERS {
            let params = Trapezoid::default().params(&LoopSpec::new(n, p));
            assert!(params.first >= params.last && params.last >= 1, "n={n} p={p}");
            assert!(params.steps >= 1);
            assert!(params.delta.is_finite() && params.delta >= 0.0);
        }
    }
    // Explicit F near u64::MAX exercises the F + L widening; the former
    // u64 sum wrapped here.
    let t = Trapezoid::with_bounds(u64::MAX, u64::MAX - 1);
    let params = t.params(&LoopSpec::new(u64::MAX - 1, 4));
    assert_eq!(params.steps, 1);
    assert_eq!(params.delta, 0.0);
    let spec = LoopSpec::new(u64::MAX - 1, 4);
    let first = Technique::Tss(t).chunk_size(&spec, SchedState::START, Default::default());
    assert_eq!(first, u64::MAX); // clamped into [L, F], no i64 wrap
}

#[test]
fn tfss_chunk_exceeding_i64_does_not_wrap() {
    // first > i64::MAX: the old i64 clamp round-trip produced garbage.
    let spec = LoopSpec::new(u64::MAX - 1, 1);
    let first = Technique::tfss().chunk_size(&spec, SchedState::START, Default::default());
    let params = Trapezoid::default().params(&spec);
    assert!(first >= params.last && first <= params.first, "{first}");
    assert!(first > u64::MAX / 4, "suspiciously small first chunk: {first}");
}

#[test]
fn awf_variants_survive_extreme_n() {
    for n in EXTREME_N {
        for p in WORKERS {
            for variant in AwfVariant::ALL {
                let mut sched = AwfScheduler::new(LoopSpec::new(n, p), variant);
                let mut prev = u64::MAX;
                for w in 0..p.min(8) {
                    let c = sched.next_chunk(w).expect("work remains");
                    assert!(c.len >= 1 && c.len <= prev, "{} n={n} p={p}", variant.name());
                    prev = c.len;
                }
            }
        }
    }
}

#[test]
fn check_partition_reports_overflowing_chunk() {
    // A chunk whose range wraps past u64::MAX is rejected as Overflow,
    // not silently truncated by the saturating `Chunk::end()`.
    let chunks = [
        Chunk { start: 0, len: u64::MAX - 1, step: 0 },
        Chunk { start: u64::MAX - 1, len: 5, step: 1 },
    ];
    assert_eq!(check_partition(&chunks, u64::MAX), Err(PartitionError::Overflow { index: 1 }));
    // The same shape without the wrap is a fine partition.
    let ok = [
        Chunk { start: 0, len: u64::MAX - 1, step: 0 },
        Chunk { start: u64::MAX - 1, len: 1, step: 1 },
    ];
    assert_eq!(check_partition(&ok, u64::MAX), Ok(()));
}

#[test]
fn golden_gss_sequence_n100_p4() {
    let spec = LoopSpec::new(100, 4);
    let sizes: Vec<u64> = ChunkSequence::new(&spec, &Technique::gss()).map(|c| c.len).collect();
    assert_eq!(sizes, vec![25, 19, 14, 11, 8, 6, 5, 3, 3, 2, 1, 1, 1, 1]);
}

#[test]
fn golden_fac2_sequence_n1024_p4() {
    let spec = LoopSpec::new(1024, 4);
    let sizes: Vec<u64> =
        ChunkSequence::new(&spec, &Technique::fac2()).map(|c| c.len).take(8).collect();
    assert_eq!(sizes, vec![128, 128, 128, 128, 64, 64, 64, 64]);
}

#[test]
fn golden_tss_sequence_n1000_p4() {
    let spec = LoopSpec::new(1000, 4);
    let sizes: Vec<u64> =
        ChunkSequence::new(&spec, &Technique::tss()).map(|c| c.len).take(6).collect();
    // F = ceil(1000/8) = 125, S = ceil(2000/126) = 16, delta = 124/15.
    assert_eq!(sizes, vec![125, 116, 108, 100, 91, 83]);
}
