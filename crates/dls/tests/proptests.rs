//! Property-based tests for the DLS techniques: for *any* loop size and
//! worker count, every technique must produce a terminating chunk
//! sequence that exactly partitions the iteration space, and techniques
//! with documented monotonicity must honour it.

use dls::sequence::{schedule_all, step_count};
use dls::verify::{check_partition, is_nonincreasing};
use dls::{Kind, LoopSpec, Technique};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = LoopSpec> {
    (1u64..200_000, 1u32..128, 0.0f64..4.0, 0.0f64..2.0)
        .prop_map(|(n, p, sigma, h)| LoopSpec::new(n, p).with_stats(1.0, sigma).with_overhead(h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_technique_partitions_the_loop(spec in arb_spec(), kind_idx in 0usize..Kind::ALL.len()) {
        let t = Technique::from_kind(Kind::ALL[kind_idx]);
        let chunks = schedule_all(&spec, &t);
        prop_assert!(check_partition(&chunks, spec.n_iters).is_ok(),
            "{} failed on n={} p={}", t, spec.n_iters, spec.n_workers);
    }

    #[test]
    fn step_count_never_exceeds_n(spec in arb_spec(), kind_idx in 0usize..Kind::ALL.len()) {
        let t = Technique::from_kind(Kind::ALL[kind_idx]);
        prop_assert!(step_count(&spec, &t) <= spec.n_iters);
    }

    #[test]
    fn decreasing_techniques_are_nonincreasing(spec in arb_spec()) {
        for kind in [Kind::GSS, Kind::TSS, Kind::FAC, Kind::FAC2, Kind::TFSS] {
            let t = Technique::from_kind(kind);
            let chunks = schedule_all(&spec, &t);
            prop_assert!(is_nonincreasing(&chunks), "{kind} increased on n={} p={}",
                spec.n_iters, spec.n_workers);
        }
    }

    #[test]
    fn ss_always_n_steps(n in 1u64..5_000, p in 1u32..64) {
        let spec = LoopSpec::new(n, p);
        prop_assert_eq!(step_count(&spec, &Technique::ss()), n);
    }

    #[test]
    fn static_step_count_closed_form(n in 1u64..100_000, p in 1u32..128) {
        // STATIC hands out ceil(n/p) per step, so it needs
        // ceil(n / ceil(n/p)) steps — at most p, and at most n.
        let spec = LoopSpec::new(n, p);
        let chunk = n.div_ceil(u64::from(p));
        let expected = n.div_ceil(chunk);
        let steps = step_count(&spec, &Technique::static_());
        prop_assert_eq!(steps, expected);
        prop_assert!(steps <= u64::from(p));
    }

    #[test]
    fn gss_first_chunk_is_ceil_n_over_p(n in 1u64..1_000_000, p in 1u32..256) {
        let spec = LoopSpec::new(n, p);
        let chunks = schedule_all(&spec, &Technique::gss());
        prop_assert_eq!(chunks[0].len, n.div_ceil(u64::from(p)));
    }

    #[test]
    fn fac2_first_batch_is_half(n in 16u64..1_000_000, p in 1u32..64) {
        let spec = LoopSpec::new(n, p);
        let chunks = schedule_all(&spec, &Technique::fac2());
        let pp = u64::from(p) as usize;
        let batch0: u64 = chunks.iter().take(pp).map(|c| c.len).sum();
        // First batch assigns about half the loop (up to ceil rounding per chunk).
        prop_assert!(batch0 >= n / 2);
        prop_assert!(batch0 <= n / 2 + u64::from(p));
    }

    #[test]
    fn theoretical_step_bounds_hold(spec in arb_spec(), kind_idx in 0usize..Kind::ALL.len()) {
        let kind = Kind::ALL[kind_idx];
        if let Some(bound) = dls::analysis::step_bound(kind, spec.n_iters, spec.n_workers) {
            let steps = step_count(&spec, &Technique::from_kind(kind));
            prop_assert!(steps <= bound,
                "{} needed {} steps, bound {} (n={} p={})",
                kind, steps, bound, spec.n_iters, spec.n_workers);
        }
    }

    #[test]
    fn steps_strictly_ordered(spec in arb_spec(), kind_idx in 0usize..Kind::ALL.len()) {
        let t = Technique::from_kind(Kind::ALL[kind_idx]);
        let chunks = schedule_all(&spec, &t);
        for (i, c) in chunks.iter().enumerate() {
            prop_assert_eq!(c.step, i as u64);
        }
    }
}
