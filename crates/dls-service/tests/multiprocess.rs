//! True multi-process smoke tests: a real `dls-serverd` daemon plus
//! real `net-worker` OS processes talking TCP — the configuration the
//! in-process unit tests can only approximate.
//!
//! * exactly-once: the sum of every worker's acknowledged checksum
//!   equals a serial run of the same deterministic workload;
//! * lease recovery: a worker killed mid-chunk (the `resilience` crash
//!   trigger) loses its leases to reclamation exactly once, and the
//!   job still finishes with the serial checksum;
//! * graceful shutdown: both the `Shutdown` frame and SIGTERM drain
//!   the daemon, which prints its final `STATS` snapshot (per-job
//!   progress counters preserved) and exits 0.

use dls_service::{Client, StatsSnapshot};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use workloads::synthetic::Synthetic;
use workloads::Workload;

const SEED: u64 = 7;

/// Spawn the daemon on an ephemeral port; return it plus the bound
/// address parsed from its `LISTEN` line and its buffered stdout.
fn spawn_server() -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dls-serverd"))
        .args(["--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dls-serverd");
    let mut stdout = BufReader::new(child.stdout.take().expect("server stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read LISTEN line");
    let addr = line
        .strip_prefix("LISTEN ")
        .unwrap_or_else(|| panic!("expected LISTEN line, got {line:?}"))
        .trim()
        .to_string();
    (child, addr, stdout)
}

fn spawn_worker(addr: &str, job: u64, n: u64, worker: u32, batch: u32) -> Child {
    worker_cmd(addr, job, n, worker, batch).spawn().expect("spawn net-worker")
}

fn worker_cmd(addr: &str, job: u64, n: u64, worker: u32, batch: u32) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_net-worker"));
    cmd.arg(addr)
        .args(["--job", &job.to_string()])
        .args(["--n", &n.to_string()])
        .args(["--seed", &SEED.to_string()])
        .args(["--worker", &worker.to_string()])
        .args(["--batch", &batch.to_string()])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    cmd
}

/// Parse `RESULT worker=W checksum=C iters=I chunks=Q crashed=B`.
fn parse_result(stdout: &[u8]) -> (u64, u64, u64, bool) {
    let text = String::from_utf8_lossy(stdout);
    let line = text
        .lines()
        .find(|l| l.starts_with("RESULT "))
        .unwrap_or_else(|| panic!("no RESULT line in {text:?}"));
    let field = |key: &str| -> String {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("missing {key} in {line:?}"))
            .to_string()
    };
    (
        field("checksum").parse().expect("checksum"),
        field("iters").parse().expect("iters"),
        field("chunks").parse().expect("chunks"),
        field("crashed").parse().expect("crashed"),
    )
}

fn serial_checksum(n: u64) -> u64 {
    let w = Synthetic::uniform(n, 1, 100, SEED);
    (0..n).fold(0u64, |acc, i| acc.wrapping_add(w.execute(i)))
}

/// Wait for exit with a hang guard — a stuck daemon fails, not hangs.
fn wait_capped(child: &mut Child, what: &str) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("{what} did not exit in time");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Read the daemon's remaining stdout and decode the `STATS` snapshot
/// line (JSON keys checked textually — the snapshot also round-trips
/// through the binary codec in the unit tests).
fn read_stats_line(stdout: &mut BufReader<std::process::ChildStdout>) -> String {
    let mut stats = String::new();
    for line in stdout.lines() {
        let line = line.expect("server stdout");
        if let Some(json) = line.strip_prefix("STATS ") {
            stats = json.to_string();
        }
    }
    assert!(!stats.is_empty(), "server printed no STATS line");
    stats
}

#[test]
fn four_worker_processes_execute_exactly_once() {
    let n = 40_000;
    let (mut server, addr, mut server_out) = spawn_server();

    let mut setup = Client::connect(&addr).expect("connect");
    let job = setup.create_job(n, dls::Kind::GSS, &[]).expect("create job");

    let workers: Vec<Child> = (0..4).map(|w| spawn_worker(&addr, job, n, w, 4)).collect();
    let mut total = 0u64;
    let mut iters = 0u64;
    let mut chunks = 0u64;
    for (w, child) in workers.into_iter().enumerate() {
        let out = child.wait_with_output().expect("worker output");
        assert!(out.status.success(), "worker {w} failed: {:?}", out.status);
        let (checksum, i, q, crashed) = parse_result(&out.stdout);
        assert!(!crashed);
        total = total.wrapping_add(checksum);
        iters += i;
        // A process that started after the queue drained legitimately
        // reports zero chunks; the fleet as a whole must have worked.
        chunks += q;
    }
    assert!(chunks > 0, "no chunk ever granted");
    assert_eq!(iters, n, "every iteration executed");
    assert_eq!(total, serial_checksum(n), "exactly-once across processes");

    // Server-side ledger agrees: job done, nothing reclaimed.
    let snap: StatsSnapshot = setup.stats().expect("stats");
    let j = &snap.jobs[0];
    assert!(j.done);
    assert_eq!(j.completed, n);
    assert_eq!(j.leases_reclaimed, 0);
    assert_eq!(j.leases_granted, j.leases_completed);

    setup.shutdown_server().expect("shutdown frame");
    drop(setup);
    let status = wait_capped(&mut server, "dls-serverd");
    assert!(status.success(), "daemon exit status {status:?}");
    let stats = read_stats_line(&mut server_out);
    assert!(stats.contains(&format!("\"completed\":{n}")), "progress preserved in STATS");
}

#[test]
fn killed_worker_leases_reclaimed_exactly_once() {
    let n = 20_000;
    let (mut server, addr, mut server_out) = spawn_server();

    let mut setup = Client::connect(&addr).expect("connect");
    let job = setup.create_job(n, dls::Kind::SS, &[]).expect("create job");

    // One saboteur (executes its 2nd chunk, dies before reporting it —
    // the resilience crash trigger) among three healthy workers. Batch
    // 4 means it also abandons unexecuted granted leases.
    let mut crash_cmd = worker_cmd(&addr, job, n, 0, 4);
    crash_cmd.args(["--crash-after", "2"]);
    let crasher = crash_cmd.spawn().expect("spawn crasher");
    let healthy: Vec<Child> = (1..4).map(|w| spawn_worker(&addr, job, n, w, 4)).collect();

    let crash_out = crasher.wait_with_output().expect("crasher output");
    assert_eq!(crash_out.status.code(), Some(3), "crash trigger exits 3");
    let (crash_sum, crash_iters, crash_chunks, crashed) = parse_result(&crash_out.stdout);
    assert!(crashed);
    assert_eq!(crash_chunks, 1, "died executing chunk 2: only chunk 1 acknowledged");

    let mut total = crash_sum;
    let mut iters = crash_iters;
    for child in healthy {
        let out = child.wait_with_output().expect("worker output");
        assert!(out.status.success());
        let (checksum, i, _, crashed) = parse_result(&out.stdout);
        assert!(!crashed);
        total = total.wrapping_add(checksum);
        iters += i;
    }

    // The survivors re-executed exactly the abandoned work: no
    // iteration lost, none doubled.
    assert_eq!(iters, n);
    assert_eq!(total, serial_checksum(n), "exactly-once through a mid-chunk crash");

    // Ledger: every lease settled exactly once, some by reclamation.
    let snap = setup.stats().expect("stats");
    let j = &snap.jobs[0];
    assert!(j.done);
    assert_eq!(j.completed, n);
    assert!(j.leases_reclaimed >= 1, "the abandoned lease was reclaimed");
    assert_eq!(j.leases_granted, j.leases_completed + j.leases_reclaimed);
    assert_eq!(snap.totals.reclaims, j.leases_reclaimed);

    setup.shutdown_server().expect("shutdown frame");
    drop(setup);
    assert!(wait_capped(&mut server, "dls-serverd").success());
    let stats = read_stats_line(&mut server_out);
    assert!(stats.contains("\"leases_reclaimed\""));
}

#[test]
fn shutdown_frame_drains_and_preserves_progress() {
    let (mut server, addr, mut server_out) = spawn_server();
    let mut c = Client::connect(&addr).expect("connect");
    let n = 1_000;
    let job = c.create_job(n, dls::Kind::SS, &[]).expect("create job");
    // Consume part of the job so the snapshot has non-trivial counters.
    let reply = c.fetch(job, 0, 8).expect("fetch");
    let granted = match reply {
        dls_service::FetchReply::Chunks(chunks) => {
            let leases: Vec<_> = chunks.iter().map(|ch| ch.lease).collect();
            c.report_done(job, &leases).expect("report");
            chunks.iter().map(|ch| ch.hi - ch.lo).sum::<u64>()
        }
        other => panic!("expected chunks, got {other:?}"),
    };
    assert!(granted > 0);

    c.shutdown_server().expect("shutdown frame");
    drop(c);
    let status = wait_capped(&mut server, "dls-serverd");
    assert_eq!(status.code(), Some(0), "graceful drain exits 0");
    let stats = read_stats_line(&mut server_out);
    assert!(stats.contains("\"shutting_down\":true"));
    assert!(
        stats.contains(&format!("\"completed\":{granted}")),
        "per-job progress counters preserved across the drain: {stats}"
    );
}

#[cfg(unix)]
#[test]
fn sigterm_drains_and_exits_zero() {
    let (mut server, addr, mut server_out) = spawn_server();
    let mut c = Client::connect(&addr).expect("connect");
    let job = c.create_job(500, dls::Kind::GSS, &[]).expect("create job");
    let _ = c.fetch(job, 0, 1).expect("fetch");
    drop(c);

    let kill =
        Command::new("kill").args(["-TERM", &server.id().to_string()]).status().expect("run kill");
    assert!(kill.success());

    let status = wait_capped(&mut server, "dls-serverd");
    assert_eq!(status.code(), Some(0), "SIGTERM drain exits 0");
    let stats = read_stats_line(&mut server_out);
    assert!(stats.contains("\"scheduled\""), "STATS snapshot printed on SIGTERM: {stats}");
}
