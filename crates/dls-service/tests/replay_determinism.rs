//! Replay determinism: the journal a **real** server leaves behind —
//! multi-client traffic, disconnect reclaims, a restart in the middle
//! — must replay to the same recovered state every single time, down
//! to the byte. Recovery that depends on iteration order, hash-map
//! layout, or wall-clock time would pass a single-replay test and
//! still corrupt a fleet; replaying twice and comparing canonical
//! serializations pins it.

use dls_service::{Client, FetchReply, Server, ServiceConfig};
use durability::{Journal, JournalOptions};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dls-replay-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn journaled(dir: &PathBuf) -> Server {
    Server::start_with_journal(
        ServiceConfig::default(),
        "127.0.0.1:0",
        JournalOptions::new(dir),
        64, // small snapshot interval: replay crosses a snapshot too
    )
    .expect("bind journaled")
}

#[test]
fn real_server_journal_replays_bit_identically() {
    let dir = tmpdir("real");

    // Incarnation 1: two jobs, concurrent clients, one abrupt
    // disconnect (reclaim records), partial progress, graceful drain.
    let srv = journaled(&dir);
    let mut a = Client::connect(srv.addr()).expect("connect a");
    let mut b = Client::connect(srv.addr()).expect("connect b");
    let gss = a.create_job(2_000, dls::Kind::GSS, &[]).expect("create gss");
    let ss = a.create_job(300, dls::Kind::SS, &[]).expect("create ss");
    for _ in 0..20 {
        for (c, w) in [(&mut a, 0u32), (&mut b, 1u32)] {
            if let Ok(FetchReply::Chunks(chunks)) = c.fetch(gss, w, 2) {
                let leases: Vec<_> = chunks.iter().map(|g| g.lease).collect();
                c.report_done(gss, &leases).expect("report");
            }
        }
    }
    // b holds SS leases and vanishes: the server journals the reclaim.
    let FetchReply::Chunks(_held) = b.fetch(ss, 1, 4).expect("fetch ss") else { panic!("chunks") };
    drop(b);
    std::thread::sleep(std::time::Duration::from_millis(50));
    drop(a);
    srv.shutdown();

    // Incarnation 2: resume, more traffic, drain again — the journal
    // now spans two epochs and (with snapshot_every=64) a snapshot.
    let srv = journaled(&dir);
    let mut c = Client::connect(srv.addr()).expect("connect");
    for _ in 0..10 {
        if let Ok(FetchReply::Chunks(chunks)) = c.fetch(ss, 2, 2) {
            let leases: Vec<_> = chunks.iter().map(|g| g.lease).collect();
            c.report_done(ss, &leases).expect("report");
        }
    }
    drop(c);
    srv.shutdown();

    // Replay the directory twice, from scratch each time.
    let first = Journal::replay_dir(&dir).expect("replay once");
    let second = Journal::replay_dir(&dir).expect("replay twice");
    assert!(!first.jobs.is_empty(), "the journal holds real state");
    assert_eq!(
        first.serialize(),
        second.serialize(),
        "two replays of the same journal must be bit-identical"
    );
    assert_eq!(first.digest(), second.digest());

    // And the state is the one the live servers acted on: both jobs
    // present, GSS progress preserved across the restart.
    assert_eq!(first.jobs.len(), 2);
    assert!(first.jobs[&gss].completed > 0);
    assert_eq!(first.epoch, 2);

    let _ = std::fs::remove_dir_all(&dir);
}
