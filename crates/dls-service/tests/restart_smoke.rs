//! The ROADMAP-mandated durability smoke: `kill -9` the **server**
//! mid-campaign, restart it on the same `--journal-dir`, and the
//! worker fleet — which never exits — reconnects through the
//! `--addr-file` indirection, resumes the same job id under the bumped
//! epoch, and finishes with the serial checksum. Exactly-once is
//! verified by a per-iteration bitmap built from every worker's
//! acked `RANGES` (plus `AMBIG` resolution for reports whose ack the
//! SIGKILL swallowed mid-round-trip).

#![cfg(unix)]

use dls_service::{Client, StatsSnapshot};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use workloads::synthetic::Synthetic;
use workloads::Workload;

const SEED: u64 = 11;
const N: u64 = 20_000;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dls-restart-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Spawn the daemon with a journal; return it, its bound address, and
/// its buffered stdout (for the final STATS line).
fn spawn_journaled_server(
    journal_dir: &Path,
    addr_file: &Path,
) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dls-serverd"))
        .args(["--addr", "127.0.0.1:0"])
        .args(["--journal-dir", journal_dir.to_str().expect("utf8 dir")])
        .args(["--addr-file", addr_file.to_str().expect("utf8 addr file")])
        .args(["--snapshot-every", "256"]) // exercise snapshots mid-campaign
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dls-serverd");
    let mut stdout = BufReader::new(child.stdout.take().expect("server stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read LISTEN line");
    let addr = line
        .strip_prefix("LISTEN ")
        .unwrap_or_else(|| panic!("expected LISTEN line, got {line:?}"))
        .trim()
        .to_string();
    (child, addr, stdout)
}

fn spawn_worker(addr_file: &Path, job: u64, worker: u32) -> Child {
    Command::new(env!("CARGO_BIN_EXE_net-worker"))
        .arg(format!("@{}", addr_file.display()))
        .args(["--job", &job.to_string()])
        .args(["--n", &N.to_string()])
        .args(["--seed", &SEED.to_string()])
        .args(["--worker", &worker.to_string()])
        .args(["--batch", "4"])
        .args(["--pace-us", "150"]) // slow enough for the kill to land mid-campaign
        .args(["--retry-secs", "30"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn net-worker")
}

/// Parse `PREFIX worker=W lo-hi,lo-hi,...` lines from worker stdout.
fn parse_ranges(text: &str, prefix: &str) -> Vec<(u64, u64)> {
    let Some(line) = text.lines().find(|l| l.starts_with(prefix)) else {
        return Vec::new();
    };
    let Some(list) = line.split_whitespace().nth(2) else {
        return Vec::new(); // empty range list
    };
    list.split(',')
        .filter(|tok| !tok.is_empty())
        .map(|tok| {
            let (lo, hi) = tok.split_once('-').expect("lo-hi");
            (lo.parse().expect("lo"), hi.parse().expect("hi"))
        })
        .collect()
}

fn serial_checksum(n: u64) -> u64 {
    let w = Synthetic::uniform(n, 1, 100, SEED);
    (0..n).fold(0u64, |acc, i| acc.wrapping_add(w.execute(i)))
}

fn wait_capped(child: &mut Child, what: &str) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        assert!(Instant::now() < deadline, "{what} did not exit in time");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn sigkill_server_midcampaign_restart_finishes_exactly_once() {
    let journal_dir = tmpdir("journal");
    let addr_dir = tmpdir("addr");
    let addr_file = addr_dir.join("server.addr");

    let (mut server, addr, _out) = spawn_journaled_server(&journal_dir, &addr_file);
    let mut setup = Client::connect(&addr).expect("connect");
    let job = setup.create_job(N, dls::Kind::SS, &[]).expect("create job");

    let workers: Vec<Child> = (0..4).map(|w| spawn_worker(&addr_file, job, w)).collect();

    // Wait until the campaign is demonstrably underway, then SIGKILL.
    let deadline = Instant::now() + Duration::from_secs(30);
    let completed_at_kill = loop {
        let snap: StatsSnapshot = setup.stats().expect("stats");
        let completed = snap.jobs.first().map_or(0, |j| j.completed);
        if completed >= 1_000 {
            break completed;
        }
        assert!(Instant::now() < deadline, "campaign never got underway");
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(completed_at_kill < N, "kill must land mid-campaign, not after");
    drop(setup);
    let kill =
        Command::new("kill").args(["-9", &server.id().to_string()]).status().expect("run kill");
    assert!(kill.success());
    let status = wait_capped(&mut server, "killed dls-serverd");
    assert!(!status.success(), "SIGKILL is not a graceful exit");

    // Restart on the same journal; the addr file is atomically
    // republished with the fresh port and the fleet finds it.
    let (mut server2, addr2, out2) = spawn_journaled_server(&journal_dir, &addr_file);
    assert_ne!(addr, addr2, "ephemeral restart binds a fresh port");

    // The fleet never exited; it reconnects, resumes, finishes.
    let mut acked: Vec<(u64, u64)> = Vec::new();
    let mut ambiguous: Vec<(u64, u64)> = Vec::new();
    for (w, child) in workers.into_iter().enumerate() {
        let out = child.wait_with_output().expect("worker output");
        assert!(out.status.success(), "worker {w} failed: {:?}", out.status);
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        acked.extend(parse_ranges(&text, "RANGES "));
        ambiguous.extend(parse_ranges(&text, "AMBIG "));
    }

    // Exactly-once bitmap. Acked ranges must be disjoint outright.
    let mut counts = vec![0u8; N as usize];
    for &(lo, hi) in &acked {
        for i in lo..hi {
            assert!(counts[i as usize] == 0, "iteration {i} acked twice");
            counts[i as usize] = 1;
        }
    }
    // An ambiguous range (report round trip severed by the SIGKILL) is
    // resolved against the acked union: if its iterations were acked
    // by anyone, the lease was re-armed and redone — the ambiguous
    // copy never settled. If they were acked by no one, the settle
    // *was* journaled before the crash and counts exactly once.
    let workload = Synthetic::uniform(N, 1, 100, SEED);
    let mut total: u64 = acked
        .iter()
        .flat_map(|&(lo, hi)| lo..hi)
        .fold(0u64, |s, i| s.wrapping_add(workload.execute(i)));
    for &(lo, hi) in &ambiguous {
        let covered = (lo..hi).filter(|&i| counts[i as usize] != 0).count() as u64;
        if covered == 0 {
            for i in lo..hi {
                counts[i as usize] = 1;
                total = total.wrapping_add(workload.execute(i));
            }
        } else {
            assert_eq!(covered, hi - lo, "ambiguous range {lo}-{hi} partially covered");
        }
    }
    assert!(counts.iter().all(|&c| c == 1), "zero lost iterations");
    assert_eq!(total, serial_checksum(N), "checksum identical to serial");

    // Server-side ledger agrees, under the bumped epoch.
    let mut check = Client::connect(&addr2).expect("connect restarted");
    let progress = check.resume_job(job).expect("resume");
    assert!(progress.done, "job finished");
    assert_eq!(progress.completed, N);
    assert_eq!(progress.epoch, 2, "second incarnation");
    let snap = check.stats().expect("stats");
    assert!(snap.journal.enabled);
    assert_eq!(snap.journal.epoch, 2);
    let j = &snap.jobs[0];
    assert!(j.done);
    assert_eq!(j.completed, N);

    // Graceful drain of the restarted server: journal flushed, STATS
    // reports the journal counters.
    check.shutdown_server().expect("shutdown frame");
    drop(check);
    assert!(wait_capped(&mut server2, "restarted dls-serverd").success());
    let mut stats = String::new();
    for line in out2.lines() {
        let line = line.expect("server stdout");
        if let Some(json) = line.strip_prefix("STATS ") {
            stats = json.to_string();
        }
    }
    assert!(stats.contains("\"journal\":{\"enabled\":true"), "journal block in STATS: {stats}");
    assert!(stats.contains("\"journal_records\":"), "record counter in STATS");
    assert!(stats.contains("\"journal_bytes\":"), "byte counter in STATS");
    assert!(stats.contains("\"fsyncs\":"), "fsync counter in STATS");
    assert!(stats.contains("\"snapshots\":"), "snapshot counter in STATS");

    let _ = std::fs::remove_dir_all(&journal_dir);
    let _ = std::fs::remove_dir_all(&addr_dir);
}

/// Restarting a *gracefully drained* server must also resume cleanly —
/// the journal's `Drained` record is informational, not a tombstone —
/// and a job created in epoch 1 is fetchable in epoch 2.
#[test]
fn graceful_restart_resumes_jobs() {
    let journal_dir = tmpdir("graceful");
    let addr_dir = tmpdir("graceful-addr");
    let addr_file = addr_dir.join("server.addr");

    let (mut server, addr, _out) = spawn_journaled_server(&journal_dir, &addr_file);
    let mut c = Client::connect(&addr).expect("connect");
    let job = c.create_job(500, dls::Kind::GSS, &[]).expect("create job");
    c.shutdown_server().expect("shutdown frame");
    drop(c);
    assert!(wait_capped(&mut server, "dls-serverd").success());

    let (mut server2, addr2, _out2) = spawn_journaled_server(&journal_dir, &addr_file);
    let mut c2 = Client::connect(&addr2).expect("connect restarted");
    let progress = c2.resume_job(job).expect("resume after graceful drain");
    assert_eq!(progress.epoch, 2);
    assert_eq!(progress.n, 500);
    assert!(!progress.done);
    // The job is live: drive it to completion in the new epoch.
    let (_, iters, _) =
        dls_service::drive_job(&mut c2, job, 0, 4, &mut |i| i, &mut |_| true).expect("drive");
    assert_eq!(iters, 500);
    c2.shutdown_server().expect("shutdown frame");
    drop(c2);
    assert!(wait_capped(&mut server2, "restarted dls-serverd").success());

    let _ = std::fs::remove_dir_all(&journal_dir);
    let _ = std::fs::remove_dir_all(&addr_dir);
}
