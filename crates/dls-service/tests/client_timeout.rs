//! Client-side read semantics: a stalled server (connection open,
//! nothing arriving) must surface as `TimedOut`, a closed connection
//! as `UnexpectedEof`, and a slow-but-alive server must be waited out
//! across poll ticks — three outcomes the old `read_exact_buffered`
//! conflated.

use dls_service::protocol::{frame, Response};
use dls_service::{Client, ClientError};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// A listener that accepts and then never answers: the call must fail
/// with `TimedOut` once the deadline lapses — and must NOT be reported
/// as the server closing the connection.
#[test]
fn stalled_server_is_timeout_not_eof() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let hold = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        // Hold the socket open, reading nothing, answering nothing.
        std::thread::sleep(Duration::from_secs(5));
        drop(stream);
    });

    let mut c = Client::connect(addr).expect("connect");
    c.set_read_deadline(Some(Duration::from_millis(200))).expect("deadline");
    let start = Instant::now();
    match c.heartbeat(0) {
        Err(ClientError::Io(e)) => {
            assert_eq!(e.kind(), ErrorKind::TimedOut, "stall must be TimedOut, got {e}");
        }
        other => panic!("expected timeout, got {other:?}"),
    }
    let waited = start.elapsed();
    assert!(waited >= Duration::from_millis(200), "deadline honoured, waited {waited:?}");
    assert!(waited < Duration::from_secs(4), "did not block until the peer gave up");
    drop(c);
    hold.join().expect("listener thread");
}

/// A peer that closes is still `UnexpectedEof` — the deadline logic
/// must not absorb real EOFs into timeouts.
#[test]
fn closed_connection_is_still_eof() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let closer = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        // Consume the request so the close is a clean FIN, not an RST.
        let mut req = [0u8; 256];
        let _ = stream.read(&mut req);
        drop(stream); // close without replying
    });

    let mut c = Client::connect(addr).expect("connect");
    c.set_read_deadline(Some(Duration::from_secs(5))).expect("deadline");
    match c.heartbeat(0) {
        Err(ClientError::Io(e)) => {
            assert_eq!(e.kind(), ErrorKind::UnexpectedEof, "close must stay EOF, got {e}");
        }
        other => panic!("expected EOF, got {other:?}"),
    }
    closer.join().expect("listener thread");
}

/// A reply that arrives after several poll ticks but inside the
/// deadline is delivered: transient `WouldBlock`/`TimedOut` ticks are
/// retried, not surfaced.
#[test]
fn late_reply_within_deadline_is_delivered() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let replier = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        // Consume the request frame so the client's write can't jam.
        let mut req = [0u8; 256];
        let _ = stream.read(&mut req);
        // Answer well after the client's poll tick, inside its deadline.
        std::thread::sleep(Duration::from_millis(300));
        stream.write_all(&frame(&Response::Ack.encode())).expect("reply");
    });

    let mut c = Client::connect(addr).expect("connect");
    // Deadline 2s -> poll tick 250ms: the 300ms reply needs >1 tick.
    c.set_read_deadline(Some(Duration::from_secs(2))).expect("deadline");
    c.heartbeat(0).expect("late reply must be waited out, not dropped");
    replier.join().expect("listener thread");
}
