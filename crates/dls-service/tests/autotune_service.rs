//! AUTO jobs on the live service: the tuner switches techniques
//! mid-job at batch boundaries, every iteration still settles exactly
//! once, and a SIGKILL'd server replays its journaled decision history
//! bit-identically — resuming under the *same* active technique the
//! dead incarnation had switched to, never re-deriving decisions from
//! post-crash timings.

#![cfg(unix)]

use dls::SchedKind;
use dls_service::{Client, FetchReply, Server, ServiceConfig};
use durability::Journal;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dls-autotune-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Assert a decision list is dense by `seq` and chains `from`/`to`.
fn assert_decision_chain(decisions: &[dls::Decision], origin: SchedKind) {
    let mut prev = origin;
    for (i, d) in decisions.iter().enumerate() {
        assert_eq!(d.seq, i as u32, "decision seqs are dense");
        assert_eq!(d.from, prev, "decision {i} chains from the previous technique");
        assert_ne!(d.from, d.to, "a switch goes somewhere else");
        prev = d.to;
    }
}

/// The tuner's assumed per-fetch overhead, pinned far above any real
/// loopback round trip so the overhead rule fires deterministically at
/// every eligible window — the ladder walk under test must not depend
/// on wall-clock latency.
const PINNED_OVERHEAD_NS: u64 = 1_000_000_000;

/// An in-process campaign against an AUTO job with the overhead signal
/// pinned high: the tuner climbs the ladder (SS -> GSS -> FAC2 -> AF)
/// while the job runs — and the client must still see every iteration
/// exactly once across all the re-basings.
#[test]
fn auto_job_switches_midjob_and_stays_exactly_once() {
    let cfg = ServiceConfig { tuner_overhead_ns: Some(PINNED_OVERHEAD_NS), ..Default::default() };
    let srv = Server::start(cfg, "127.0.0.1:0").expect("bind");
    let mut c = Client::connect(srv.addr()).expect("connect");
    const N: u64 = 4_000;
    let job = c.create_job(N, SchedKind::Auto, &[]).expect("create AUTO job");

    let mut counts = vec![0u32; N as usize];
    loop {
        match c.fetch(job, 0, 2).expect("fetch") {
            FetchReply::Done => break,
            FetchReply::Pending => std::thread::sleep(Duration::from_millis(1)),
            FetchReply::Chunks(chunks) => {
                for g in &chunks {
                    for i in g.lo..g.hi {
                        counts[i as usize] += 1;
                    }
                }
                let leases: Vec<_> = chunks.iter().map(|g| g.lease).collect();
                c.report_done(job, &leases).expect("report");
            }
        }
    }
    assert!(counts.iter().all(|&k| k == 1), "every iteration granted exactly once");

    let snap = c.stats().expect("stats");
    let row = &snap.jobs[0];
    assert!(row.done);
    assert_eq!(row.completed, N);
    assert_eq!(row.mode, Some(SchedKind::Auto), "creation mode is preserved");
    assert!(
        row.decisions.len() >= 2,
        "pinned overhead pressure must walk at least two rungs, got {:?}",
        row.decisions
    );
    assert_decision_chain(&row.decisions, SchedKind::Fixed(dls::Kind::SS));
    assert_eq!(
        row.kind,
        Some(row.decisions.last().expect("non-empty").to),
        "active technique is the last decision's target"
    );
    // The STATS JSON carries the timeline too.
    let json = snap.to_json();
    assert!(json.contains("\"mode\":\"AUTO\""), "mode in STATS json: {json}");
    assert!(json.contains("\"decisions\":[{\"seq\":0"), "decision timeline in STATS json");
    drop(c);
    srv.shutdown();
}

/// A fixed-kind job must never grow a decision history.
#[test]
fn fixed_jobs_never_switch() {
    let srv = Server::start(ServiceConfig::default(), "127.0.0.1:0").expect("bind");
    let mut c = Client::connect(srv.addr()).expect("connect");
    let job = c.create_job(500, dls::Kind::GSS, &[]).expect("create");
    let (_, iters, _) =
        dls_service::drive_job(&mut c, job, 0, 4, &mut |i| i, &mut |_| true).expect("drive");
    assert_eq!(iters, 500);
    let snap = c.stats().expect("stats");
    assert_eq!(snap.jobs[0].kind, Some(SchedKind::Fixed(dls::Kind::GSS)));
    assert!(snap.jobs[0].decisions.is_empty());
    drop(c);
    srv.shutdown();
}

fn spawn_journaled_server(
    journal_dir: &Path,
    addr_file: &Path,
) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dls-serverd"))
        .args(["--addr", "127.0.0.1:0"])
        .args(["--journal-dir", journal_dir.to_str().expect("utf8 dir")])
        .args(["--addr-file", addr_file.to_str().expect("utf8 addr file")])
        .args(["--snapshot-every", "256"])
        .args(["--tuner-overhead-ns", &PINNED_OVERHEAD_NS.to_string()])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dls-serverd");
    let mut stdout = BufReader::new(child.stdout.take().expect("server stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read LISTEN line");
    let addr = line
        .strip_prefix("LISTEN ")
        .unwrap_or_else(|| panic!("expected LISTEN line, got {line:?}"))
        .trim()
        .to_string();
    (child, addr, stdout)
}

/// SIGKILL an AUTO campaign after the tuner has taken decisions; the
/// restart must (a) replay the journal to the same bytes every time,
/// (b) resume with the last journaled decision's technique in force,
/// and (c) finish the loop with zero lost and zero doubled iterations.
#[test]
fn sigkill_auto_job_replays_decisions_bit_identically() {
    let journal_dir = tmpdir("journal");
    let addr_dir = tmpdir("addr");
    let addr_file = addr_dir.join("server.addr");
    const N: u64 = 30_000;

    let (mut server, addr, _out) = spawn_journaled_server(&journal_dir, &addr_file);
    let mut c = Client::connect(&addr).expect("connect");
    let job = c.create_job(N, SchedKind::Auto, &[]).expect("create AUTO job");

    // Drive until at least two decisions are journaled (the pinned
    // overhead signal fires at every eligible window), settling every
    // chunk before the next fetch so the kill lands with nothing in
    // flight.
    let mut acked: Vec<(u64, u64)> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    let pre_kill = loop {
        match c.fetch(job, 0, 2).expect("fetch") {
            FetchReply::Done => panic!("job must not finish before the kill"),
            FetchReply::Pending => std::thread::sleep(Duration::from_millis(1)),
            FetchReply::Chunks(chunks) => {
                acked.extend(chunks.iter().map(|g| (g.lo, g.hi)));
                let leases: Vec<_> = chunks.iter().map(|g| g.lease).collect();
                c.report_done(job, &leases).expect("report");
            }
        }
        let snap = c.stats().expect("stats");
        let row = &snap.jobs[0];
        if row.decisions.len() >= 2 && row.completed < N {
            break row.decisions.clone();
        }
        assert!(Instant::now() < deadline, "tuner never took two decisions");
    };
    assert_decision_chain(&pre_kill, SchedKind::Fixed(dls::Kind::SS));
    drop(c);

    let kill =
        Command::new("kill").args(["-9", &server.id().to_string()]).status().expect("run kill");
    assert!(kill.success());
    let _ = server.wait();

    // Replay the crash-truncated journal twice from scratch: the
    // decision history (and everything else) must be bit-identical.
    let first = Journal::replay_dir(&journal_dir).expect("replay once");
    let second = Journal::replay_dir(&journal_dir).expect("replay twice");
    assert_eq!(first.serialize(), second.serialize(), "replay is deterministic");
    assert_eq!(first.digest(), second.digest());
    let img = &first.jobs[&job];
    assert_eq!(
        img.decisions, pre_kill,
        "journal replays exactly the decisions the live server reported"
    );
    let expected_active = img.active_kind().expect("AUTO job has a kind");
    assert_eq!(expected_active, pre_kill.last().expect("two decisions").to);

    // Restart: the recovered job resumes under that same technique.
    let (mut server2, addr2, _out2) = spawn_journaled_server(&journal_dir, &addr_file);
    let mut c2 = Client::connect(&addr2).expect("connect restarted");
    let progress = c2.resume_job(job).expect("resume");
    assert_eq!(progress.epoch, 2);
    assert_eq!(progress.decisions, pre_kill, "decision history survives the restart");
    assert_eq!(progress.kind, expected_active, "active technique replayed, not re-derived");
    assert!(!progress.done);

    // Finish the loop in epoch 2 and prove exactly-once end to end:
    // pre-kill acked ranges plus post-restart acked ranges tile [0, N)
    // with multiplicity one (journal-before-ack made the pre-kill acks
    // durable; unsettled grants were re-armed for re-execution).
    loop {
        match c2.fetch(job, 0, 4).expect("fetch") {
            FetchReply::Done => break,
            FetchReply::Pending => std::thread::sleep(Duration::from_millis(1)),
            FetchReply::Chunks(chunks) => {
                acked.extend(chunks.iter().map(|g| (g.lo, g.hi)));
                let leases: Vec<_> = chunks.iter().map(|g| g.lease).collect();
                c2.report_done(job, &leases).expect("report");
            }
        }
    }
    let mut counts = vec![0u32; N as usize];
    for &(lo, hi) in &acked {
        for i in lo..hi {
            counts[i as usize] += 1;
        }
    }
    assert!(counts.iter().all(|&k| k == 1), "exactly-once across switch + SIGKILL + re-basing");
    let end = c2.resume_job(job).expect("final resume");
    assert!(end.done);
    assert!(
        end.decisions.len() >= pre_kill.len(),
        "epoch-2 tuner continues the sequence, never rewrites it"
    );
    assert_eq!(&end.decisions[..pre_kill.len()], &pre_kill[..], "history is append-only");
    assert_decision_chain(&end.decisions, SchedKind::Fixed(dls::Kind::SS));

    c2.shutdown_server().expect("shutdown frame");
    drop(c2);
    let _ = server2.wait();
    let _ = std::fs::remove_dir_all(&journal_dir);
    let _ = std::fs::remove_dir_all(&addr_dir);
}
