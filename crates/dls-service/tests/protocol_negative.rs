//! Negative-path protocol tests, mostly over **raw sockets**: every
//! malformed or out-of-contract request must come back as a typed
//! [`Response::Error`] frame (or a clean close) — never a panic, a
//! hang, or a leaked connection thread.

use dls_service::protocol::{frame, Request, Response, MAX_FRAME, VERSION};
use dls_service::{Client, ClientError, ErrorCode, FetchReply, Server, ServiceConfig};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn server() -> Server {
    Server::start(ServiceConfig::default(), "127.0.0.1:0").expect("bind")
}

fn raw(srv: &Server) -> TcpStream {
    let s = TcpStream::connect(srv.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    s
}

/// Read exactly one length-prefixed response frame and decode it.
fn read_response(s: &mut TcpStream) -> Response {
    let mut len = [0u8; 4];
    s.read_exact(&mut len).expect("read length prefix");
    let len = u32::from_le_bytes(len) as usize;
    assert!(len <= MAX_FRAME as usize, "response frame within bounds");
    let mut payload = vec![0u8; len];
    s.read_exact(&mut payload).expect("read payload");
    Response::decode(&payload).expect("decode response")
}

/// EOF (clean close by the server) — not a hang, not garbage.
fn expect_eof(s: &mut TcpStream) {
    let mut byte = [0u8; 1];
    match s.read(&mut byte) {
        Ok(0) => {}
        Ok(_) => panic!("expected EOF, got more data"),
        Err(e) if e.kind() == ErrorKind::ConnectionReset => {}
        Err(e) => panic!("expected EOF, got {e}"),
    }
}

fn error_code(resp: Response) -> ErrorCode {
    match resp {
        Response::Error { code, .. } => code,
        other => panic!("expected error frame, got {other:?}"),
    }
}

/// Wait until every connection thread has unwound (active count 0).
fn wait_drained(srv: &Server) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while srv.snapshot().totals.conns_active > 0 {
        assert!(Instant::now() < deadline, "connection threads leaked");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn truncated_frame_then_eof_is_harmless() {
    let srv = server();
    {
        let mut s = raw(&srv);
        // Claim 100 bytes, deliver 10, vanish.
        s.write_all(&100u32.to_le_bytes()).expect("write prefix");
        s.write_all(&[0u8; 10]).expect("write partial payload");
    } // dropped: EOF mid-frame
    wait_drained(&srv);
    // The server is unharmed: a well-formed client still gets service.
    let mut c = Client::connect(srv.addr()).expect("connect");
    let job = c.create_job(10, dls::Kind::SS, &[]).expect("create job");
    assert!(matches!(c.fetch(job, 0, 1), Ok(FetchReply::Chunks(_))));
    drop(c);
    wait_drained(&srv);
    srv.shutdown();
}

#[test]
fn unknown_version_byte_is_typed_then_closed() {
    let srv = server();
    let mut s = raw(&srv);
    // A syntactically valid frame whose version byte is from the future.
    s.write_all(&frame(&[99, 5])).expect("write");
    assert_eq!(error_code(read_response(&mut s)), ErrorCode::BadVersion);
    // A foreign version poisons framing assumptions: server closes.
    expect_eof(&mut s);
    wait_drained(&srv);
    srv.shutdown();
}

#[test]
fn oversized_length_prefix_is_typed_then_closed() {
    let srv = server();
    let mut s = raw(&srv);
    s.write_all(&(MAX_FRAME + 1).to_le_bytes()).expect("write prefix");
    assert_eq!(error_code(read_response(&mut s)), ErrorCode::FrameTooLarge);
    expect_eof(&mut s); // stream cannot be resynchronised
    wait_drained(&srv);
    srv.shutdown();
}

#[test]
fn zero_length_prefix_is_typed_then_closed() {
    let srv = server();
    let mut s = raw(&srv);
    s.write_all(&0u32.to_le_bytes()).expect("write prefix");
    assert_eq!(error_code(read_response(&mut s)), ErrorCode::FrameTooLarge);
    expect_eof(&mut s);
    wait_drained(&srv);
    srv.shutdown();
}

#[test]
fn garbage_tag_is_bad_message_and_connection_survives() {
    let srv = server();
    let mut s = raw(&srv);
    s.write_all(&frame(&[VERSION, 200, 1, 2, 3])).expect("write");
    assert_eq!(error_code(read_response(&mut s)), ErrorCode::BadMessage);
    // Unlike a version mismatch, a bad tag inside our own framing is
    // recoverable: the same connection keeps working.
    s.write_all(&frame(&Request::Stats.encode())).expect("write");
    assert!(matches!(read_response(&mut s), Response::Snapshot(_)));
    drop(s);
    wait_drained(&srv);
    srv.shutdown();
}

#[test]
fn truncated_body_is_bad_message() {
    let srv = server();
    let mut s = raw(&srv);
    // FetchChunk's body wants 16 bytes; give it 2.
    let mut payload = Request::FetchChunk { job: 1, worker: 0, batch: 1 }.encode();
    payload.truncate(4);
    s.write_all(&frame(&payload)).expect("write");
    assert_eq!(error_code(read_response(&mut s)), ErrorCode::BadMessage);
    drop(s);
    wait_drained(&srv);
    srv.shutdown();
}

#[test]
fn oversized_batch_is_typed_and_connection_survives() {
    let srv = server();
    let max = ServiceConfig::default().max_batch;
    let mut c = Client::connect(srv.addr()).expect("connect");
    let job = c.create_job(1_000, dls::Kind::SS, &[]).expect("create job");
    match c.fetch(job, 0, max + 1) {
        Err(ClientError::Server { code: ErrorCode::BatchTooLarge, .. }) => {}
        other => panic!("expected BatchTooLarge, got {other:?}"),
    }
    // Same connection, legal batch: served.
    assert!(matches!(c.fetch(job, 0, max), Ok(FetchReply::Chunks(_))));
    drop(c);
    wait_drained(&srv);
    srv.shutdown();
}

#[test]
fn fetch_on_unknown_job_is_typed() {
    let srv = server();
    let mut s = raw(&srv);
    let req = Request::FetchChunk { job: 0xDEAD_BEEF, worker: 0, batch: 1 };
    s.write_all(&frame(&req.encode())).expect("write");
    assert_eq!(error_code(read_response(&mut s)), ErrorCode::UnknownJob);
    drop(s);
    wait_drained(&srv);
    srv.shutdown();
}

#[test]
fn fetch_on_finished_job_is_typed() {
    let srv = server();
    let mut c = Client::connect(srv.addr()).expect("connect");
    // n = 0: born finished.
    let job = c.create_job(0, dls::Kind::GSS, &[]).expect("create job");
    // At the raw level this is a typed JobFinished error frame (the
    // Client sugar maps it to FetchReply::Done).
    let mut s = raw(&srv);
    let req = Request::FetchChunk { job, worker: 0, batch: 1 };
    s.write_all(&frame(&req.encode())).expect("write");
    assert_eq!(error_code(read_response(&mut s)), ErrorCode::JobFinished);
    assert!(matches!(c.fetch(job, 0, 1), Ok(FetchReply::Done)));
    drop((c, s));
    wait_drained(&srv);
    srv.shutdown();
}

#[test]
fn bad_technique_byte_is_typed() {
    let srv = server();
    let mut s = raw(&srv);
    // CreateJob with an undefined technique discriminant (250).
    let mut payload = vec![VERSION, 1];
    payload.extend_from_slice(&100u64.to_le_bytes());
    payload.push(250);
    payload.extend_from_slice(&0u32.to_le_bytes()); // no weights
    s.write_all(&frame(&payload)).expect("write");
    let code = error_code(read_response(&mut s));
    assert!(
        matches!(code, ErrorCode::BadTechnique | ErrorCode::BadMessage),
        "undefined technique rejected, got {code:?}"
    );
    drop(s);
    wait_drained(&srv);
    srv.shutdown();
}

#[test]
fn first_unassigned_kind_byte_is_typed() {
    // v3 assigns bytes 0..=15 (pure 0–9, AF 10, AWF-B..E 11–14, AUTO
    // 15). Byte 16 is the *first* unassigned value — the exact
    // boundary a field-widening bug would get wrong.
    let srv = server();
    let mut s = raw(&srv);
    let mut payload = vec![VERSION, 1];
    payload.extend_from_slice(&100u64.to_le_bytes());
    payload.push(16);
    payload.extend_from_slice(&0u32.to_le_bytes()); // no weights
    s.write_all(&frame(&payload)).expect("write");
    let code = error_code(read_response(&mut s));
    assert!(
        matches!(code, ErrorCode::BadTechnique | ErrorCode::BadMessage),
        "kind byte 16 rejected, got {code:?}"
    );
    // The connection survives and valid adaptive bytes work.
    s.write_all(&frame(
        &Request::CreateJob { n: 10, kind: dls::SchedKind::Af, weights: vec![] }.encode(),
    ))
    .expect("write");
    assert!(matches!(read_response(&mut s), Response::JobCreated { .. }));
    drop(s);
    wait_drained(&srv);
    srv.shutdown();
}

#[test]
fn adaptive_kinds_against_non_adaptive_server_are_typed() {
    // A server built with `adaptive: false` speaks protocol v3 (the
    // bytes parse fine) but refuses to *drive* adaptive techniques:
    // typed BadTechnique, never a silent downgrade to some pure kind.
    let srv = Server::start(ServiceConfig { adaptive: false, ..Default::default() }, "127.0.0.1:0")
        .expect("bind");
    let mut c = Client::connect(srv.addr()).expect("connect");
    for kind in dls::SchedKind::ADAPTIVE.into_iter().chain([dls::SchedKind::Auto]) {
        match c.create_job(100, kind, &[]) {
            Err(ClientError::Server { code: ErrorCode::BadTechnique, .. }) => {}
            other => panic!("{kind}: expected BadTechnique, got {other:?}"),
        }
    }
    // Pure kinds are unaffected, on the same connection.
    let job = c.create_job(100, dls::Kind::GSS, &[]).expect("pure kind still served");
    assert!(matches!(c.fetch(job, 0, 1), Ok(FetchReply::Chunks(_))));
    drop(c);
    wait_drained(&srv);
    srv.shutdown();
}

#[test]
fn out_of_range_worker_on_weighted_job_is_typed() {
    let srv = server();
    let mut c = Client::connect(srv.addr()).expect("connect");
    // Two weights define exactly two worker slots: 0 and 1.
    let job = c.create_job(1_000, dls::Kind::WF, &[1.5, 0.5]).expect("create job");
    // Worker 2 used to be served anyway at a silent default weight of
    // 1.0 — it must now be a typed rejection, at the raw level too.
    let mut s = raw(&srv);
    let req = Request::FetchChunk { job, worker: 2, batch: 1 };
    s.write_all(&frame(&req.encode())).expect("write");
    assert_eq!(error_code(read_response(&mut s)), ErrorCode::BadWorker);
    match c.fetch(job, u32::MAX, 1) {
        Err(ClientError::Server { code: ErrorCode::BadWorker, .. }) => {}
        other => panic!("expected BadWorker, got {other:?}"),
    }
    // In-range workers on the same connections stay served, and an
    // unweighted job accepts any worker id.
    assert!(matches!(c.fetch(job, 1, 1), Ok(FetchReply::Chunks(_))));
    let unweighted = c.create_job(100, dls::Kind::SS, &[]).expect("create job");
    assert!(matches!(c.fetch(unweighted, 7_777, 1), Ok(FetchReply::Chunks(_))));
    drop((c, s));
    wait_drained(&srv);
    srv.shutdown();
}

fn journaled_server(tag: &str) -> (Server, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("dls-protoneg-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let srv = Server::start_with_journal(
        ServiceConfig::default(),
        "127.0.0.1:0",
        durability::JournalOptions::new(&dir),
        4096,
    )
    .expect("bind journaled");
    (srv, dir)
}

#[test]
fn resume_unknown_job_is_typed() {
    let (srv, dir) = journaled_server("resume-unknown");
    let mut c = Client::connect(srv.addr()).expect("connect");
    match c.resume_job(0xDEAD_BEEF) {
        Err(ClientError::Server { code: ErrorCode::UnknownJob, .. }) => {}
        other => panic!("expected UnknownJob, got {other:?}"),
    }
    drop(c);
    wait_drained(&srv);
    srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_epoch_report_is_typed_and_settles_nothing() {
    let (srv, dir) = journaled_server("stale-epoch");
    let mut c = Client::connect(srv.addr()).expect("connect");
    let job = c.create_job(100, dls::Kind::SS, &[]).expect("create job");
    let FetchReply::Chunks(held) = c.fetch(job, 0, 1).expect("fetch") else { panic!("chunks") };
    assert_eq!(c.epoch(), 1, "first incarnation");

    // A report carrying a dead incarnation's epoch: typed rejection.
    let mut s = raw(&srv);
    let req = Request::ReportDone { job, leases: vec![held[0].lease], epoch: 0 };
    s.write_all(&frame(&req.encode())).expect("write");
    assert_eq!(error_code(read_response(&mut s)), ErrorCode::StaleEpoch);

    // Nothing settled: the same lease still settles under the real
    // epoch, exactly once.
    c.report_done(job, &[held[0].lease]).expect("current-epoch report");
    let snap = c.stats().expect("stats");
    assert_eq!(snap.jobs[0].leases_completed, 1, "settled once, by the live epoch");
    drop((c, s));
    wait_drained(&srv);
    srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_on_journal_disabled_server_is_typed_not_a_hang() {
    let srv = server();
    let mut c = Client::connect(srv.addr()).expect("connect");
    let job = c.create_job(100, dls::Kind::SS, &[]).expect("create job");
    match c.resume_job(job) {
        Err(ClientError::Server { code: ErrorCode::NoJournal, .. }) => {}
        other => panic!("expected NoJournal, got {other:?}"),
    }
    // The connection survives the refusal.
    assert!(matches!(c.fetch(job, 0, 1), Ok(FetchReply::Chunks(_))));
    drop(c);
    wait_drained(&srv);
    srv.shutdown();
}

#[test]
fn resume_on_journaled_server_reports_progress() {
    let (srv, dir) = journaled_server("resume-ok");
    let mut c = Client::connect(srv.addr()).expect("connect");
    let job = c.create_job(100, dls::Kind::SS, &[]).expect("create job");
    let FetchReply::Chunks(held) = c.fetch(job, 0, 2).expect("fetch") else { panic!("chunks") };
    c.report_done(job, &[held[0].lease]).expect("report");
    let p = c.resume_job(job).expect("resume");
    assert_eq!(p.epoch, 1);
    assert_eq!(p.n, 100);
    assert_eq!(p.completed, held[0].hi - held[0].lo);
    assert!(p.scheduled >= p.completed);
    assert!(!p.done);
    drop(c);
    wait_drained(&srv);
    srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn abusive_connections_leak_no_threads() {
    let srv = server();
    for round in 0..20 {
        let mut s = raw(&srv);
        match round % 4 {
            0 => s.write_all(&7u32.to_le_bytes()).expect("write"), // truncated
            1 => s.write_all(&frame(&[42, 0])).expect("write"),    // bad version
            2 => s.write_all(&(MAX_FRAME * 2).to_le_bytes()).expect("write"), // huge
            _ => {}                                                // connect-and-vanish
        }
        drop(s);
    }
    // A served request on a *later* connection proves every earlier one
    // was accepted (the accept queue is ordered), so the totals below
    // cannot race the accept loop.
    let mut c = Client::connect(srv.addr()).expect("connect");
    c.stats().expect("stats");
    drop(c);
    wait_drained(&srv);
    let snap = srv.shutdown();
    assert_eq!(snap.totals.conns_active, 0);
    assert!(snap.totals.conns_total >= 21);
}
