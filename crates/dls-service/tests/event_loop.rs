//! Event-loop-specific behaviour: CAS admission under a connection
//! storm, and non-blocking `Busy` rejection with sockets that never
//! read.

use dls_service::{Client, ClientError, ErrorCode, Server, ServiceConfig};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn wait_drained(srv: &Server) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while srv.snapshot().totals.conns_active > 0 {
        assert!(Instant::now() < deadline, "connections leaked");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Admission is a single compare-and-swap: a storm of concurrent
/// connects can never push the admitted count past `max_connections`.
/// The old accept path checked the counter and incremented it later —
/// two racing accepts could both pass the check and overshoot the cap.
#[test]
fn admission_cap_never_exceeded_under_connection_storm() {
    const CAP: u32 = 8;
    const THREADS: usize = 12;
    const ROUNDS: usize = 25;
    let cfg = ServiceConfig { max_connections: CAP, event_loops: 3, ..Default::default() };
    let srv = Server::start(cfg, "127.0.0.1:0").expect("bind");
    let addr = srv.addr();

    let served = Arc::new(AtomicU64::new(0));
    let busy = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let (served, busy) = (Arc::clone(&served), Arc::clone(&busy));
            std::thread::spawn(move || {
                for _ in 0..ROUNDS {
                    let Ok(mut c) = Client::connect(addr) else { continue };
                    c.set_read_deadline(Some(Duration::from_secs(5))).expect("deadline");
                    match c.heartbeat(0) {
                        Ok(()) => served.fetch_add(1, Ordering::Relaxed),
                        Err(ClientError::Server { code: ErrorCode::Busy, .. }) => {
                            busy.fetch_add(1, Ordering::Relaxed)
                        }
                        // A rejected socket may also be closed before
                        // the Busy frame is read — equally a rejection.
                        Err(ClientError::Io(_)) => busy.fetch_add(1, Ordering::Relaxed),
                        Err(e) => panic!("unexpected failure: {e}"),
                    };
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("storm thread");
    }

    assert!(served.load(Ordering::Relaxed) > 0, "some connections must be served");
    wait_drained(&srv);
    let peak = srv.peak_connections();
    assert!(peak > 0, "storm must admit at least one connection");
    assert!(peak <= u64::from(CAP), "CAS admission overshot the cap: peak {peak} > {CAP}");
    let snap = srv.shutdown();
    // Rejected connections are never admitted, so they appear in
    // neither the active count nor the total.
    assert_eq!(snap.totals.conns_total, served.load(Ordering::Relaxed));
}

/// `Busy` rejection is one best-effort non-blocking write and a close:
/// a pile of rejected sockets whose owners never read can no longer
/// wedge the accept path (the old path used a blocking `write_all`).
#[test]
fn busy_rejection_never_blocks_the_accept_path() {
    let cfg = ServiceConfig { max_connections: 1, event_loops: 1, ..Default::default() };
    let srv = Server::start(cfg, "127.0.0.1:0").expect("bind");

    let mut admitted = Client::connect(srv.addr()).expect("connect");
    admitted.set_read_deadline(Some(Duration::from_secs(5))).expect("deadline");
    admitted.heartbeat(0).expect("admitted client is served");

    // Pile up connections that are rejected but never read their Busy
    // frame — connected-but-unread sockets.
    let hoard: Vec<TcpStream> =
        (0..32).map(|_| TcpStream::connect(srv.addr()).expect("connect")).collect();

    // The admitted connection must stay responsive while the hoard
    // exists: the rejection writes cannot stall the loop shard.
    let start = Instant::now();
    for _ in 0..10 {
        admitted.heartbeat(0).expect("server responsive during rejection hoard");
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "accept-path rejection stalled the event loop"
    );

    // Each hoarded socket was answered Busy (or closed before the
    // frame could be read) — never left hanging open and unanswered.
    for mut s in hoard {
        use std::io::Read;
        s.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut buf = [0u8; 64];
        match s.read(&mut buf) {
            Ok(_) => {} // Busy frame bytes or EOF
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
            Err(e) => panic!("rejected socket left hanging: {e}"),
        }
    }

    drop(admitted);
    wait_drained(&srv);
    assert_eq!(srv.peak_connections(), 1, "the cap-1 server admitted exactly one");
    let snap = srv.shutdown();
    assert_eq!(snap.totals.conns_total, 1, "rejected sockets are never admitted");
    assert_eq!(snap.totals.conns_active, 0);
}
