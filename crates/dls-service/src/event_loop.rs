//! The sharded readiness loop — the server's connection engine.
//!
//! `Server::start` spawns `ServiceConfig::event_loops` loop shards.
//! Each shard owns a clone of the accept socket (its share of the
//! accept load: level-triggered readiness wakes every shard, the
//! kernel hands each pending connection to exactly one `accept`
//! winner, the rest see `WouldBlock`), an epoll instance, and a slab
//! of per-connection state machines ([`crate::machine::ConnMachine`]).
//! No thread is ever spawned per connection; a shard serves thousands
//! of sockets from one thread.
//!
//! One readiness **cycle** is three passes:
//!
//! 1. *Ingest*: accept new connections (admission is a single
//!    `fetch_update` CAS on the active-connection counter — the old
//!    check-then-act race cannot overshoot `max_connections`), read
//!    every ready socket into its ring buffer, and extract decoded
//!    requests in arrival order.
//! 2. *Serve*: answer the whole cycle's requests in one pass. Fetches
//!    keep the job-table shard lock *cached* between consecutive ops,
//!    so a burst of fetches against one job locks its shard once per
//!    cycle instead of once per request — and each lock acquisition
//!    drains the reclaim pool and advances the counters for every
//!    waiting fetch before the lock is released (wakeup-free
//!    batching: no condvars, no cross-thread handoff). Global stat
//!    counters are accumulated locally and flushed with one atomic
//!    add per counter per cycle.
//! 3. *Flush*: write each touched connection's queued responses with
//!    non-blocking writes, arming `EPOLLOUT` only while a partial
//!    write is outstanding, then retire connections that died or
//!    were poisoned by a framing violation.
//!
//! Rejected connections (`Busy`) get one best-effort non-blocking
//! write and an immediate close — a client that never reads can no
//! longer stall the accept path (the old blocking `write_all` could).
//!
//! During a drain the shard stops accepting, keeps answering buffered
//! requests, closes connections once they go quiet, and gives a
//! half-received frame [`DRAIN_GRACE_CYCLES`] cycles to complete
//! (the old core could wait on such a connection forever).

use crate::machine::{ConnMachine, FramePeek};
use crate::poller::{Event, Interest, Poller};
use crate::protocol::{frame, ConnSnapshot, ErrorCode, Request, Response, VERSION};
use crate::server::State;
use crate::sync::atomic::Ordering;
use crate::sync::{Arc, MutexGuard};
use std::io::{ErrorKind, Write};
use std::net::{Shutdown as SockShutdown, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};

/// Token reserved for the shard's accept socket.
const LISTENER_TOKEN: u64 = u64::MAX;

/// Receive-side flow control: stop reading a connection within a cycle
/// once this many bytes are buffered (TCP backpressure takes over).
const RX_SOFT_CAP: usize = 1 << 20;

/// Readiness cycles a draining shard grants a connection that holds a
/// half-received frame before closing it anyway.
const DRAIN_GRACE_CYCLES: u32 = 5;

/// One decoded unit of work, queued in arrival order so responses on a
/// connection always match its request order (pipelining-safe).
enum OpKind {
    /// `FetchChunk` — served by the batched shard-lock pass.
    Fetch { job: u64, worker: u32, batch: u32 },
    /// Any other well-formed request — served through `State::handle`.
    Other(Request),
    /// A pre-computed response (decode errors); `close` poisons the
    /// connection once flushed.
    Reply { resp: Response, close: bool },
}

struct ConnEntry {
    id: u64,
    stream: TcpStream,
    machine: ConnMachine,
    stat: ConnSnapshot,
    interest: Interest,
    /// Read side saw EOF or a hard error: retire after this cycle.
    dead: bool,
    stat_dirty: bool,
}

/// Per-cycle additions to the server-wide atomic counters, applied
/// with one `fetch_add` per counter per cycle.
#[derive(Default)]
struct CycleTally {
    bytes_in: u64,
    bytes_out: u64,
    fetches: u64,
    chunks_granted: u64,
    empty_polls: u64,
}

pub(crate) struct LoopShard {
    state: Arc<State>,
    poller: Poller,
    listener: Option<TcpListener>,
    conns: Vec<Option<ConnEntry>>,
    free: Vec<usize>,
    live: usize,
    events: Vec<Event>,
    ops: Vec<(usize, OpKind)>,
    touched: Vec<usize>,
}

impl LoopShard {
    pub(crate) fn new(listener: TcpListener, state: Arc<State>) -> std::io::Result<LoopShard> {
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        Ok(LoopShard {
            state,
            poller,
            listener: Some(listener),
            conns: Vec::new(),
            free: Vec::new(),
            live: 0,
            events: Vec::new(),
            ops: Vec::new(),
            touched: Vec::new(),
        })
    }

    /// Run until the drain completes.
    pub(crate) fn run(&mut self) {
        let poll_interval = self.state.cfg.poll_interval;
        loop {
            let draining = self.state.shutdown.load(Ordering::SeqCst);
            if draining {
                if let Some(listener) = self.listener.take() {
                    self.poller.deregister(listener.as_raw_fd());
                }
            }
            if self.poller.wait(&mut self.events, poll_interval).is_err() {
                // A failed wait is unrecoverable for this shard only if
                // it repeats; yield briefly and retry.
                std::thread::yield_now();
                continue;
            }

            let mut tally = CycleTally::default();
            self.touched.clear();

            // ---- pass 1: ingest -------------------------------------------
            for i in 0..self.events.len() {
                let ev = self.events[i];
                if ev.token == LISTENER_TOKEN {
                    if !draining {
                        self.accept_burst();
                    }
                    continue;
                }
                let slot = ev.token as usize;
                if self.conns.get(slot).is_none_or(|c| c.is_none()) {
                    continue; // stale event for a retired connection
                }
                // Level-triggered readiness: reading a write-only-ready
                // connection just costs one `WouldBlock`, so every event
                // is treated uniformly (read, then flush via `touched`).
                self.read_conn(slot, &mut tally);
                self.touched.push(slot);
            }

            // ---- pass 2: serve --------------------------------------------
            self.serve_cycle(&mut tally);

            // ---- journal barrier ------------------------------------------
            // Group-commit the cycle's journal records *before* any
            // response bytes hit a socket: an ack the client can see
            // implies the matching Settled/Granted record is durable.
            // (Grant-side loss is additionally fenced by the epoch
            // bump on restart.)
            self.state.journal_commit();

            // ---- pass 3: flush & retire -----------------------------------
            self.touched.sort_unstable();
            self.touched.dedup();
            for i in 0..self.touched.len() {
                let slot = self.touched[i];
                self.flush_conn(slot);
            }
            if draining {
                self.drain_pass();
            }
            self.commit(&tally);

            if draining && self.live == 0 && self.listener.is_none() {
                break;
            }
        }
    }

    // ---- accept path ----------------------------------------------------

    fn accept_burst(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else { return };
            match listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        let state = &self.state;
        let _ = stream.set_nonblocking(true);
        let _ = stream.set_nodelay(true);
        let max = u64::from(state.cfg.max_connections);
        // Admission is one CAS: concurrent accepts across shards can
        // never push the active count past the limit (the old
        // load-then-increment let them).
        let admitted = state
            .conns_active
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| (c < max).then_some(c + 1));
        let prev = match admitted {
            Ok(prev) => prev,
            Err(_) => {
                // Best-effort rejection: one non-blocking write, then
                // close. A rejected client that never reads cannot
                // stall admission.
                let resp = Response::Error {
                    code: ErrorCode::Busy,
                    detail: format!("connection limit {} reached", state.cfg.max_connections),
                };
                let mut stream = stream;
                let _ = stream.write(&frame(&resp.encode()));
                let _ = stream.shutdown(SockShutdown::Both);
                return;
            }
        };
        // Relaxed is enough for both: `fetch_max` is an RMW, so it
        // compares against the *latest* peak in modification order and
        // can never lose a concurrent maximum (a load/compare/store
        // version could — both seeded and caught by the conc-check
        // `LoadStorePeak` model). `conns_total` is a pure stat counter.
        state.conns_peak.fetch_max(prev + 1, Ordering::Relaxed);
        state.conns_total.fetch_add(1, Ordering::Relaxed);
        let id = state.next_conn.fetch_add(1, Ordering::SeqCst);

        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        if self.poller.register(stream.as_raw_fd(), slot as u64, Interest::READ).is_err() {
            self.free.push(slot);
            state.conns_active.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let stat = ConnSnapshot { conn: id, worker: u32::MAX, open: true, ..Default::default() };
        if let Ok(mut stats) = state.conn_stats.lock() {
            stats.insert(id, stat.clone());
        }
        self.conns[slot] = Some(ConnEntry {
            id,
            stream,
            machine: ConnMachine::new(),
            stat,
            interest: Interest::READ,
            dead: false,
            stat_dirty: false,
        });
        self.live += 1;
        self.touched.push(slot);
    }

    // ---- receive path ----------------------------------------------------

    fn read_conn(&mut self, slot: usize, tally: &mut CycleTally) {
        let Some(entry) = self.conns[slot].as_mut() else { return };
        loop {
            if entry.machine.rx_len() > RX_SOFT_CAP {
                break;
            }
            match entry.machine.rx_mut().read_from(&mut entry.stream) {
                Ok(0) => {
                    entry.dead = true;
                    break;
                }
                Ok(k) => {
                    tally.bytes_in += k as u64;
                    entry.machine.idle_cycles = 0;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    entry.dead = true;
                    break;
                }
            }
        }
        // Extract every complete frame, preserving arrival order.
        while !entry.machine.close_after_flush {
            let op = match entry.machine.peek_frame(self.state.cfg.max_frame) {
                FramePeek::Incomplete => break,
                FramePeek::BadLength(len) => {
                    // The stream cannot be resynchronised: answer, then
                    // close once flushed. Nothing is consumed.
                    entry.machine.close_after_flush = true;
                    let resp = Response::Error {
                        code: ErrorCode::FrameTooLarge,
                        detail: format!(
                            "frame length {len} outside 1..={}",
                            self.state.cfg.max_frame
                        ),
                    };
                    self.ops.push((slot, OpKind::Reply { resp, close: true }));
                    break;
                }
                FramePeek::Payload(payload) => match Request::decode(payload) {
                    Ok(Request::FetchChunk { job, worker, batch }) => {
                        OpKind::Fetch { job, worker, batch }
                    }
                    Ok(req) => OpKind::Other(req),
                    Err(crate::protocol::DecodeError::Version(v)) => {
                        // A foreign version poisons the rest of the
                        // stream (framing may differ): close after the
                        // typed answer.
                        entry.machine.close_after_flush = true;
                        OpKind::Reply {
                            resp: Response::Error {
                                code: ErrorCode::BadVersion,
                                detail: format!("version {v}, this server speaks {VERSION}"),
                            },
                            close: true,
                        }
                    }
                    Err(e) => OpKind::Reply {
                        resp: Response::Error {
                            code: ErrorCode::BadMessage,
                            detail: e.to_string(),
                        },
                        close: false,
                    },
                },
            };
            let wire = entry.machine.consume_frame();
            entry.stat.bytes_in += wire as u64;
            self.ops.push((slot, op));
        }
    }

    // ---- serve path ------------------------------------------------------

    /// Answer the cycle's requests in arrival order. Consecutive
    /// fetches against jobs of the same shard reuse one held lock.
    fn serve_cycle(&mut self, tally: &mut CycleTally) {
        let state = Arc::clone(&self.state);
        let mut cache: Option<(usize, MutexGuard<'_, _>)> = None;
        for (slot, op) in std::mem::take(&mut self.ops) {
            let Some(entry) = self.conns[slot].as_mut() else { continue };
            let resp = match op {
                OpKind::Fetch { job, worker, batch } => {
                    let idx = state.shard_index(job);
                    if cache.as_ref().map(|(i, _)| *i) != Some(idx) {
                        // Release the held guard *before* locking the
                        // next shard — holding two shard locks at once
                        // would risk lock-order inversion across loop
                        // shards.
                        drop(cache.take());
                        cache = state.shards[idx].lock().ok().map(|g| (idx, g));
                    }
                    match cache.as_mut() {
                        Some((_, jobs)) => {
                            let (resp, t) = state.fetch_locked(jobs, job, worker, batch, entry.id);
                            tally.fetches += t.fetches;
                            tally.chunks_granted += t.granted;
                            tally.empty_polls += t.empty;
                            entry.stat.worker = worker;
                            entry.stat.fetches += 1;
                            entry.stat.chunks += t.granted;
                            resp
                        }
                        None => Response::Error {
                            code: ErrorCode::UnknownJob,
                            detail: "shard poisoned".into(),
                        },
                    }
                }
                OpKind::Other(req) => {
                    cache = None; // `handle` takes its own locks
                    state.handle(req, entry.id, &mut entry.stat)
                }
                OpKind::Reply { resp, close } => {
                    if close {
                        entry.machine.close_after_flush = true;
                    }
                    resp
                }
            };
            entry.stat.requests += 1;
            let f = frame(&resp.encode());
            entry.stat.bytes_out += f.len() as u64;
            tally.bytes_out += f.len() as u64;
            entry.machine.queue_write(&f);
            entry.stat_dirty = true;
            self.touched.push(slot);
        }
    }

    // ---- flush & lifecycle ----------------------------------------------

    fn flush_conn(&mut self, slot: usize) {
        let Some(entry) = self.conns[slot].as_mut() else { return };
        while !entry.machine.tx_is_empty() && !entry.dead {
            match entry.stream.write(entry.machine.tx_pending()) {
                Ok(0) => entry.dead = true,
                Ok(k) => entry.machine.tx_advance(k),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => entry.dead = true,
            }
        }
        if entry.dead || (entry.machine.close_after_flush && entry.machine.tx_is_empty()) {
            self.close_conn(slot);
            return;
        }
        let want = if entry.machine.tx_is_empty() { Interest::READ } else { Interest::READ_WRITE };
        if want != entry.interest {
            let fd: RawFd = entry.stream.as_raw_fd();
            if self.poller.reregister(fd, slot as u64, want).is_ok() {
                if let Some(entry) = self.conns[slot].as_mut() {
                    entry.interest = want;
                }
            }
        }
    }

    /// During a drain: close connections that have gone quiet, and
    /// bound how long a half-received frame may hold its connection.
    fn drain_pass(&mut self) {
        for slot in 0..self.conns.len() {
            let Some(entry) = self.conns[slot].as_mut() else { continue };
            entry.machine.idle_cycles = entry.machine.idle_cycles.saturating_add(1);
            let quiet = entry.machine.tx_is_empty() && entry.machine.rx_len() == 0;
            if quiet || entry.machine.idle_cycles > DRAIN_GRACE_CYCLES {
                self.close_conn(slot);
            }
        }
    }

    fn close_conn(&mut self, slot: usize) {
        let Some(mut entry) = self.conns[slot].take() else { return };
        self.poller.deregister(entry.stream.as_raw_fd());
        let _ = entry.stream.shutdown(SockShutdown::Both);
        entry.stat.open = false;
        if let Ok(mut stats) = self.state.conn_stats.lock() {
            stats.insert(entry.id, entry.stat);
        }
        // Reclaims this connection's unsettled leases exactly once and
        // releases its admission slot.
        self.state.disconnect(entry.id);
        self.free.push(slot);
        self.live -= 1;
    }

    /// Apply the cycle's counter deltas (one atomic add per counter)
    /// and publish dirty per-connection stat rows under one lock.
    fn commit(&mut self, tally: &CycleTally) {
        let state = &self.state;
        // Relaxed throughout: stat counters with RMW-only writers —
        // per-counter totals stay exact under any interleaving, and
        // nothing orders against them.
        if tally.bytes_in > 0 {
            state.bytes_in.fetch_add(tally.bytes_in, Ordering::Relaxed);
        }
        if tally.bytes_out > 0 {
            state.bytes_out.fetch_add(tally.bytes_out, Ordering::Relaxed);
        }
        if tally.fetches > 0 {
            state.fetches.fetch_add(tally.fetches, Ordering::Relaxed);
        }
        if tally.chunks_granted > 0 {
            state.chunks_granted.fetch_add(tally.chunks_granted, Ordering::Relaxed);
        }
        if tally.empty_polls > 0 {
            state.empty_polls.fetch_add(tally.empty_polls, Ordering::Relaxed);
        }
        let any_dirty = self.conns.iter().any(|c| c.as_ref().is_some_and(|e| e.stat_dirty));
        if any_dirty {
            if let Ok(mut stats) = state.conn_stats.lock() {
                for entry in self.conns.iter_mut().flatten() {
                    if entry.stat_dirty {
                        stats.insert(entry.id, entry.stat.clone());
                        entry.stat_dirty = false;
                    }
                }
            }
        }
    }
}
