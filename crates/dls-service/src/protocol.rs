//! The wire protocol: versioned, length-prefixed binary frames.
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! +----------------+---------+-----+------------------+
//! | len: u32 LE    | version | tag | body (len-2 B)   |
//! +----------------+---------+-----+------------------+
//! ```
//!
//! `len` counts the payload (version byte + tag byte + body) and must
//! be in `1..=max_frame`; a zero or oversized length is a framing
//! violation the server answers with [`ErrorCode::FrameTooLarge`]
//! before closing the connection (the stream cannot be resynchronised).
//! All integers are little-endian; `f64` travels as its IEEE-754 bit
//! pattern.
//!
//! Requests and responses share the frame format and the version byte
//! ([`VERSION`]); they are distinguished by tag ranges (requests
//! `1..=7`, responses `128..`). A server must answer every
//! *well-framed* request with exactly one response frame — malformed
//! bodies get a typed [`Response::Error`], never silence and never a
//! closed socket without one.
//!
//! Version 2 adds restart survival: grants carry the server *epoch*
//! (bumped by every journaled restart, 0 on a journal-less server),
//! reports echo it back so a grant from a dead incarnation is answered
//! with [`ErrorCode::StaleEpoch`] instead of being silently
//! double-counted, and [`Request::ResumeJob`] lets a reconnecting
//! worker rebind to a recovered job.
//!
//! Version 3 widens the technique byte from the ten pure [`dls::Kind`]s
//! to the full [`SchedKind`] space (adaptive `AF`/`AWF-*` and the
//! `AUTO` meta-mode, bytes 10–15; pure kinds keep their v2 bytes), and
//! adds the tuner decision history: [`Response::JobEpoch`] and each
//! STATS job row carry the active technique plus the ordered list of
//! [`Decision`]s an AUTO job has taken.

use dls::switchable::{Decision, SchedKind, SwitchReason};

/// Protocol version carried in every frame. Bump on any wire change.
pub const VERSION: u8 = 3;

/// Default upper bound on one frame's payload. Large enough for a
/// `Stats` snapshot of hundreds of jobs, small enough that a malicious
/// length prefix cannot make the server allocate unbounded memory.
pub const MAX_FRAME: u32 = 256 * 1024;

// Request tags.
const T_CREATE_JOB: u8 = 1;
const T_FETCH_CHUNK: u8 = 2;
const T_REPORT_DONE: u8 = 3;
const T_HEARTBEAT: u8 = 4;
const T_STATS: u8 = 5;
const T_SHUTDOWN: u8 = 6;
const T_RESUME_JOB: u8 = 7;

// Response tags.
const T_JOB_CREATED: u8 = 128;
const T_CHUNKS: u8 = 129;
const T_ACK: u8 = 130;
const T_SNAPSHOT: u8 = 131;
const T_ERROR: u8 = 132;
const T_JOB_EPOCH: u8 = 133;

/// Identifier of a job on one server.
pub type JobId = u64;

/// Identifier of a lease within one job (dense, 0-based — the same id
/// space as [`resilience::LeaseId`]).
pub type LeaseId = u64;

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Register a loop of `n` iterations scheduled by `kind` at the
    /// inter-node level. `weights` are optional per-worker relative
    /// speeds for weighted techniques (empty = unit weights).
    CreateJob {
        /// Total loop iterations.
        n: u64,
        /// DLS technique driving the global queue (pure, adaptive, or
        /// the AUTO meta-mode).
        kind: SchedKind,
        /// Per-worker weights (indexed by worker id), empty for unit.
        weights: Vec<f64>,
    },
    /// Ask for up to `batch` chunks of `job` on behalf of `worker`.
    FetchChunk {
        /// Target job.
        job: JobId,
        /// Requesting worker id (used by weighted techniques and the
        /// lease ledger).
        worker: u32,
        /// Maximum number of chunks to grant in this round trip.
        batch: u32,
    },
    /// Report the listed leases as executed (batched acknowledgement).
    ReportDone {
        /// Target job.
        job: JobId,
        /// Leases whose ranges were fully executed.
        leases: Vec<LeaseId>,
        /// Server epoch the leases were granted under (echoed from
        /// [`Response::Chunks`]; 0 against a journal-less server). A
        /// mismatch is answered with [`ErrorCode::StaleEpoch`].
        epoch: u32,
    },
    /// Liveness ping; keeps idle connections warm.
    Heartbeat {
        /// Worker id of the pinger.
        worker: u32,
    },
    /// Ask for a [`StatsSnapshot`].
    Stats,
    /// Begin graceful shutdown: the server answers `Ack`, drains
    /// in-flight requests, and stops.
    Shutdown,
    /// Rebind to a job after a server restart: answered with
    /// [`Response::JobEpoch`] (the recovered job's counters and the
    /// new epoch), [`ErrorCode::UnknownJob`], or
    /// [`ErrorCode::NoJournal`] on a server that cannot have
    /// recovered anything.
    ResumeJob {
        /// Job id from before the restart.
        job: JobId,
    },
}

/// One granted chunk: the range plus the lease that must be settled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GrantedChunk {
    /// Lease to pass back in `ReportDone`.
    pub lease: LeaseId,
    /// First iteration of the range.
    pub lo: u64,
    /// One past the last iteration.
    pub hi: u64,
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `CreateJob` succeeded.
    JobCreated {
        /// The new job's id.
        job: JobId,
    },
    /// `FetchChunk` reply. An empty list means *no work right now but
    /// the job is not finished* (chunks may reappear via lease
    /// reclamation) — poll again. A finished job answers
    /// [`ErrorCode::JobFinished`] instead.
    Chunks {
        /// Granted chunks, at most the requested batch.
        chunks: Vec<GrantedChunk>,
        /// Server epoch of the grants — echo it in `ReportDone`.
        epoch: u32,
    },
    /// Generic success without payload.
    Ack,
    /// `Stats` reply.
    Snapshot(StatsSnapshot),
    /// Typed failure.
    Error {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// `ResumeJob` reply: where the recovered job stands.
    JobEpoch {
        /// Job id.
        job: JobId,
        /// Current server epoch; use it for subsequent reports.
        epoch: u32,
        /// Loop size.
        n: u64,
        /// Iterations handed out so far (watermark survives restart).
        scheduled: u64,
        /// Iterations settled exactly once.
        completed: u64,
        /// True when nothing is left to fetch.
        done: bool,
        /// Technique currently sizing chunks (for AUTO jobs this is
        /// the tuner's latest pick, not `AUTO` itself).
        kind: SchedKind,
        /// Tuner decision history in dense `seq` order (empty for
        /// fixed-technique jobs).
        decisions: Vec<Decision>,
    },
}

/// Machine-readable failure causes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame's version byte is not [`VERSION`].
    BadVersion = 1,
    /// Unknown tag or malformed body.
    BadMessage = 2,
    /// Frame length prefix of 0 or above the server's `max_frame`.
    FrameTooLarge = 3,
    /// `FetchChunk.batch` exceeds the server's `max_batch`.
    BatchTooLarge = 4,
    /// The worker already holds its quota of unsettled leases.
    QuotaExceeded = 5,
    /// The job id was never created.
    UnknownJob = 6,
    /// Every iteration of the job has been executed and acknowledged.
    JobFinished = 7,
    /// Connection limit reached; try again later.
    Busy = 8,
    /// The server is draining; no new work is granted.
    ShuttingDown = 9,
    /// `CreateJob` named a technique the service cannot drive.
    BadTechnique = 10,
    /// The server's job-table quota is exhausted.
    TooManyJobs = 11,
    /// `ReportDone` named a lease that is unknown or already settled.
    StaleLease = 12,
    /// `FetchChunk.worker` is outside a weighted job's worker range
    /// (the job defines exactly `weights.len()` worker slots).
    BadWorker = 13,
    /// `ReportDone.epoch` names a previous server incarnation: the
    /// lease was granted before a restart and has already been
    /// re-armed for re-execution — the report must be discarded, not
    /// credited.
    StaleEpoch = 14,
    /// `ResumeJob` against a server running without a journal: no
    /// state can have survived a restart.
    NoJournal = 15,
}

impl ErrorCode {
    fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::BadVersion,
            2 => ErrorCode::BadMessage,
            3 => ErrorCode::FrameTooLarge,
            4 => ErrorCode::BatchTooLarge,
            5 => ErrorCode::QuotaExceeded,
            6 => ErrorCode::UnknownJob,
            7 => ErrorCode::JobFinished,
            8 => ErrorCode::Busy,
            9 => ErrorCode::ShuttingDown,
            10 => ErrorCode::BadTechnique,
            11 => ErrorCode::TooManyJobs,
            12 => ErrorCode::StaleLease,
            13 => ErrorCode::BadWorker,
            14 => ErrorCode::StaleEpoch,
            15 => ErrorCode::NoJournal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Why a payload failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Version byte differs from [`VERSION`].
    Version(u8),
    /// Tag byte names no known message.
    Tag(u8),
    /// The body ended before the message was complete, or carried an
    /// out-of-range field (described by the `&str`).
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Version(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::Tag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::Malformed(what) => write!(f, "malformed body: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Technique kinds and tuner decisions on the wire.
//
// The technique byte is [`SchedKind::to_byte`] — the canonical map
// shared with the durability journal (pure kinds 0–9 exactly as in
// protocol v2, adaptive 10–14, AUTO 15). A [`Decision`] travels as 27
// bytes: seq u32, step u64, scheduled u64, from u8, to u8, reason u8.

fn write_decision(w: &mut Writer, d: &Decision) {
    w.u32(d.seq);
    w.u64(d.step);
    w.u64(d.scheduled);
    w.u8(d.from.to_byte());
    w.u8(d.to.to_byte());
    w.u8(d.reason.to_byte());
}

fn read_decision(r: &mut Reader<'_>) -> Result<Decision, DecodeError> {
    let seq = r.u32()?;
    let step = r.u64()?;
    let scheduled = r.u64()?;
    let from = SchedKind::from_byte(r.u8()?).ok_or(DecodeError::Malformed("decision from-kind"))?;
    let to = SchedKind::from_byte(r.u8()?).ok_or(DecodeError::Malformed("decision to-kind"))?;
    let reason =
        SwitchReason::from_byte(r.u8()?).ok_or(DecodeError::Malformed("decision reason"))?;
    Ok(Decision { seq, step, scheduled, from, to, reason })
}

fn write_decisions(w: &mut Writer, decisions: &[Decision]) {
    w.u16(decisions.len() as u16);
    for d in decisions {
        write_decision(w, d);
    }
}

fn read_decisions(r: &mut Reader<'_>) -> Result<Vec<Decision>, DecodeError> {
    let count = r.u16()? as usize;
    let mut decisions = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        decisions.push(read_decision(r)?);
    }
    Ok(decisions)
}

/// `u8::MAX` is the wire sentinel for an absent kind (defaulted
/// snapshot rows); everything else must name a real [`SchedKind`].
fn read_opt_kind(r: &mut Reader<'_>) -> Result<Option<SchedKind>, DecodeError> {
    let b = r.u8()?;
    if b == u8::MAX {
        return Ok(None);
    }
    SchedKind::from_byte(b).map(Some).ok_or(DecodeError::Malformed("unknown technique"))
}

// ---------------------------------------------------------------------------
// Stats snapshot.

/// Server-wide counters at one instant.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceTotals {
    /// `FetchChunk` requests served (including empty grants).
    pub fetches: u64,
    /// Chunks granted across all fetches (batching multiplies this
    /// relative to `fetches`).
    pub chunks_granted: u64,
    /// Leases reclaimed from disconnected clients.
    pub reclaims: u64,
    /// Fetches answered with an empty grant (queue empty, job alive).
    pub empty_polls: u64,
    /// Jobs ever created.
    pub jobs_created: u64,
    /// Jobs not yet finished.
    pub jobs_active: u64,
    /// Currently open connections.
    pub conns_active: u64,
    /// Connections ever accepted.
    pub conns_total: u64,
    /// Bytes read from all clients.
    pub bytes_in: u64,
    /// Bytes written to all clients.
    pub bytes_out: u64,
}

/// One job's counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobSnapshot {
    /// Job id.
    pub job: JobId,
    /// Loop size.
    pub n: u64,
    /// Scheduling steps taken (the paper's first global counter).
    pub step: u64,
    /// Iterations handed out (the second global counter).
    pub scheduled: u64,
    /// Iterations executed and acknowledged.
    pub completed: u64,
    /// Every iteration acknowledged.
    pub done: bool,
    /// `FetchChunk` requests against this job.
    pub fetches: u64,
    /// Chunks granted.
    pub chunks_granted: u64,
    /// Leases reclaimed from dead clients.
    pub reclaims: u64,
    /// Empty-grant fetches.
    pub empty_polls: u64,
    /// Ledger: leases ever granted.
    pub leases_granted: u64,
    /// Ledger: leases completed by their owner.
    pub leases_completed: u64,
    /// Ledger: leases reclaimed after owner death.
    pub leases_reclaimed: u64,
    /// Technique currently sizing chunks (`None` only in defaulted
    /// snapshots — the server always fills it).
    pub kind: Option<SchedKind>,
    /// Mode the job was created with (differs from `kind` for AUTO
    /// jobs once the tuner has switched).
    pub mode: Option<SchedKind>,
    /// Tuner decision history, dense by `seq` (empty for fixed jobs).
    pub decisions: Vec<Decision>,
}

/// One connection's counters (live and closed connections both appear;
/// closed ones keep their final values).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConnSnapshot {
    /// Connection id (accept order).
    pub conn: u64,
    /// Last worker id seen on this connection (`u32::MAX` if none).
    pub worker: u32,
    /// Bytes read from this client.
    pub bytes_in: u64,
    /// Bytes written to this client.
    pub bytes_out: u64,
    /// Requests served.
    pub requests: u64,
    /// `FetchChunk` requests served.
    pub fetches: u64,
    /// Chunks granted to this connection.
    pub chunks: u64,
    /// Iterations this connection acknowledged as executed.
    pub iterations: u64,
    /// Whether the connection is still open.
    pub open: bool,
}

/// Write-ahead-journal counters (all zero on a journal-less server,
/// with `enabled` false).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalTotals {
    /// True when the server runs with `--journal-dir`.
    pub enabled: bool,
    /// Current server epoch (0 without a journal, >= 1 with one).
    pub epoch: u32,
    /// Records committed this incarnation.
    pub journal_records: u64,
    /// Journal bytes written this incarnation.
    pub journal_bytes: u64,
    /// Fsyncs issued this incarnation.
    pub fsyncs: u64,
    /// Snapshots installed this incarnation.
    pub snapshots: u64,
    /// Live segment files.
    pub segments: u64,
}

/// Everything the server knows about itself, exported via the `Stats`
/// request, the drain path of a graceful shutdown, and (re-shaped) the
/// `hdls::export::service_report` ActivityReport bridge.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Nanoseconds since the server started.
    pub uptime_ns: u64,
    /// True once a shutdown (frame or signal) has begun.
    pub shutting_down: bool,
    /// Server-wide counters.
    pub totals: ServiceTotals,
    /// Durability counters.
    pub journal: JournalTotals,
    /// Per-job rows, ordered by job id.
    pub jobs: Vec<JobSnapshot>,
    /// Per-connection rows, ordered by connection id.
    pub conns: Vec<ConnSnapshot>,
}

impl StatsSnapshot {
    /// Compact JSON rendering (the artefact `dls-serverd` prints on
    /// graceful exit).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        let t = &self.totals;
        s.push_str(&format!(
            "{{\"uptime_ns\":{},\"shutting_down\":{},\"totals\":{{\"fetches\":{},\
             \"chunks_granted\":{},\"reclaims\":{},\"empty_polls\":{},\"jobs_created\":{},\
             \"jobs_active\":{},\"conns_active\":{},\"conns_total\":{},\"bytes_in\":{},\
             \"bytes_out\":{}}},",
            self.uptime_ns,
            self.shutting_down,
            t.fetches,
            t.chunks_granted,
            t.reclaims,
            t.empty_polls,
            t.jobs_created,
            t.jobs_active,
            t.conns_active,
            t.conns_total,
            t.bytes_in,
            t.bytes_out,
        ));
        let jn = &self.journal;
        s.push_str(&format!(
            "\"journal\":{{\"enabled\":{},\"epoch\":{},\"journal_records\":{},\
             \"journal_bytes\":{},\"fsyncs\":{},\"snapshots\":{},\"segments\":{}}},\"jobs\":[",
            jn.enabled,
            jn.epoch,
            jn.journal_records,
            jn.journal_bytes,
            jn.fsyncs,
            jn.snapshots,
            jn.segments,
        ));
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"job\":{},\"n\":{},\"step\":{},\"scheduled\":{},\"completed\":{},\
                 \"done\":{},\"fetches\":{},\"chunks_granted\":{},\"reclaims\":{},\
                 \"empty_polls\":{},\"leases_granted\":{},\"leases_completed\":{},\
                 \"leases_reclaimed\":{},\"kind\":\"{}\",\"mode\":\"{}\",\"switches\":{},\
                 \"decisions\":[",
                j.job,
                j.n,
                j.step,
                j.scheduled,
                j.completed,
                j.done,
                j.fetches,
                j.chunks_granted,
                j.reclaims,
                j.empty_polls,
                j.leases_granted,
                j.leases_completed,
                j.leases_reclaimed,
                j.kind.map_or("?", |k| k.name()),
                j.mode.map_or("?", |k| k.name()),
                j.decisions.len(),
            ));
            for (k, d) in j.decisions.iter().enumerate() {
                if k > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"seq\":{},\"step\":{},\"scheduled\":{},\"from\":\"{}\",\
                     \"to\":\"{}\",\"reason\":\"{}\"}}",
                    d.seq,
                    d.step,
                    d.scheduled,
                    d.from.name(),
                    d.to.name(),
                    d.reason.name(),
                ));
            }
            s.push_str("]}");
        }
        s.push_str("],\"conns\":[");
        for (i, c) in self.conns.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"conn\":{},\"worker\":{},\"bytes_in\":{},\"bytes_out\":{},\"requests\":{},\
                 \"fetches\":{},\"chunks\":{},\"iterations\":{},\"open\":{}}}",
                c.conn,
                c.worker,
                c.bytes_in,
                c.bytes_out,
                c.requests,
                c.fetches,
                c.chunks,
                c.iterations,
                c.open,
            ));
        }
        s.push_str("]}");
        s
    }
}

// ---------------------------------------------------------------------------
// Encoding.

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(tag: u8) -> Self {
        let mut buf = Vec::with_capacity(32);
        buf.push(VERSION);
        buf.push(tag);
        Writer { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(DecodeError::Malformed("body shorter than declared"));
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn done(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::Malformed("trailing bytes"))
        }
    }
}

impl Request {
    /// Serialise to one frame payload (version + tag + body).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::CreateJob { n, kind, weights } => {
                let mut w = Writer::new(T_CREATE_JOB);
                w.u64(*n);
                w.u8(kind.to_byte());
                w.u16(weights.len() as u16);
                for &wt in weights {
                    w.f64(wt);
                }
                w.buf
            }
            Request::FetchChunk { job, worker, batch } => {
                let mut w = Writer::new(T_FETCH_CHUNK);
                w.u64(*job);
                w.u32(*worker);
                w.u32(*batch);
                w.buf
            }
            Request::ReportDone { job, leases, epoch } => {
                let mut w = Writer::new(T_REPORT_DONE);
                w.u64(*job);
                w.u32(*epoch);
                w.u16(leases.len() as u16);
                for &l in leases {
                    w.u64(l);
                }
                w.buf
            }
            Request::Heartbeat { worker } => {
                let mut w = Writer::new(T_HEARTBEAT);
                w.u32(*worker);
                w.buf
            }
            Request::Stats => Writer::new(T_STATS).buf,
            Request::Shutdown => Writer::new(T_SHUTDOWN).buf,
            Request::ResumeJob { job } => {
                let mut w = Writer::new(T_RESUME_JOB);
                w.u64(*job);
                w.buf
            }
        }
    }

    /// Parse one frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, DecodeError> {
        let mut r = Reader::new(payload);
        let version = r.u8()?;
        if version != VERSION {
            return Err(DecodeError::Version(version));
        }
        let tag = r.u8()?;
        let req = match tag {
            T_CREATE_JOB => {
                let n = r.u64()?;
                let kind = SchedKind::from_byte(r.u8()?)
                    .ok_or(DecodeError::Malformed("unknown technique"))?;
                let count = r.u16()? as usize;
                let mut weights = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    weights.push(r.f64()?);
                }
                Request::CreateJob { n, kind, weights }
            }
            T_FETCH_CHUNK => {
                Request::FetchChunk { job: r.u64()?, worker: r.u32()?, batch: r.u32()? }
            }
            T_REPORT_DONE => {
                let job = r.u64()?;
                let epoch = r.u32()?;
                let count = r.u16()? as usize;
                let mut leases = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    leases.push(r.u64()?);
                }
                Request::ReportDone { job, leases, epoch }
            }
            T_HEARTBEAT => Request::Heartbeat { worker: r.u32()? },
            T_STATS => Request::Stats,
            T_SHUTDOWN => Request::Shutdown,
            T_RESUME_JOB => Request::ResumeJob { job: r.u64()? },
            other => return Err(DecodeError::Tag(other)),
        };
        r.done()?;
        Ok(req)
    }
}

impl Response {
    /// Serialise to one frame payload (version + tag + body).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::JobCreated { job } => {
                let mut w = Writer::new(T_JOB_CREATED);
                w.u64(*job);
                w.buf
            }
            Response::Chunks { chunks, epoch } => {
                let mut w = Writer::new(T_CHUNKS);
                w.u32(*epoch);
                w.u16(chunks.len() as u16);
                for c in chunks {
                    w.u64(c.lease);
                    w.u64(c.lo);
                    w.u64(c.hi);
                }
                w.buf
            }
            Response::Ack => Writer::new(T_ACK).buf,
            Response::Snapshot(s) => {
                let mut w = Writer::new(T_SNAPSHOT);
                w.u64(s.uptime_ns);
                w.u8(u8::from(s.shutting_down));
                let t = &s.totals;
                for v in [
                    t.fetches,
                    t.chunks_granted,
                    t.reclaims,
                    t.empty_polls,
                    t.jobs_created,
                    t.jobs_active,
                    t.conns_active,
                    t.conns_total,
                    t.bytes_in,
                    t.bytes_out,
                ] {
                    w.u64(v);
                }
                let jn = &s.journal;
                w.u8(u8::from(jn.enabled));
                w.u32(jn.epoch);
                for v in
                    [jn.journal_records, jn.journal_bytes, jn.fsyncs, jn.snapshots, jn.segments]
                {
                    w.u64(v);
                }
                w.u16(s.jobs.len() as u16);
                for j in &s.jobs {
                    for v in [
                        j.job,
                        j.n,
                        j.step,
                        j.scheduled,
                        j.completed,
                        j.fetches,
                        j.chunks_granted,
                        j.reclaims,
                        j.empty_polls,
                        j.leases_granted,
                        j.leases_completed,
                        j.leases_reclaimed,
                    ] {
                        w.u64(v);
                    }
                    w.u8(u8::from(j.done));
                    w.u8(j.kind.map_or(u8::MAX, SchedKind::to_byte));
                    w.u8(j.mode.map_or(u8::MAX, SchedKind::to_byte));
                    write_decisions(&mut w, &j.decisions);
                }
                w.u16(s.conns.len() as u16);
                for c in &s.conns {
                    w.u64(c.conn);
                    w.u32(c.worker);
                    for v in
                        [c.bytes_in, c.bytes_out, c.requests, c.fetches, c.chunks, c.iterations]
                    {
                        w.u64(v);
                    }
                    w.u8(u8::from(c.open));
                }
                w.buf
            }
            Response::Error { code, detail } => {
                let mut w = Writer::new(T_ERROR);
                w.u8(*code as u8);
                let bytes = detail.as_bytes();
                let len = bytes.len().min(u16::MAX as usize);
                w.u16(len as u16);
                w.bytes(&bytes[..len]);
                w.buf
            }
            Response::JobEpoch { job, epoch, n, scheduled, completed, done, kind, decisions } => {
                let mut w = Writer::new(T_JOB_EPOCH);
                w.u64(*job);
                w.u32(*epoch);
                w.u64(*n);
                w.u64(*scheduled);
                w.u64(*completed);
                w.u8(u8::from(*done));
                w.u8(kind.to_byte());
                write_decisions(&mut w, decisions);
                w.buf
            }
        }
    }

    /// Parse one frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, DecodeError> {
        let mut r = Reader::new(payload);
        let version = r.u8()?;
        if version != VERSION {
            return Err(DecodeError::Version(version));
        }
        let tag = r.u8()?;
        let resp = match tag {
            T_JOB_CREATED => Response::JobCreated { job: r.u64()? },
            T_CHUNKS => {
                let epoch = r.u32()?;
                let count = r.u16()? as usize;
                let mut chunks = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    chunks.push(GrantedChunk { lease: r.u64()?, lo: r.u64()?, hi: r.u64()? });
                }
                Response::Chunks { chunks, epoch }
            }
            T_ACK => Response::Ack,
            T_SNAPSHOT => {
                let uptime_ns = r.u64()?;
                let shutting_down = r.u8()? != 0;
                let totals = ServiceTotals {
                    fetches: r.u64()?,
                    chunks_granted: r.u64()?,
                    reclaims: r.u64()?,
                    empty_polls: r.u64()?,
                    jobs_created: r.u64()?,
                    jobs_active: r.u64()?,
                    conns_active: r.u64()?,
                    conns_total: r.u64()?,
                    bytes_in: r.u64()?,
                    bytes_out: r.u64()?,
                };
                let journal = JournalTotals {
                    enabled: r.u8()? != 0,
                    epoch: r.u32()?,
                    journal_records: r.u64()?,
                    journal_bytes: r.u64()?,
                    fsyncs: r.u64()?,
                    snapshots: r.u64()?,
                    segments: r.u64()?,
                };
                let n_jobs = r.u16()? as usize;
                let mut jobs = Vec::with_capacity(n_jobs.min(4096));
                for _ in 0..n_jobs {
                    jobs.push(JobSnapshot {
                        job: r.u64()?,
                        n: r.u64()?,
                        step: r.u64()?,
                        scheduled: r.u64()?,
                        completed: r.u64()?,
                        fetches: r.u64()?,
                        chunks_granted: r.u64()?,
                        reclaims: r.u64()?,
                        empty_polls: r.u64()?,
                        leases_granted: r.u64()?,
                        leases_completed: r.u64()?,
                        leases_reclaimed: r.u64()?,
                        done: r.u8()? != 0,
                        kind: read_opt_kind(&mut r)?,
                        mode: read_opt_kind(&mut r)?,
                        decisions: read_decisions(&mut r)?,
                    });
                }
                let n_conns = r.u16()? as usize;
                let mut conns = Vec::with_capacity(n_conns.min(4096));
                for _ in 0..n_conns {
                    conns.push(ConnSnapshot {
                        conn: r.u64()?,
                        worker: r.u32()?,
                        bytes_in: r.u64()?,
                        bytes_out: r.u64()?,
                        requests: r.u64()?,
                        fetches: r.u64()?,
                        chunks: r.u64()?,
                        iterations: r.u64()?,
                        open: r.u8()? != 0,
                    });
                }
                Response::Snapshot(StatsSnapshot {
                    uptime_ns,
                    shutting_down,
                    totals,
                    journal,
                    jobs,
                    conns,
                })
            }
            T_ERROR => {
                let code =
                    ErrorCode::from_u8(r.u8()?).ok_or(DecodeError::Malformed("error code"))?;
                let len = r.u16()? as usize;
                let detail = String::from_utf8_lossy(r.take(len)?).into_owned();
                Response::Error { code, detail }
            }
            T_JOB_EPOCH => Response::JobEpoch {
                job: r.u64()?,
                epoch: r.u32()?,
                n: r.u64()?,
                scheduled: r.u64()?,
                completed: r.u64()?,
                done: r.u8()? != 0,
                kind: SchedKind::from_byte(r.u8()?)
                    .ok_or(DecodeError::Malformed("unknown technique"))?,
                decisions: read_decisions(&mut r)?,
            },
            other => return Err(DecodeError::Tag(other)),
        };
        r.done()?;
        Ok(resp)
    }
}

/// Prepend the length prefix to a payload, producing the full frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls::Kind;

    fn roundtrip_req(req: Request) {
        assert_eq!(Request::decode(&req.encode()), Ok(req));
    }

    fn roundtrip_resp(resp: Response) {
        assert_eq!(Response::decode(&resp.encode()), Ok(resp));
    }

    fn decision(seq: u32) -> Decision {
        Decision {
            seq,
            step: 10 + u64::from(seq),
            scheduled: 100 * u64::from(seq),
            from: SchedKind::Fixed(Kind::SS),
            to: SchedKind::Af,
            reason: SwitchReason::Imbalance,
        }
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::CreateJob { n: 1 << 40, kind: Kind::GSS.into(), weights: vec![] });
        roundtrip_req(Request::CreateJob { n: 7, kind: Kind::WF.into(), weights: vec![0.5, 1.5] });
        roundtrip_req(Request::CreateJob { n: 9, kind: SchedKind::Auto, weights: vec![] });
        roundtrip_req(Request::FetchChunk { job: 3, worker: 9, batch: 64 });
        roundtrip_req(Request::ReportDone { job: 3, leases: vec![0, 1, 99], epoch: 7 });
        roundtrip_req(Request::Heartbeat { worker: 2 });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Shutdown);
        roundtrip_req(Request::ResumeJob { job: 11 });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::JobCreated { job: 17 });
        roundtrip_resp(Response::Chunks {
            chunks: vec![
                GrantedChunk { lease: 0, lo: 0, hi: 128 },
                GrantedChunk { lease: 1, lo: 128, hi: 130 },
            ],
            epoch: 3,
        });
        roundtrip_resp(Response::Chunks { chunks: vec![], epoch: 0 });
        roundtrip_resp(Response::Ack);
        roundtrip_resp(Response::Error { code: ErrorCode::UnknownJob, detail: "job 9".into() });
        roundtrip_resp(Response::Error { code: ErrorCode::StaleEpoch, detail: "epoch 1".into() });
        roundtrip_resp(Response::Error { code: ErrorCode::NoJournal, detail: String::new() });
        roundtrip_resp(Response::JobEpoch {
            job: 4,
            epoch: 2,
            n: 4096,
            scheduled: 100,
            completed: 96,
            done: false,
            kind: SchedKind::Fixed(Kind::GSS),
            decisions: vec![decision(0), decision(1)],
        });
        let snap = StatsSnapshot {
            uptime_ns: 123,
            shutting_down: true,
            totals: ServiceTotals { fetches: 5, chunks_granted: 9, ..Default::default() },
            journal: JournalTotals {
                enabled: true,
                epoch: 2,
                journal_records: 40,
                journal_bytes: 2048,
                fsyncs: 7,
                snapshots: 1,
                segments: 2,
            },
            jobs: vec![JobSnapshot {
                job: 1,
                n: 100,
                done: true,
                kind: Some(SchedKind::Af),
                mode: Some(SchedKind::Auto),
                decisions: vec![decision(0)],
                ..Default::default()
            }],
            conns: vec![ConnSnapshot { conn: 0, worker: 3, open: true, ..Default::default() }],
        };
        roundtrip_resp(Response::Snapshot(snap));
    }

    #[test]
    fn every_kind_roundtrips() {
        for kind in SchedKind::CONCRETE.into_iter().chain([SchedKind::Auto]) {
            roundtrip_req(Request::CreateJob { n: 10, kind, weights: vec![] });
        }
    }

    #[test]
    fn unknown_kind_byte_is_typed() {
        // Byte 16 is the first unassigned technique byte; 249 probes
        // deep into the unassigned range without colliding with the
        // Option sentinel (255).
        for bad in [16u8, 42, 249] {
            let mut p =
                Request::CreateJob { n: 10, kind: SchedKind::Auto, weights: vec![] }.encode();
            p[10] = bad; // version + tag + n(u64) = offset 10 is the kind byte
            assert_eq!(
                Request::decode(&p),
                Err(DecodeError::Malformed("unknown technique")),
                "kind byte {bad} must be rejected"
            );
        }
    }

    #[test]
    fn corrupt_decision_bytes_are_typed() {
        let resp = Response::JobEpoch {
            job: 1,
            epoch: 1,
            n: 64,
            scheduled: 8,
            completed: 0,
            done: false,
            kind: SchedKind::Af,
            decisions: vec![decision(0)],
        };
        let good = resp.encode();
        // The decision's three trailing bytes: from, to, reason.
        for back in 1..=3 {
            let mut p = good.clone();
            let idx = p.len() - back;
            p[idx] = 200;
            assert!(
                matches!(Response::decode(&p), Err(DecodeError::Malformed(_))),
                "corrupting decision byte -{back} must be typed"
            );
        }
        // Truncating mid-decision is typed, not a panic.
        let mut p = good;
        p.truncate(p.len() - 5);
        assert!(matches!(Response::decode(&p), Err(DecodeError::Malformed(_))));
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut p = Request::Stats.encode();
        p[0] = 9;
        assert_eq!(Request::decode(&p), Err(DecodeError::Version(9)));
    }

    #[test]
    fn unknown_tag_is_typed() {
        let p = vec![VERSION, 77];
        assert_eq!(Request::decode(&p), Err(DecodeError::Tag(77)));
    }

    #[test]
    fn truncated_body_is_typed() {
        let mut p = Request::FetchChunk { job: 1, worker: 2, batch: 3 }.encode();
        p.truncate(p.len() - 2);
        assert!(matches!(Request::decode(&p), Err(DecodeError::Malformed(_))));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut p = Request::Stats.encode();
        p.push(0);
        assert_eq!(Request::decode(&p), Err(DecodeError::Malformed("trailing bytes")));
    }

    #[test]
    fn frame_prepends_length() {
        let f = frame(&[1, 2, 3]);
        assert_eq!(f, vec![3, 0, 0, 0, 1, 2, 3]);
    }

    #[test]
    fn snapshot_json_is_wellformed_enough() {
        let s = StatsSnapshot::default().to_json();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"totals\""));
        assert!(s.contains("\"jobs\":[]"));
        assert!(s.contains("\"journal\":{\"enabled\":false"));
        assert!(s.contains("\"journal_records\":0"));
        assert!(s.contains("\"fsyncs\":0"));
        assert!(s.contains("\"snapshots\":0"));
    }
}
