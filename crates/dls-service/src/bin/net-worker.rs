//! `net-worker` — one worker process of the networked scheduler.
//!
//! ```text
//! net-worker <ADDR|@FILE> --job ID --n N --seed S [--worker W]
//!     [--batch B] [--crash-after K] [--pace-us U] [--retry-secs S]
//! ```
//!
//! Connects to a `dls-serverd`, fetches chunks of the shared job in
//! batches, executes the deterministic synthetic workload
//! (`Synthetic::uniform(n, 1, 100, seed)` — identical in every
//! process), settles each chunk's lease, and on completion prints
//!
//! ```text
//! RANGES worker=W lo-hi,lo-hi,...
//! AMBIG worker=W lo-hi,...
//! RESULT worker=W checksum=C iters=I chunks=Q crashed=false
//! ```
//!
//! where `checksum` covers exactly the chunks whose `ReportDone` was
//! acknowledged and `RANGES` lists those chunks' iteration ranges —
//! the restart smoke test unions them across workers to prove each
//! iteration was settled exactly once. `AMBIG` lists ranges whose
//! report round trip died mid-flight: the server may have settled and
//! journaled the lease just before dying (ack lost) or not (lease
//! re-armed and re-issued on recovery). The test resolves each against
//! the acked union — covered there ⇒ it was lost and redone elsewhere;
//! covered nowhere ⇒ it was settled pre-crash and counts.
//! `--crash-after K` reuses the `resilience` crash trigger
//! (`FaultKind::Crash { after_sub_chunks: K }`): the process executes
//! its K-th chunk and dies *before reporting it*.
//!
//! Restart survival: `@FILE` addressing reads the server address from
//! a file (re-read on every reconnect — a restarted server binds a
//! fresh port and republishes), and `--retry-secs S` keeps the worker
//! alive across server death for up to `S` seconds per outage:
//! reconnect, `ResumeJob` to adopt the new epoch, and continue
//! fetching. Work acked before the crash stays counted; leases lost
//! with the old server are re-issued to whoever fetches them after
//! recovery re-arms them. `--pace-us U` sleeps `U` microseconds per
//! executed chunk so a test can land a SIGKILL mid-campaign.

use dls_service::{drive_job_tracked, Client, ClientError, ErrorCode};
use resilience::{FaultKind, FaultPlan};
use std::io::Write;
use std::time::{Duration, Instant};
use workloads::synthetic::Synthetic;
use workloads::Workload;

fn usage() -> ! {
    eprintln!(
        "usage: net-worker ADDR|@FILE --job ID --n N --seed S [--worker W] [--batch B] \
         [--crash-after K] [--pace-us U] [--retry-secs S]"
    );
    std::process::exit(2)
}

/// Resolve `ADDR` or `@FILE` (poll the file until it holds an
/// address — the server publishes it atomically after binding).
fn resolve_addr(spec: &str, budget: Duration) -> Option<String> {
    let Some(path) = spec.strip_prefix('@') else {
        return Some(spec.to_string());
    };
    let start = Instant::now();
    loop {
        if let Ok(s) = std::fs::read_to_string(path) {
            let s = s.trim();
            if !s.is_empty() {
                return Some(s.to_string());
            }
        }
        if start.elapsed() >= budget {
            return None;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A failure the retry loop may ride out: the server died (socket
/// error) or restarted under us (stale epoch / draining).
fn retryable(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::Io(_)
            | ClientError::Server { code: ErrorCode::StaleEpoch | ErrorCode::ShuttingDown, .. }
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let addr_spec = args.next().unwrap_or_else(|| usage());
    let (mut job, mut n, mut seed) = (None, None, None);
    let mut worker = 0u32;
    let mut batch = 4u32;
    let mut crash_after: Option<u32> = None;
    let mut pace_us = 0u64;
    let mut retry_secs = 0u64;
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--job" => job = value().parse().ok(),
            "--n" => n = value().parse().ok(),
            "--seed" => seed = value().parse().ok(),
            "--worker" => worker = value().parse().unwrap_or_else(|_| usage()),
            "--batch" => batch = value().parse().unwrap_or_else(|_| usage()),
            "--crash-after" => crash_after = value().parse().ok(),
            "--pace-us" => pace_us = value().parse().unwrap_or_else(|_| usage()),
            "--retry-secs" => retry_secs = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let (Some(job), Some(n), Some(seed)) = (job, n, seed) else { usage() };
    let retry_budget = Duration::from_secs(retry_secs);
    let connect_budget = retry_budget.max(Duration::from_secs(10));

    // The crash trigger comes from the same fault model the in-process
    // executors use, so chaos scenarios read identically across the
    // simulated, live-thread and multi-process stacks.
    let plan = match crash_after {
        Some(k) => {
            FaultPlan::none().with(worker, FaultKind::Crash { at_ns: 0, after_sub_chunks: k })
        }
        None => FaultPlan::none(),
    };

    let workload = Synthetic::uniform(n, 1, 100, seed);
    let connect = |resume: bool| -> Option<Client> {
        let deadline = Instant::now() + connect_budget;
        loop {
            if let Some(addr) =
                resolve_addr(&addr_spec, deadline.saturating_duration_since(Instant::now()))
            {
                if let Ok(mut c) = Client::connect(&addr) {
                    if !resume {
                        return Some(c);
                    }
                    // Adopt the (possibly bumped) epoch before any
                    // report; UnknownJob after a restart is fatal —
                    // the journal should have preserved the job.
                    match c.resume_job(job) {
                        Ok(_) => return Some(c),
                        Err(ClientError::Server { code: ErrorCode::NoJournal, .. }) => {
                            return Some(c)
                        }
                        Err(e) => {
                            eprintln!("net-worker: resume failed: {e}");
                            if !retryable(&e) {
                                return None;
                            }
                        }
                    }
                }
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    };

    let Some(mut client) = connect(false) else {
        eprintln!("net-worker: cannot connect {addr_spec}");
        std::process::exit(1);
    };

    let mut crashed = false;
    let mut executed_chunks = 0u64;
    let mut acked: Vec<(u64, u64)> = Vec::new();
    let mut ambiguous: Vec<(u64, u64)> = Vec::new();
    loop {
        let outcome = drive_job_tracked(
            &mut client,
            job,
            worker,
            batch,
            &mut |i| workload.execute(i),
            &mut |done_in_attempt| {
                executed_chunks += 1;
                let _ = done_in_attempt;
                if pace_us > 0 {
                    std::thread::sleep(Duration::from_micros(pace_us));
                }
                let die = plan
                    .crash_after_sub_chunks(worker)
                    .is_some_and(|k| executed_chunks >= u64::from(k));
                crashed |= die;
                !die
            },
            &mut acked,
            &mut ambiguous,
        );
        match outcome {
            Ok(()) => break,
            Err(e) => {
                // Partial progress before the failure was already
                // pushed into `acked`/`ambiguous` as it happened.
                if retry_secs > 0 && retryable(&e) {
                    eprintln!("net-worker: attempt failed ({e}); reconnecting");
                    match connect(true) {
                        Some(c) => {
                            client = c;
                            continue;
                        }
                        None => {
                            eprintln!("net-worker: retry budget exhausted");
                            std::process::exit(1);
                        }
                    }
                }
                eprintln!("net-worker: {e}");
                std::process::exit(1);
            }
        }
    }

    // Totals derived from acked ranges are authoritative across
    // attempts: a failed attempt returns Err and discards its local
    // state, but its acked ranges were recorded as they happened.
    let acked_iters: u64 = acked.iter().map(|&(lo, hi)| hi - lo).sum();
    let acked_checksum = acked
        .iter()
        .flat_map(|&(lo, hi)| lo..hi)
        .fold(0u64, |s, i| s.wrapping_add(workload.execute(i)));

    let fmt = |v: &[(u64, u64)]| {
        v.iter().map(|(lo, hi)| format!("{lo}-{hi}")).collect::<Vec<_>>().join(",")
    };
    println!("RANGES worker={worker} {}", fmt(&acked));
    if !ambiguous.is_empty() {
        println!("AMBIG worker={worker} {}", fmt(&ambiguous));
    }
    println!(
        "RESULT worker={worker} checksum={acked_checksum} iters={acked_iters} chunks={} \
         crashed={crashed}",
        acked.len()
    );
    std::io::stdout().flush().ok();
    // A crash trigger exits abruptly *after* printing the work it
    // actually reported: the lease of the executed-but-unreported
    // chunk stays with the server.
    if crashed {
        std::process::exit(3);
    }
}
