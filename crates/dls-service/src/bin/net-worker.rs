//! `net-worker` — one worker process of the networked scheduler.
//!
//! ```text
//! net-worker <ADDR> --job ID --n N --seed S [--worker W] [--batch B]
//!     [--crash-after K]
//! ```
//!
//! Connects to a `dls-serverd`, fetches chunks of the shared job in
//! batches, executes the deterministic synthetic workload
//! (`Synthetic::uniform(n, 1, 100, seed)` — identical in every
//! process), settles each chunk's lease, and on completion prints
//!
//! ```text
//! RESULT worker=W checksum=C iters=I chunks=Q crashed=false
//! ```
//!
//! where `checksum` covers exactly the chunks whose `ReportDone` was
//! acknowledged. `--crash-after K` reuses the `resilience` crash
//! trigger (`FaultKind::Crash { after_sub_chunks: K }`): the process
//! executes its K-th chunk and dies *before reporting it* — from the
//! server's side, a worker that vanished mid-chunk. The abandoned
//! lease must be reclaimed exactly once for the job to finish.

use dls_service::{drive_job, Client};
use resilience::{FaultKind, FaultPlan};
use std::io::Write;
use workloads::synthetic::Synthetic;
use workloads::Workload;

fn usage() -> ! {
    eprintln!(
        "usage: net-worker ADDR --job ID --n N --seed S [--worker W] [--batch B] \
         [--crash-after K]"
    );
    std::process::exit(2)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| usage());
    let (mut job, mut n, mut seed) = (None, None, None);
    let mut worker = 0u32;
    let mut batch = 4u32;
    let mut crash_after: Option<u32> = None;
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--job" => job = value().parse().ok(),
            "--n" => n = value().parse().ok(),
            "--seed" => seed = value().parse().ok(),
            "--worker" => worker = value().parse().unwrap_or_else(|_| usage()),
            "--batch" => batch = value().parse().unwrap_or_else(|_| usage()),
            "--crash-after" => crash_after = value().parse().ok(),
            _ => usage(),
        }
    }
    let (Some(job), Some(n), Some(seed)) = (job, n, seed) else { usage() };

    // The crash trigger comes from the same fault model the in-process
    // executors use, so chaos scenarios read identically across the
    // simulated, live-thread and multi-process stacks.
    let plan = match crash_after {
        Some(k) => {
            FaultPlan::none().with(worker, FaultKind::Crash { at_ns: 0, after_sub_chunks: k })
        }
        None => FaultPlan::none(),
    };

    let workload = Synthetic::uniform(n, 1, 100, seed);
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("net-worker: cannot connect {addr}: {e}");
            std::process::exit(1);
        }
    };

    let mut crashed = false;
    let outcome = drive_job(
        &mut client,
        job,
        worker,
        batch,
        &mut |i| workload.execute(i),
        &mut |executed_chunks| {
            let die = plan
                .crash_after_sub_chunks(worker)
                .is_some_and(|k| executed_chunks >= u64::from(k));
            crashed |= die;
            !die
        },
    );
    match outcome {
        Ok((checksum, iters, chunks)) => {
            println!(
                "RESULT worker={worker} checksum={checksum} iters={iters} chunks={chunks} \
                 crashed={crashed}"
            );
            std::io::stdout().flush().ok();
            // A crash trigger exits abruptly *after* printing the work
            // it actually reported: the lease of the executed-but-
            // unreported chunk stays with the server.
            if crashed {
                std::process::exit(3);
            }
        }
        Err(e) => {
            eprintln!("net-worker: {e}");
            std::process::exit(1);
        }
    }
}
