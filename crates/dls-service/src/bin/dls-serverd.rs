//! `dls-serverd` — the chunk-scheduling daemon.
//!
//! ```text
//! cargo run -p dls-service --bin dls-serverd -- [--addr 127.0.0.1:0]
//!     [--max-connections N] [--max-batch N] [--quota N]
//!     [--event-loops N] [--report PATH] [--addr-file PATH]
//!     [--journal-dir DIR] [--sync always|never|every:N]
//!     [--snapshot-every N] [--segment-bytes N]
//!     [--tuner-overhead-ns N]
//! ```
//!
//! Prints `LISTEN <addr>` once bound (with the real port when started
//! on port 0 — parents parse this line; `--addr-file` additionally
//! publishes the address to a file, atomically, so workers started
//! before or across a server restart can find the new port), serves
//! until a `Shutdown` frame or SIGTERM arrives, then drains in-flight
//! requests — flushing and fsyncing the journal when one is configured
//! — prints `STATS <json>` (the final snapshot, per-job progress and
//! journal counters included), optionally writes it to `--report
//! PATH`, and exits 0.
//!
//! With `--journal-dir`, every exactly-once-relevant transition is
//! journaled and the daemon survives SIGKILL: restart it with the same
//! directory and it replays snapshot + segments, re-arms unsettled
//! leases, bumps the epoch, and resumes the same job ids.

// The single unsafe block (signal handler installation in `sig`) must
// carry its own SAFETY justification.
#![deny(unsafe_op_in_unsafe_fn)]

use dls_service::{Server, ServiceConfig};
use durability::{JournalOptions, SyncPolicy};
use std::io::Write;
use std::time::Duration;

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGTERM: i32 = 15;
    const SIGINT: i32 = 2;

    /// Route SIGTERM/SIGINT to a flag the main loop polls; the handler
    /// only stores an atomic (async-signal-safe).
    ///
    /// The flag is deliberately a plain `std::sync::atomic` rather
    /// than the `crate::sync` facade: an async-signal handler must
    /// never take the conc-check scheduler's baton (it could fire on
    /// any thread at any point and deadlock the model run).
    pub fn install() {
        // SAFETY: `signal(2)` is called with valid arguments — both
        // signal numbers are standard, and `on_term` is an
        // `extern "C" fn(i32)` matching the expected handler ABI that
        // stays alive for the whole process (a static function item).
        // The handler body is async-signal-safe: it performs a single
        // lock-free atomic store and touches no heap, locks, or
        // signal-unsafe libc calls.
        unsafe {
            signal(SIGTERM, on_term);
            signal(SIGINT, on_term);
        }
    }

    pub fn terminated() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn terminated() -> bool {
        false
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: dls-serverd [--addr HOST:PORT] [--max-connections N] \
         [--max-batch N] [--quota N] [--event-loops N] [--report PATH] \
         [--addr-file PATH] [--journal-dir DIR] [--sync always|never|every:N] \
         [--snapshot-every N] [--segment-bytes N] [--tuner-overhead-ns N]"
    );
    std::process::exit(2)
}

/// Publish the bound address atomically: write-to-tmp + rename, so a
/// worker polling the file never reads a half-written line.
fn publish_addr(path: &str, addr: &std::net::SocketAddr) {
    let tmp = format!("{path}.tmp");
    if std::fs::write(&tmp, addr.to_string()).and_then(|()| std::fs::rename(&tmp, path)).is_err() {
        eprintln!("dls-serverd: cannot publish address to {path}");
        std::process::exit(1);
    }
}

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut cfg = ServiceConfig::default();
    let mut report: Option<String> = None;
    let mut addr_file: Option<String> = None;
    let mut journal_dir: Option<String> = None;
    let mut sync = SyncPolicy::Always;
    let mut snapshot_every = 4096u64;
    let mut segment_bytes: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = value(),
            "--max-connections" => {
                cfg.max_connections = value().parse().unwrap_or_else(|_| usage())
            }
            "--max-batch" => cfg.max_batch = value().parse().unwrap_or_else(|_| usage()),
            "--quota" => cfg.worker_quota = value().parse().unwrap_or_else(|_| usage()),
            "--event-loops" => cfg.event_loops = value().parse().unwrap_or_else(|_| usage()),
            "--report" => report = Some(value()),
            "--addr-file" => addr_file = Some(value()),
            "--journal-dir" => journal_dir = Some(value()),
            "--sync" => sync = value().parse().unwrap_or_else(|_| usage()),
            "--snapshot-every" => snapshot_every = value().parse().unwrap_or_else(|_| usage()),
            "--segment-bytes" => segment_bytes = Some(value().parse().unwrap_or_else(|_| usage())),
            "--tuner-overhead-ns" => {
                cfg.tuner_overhead_ns = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            _ => usage(),
        }
    }

    sig::install();
    let started = match &journal_dir {
        Some(dir) => {
            let mut jopts = JournalOptions::new(dir);
            jopts.sync = sync;
            if let Some(b) = segment_bytes {
                jopts.segment_bytes = b.max(64);
            }
            Server::start_with_journal(cfg, &addr, jopts, snapshot_every)
        }
        None => Server::start(cfg, &addr),
    };
    let server = match started {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dls-serverd: cannot start on {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("LISTEN {}", server.addr());
    std::io::stdout().flush().ok();
    if let Some(path) = &addr_file {
        publish_addr(path, &server.addr());
    }

    // Serve until a Shutdown frame or a termination signal.
    loop {
        if sig::terminated() {
            break;
        }
        if server.wait_for_shutdown_request(Duration::from_millis(100)) {
            break;
        }
    }

    let snapshot = server.shutdown();
    let json = snapshot.to_json();
    println!("STATS {json}");
    std::io::stdout().flush().ok();
    if let Some(path) = report {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("dls-serverd: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}
