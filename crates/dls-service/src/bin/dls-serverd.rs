//! `dls-serverd` — the chunk-scheduling daemon.
//!
//! ```text
//! cargo run -p dls-service --bin dls-serverd -- [--addr 127.0.0.1:0]
//!     [--max-connections N] [--max-batch N] [--quota N]
//!     [--event-loops N] [--report PATH]
//! ```
//!
//! Prints `LISTEN <addr>` once bound (with the real port when started
//! on port 0 — parents parse this line), serves until a `Shutdown`
//! frame or SIGTERM arrives, then drains in-flight requests, prints
//! `STATS <json>` (the final snapshot, per-job progress counters
//! included), optionally writes it to `--report PATH`, and exits 0.

// The single unsafe block (signal handler installation in `sig`) must
// carry its own SAFETY justification.
#![deny(unsafe_op_in_unsafe_fn)]

use dls_service::{Server, ServiceConfig};
use std::io::Write;
use std::time::Duration;

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGTERM: i32 = 15;
    const SIGINT: i32 = 2;

    /// Route SIGTERM/SIGINT to a flag the main loop polls; the handler
    /// only stores an atomic (async-signal-safe).
    ///
    /// The flag is deliberately a plain `std::sync::atomic` rather
    /// than the `crate::sync` facade: an async-signal handler must
    /// never take the conc-check scheduler's baton (it could fire on
    /// any thread at any point and deadlock the model run).
    pub fn install() {
        // SAFETY: `signal(2)` is called with valid arguments — both
        // signal numbers are standard, and `on_term` is an
        // `extern "C" fn(i32)` matching the expected handler ABI that
        // stays alive for the whole process (a static function item).
        // The handler body is async-signal-safe: it performs a single
        // lock-free atomic store and touches no heap, locks, or
        // signal-unsafe libc calls.
        unsafe {
            signal(SIGTERM, on_term);
            signal(SIGINT, on_term);
        }
    }

    pub fn terminated() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn terminated() -> bool {
        false
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: dls-serverd [--addr HOST:PORT] [--max-connections N] \
         [--max-batch N] [--quota N] [--event-loops N] [--report PATH]"
    );
    std::process::exit(2)
}

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut cfg = ServiceConfig::default();
    let mut report: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = value(),
            "--max-connections" => {
                cfg.max_connections = value().parse().unwrap_or_else(|_| usage())
            }
            "--max-batch" => cfg.max_batch = value().parse().unwrap_or_else(|_| usage()),
            "--quota" => cfg.worker_quota = value().parse().unwrap_or_else(|_| usage()),
            "--event-loops" => cfg.event_loops = value().parse().unwrap_or_else(|_| usage()),
            "--report" => report = Some(value()),
            _ => usage(),
        }
    }

    sig::install();
    let server = match Server::start(cfg, &addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dls-serverd: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("LISTEN {}", server.addr());
    std::io::stdout().flush().ok();

    // Serve until a Shutdown frame or a termination signal.
    loop {
        if sig::terminated() {
            break;
        }
        if server.wait_for_shutdown_request(Duration::from_millis(100)) {
            break;
        }
    }

    let snapshot = server.shutdown();
    let json = snapshot.to_json();
    println!("STATS {json}");
    std::io::stdout().flush().ok();
    if let Some(path) = report {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("dls-serverd: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}
