//! The per-connection protocol state machine.
//!
//! One [`ConnMachine`] owns everything about a connection that is not
//! the socket itself: the receive ring buffer, frame extraction over
//! the length-prefixed wire format, the pending-write buffer, and the
//! close-after-flush flag. It is deliberately I/O-free — the event
//! loop feeds it bytes and drains its writes, and the unit tests feed
//! it the same bytes split at every awkward boundary (mid-prefix,
//! exactly at the 4-byte length boundary, many frames coalesced into
//! one read) without a socket in sight.

use crate::ring::RingBuf;

/// What the front of the receive buffer holds.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum FramePeek<'a> {
    /// A complete frame's payload (version + tag + body), decodable in
    /// place — call [`ConnMachine::consume_frame`] once done with it.
    Payload(&'a [u8]),
    /// A length prefix of zero or above `max_frame`: a framing
    /// violation; the stream cannot be resynchronised.
    BadLength(u32),
    /// No complete frame buffered yet.
    Incomplete,
}

/// Per-connection protocol state: receive ring, write queue, lifecycle
/// flags.
#[derive(Debug, Default)]
pub(crate) struct ConnMachine {
    rx: RingBuf,
    tx: Vec<u8>,
    tx_head: usize,
    /// Close the connection once the write buffer is fully flushed
    /// (set on framing violations and version mismatches).
    pub(crate) close_after_flush: bool,
    /// Drain bookkeeping: readiness cycles without receive progress.
    pub(crate) idle_cycles: u32,
}

impl ConnMachine {
    pub(crate) fn new() -> ConnMachine {
        ConnMachine::default()
    }

    // ---- receive side -----------------------------------------------------

    /// Feed raw stream bytes (tests; the event loop uses
    /// [`ConnMachine::rx_mut`] to read straight off the socket).
    #[cfg(test)]
    pub(crate) fn ingest(&mut self, bytes: &[u8]) {
        self.rx.extend(bytes);
    }

    /// Direct access to the receive ring for socket reads.
    pub(crate) fn rx_mut(&mut self) -> &mut RingBuf {
        &mut self.rx
    }

    /// Bytes currently buffered on the receive side.
    pub(crate) fn rx_len(&self) -> usize {
        self.rx.len()
    }

    /// Inspect the front of the receive buffer.
    pub(crate) fn peek_frame(&self, max_frame: u32) -> FramePeek<'_> {
        let live = self.rx.as_slice();
        if live.len() < 4 {
            return FramePeek::Incomplete;
        }
        let len = u32::from_le_bytes([live[0], live[1], live[2], live[3]]);
        if len == 0 || len > max_frame {
            return FramePeek::BadLength(len);
        }
        let total = 4 + len as usize;
        if live.len() < total {
            return FramePeek::Incomplete;
        }
        FramePeek::Payload(&live[4..total])
    }

    /// Discard the complete frame at the front (after a successful
    /// [`ConnMachine::peek_frame`]). Returns its total wire size.
    pub(crate) fn consume_frame(&mut self) -> usize {
        let live = self.rx.as_slice();
        debug_assert!(live.len() >= 4);
        let len = u32::from_le_bytes([live[0], live[1], live[2], live[3]]);
        let total = 4 + len as usize;
        debug_assert!(live.len() >= total);
        self.rx.consume(total);
        total
    }

    // ---- send side --------------------------------------------------------

    /// Queue an already-framed response for writing.
    pub(crate) fn queue_write(&mut self, frame_bytes: &[u8]) {
        // Compact the flushed prefix before growing.
        if self.tx_head > 0 && self.tx_head >= self.tx.len() - self.tx_head {
            self.tx.copy_within(self.tx_head.., 0);
            let live = self.tx.len() - self.tx_head;
            self.tx.truncate(live);
            self.tx_head = 0;
        }
        self.tx.extend_from_slice(frame_bytes);
    }

    /// Unflushed outgoing bytes.
    pub(crate) fn tx_pending(&self) -> &[u8] {
        &self.tx[self.tx_head..]
    }

    /// Record `n` bytes as written to the socket.
    pub(crate) fn tx_advance(&mut self, n: usize) {
        debug_assert!(n <= self.tx.len() - self.tx_head);
        self.tx_head += n;
        if self.tx_head == self.tx.len() {
            self.tx.clear();
            self.tx_head = 0;
        }
    }

    pub(crate) fn tx_is_empty(&self) -> bool {
        self.tx_head == self.tx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{frame, Request, MAX_FRAME};

    fn fetch_frame() -> Vec<u8> {
        frame(&Request::FetchChunk { job: 1, worker: 2, batch: 3 }.encode())
    }

    /// Extract and decode every complete frame currently buffered.
    fn drain_requests(m: &mut ConnMachine) -> Vec<Request> {
        let mut out = Vec::new();
        loop {
            let decoded = match m.peek_frame(MAX_FRAME) {
                FramePeek::Payload(p) => Request::decode(p).expect("decode"),
                FramePeek::Incomplete => break,
                FramePeek::BadLength(len) => panic!("unexpected bad length {len}"),
            };
            m.consume_frame();
            out.push(decoded);
        }
        out
    }

    #[test]
    fn partial_frame_across_readiness_events() {
        let wire = fetch_frame();
        let mut m = ConnMachine::new();
        // Three readiness events deliver the frame in ragged pieces.
        m.ingest(&wire[..3]); // not even a full length prefix
        assert_eq!(m.peek_frame(MAX_FRAME), FramePeek::Incomplete);
        m.ingest(&wire[3..7]); // prefix complete, body partial
        assert_eq!(m.peek_frame(MAX_FRAME), FramePeek::Incomplete);
        m.ingest(&wire[7..]);
        assert_eq!(
            drain_requests(&mut m),
            vec![Request::FetchChunk { job: 1, worker: 2, batch: 3 }]
        );
        assert_eq!(m.rx_len(), 0);
    }

    #[test]
    fn frame_split_exactly_at_length_boundary() {
        let wire = fetch_frame();
        let mut m = ConnMachine::new();
        // First event ends exactly after the 4-byte length prefix.
        m.ingest(&wire[..4]);
        assert_eq!(m.peek_frame(MAX_FRAME), FramePeek::Incomplete);
        m.ingest(&wire[4..]);
        assert_eq!(
            drain_requests(&mut m),
            vec![Request::FetchChunk { job: 1, worker: 2, batch: 3 }]
        );
    }

    #[test]
    fn coalesced_frames_in_one_read() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&frame(&Request::Heartbeat { worker: 9 }.encode()));
        wire.extend_from_slice(&fetch_frame());
        wire.extend_from_slice(&frame(&Request::Stats.encode()));
        // ...plus the first half of a fourth frame.
        let tail = frame(&Request::Shutdown.encode());
        wire.extend_from_slice(&tail[..3]);

        let mut m = ConnMachine::new();
        m.ingest(&wire);
        assert_eq!(
            drain_requests(&mut m),
            vec![
                Request::Heartbeat { worker: 9 },
                Request::FetchChunk { job: 1, worker: 2, batch: 3 },
                Request::Stats,
            ],
            "one read, three complete frames, in order"
        );
        // The partial fourth frame survives until its bytes arrive.
        assert_eq!(m.rx_len(), 3);
        m.ingest(&tail[3..]);
        assert_eq!(drain_requests(&mut m), vec![Request::Shutdown]);
    }

    #[test]
    fn zero_and_oversized_lengths_are_violations() {
        let mut m = ConnMachine::new();
        m.ingest(&0u32.to_le_bytes());
        assert_eq!(m.peek_frame(MAX_FRAME), FramePeek::BadLength(0));

        let mut m = ConnMachine::new();
        m.ingest(&(MAX_FRAME + 1).to_le_bytes());
        assert_eq!(m.peek_frame(MAX_FRAME), FramePeek::BadLength(MAX_FRAME + 1));
    }

    #[test]
    fn write_queue_tracks_partial_flushes() {
        let mut m = ConnMachine::new();
        m.queue_write(&[1, 2, 3, 4, 5]);
        m.queue_write(&[6, 7]);
        assert_eq!(m.tx_pending(), &[1, 2, 3, 4, 5, 6, 7]);
        m.tx_advance(4); // short write
        assert_eq!(m.tx_pending(), &[5, 6, 7]);
        m.queue_write(&[8]); // triggers compaction of the flushed prefix
        assert_eq!(m.tx_pending(), &[5, 6, 7, 8]);
        m.tx_advance(4);
        assert!(m.tx_is_empty());
    }
}
