//! Blocking client for the chunk-scheduling service.
//!
//! One [`Client`] owns one TCP connection and speaks strict
//! request/response: every call writes one frame and blocks for one
//! reply frame. Leases granted on a connection are reclaimed by the
//! server if the connection dies, so a process that holds a `Client`
//! per worker gets crash recovery for free.

use crate::protocol::{
    frame, ErrorCode, GrantedChunk, JobId, LeaseId, Request, Response, StatsSnapshot,
};
use dls::switchable::{Decision, SchedKind};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Everything a call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes the server closing mid-call).
    Io(io::Error),
    /// The reply frame did not parse.
    Protocol(crate::protocol::DecodeError),
    /// The server answered a typed error.
    Server {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Server-provided detail.
        detail: String,
    },
    /// The server answered with a response of the wrong shape.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server { code, detail } => write!(f, "server error {code}: {detail}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response, wanted {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Result alias for client calls.
pub type Result<T> = std::result::Result<T, ClientError>;

/// What a fetch round trip produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FetchReply {
    /// Work: execute, then settle each lease with
    /// [`Client::report_done`].
    Chunks(Vec<GrantedChunk>),
    /// No work *right now* (all scheduled, some leases unsettled — a
    /// reclaim may still produce chunks): back off briefly and retry.
    Pending,
    /// The job finished every iteration; stop fetching.
    Done,
}

/// What [`Client::resume_job`] learned about a job that survived a
/// server restart.
#[derive(Clone, Debug, PartialEq)]
pub struct JobProgress {
    /// Server epoch now in force.
    pub epoch: u32,
    /// Total iterations.
    pub n: u64,
    /// Iterations handed out so far.
    pub scheduled: u64,
    /// Iterations settled exactly once.
    pub completed: u64,
    /// True when every iteration settled.
    pub done: bool,
    /// Technique actively sizing chunks after recovery (for AUTO jobs:
    /// the last journaled decision's target, replayed not re-derived).
    pub kind: SchedKind,
    /// Tuner decision history, dense by `seq`.
    pub decisions: Vec<Decision>,
}

/// One blocking connection to a server.
pub struct Client {
    stream: TcpStream,
    read_buf: Vec<u8>,
    /// Per-reply wait budget; `None` blocks indefinitely.
    read_deadline: Option<Duration>,
    /// Server epoch observed on the latest `Chunks`/`JobEpoch` reply;
    /// echoed in every `ReportDone` so a journaled server can fence
    /// reports that belong to a dead incarnation (0 until observed —
    /// also what a volatile server runs at).
    epoch: u32,
}

impl Client {
    /// Connect.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, read_buf: Vec::new(), read_deadline: None, epoch: 0 })
    }

    /// The server epoch this client last observed.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Bound how long each call waits for its reply. A stalled server
    /// (connection open, nothing arriving) then fails the call with
    /// [`io::ErrorKind::TimedOut`] — *distinct* from
    /// [`io::ErrorKind::UnexpectedEof`], which still means the server
    /// closed the connection. `None` restores indefinite blocking.
    ///
    /// The socket is switched to a short poll tick so a reply arriving
    /// before the deadline is picked up promptly; transient
    /// `WouldBlock`/`TimedOut` ticks are retried, never surfaced.
    pub fn set_read_deadline(&mut self, deadline: Option<Duration>) -> io::Result<()> {
        let tick =
            deadline.map(|d| (d / 4).clamp(Duration::from_millis(5), Duration::from_millis(250)));
        self.stream.set_read_timeout(tick)?;
        self.read_deadline = deadline;
        Ok(())
    }

    fn call(&mut self, req: &Request) -> Result<Response> {
        self.stream.write_all(&frame(&req.encode()))?;
        // Read exactly one frame.
        let mut len_buf = [0u8; 4];
        self.read_exact_buffered(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut payload = vec![0u8; len];
        self.read_exact_buffered(&mut payload)?;
        Response::decode(&payload).map_err(ClientError::Protocol)
    }

    fn read_exact_buffered(&mut self, out: &mut [u8]) -> Result<()> {
        // Strict request/response leaves nothing buffered between
        // calls, but keep a buffer anyway so short reads are handled.
        let start = Instant::now();
        while self.read_buf.len() < out.len() {
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Real EOF: the peer closed. Nothing below may be
                    // conflated with this — a timeout tick is not a
                    // dead server.
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )));
                }
                Ok(k) => self.read_buf.extend_from_slice(&chunk[..k]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    match self.read_deadline {
                        Some(d) if start.elapsed() >= d => {
                            return Err(ClientError::Io(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!("no reply within {d:?} (connection still open)"),
                            )));
                        }
                        Some(_) => continue, // tick expired, budget left
                        // No deadline configured (an externally imposed
                        // socket timeout): surface the timeout as-is.
                        None => return Err(ClientError::Io(e)),
                    }
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
        out.copy_from_slice(&self.read_buf[..out.len()]);
        self.read_buf.drain(..out.len());
        Ok(())
    }

    fn expect_ack(resp: Response) -> Result<()> {
        match resp {
            Response::Ack => Ok(()),
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            _ => Err(ClientError::Unexpected("Ack")),
        }
    }

    /// Register a job of `n` iterations scheduled by `kind` (any
    /// [`dls::Kind`] converts, so `create_job(n, Kind::SS, &[])` and
    /// `create_job(n, SchedKind::Auto, &[])` both work); `weights` may
    /// be empty for unit weights.
    pub fn create_job(
        &mut self,
        n: u64,
        kind: impl Into<SchedKind>,
        weights: &[f64],
    ) -> Result<JobId> {
        let kind = kind.into();
        match self.call(&Request::CreateJob { n, kind, weights: weights.to_vec() })? {
            Response::JobCreated { job } => Ok(job),
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            _ => Err(ClientError::Unexpected("JobCreated")),
        }
    }

    /// Ask for up to `batch` chunks. `JobFinished` maps to
    /// [`FetchReply::Done`]; an empty grant maps to
    /// [`FetchReply::Pending`].
    pub fn fetch(&mut self, job: JobId, worker: u32, batch: u32) -> Result<FetchReply> {
        match self.call(&Request::FetchChunk { job, worker, batch })? {
            Response::Chunks { chunks, epoch } => {
                self.epoch = epoch;
                if chunks.is_empty() {
                    Ok(FetchReply::Pending)
                } else {
                    Ok(FetchReply::Chunks(chunks))
                }
            }
            Response::Error { code: ErrorCode::JobFinished, .. } => Ok(FetchReply::Done),
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            _ => Err(ClientError::Unexpected("Chunks")),
        }
    }

    /// Settle executed leases (batched acknowledgement). Echoes the
    /// last observed server epoch; a journaled server that restarted
    /// since the leases were granted answers
    /// [`ErrorCode::StaleEpoch`] instead of double-counting them.
    pub fn report_done(&mut self, job: JobId, leases: &[LeaseId]) -> Result<()> {
        let epoch = self.epoch;
        Self::expect_ack(self.call(&Request::ReportDone { job, leases: leases.to_vec(), epoch })?)
    }

    /// Ask a journaled server whether `job` survived its restart, and
    /// at what progress. Adopts the server's epoch on success, so
    /// subsequent fetches/reports are fenced correctly. Typed errors:
    /// [`ErrorCode::NoJournal`] from a volatile server,
    /// [`ErrorCode::UnknownJob`] when the job is not in the recovered
    /// state.
    pub fn resume_job(&mut self, job: JobId) -> Result<JobProgress> {
        match self.call(&Request::ResumeJob { job })? {
            Response::JobEpoch {
                job: _,
                epoch,
                n,
                scheduled,
                completed,
                done,
                kind,
                decisions,
            } => {
                self.epoch = epoch;
                Ok(JobProgress { epoch, n, scheduled, completed, done, kind, decisions })
            }
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            _ => Err(ClientError::Unexpected("JobEpoch")),
        }
    }

    /// Liveness ping.
    pub fn heartbeat(&mut self, worker: u32) -> Result<()> {
        Self::expect_ack(self.call(&Request::Heartbeat { worker })?)
    }

    /// Fetch the server's counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot> {
        match self.call(&Request::Stats)? {
            Response::Snapshot(s) => Ok(s),
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            _ => Err(ClientError::Unexpected("Snapshot")),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown_server(&mut self) -> Result<()> {
        Self::expect_ack(self.call(&Request::Shutdown)?)
    }
}

/// Run a whole job from this process: fetch batches, execute each
/// granted iteration through `execute`, report, repeat until the job
/// is done. Returns `(checksum_of_reported_work, iterations_reported,
/// chunks_reported)`.
///
/// The checksum only covers chunks whose `ReportDone` was
/// acknowledged, so the sum over all workers of a job — including ones
/// that crashed mid-chunk — equals the serial checksum exactly when
/// the server's lease recovery re-issued lost work exactly once.
///
/// `on_chunk` is called after each chunk is executed but *before* it
/// is reported — fault-injection hooks (the `net-worker` binary's
/// crash trigger) return `false` to abandon the run mid-chunk.
pub fn drive_job(
    client: &mut Client,
    job: JobId,
    worker: u32,
    batch: u32,
    execute: &mut dyn FnMut(u64) -> u64,
    on_chunk: &mut dyn FnMut(u64) -> bool,
) -> Result<(u64, u64, u64)> {
    let mut checksum = 0u64;
    let mut iterations = 0u64;
    let mut chunks = 0u64;
    let mut executed_chunks = 0u64;
    loop {
        match client.fetch(job, worker, batch)? {
            FetchReply::Done => return Ok((checksum, iterations, chunks)),
            FetchReply::Pending => {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            FetchReply::Chunks(granted) => {
                for c in &granted {
                    let mut sum = 0u64;
                    for i in c.lo..c.hi {
                        sum = sum.wrapping_add(execute(i));
                    }
                    executed_chunks += 1;
                    if !on_chunk(executed_chunks) {
                        // Abandon mid-chunk: executed but never
                        // reported — the server must reclaim it.
                        return Ok((checksum, iterations, chunks));
                    }
                    client.report_done(job, &[c.lease])?;
                    checksum = checksum.wrapping_add(sum);
                    iterations += c.hi - c.lo;
                    chunks += 1;
                }
            }
        }
    }
}

/// [`drive_job`] that additionally records every *acknowledged* range
/// into `acked` — the restart smoke test unions these across workers
/// and restarts to prove each iteration was settled exactly once.
///
/// A report whose reply never arrives (socket error mid-round-trip)
/// is pushed to `ambiguous` instead: the server may have settled and
/// journaled it before dying — or not. The caller resolves each
/// ambiguous range against the union of acked ranges after the fact
/// (re-issued and re-acked elsewhere ⇒ it was lost; acked nowhere ⇒
/// it was settled pre-crash). A *typed* server error is unambiguous
/// (the reply proves the round trip completed) and records nothing.
///
/// Unlike [`drive_job`], partial progress survives an `Err` return:
/// everything acked before the failure is already in `acked`.
#[allow(clippy::too_many_arguments)]
pub fn drive_job_tracked(
    client: &mut Client,
    job: JobId,
    worker: u32,
    batch: u32,
    execute: &mut dyn FnMut(u64) -> u64,
    on_chunk: &mut dyn FnMut(u64) -> bool,
    acked: &mut Vec<(u64, u64)>,
    ambiguous: &mut Vec<(u64, u64)>,
) -> Result<()> {
    let mut executed_chunks = 0u64;
    loop {
        match client.fetch(job, worker, batch)? {
            FetchReply::Done => return Ok(()),
            FetchReply::Pending => {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            FetchReply::Chunks(granted) => {
                for c in &granted {
                    let mut sum = 0u64;
                    for i in c.lo..c.hi {
                        sum = sum.wrapping_add(execute(i));
                    }
                    let _ = sum;
                    executed_chunks += 1;
                    if !on_chunk(executed_chunks) {
                        return Ok(());
                    }
                    match client.report_done(job, &[c.lease]) {
                        Ok(()) => acked.push((c.lo, c.hi)),
                        Err(e @ ClientError::Io(_)) => {
                            ambiguous.push((c.lo, c.hi));
                            return Err(e);
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }
}

/// [`drive_job`] with whole-batch reporting: execute every chunk of
/// the batch, then settle all leases in one `ReportDone` round trip —
/// the load-generator shape where batching pays on both legs.
pub fn drive_job_batched(
    client: &mut Client,
    job: JobId,
    worker: u32,
    batch: u32,
    execute: &mut dyn FnMut(u64) -> u64,
) -> Result<(u64, u64, u64)> {
    let mut checksum = 0u64;
    let mut iterations = 0u64;
    let mut chunks = 0u64;
    loop {
        match client.fetch(job, worker, batch)? {
            FetchReply::Done => return Ok((checksum, iterations, chunks)),
            FetchReply::Pending => {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            FetchReply::Chunks(granted) => {
                let mut sum = 0u64;
                let mut iters = 0u64;
                for c in &granted {
                    for i in c.lo..c.hi {
                        sum = sum.wrapping_add(execute(i));
                    }
                    iters += c.hi - c.lo;
                }
                let leases: Vec<LeaseId> = granted.iter().map(|c| c.lease).collect();
                client.report_done(job, &leases)?;
                checksum = checksum.wrapping_add(sum);
                iterations += iters;
                chunks += granted.len() as u64;
            }
        }
    }
}
