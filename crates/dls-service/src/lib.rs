//! # dls-service — scheduling as a network service
//!
//! The paper's inter-node level is a *remotely accessed global work
//! queue*: two counters `(step, scheduled)` that any node may advance
//! to claim the next chunk (the distributed chunk-calculation approach
//! of Eleliemy & Ciorba). Everything else about the queue is a pure
//! local function of those counters. That makes the inter-node level
//! trivially serviceable: this crate lifts it out of the RMA window
//! and behind a TCP socket, so *processes on different machines* can
//! self-schedule from one queue.
//!
//! * [`protocol`] — the versioned, length-prefixed binary wire format:
//!   `CreateJob`, `FetchChunk` (batched), `ReportDone` (batched),
//!   `Heartbeat`, `Stats`, `Shutdown`, plus typed error frames.
//! * [`server`] — the multi-tenant server: a sharded job table whose
//!   per-job state is the paper's two counters driven by the `dls`
//!   calculators, wrapped in per-chunk leases
//!   ([`resilience::LeaseTable`]) reclaimed exactly once when a client
//!   disconnects, request batching, and explicit backpressure limits
//!   (connections, batch size, per-worker lease quotas, frame size).
//!   Connections are multiplexed over a sharded `epoll` readiness loop
//!   (no thread per connection); admission to `max_connections` is a
//!   single compare-and-swap, and each readiness cycle answers all of
//!   its buffered fetches under one job-table lock acquisition.
//! * [`client`] — a blocking client plus the [`client::drive_job`] /
//!   [`client::drive_job_batched`] worker loops.
//!
//! With a journal directory ([`server::Server::start_with_journal`],
//! `dls-serverd --journal-dir`) the server is **restart-survivable**:
//! every exactly-once-relevant transition is written to a `durability`
//! write-ahead journal and group-committed *before* the cycle's
//! response bytes flush (journal-before-ack), so `kill -9` → restart
//! on the same directory replays snapshot + journal, re-arms unsettled
//! leases, bumps the server epoch, and lets workers reconnect and
//! resume the same job ids (`ResumeJob`). Grants carry the epoch and
//! reports echo it, so a lease from a previous incarnation settles as
//! the typed `StaleEpoch` error instead of corrupting the resumed
//! ledger. See `DESIGN.md` §10 and `tests/restart_smoke.rs`.
//!
//! Two binaries make the service a real multi-process system:
//! `dls-serverd` (the daemon; drains on a `Shutdown` frame or SIGTERM
//! and exits 0 with a final stats snapshot) and `net-worker` (fetches,
//! executes a synthetic workload, reports, and prints its reported
//! checksum — the building block of the exactly-once smoke test).
//!
//! The `hier` crate's `run_live_net` backend uses the same client to
//! realise the paper's full two-level hierarchy with a real network at
//! the top level: one node-agent connection per node fetches
//! inter-node chunks over TCP while the node's ranks keep
//! self-scheduling sub-chunks out of the `mpisim` shared window.

// `deny`, not `forbid`: the one unsafe module (`poller::sys`, the raw
// epoll bindings) opts back in explicitly; everything else stays safe.
#![deny(unsafe_code)]
// Unsafe blocks nested inside `unsafe fn` still need their own `unsafe`
// marker and SAFETY comment — an `unsafe fn` signature is a proof
// obligation for the caller, not a blanket licence for the body.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod client;
mod event_loop;
mod machine;
mod poller;
pub mod protocol;
mod ring;
pub mod server;
pub(crate) mod sync;

pub use client::{
    drive_job, drive_job_batched, drive_job_tracked, Client, ClientError, FetchReply, JobProgress,
};
pub use protocol::{
    ConnSnapshot, ErrorCode, GrantedChunk, JobId, JobSnapshot, JournalTotals, LeaseId, Request,
    Response, ServiceTotals, StatsSnapshot, VERSION,
};
pub use server::{Server, ServiceConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use dls::Kind;

    fn server() -> Server {
        Server::start(ServiceConfig::default(), "127.0.0.1:0").expect("bind")
    }

    #[test]
    fn create_fetch_report_complete() {
        let srv = server();
        let mut c = Client::connect(srv.addr()).unwrap();
        let job = c.create_job(100, Kind::GSS, &[]).unwrap();
        let mut total = 0u64;
        loop {
            match c.fetch(job, 0, 4).unwrap() {
                FetchReply::Chunks(chunks) => {
                    let leases: Vec<_> = chunks.iter().map(|g| g.lease).collect();
                    total += chunks.iter().map(|g| g.hi - g.lo).sum::<u64>();
                    c.report_done(job, &leases).unwrap();
                }
                FetchReply::Pending => std::thread::sleep(std::time::Duration::from_millis(1)),
                FetchReply::Done => break,
            }
        }
        assert_eq!(total, 100);
        let snap = c.stats().unwrap();
        let j = &snap.jobs[0];
        assert!(j.done);
        assert_eq!(j.completed, 100);
        assert_eq!(j.leases_granted, j.leases_completed);
        assert_eq!(j.leases_reclaimed, 0);
        srv.shutdown();
    }

    #[test]
    fn gss_chunks_decrease_like_the_calculator() {
        let srv = server();
        let mut c = Client::connect(srv.addr()).unwrap();
        let job = c.create_job(1000, Kind::GSS, &[]).unwrap();
        let FetchReply::Chunks(first) = c.fetch(job, 0, 3).unwrap() else { panic!("chunks") };
        assert_eq!(first.len(), 3);
        // GSS: strictly decreasing chunk sizes, contiguous from 0.
        assert_eq!(first[0].lo, 0);
        assert_eq!(first[0].hi, first[1].lo);
        assert!(first[0].hi - first[0].lo > first[1].hi - first[1].lo);
        srv.shutdown();
    }

    #[test]
    fn disconnect_reclaims_unsettled_leases_exactly_once() {
        let srv = server();
        let mut owner = Client::connect(srv.addr()).unwrap();
        let job = owner.create_job(50, Kind::SS, &[]).unwrap();
        let FetchReply::Chunks(held) = owner.fetch(job, 7, 5).unwrap() else { panic!("chunks") };
        assert_eq!(held.len(), 5);
        drop(owner); // connection closes with 5 unsettled leases

        // A survivor finishes the job, including the reclaimed ranges.
        let mut survivor = Client::connect(srv.addr()).unwrap();
        let mut seen = std::collections::HashSet::new();
        loop {
            match survivor.fetch(job, 1, 8).unwrap() {
                FetchReply::Chunks(chunks) => {
                    for g in &chunks {
                        for i in g.lo..g.hi {
                            assert!(seen.insert(i), "iteration {i} granted twice");
                        }
                    }
                    let leases: Vec<_> = chunks.iter().map(|g| g.lease).collect();
                    survivor.report_done(job, &leases).unwrap();
                }
                FetchReply::Pending => std::thread::sleep(std::time::Duration::from_millis(1)),
                FetchReply::Done => break,
            }
        }
        assert_eq!(seen.len(), 50);
        let snap = survivor.stats().unwrap();
        let j = &snap.jobs[0];
        assert_eq!(j.leases_reclaimed, 5, "exactly the five held leases");
        assert_eq!(j.leases_granted, j.leases_completed + j.leases_reclaimed);
        assert_eq!(j.completed, 50);
        assert!(j.done);
        srv.shutdown();
    }

    #[test]
    fn quota_backpressure_is_typed() {
        let cfg = ServiceConfig { worker_quota: 3, ..Default::default() };
        let srv = Server::start(cfg, "127.0.0.1:0").expect("bind");
        let mut c = Client::connect(srv.addr()).unwrap();
        let job = c.create_job(1000, Kind::SS, &[]).unwrap();
        // Quota clamps the grant, then refuses outright.
        let FetchReply::Chunks(held) = c.fetch(job, 0, 8).unwrap() else { panic!("chunks") };
        assert_eq!(held.len(), 3, "grant clamped to the quota");
        let err = c.fetch(job, 0, 1).unwrap_err();
        assert!(matches!(err, ClientError::Server { code: ErrorCode::QuotaExceeded, .. }));
        // Settling a lease frees quota.
        c.report_done(job, &[held[0].lease]).unwrap();
        assert!(matches!(c.fetch(job, 0, 1).unwrap(), FetchReply::Chunks(_)));
        srv.shutdown();
    }

    #[test]
    fn connection_limit_answers_busy() {
        let cfg = ServiceConfig { max_connections: 1, ..Default::default() };
        let srv = Server::start(cfg, "127.0.0.1:0").expect("bind");
        let _hold = Client::connect(srv.addr()).unwrap();
        // Give the accept loop time to register the first connection.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let mut second = Client::connect(srv.addr()).unwrap();
        let err = second.heartbeat(0).unwrap_err();
        assert!(
            matches!(err, ClientError::Server { code: ErrorCode::Busy, .. })
                || matches!(err, ClientError::Io(_)),
            "expected Busy or a closed socket, got {err}"
        );
        srv.shutdown();
    }

    #[test]
    fn weighted_fetches_respect_worker_weights() {
        let srv = server();
        let mut c = Client::connect(srv.addr()).unwrap();
        // WF with one worker 3x the other: worker 0's chunks are bigger.
        let job = c.create_job(600, Kind::WF, &[1.5, 0.5]).unwrap();
        let FetchReply::Chunks(fast) = c.fetch(job, 0, 1).unwrap() else { panic!("chunks") };
        let FetchReply::Chunks(slow) = c.fetch(job, 1, 1).unwrap() else { panic!("chunks") };
        assert!(
            fast[0].hi - fast[0].lo > slow[0].hi - slow[0].lo,
            "weighted grant must favour the faster worker"
        );
        srv.shutdown();
    }

    #[test]
    fn shutdown_preserves_progress_counters() {
        let srv = server();
        let mut c = Client::connect(srv.addr()).unwrap();
        let job = c.create_job(100, Kind::GSS, &[]).unwrap();
        let FetchReply::Chunks(chunks) = c.fetch(job, 0, 2).unwrap() else { panic!("chunks") };
        c.report_done(job, &[chunks[0].lease]).unwrap();
        let reported = chunks[0].hi - chunks[0].lo;
        c.shutdown_server().unwrap();
        // Once draining, new grants are refused with a typed error
        // (or the connection is already torn down — also a drain).
        match c.fetch(job, 0, 1) {
            Err(ClientError::Server { code: ErrorCode::ShuttingDown, .. })
            | Err(ClientError::Io(_)) => {}
            other => panic!("fetch during drain must be refused, got {other:?}"),
        }
        let snap = srv.shutdown();
        assert!(snap.shutting_down);
        let j = &snap.jobs[0];
        assert_eq!(j.completed, reported, "progress survives the drain");
        assert!(j.scheduled >= reported);
    }

    #[test]
    fn zero_iteration_job_is_born_done() {
        let srv = server();
        let mut c = Client::connect(srv.addr()).unwrap();
        let job = c.create_job(0, Kind::GSS, &[]).unwrap();
        assert_eq!(c.fetch(job, 0, 1).unwrap(), FetchReply::Done);
        srv.shutdown();
    }
}
