//! Readiness polling for the event-loop server core.
//!
//! On Linux this is a thin wrapper over `epoll` reached through raw
//! syscall bindings (`std::os::fd` for fd types, hand-declared
//! `extern "C"` prototypes — the workspace builds without crates.io,
//! so no `libc`/`mio`). Level-triggered: a connection with unread
//! bytes or unflushed writes keeps reporting ready, which makes the
//! loop logic restart-safe (nothing is lost if a cycle stops early).
//!
//! Elsewhere (the portability fallback) a sweep poller reports every
//! registered fd as ready after a short sleep; non-blocking sockets
//! turn spurious readiness into a cheap `WouldBlock`, so the server
//! stays correct — merely less efficient — on platforms without epoll.
//!
//! All `unsafe` in the crate lives in [`sys`]; the wrapper upholds the
//! invariants the syscalls need (valid fds, correctly sized event
//! buffers).

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Readiness interest for one registered fd.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Interest {
    pub(crate) readable: bool,
    pub(crate) writable: bool,
}

impl Interest {
    pub(crate) const READ: Interest = Interest { readable: true, writable: false };
    pub(crate) const READ_WRITE: Interest = Interest { readable: true, writable: true };
}

/// One readiness event. The loop is level-triggered, so the token is
/// all it needs: errors and hangups surface through the non-blocking
/// read, and spurious wakeups cost one `WouldBlock`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Event {
    pub(crate) token: u64,
}

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    //! Raw epoll bindings. The only unsafe module in the crate.

    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;

    pub(super) const EPOLL_CTL_ADD: c_int = 1;
    pub(super) const EPOLL_CTL_DEL: c_int = 2;
    pub(super) const EPOLL_CTL_MOD: c_int = 3;

    pub(super) const EPOLLIN: u32 = 0x001;
    pub(super) const EPOLLOUT: u32 = 0x004;
    /// Peer shutdown of the write half: requested so half-closed
    /// connections wake the loop (the read then surfaces the EOF).
    pub(super) const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// Kernel `struct epoll_event`. x86-64 packs it to 12 bytes; other
    /// architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub(super) struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    pub(super) fn create() -> io::Result<RawFd> {
        // SAFETY: no pointers involved; the returned fd is owned by the
        // caller and closed in `Poller::drop`.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub(super) fn ctl(epfd: RawFd, op: c_int, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // SAFETY: `ev` outlives the call; DEL ignores the pointer but a
        // valid one is passed anyway (pre-2.6.9 kernels required it).
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub(super) fn wait(
        epfd: RawFd,
        buf: &mut [EpollEvent],
        timeout_ms: c_int,
    ) -> io::Result<usize> {
        // SAFETY: `buf` is a valid mutable slice and `maxevents` is its
        // exact length, so the kernel never writes out of bounds.
        let rc = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(rc as usize)
    }

    pub(super) fn close_fd(fd: RawFd) {
        // SAFETY: called exactly once per owned fd, from Drop.
        unsafe {
            close(fd);
        }
    }
}

/// Largest readiness batch collected per `wait` call.
const MAX_EVENTS: usize = 1024;

#[cfg(target_os = "linux")]
pub(crate) use linux_impl::Poller;

#[cfg(target_os = "linux")]
mod linux_impl {
    use super::*;

    /// Level-triggered epoll instance.
    pub(crate) struct Poller {
        epfd: RawFd,
        buf: Vec<sys::EpollEvent>,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            Ok(Poller {
                epfd: sys::create()?,
                buf: vec![sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS],
            })
        }

        fn mask(interest: Interest) -> u32 {
            let mut m = sys::EPOLLRDHUP;
            if interest.readable {
                m |= sys::EPOLLIN;
            }
            if interest.writable {
                m |= sys::EPOLLOUT;
            }
            m
        }

        // `&mut self` keeps the API identical to the fallback poller,
        // which tracks registrations in a map.
        pub(crate) fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            sys::ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, Self::mask(interest), token)
        }

        pub(crate) fn reregister(
            &mut self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            sys::ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, Self::mask(interest), token)
        }

        pub(crate) fn deregister(&mut self, fd: RawFd) {
            // Close races (fd already gone) are harmless here.
            let _ = sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0);
        }

        /// Collect readiness into `events` (cleared first), waiting at
        /// most `timeout`.
        pub(crate) fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Duration,
        ) -> io::Result<()> {
            events.clear();
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let n = match sys::wait(self.epfd, &mut self.buf, ms) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for ev in &self.buf[..n] {
                events.push(Event { token: ev.data });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            sys::close_fd(self.epfd);
        }
    }
}

#[cfg(not(target_os = "linux"))]
pub(crate) use fallback_impl::Poller;

#[cfg(not(target_os = "linux"))]
mod fallback_impl {
    use super::*;
    use std::collections::HashMap;

    /// Portability fallback: report every registered fd as ready after
    /// a short sleep. Spurious readiness costs one `WouldBlock` per fd
    /// per sweep; correctness is unaffected because every socket the
    /// event loop owns is non-blocking.
    pub(crate) struct Poller {
        registered: HashMap<RawFd, (u64, Interest)>,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            Ok(Poller { registered: HashMap::new() })
        }

        pub(crate) fn register(&mut self, fd: RawFd, token: u64, i: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, i));
            Ok(())
        }

        pub(crate) fn reregister(&mut self, fd: RawFd, token: u64, i: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, i));
            Ok(())
        }

        pub(crate) fn deregister(&mut self, fd: RawFd) {
            self.registered.remove(&fd);
        }

        pub(crate) fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Duration,
        ) -> io::Result<()> {
            events.clear();
            std::thread::sleep(timeout.min(Duration::from_millis(2)));
            for (&_fd, &(token, _interest)) in &self.registered {
                events.push(Event { token });
            }
            Ok(())
        }
    }
}
