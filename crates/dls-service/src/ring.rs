//! Per-connection receive ring buffer.
//!
//! The event loop reads socket bytes straight into this buffer's spare
//! tail and decodes frames *in place* from the contiguous live region —
//! no intermediate stack chunk, no per-frame `Vec` allocation, no
//! per-frame `drain` shifting the whole buffer (the old thread-backed
//! `FrameReader` paid both). Consumed bytes advance a head offset;
//! the live region is memmoved to the front only when the dead prefix
//! outgrows the live suffix, so compaction cost is amortised O(1) per
//! byte received.

use std::io::Read;

/// Initial spare capacity reserved ahead of each socket read.
const READ_CHUNK: usize = 4096;

/// A contiguous sliding receive buffer (head-offset "ring": the live
/// bytes are always one contiguous slice, which is what zero-copy
/// frame decode needs).
#[derive(Debug, Default)]
pub(crate) struct RingBuf {
    buf: Vec<u8>,
    head: usize,
}

impl RingBuf {
    /// The live (unconsumed) bytes.
    pub(crate) fn as_slice(&self) -> &[u8] {
        &self.buf[self.head..]
    }

    /// Number of live bytes.
    pub(crate) fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.head == self.buf.len()
    }

    /// Drop `n` bytes from the front of the live region.
    pub(crate) fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.len());
        self.head += n;
        if self.is_empty() {
            // Everything consumed: reset without deallocating.
            self.buf.clear();
            self.head = 0;
        }
    }

    /// Memmove the live region to the front when the dead prefix
    /// dominates, keeping append cost amortised.
    fn compact(&mut self) {
        if self.head > 0 && self.head >= self.len() {
            self.buf.copy_within(self.head.., 0);
            let live = self.len();
            self.buf.truncate(live);
            self.head = 0;
        }
    }

    /// Append bytes (test harness; production reads use
    /// [`RingBuf::read_from`]).
    #[cfg(test)]
    pub(crate) fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Read once from `r` directly into the spare tail. Returns the
    /// byte count (0 = EOF); errors pass through untouched.
    pub(crate) fn read_from(&mut self, r: &mut impl Read) -> std::io::Result<usize> {
        self.compact();
        let old = self.buf.len();
        self.buf.resize(old + READ_CHUNK, 0);
        match r.read(&mut self.buf[old..]) {
            Ok(k) => {
                self.buf.truncate(old + k);
                Ok(k)
            }
            Err(e) => {
                self.buf.truncate(old);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consume_resets_when_empty() {
        let mut r = RingBuf::default();
        r.extend(&[1, 2, 3]);
        r.consume(3);
        assert!(r.is_empty());
        assert_eq!(r.head, 0, "full consumption resets the head");
    }

    #[test]
    fn compaction_preserves_live_bytes() {
        let mut r = RingBuf::default();
        r.extend(&[0; 100]);
        r.consume(90);
        r.extend(&[7; 4]); // dead prefix (90) > live (10) → memmove
        assert_eq!(r.head, 0);
        assert_eq!(r.len(), 14);
        assert_eq!(&r.as_slice()[10..], &[7; 4]);
    }

    /// A length-prefixed frame whose bytes arrive in two reads split
    /// either side of a compaction: the memmove must leave the partial
    /// frame contiguous and intact for in-place decode.
    #[test]
    fn frame_spanning_compaction_boundary_stays_contiguous() {
        let mut r = RingBuf::default();
        // 90 bytes of already-decoded traffic, then the first half of a
        // 12-byte frame: 4-byte length prefix (8) + 2 of 8 body bytes.
        r.extend(&[0xAA; 90]);
        let body: Vec<u8> = (1..=8).collect();
        r.extend(&8u32.to_le_bytes());
        r.extend(&body[..2]);
        r.consume(90); // dead prefix (90) > live (6): next append compacts
        r.extend(&body[2..]);
        assert_eq!(r.head, 0, "compaction moved the partial frame to the front");
        assert_eq!(r.len(), 12);
        let slice = r.as_slice();
        assert_eq!(u32::from_le_bytes(slice[..4].try_into().unwrap()), 8);
        assert_eq!(&slice[4..], &body[..], "frame body survived the mid-frame memmove");
    }

    /// Exactly-full buffer: a source that delivers precisely one
    /// `READ_CHUNK`, consumed to the last byte — the reset-on-empty
    /// path must fire from the completely full state too.
    #[test]
    fn exactly_full_buffer_consumes_to_reset() {
        let mut r = RingBuf::default();
        let data = vec![0x5C; READ_CHUNK];
        let mut src: &[u8] = &data;
        assert_eq!(r.read_from(&mut src).unwrap(), READ_CHUNK);
        assert_eq!(r.len(), READ_CHUNK);
        r.consume(READ_CHUNK - 1);
        assert_eq!(r.as_slice(), &[0x5C], "one live byte left at the very end");
        r.consume(1);
        assert!(r.is_empty());
        assert_eq!(r.head, 0, "exact-boundary consumption resets the head");
        assert_eq!(r.buf.len(), 0, "reset reclaims the logical length");
    }

    /// A zero-length body directly after a compaction: the frame is
    /// nothing but its length prefix, and consuming it from the
    /// freshly-compacted front must behave like any other frame.
    #[test]
    fn zero_length_body_after_compaction() {
        let mut r = RingBuf::default();
        r.extend(&[0xEE; 64]);
        r.consume(64); // empties → reset path
        r.extend(&0u32.to_le_bytes()); // zero-length frame: prefix only
        assert_eq!(r.head, 0);
        assert_eq!(u32::from_le_bytes(r.as_slice().try_into().unwrap()), 0);
        r.consume(4);
        assert!(r.is_empty(), "a prefix-only frame consumes cleanly");
    }

    /// The compaction trigger is `dead >= live`: at exact equality the
    /// memmove must fire and preserve the live half.
    #[test]
    fn compaction_fires_at_exact_dead_live_tie() {
        let mut r = RingBuf::default();
        r.extend(&[1, 2, 3, 4, 5, 6]);
        r.consume(3); // dead 3 == live 3
        r.extend(&[7]);
        assert_eq!(r.head, 0, "tie triggers compaction");
        assert_eq!(r.as_slice(), &[4, 5, 6, 7]);
    }

    #[test]
    fn read_from_appends_and_reports_eof() {
        let mut r = RingBuf::default();
        let mut src: &[u8] = &[9, 8, 7];
        assert_eq!(r.read_from(&mut src).unwrap(), 3);
        assert_eq!(r.as_slice(), &[9, 8, 7]);
        assert_eq!(r.read_from(&mut src).unwrap(), 0, "EOF is 0");
        assert_eq!(r.len(), 3, "EOF read leaves the buffer untouched");
    }
}
