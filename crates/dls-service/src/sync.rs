//! Thin synchronization facade for the service core.
//!
//! Every concurrency primitive the server touches — the shard mutexes,
//! the counter atomics, the shutdown condvar — is imported through this
//! module rather than from `std::sync` directly. In a normal build the
//! re-exports below compile to *exactly* `std::sync` (zero-cost: they
//! are `pub use` aliases, not wrappers). Under `--cfg conc_check` the
//! same names resolve to the instrumented virtual primitives from the
//! `conc-check` crate, so the identical server code can be driven
//! through the deterministic interleaving explorer and the
//! linearizability checker without a single source change.
//!
//! Rules of the facade:
//! * server/event-loop code must not name `std::sync` primitives
//!   directly (the `poller::sys` layer and signal handlers are exempt:
//!   async-signal context must not take the model scheduler's baton);
//! * only the primitives the core actually uses are re-exported — if a
//!   new one is needed, add it here in both halves.

#[cfg(not(conc_check))]
pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};

#[cfg(not(conc_check))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
}

#[cfg(conc_check)]
pub use conc_check::sync::{Arc, Condvar, Mutex, MutexGuard};

#[cfg(conc_check)]
pub mod atomic {
    pub use conc_check::sync::atomic::{AtomicBool, AtomicU64, Ordering};
}
