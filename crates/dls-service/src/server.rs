//! The chunk-scheduling server: a sharded, multi-tenant job table
//! behind a sharded event loop.
//!
//! Each job's scheduling state is exactly the paper's global work
//! queue — the two counters `(step, scheduled)` — driven by the `dls`
//! chunk calculators. Three service-grade layers wrap it:
//!
//! * **Leases** ([`resilience::LeaseTable`]): every granted chunk is a
//!   revocable lease. A client that disconnects (crash, kill, network
//!   partition) has its unsettled leases reclaimed *exactly once*; the
//!   ranges re-enter the job through a reclaim pool served ahead of
//!   fresh counter advances, so the job still completes every
//!   iteration exactly once.
//! * **Batching**: one `FetchChunk` round trip can grant up to
//!   `max_batch` chunks and one `ReportDone` can settle as many — the
//!   network analogue of chunk granularity (amortise one RTT over k
//!   chunks).
//! * **Backpressure**: hard limits on concurrent connections, frame
//!   size, batch size, job count, and unsettled leases per worker.
//!   Every limit answers with a typed error frame instead of silence.
//!
//! Connections are served by [`crate::event_loop`]: a fixed set of
//! readiness-loop shards multiplexing every socket over `epoll` — no
//! thread per connection, admission decided by a single compare-and-
//! swap, and each shard answering a whole readiness cycle's fetches
//! under one job-table lock acquisition.
//!
//! Shutdown (a `Shutdown` frame or [`Server::shutdown`], which the
//! `dls-serverd` binary also wires to SIGTERM) drains in-flight
//! requests: loop shards finish answering what is buffered, close
//! connections as they go quiet, answer late fetches with
//! [`ErrorCode::ShuttingDown`], and exit; the final [`StatsSnapshot`]
//! preserves every job's progress counters.

use crate::event_loop::LoopShard;
use crate::protocol::{
    ConnSnapshot, ErrorCode, GrantedChunk, JobSnapshot, JournalTotals, Request, Response,
    ServiceTotals, StatsSnapshot,
};
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::{Arc, Condvar, Mutex};
use autotune::{ChunkSample, Tuner};
use dls::switchable::{Decision, SchedKind, SwitchableScheduler};
use dls::technique::WorkerCtx;
use dls::{LoopSpec, SchedState};
use durability::{GrantEntry, JobImage, Journal, JournalOptions, JournalRecord, RecoveredState};
use resilience::{LeaseId, LeaseTable};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Reclaimer id recorded in the lease ledger for server-side
/// disconnect reclamation (no worker rank performs it).
const SERVER_RECLAIMER: u32 = u32::MAX;

/// Tunable limits and backpressure knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Concurrent connections; further accepts answer
    /// [`ErrorCode::Busy`] and close.
    pub max_connections: u32,
    /// Largest `FetchChunk.batch` honoured.
    pub max_batch: u32,
    /// Largest unsettled-lease count per `(job, worker)` — a worker
    /// must report before it can hoard more chunks.
    pub worker_quota: u32,
    /// Jobs the table will hold.
    pub max_jobs: u32,
    /// Largest accepted frame payload.
    pub max_frame: u32,
    /// Job-table shards (reduces cross-job lock contention).
    pub shards: u32,
    /// Event-loop shards: threads multiplexing the connections. Each
    /// owns a share of the accept socket.
    pub event_loops: u32,
    /// Readiness-poll tick; bounds drain latency and how often batched
    /// counters are committed.
    pub poll_interval: Duration,
    /// Accept adaptive techniques (`AF`, `AWF-*`, `AUTO`). When false,
    /// `CreateJob` with any non-pure kind is answered with
    /// [`ErrorCode::BadTechnique`] — the knob for deployments that
    /// want the v2 behaviour of purely deterministic sizing.
    pub adaptive: bool,
    /// Override the AUTO tuner's assumed per-fetch overhead `h` in
    /// nanoseconds (`None` uses the `autotune` default). Raising it
    /// biases the tuner toward coarser techniques — and pins its
    /// decisions for tests that must not depend on live round-trip
    /// latency.
    pub tuner_overhead_ns: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_connections: 128,
            max_batch: 64,
            worker_quota: 256,
            max_jobs: 1024,
            max_frame: crate::protocol::MAX_FRAME,
            shards: 8,
            event_loops: 2,
            poll_interval: Duration::from_millis(20),
            adaptive: true,
            tuner_overhead_ns: None,
        }
    }
}

/// One job: the paper's two-counter global queue plus the lease ledger
/// and reclaim pool.
pub(crate) struct Job {
    spec: LoopSpec,
    /// Chunk sizing: any technique (pure or adaptive), re-basable onto
    /// the unscheduled remainder when the tuner switches mid-job.
    sched: SwitchableScheduler,
    /// Mode the job was created with — journaled in `JobCreated` and
    /// reported as `mode` in snapshots (`AUTO` stays `AUTO` here even
    /// as `sched.active()` moves through the ladder).
    mode: SchedKind,
    /// Online technique selector; `Some` iff `mode == AUTO`.
    tuner: Option<Tuner>,
    /// Tuner decision history, dense by `seq` (journaled one record
    /// per decision, replayed verbatim on recovery).
    decisions: Vec<Decision>,
    weights: Vec<f64>,
    /// Scheduling step — the first global counter.
    step: u64,
    /// Iterations handed out — the second global counter.
    scheduled: u64,
    /// Iterations executed *and acknowledged*.
    completed: u64,
    done: bool,
    /// Ranges reclaimed from dead clients, served before fresh counter
    /// advances.
    reclaim_pool: VecDeque<(u64, u64)>,
    leases: LeaseTable,
    /// Active lease -> connection that holds it.
    lease_conn: HashMap<LeaseId, u64>,
    /// Connection -> its active leases (reverse index for disconnect).
    conn_leases: HashMap<u64, Vec<LeaseId>>,
    /// Unsettled leases per worker (quota enforcement).
    outstanding: HashMap<u32, u32>,
    // Counters.
    fetches: u64,
    chunks_granted: u64,
    reclaims: u64,
    empty_polls: u64,
}

impl Job {
    fn new(n: u64, kind: SchedKind, weights: Vec<f64>, tuner_overhead_ns: Option<u64>) -> Job {
        // `p` only parameterises techniques that divide by worker
        // count; the service has no fixed worker census, so size the
        // spec by the weight table when given, else a default of 8 —
        // the same role `nodes` plays for the inter level in `hier`.
        let p = if weights.is_empty() { 8 } else { weights.len() as u32 };
        let spec = LoopSpec::new(n, p.max(1));
        Job {
            spec,
            sched: SwitchableScheduler::new(spec, kind),
            mode: kind,
            tuner: (kind == SchedKind::Auto).then(|| {
                let mut cfg = autotune::TunerConfig::new(p.max(1));
                if let Some(h) = tuner_overhead_ns {
                    cfg.overhead_ns = h;
                }
                Tuner::new(p.max(1), cfg)
            }),
            decisions: Vec::new(),
            weights,
            step: 0,
            scheduled: 0,
            completed: 0,
            done: n == 0,
            reclaim_pool: VecDeque::new(),
            leases: LeaseTable::new(),
            lease_conn: HashMap::new(),
            conn_leases: HashMap::new(),
            outstanding: HashMap::new(),
            fetches: 0,
            chunks_granted: 0,
            reclaims: 0,
            empty_polls: 0,
        }
    }

    /// Rebuild a live job from its replayed image. Connection indices
    /// start empty: every pre-crash client is gone, and recovery has
    /// already re-armed their leases into the reclaim pool.
    fn from_image(img: JobImage, tuner_overhead_ns: Option<u64>) -> Job {
        let mode = img.kind.unwrap_or(SchedKind::Fixed(dls::Kind::SS));
        // The technique in force after a restart is whatever the last
        // journaled decision switched to — replayed, never re-derived,
        // so recovery is deterministic whatever the tuner would think
        // of the post-crash timings.
        let active = img.active_kind().unwrap_or(mode);
        let switches = img.decisions.len() as u32;
        let mut job = Job::new(img.n, mode, img.weights, tuner_overhead_ns);
        job.step = img.step;
        job.scheduled = img.scheduled;
        job.completed = img.completed;
        job.done = job.done || img.done;
        job.reclaim_pool = img.reclaim_pool.into_iter().collect();
        job.leases = img.leases;
        job.decisions = img.decisions;
        job.sched = SwitchableScheduler::restore(
            job.spec,
            active,
            SchedState { step: img.step, scheduled: img.scheduled },
            switches,
        );
        if let Some(t) = job.tuner.as_mut() {
            t.resume_at(switches);
        }
        job
    }

    /// The journal's view of this job's replayed image — the snapshot
    /// body is serialized from live state through this.
    fn to_image(&self) -> JobImage {
        JobImage {
            n: self.spec.n_iters,
            kind: Some(self.mode),
            weights: self.weights.clone(),
            step: self.step,
            scheduled: self.scheduled,
            completed: self.completed,
            done: self.done,
            reclaim_pool: self.reclaim_pool.iter().copied().collect(),
            leases: self.leases.clone(),
            decisions: self.decisions.clone(),
        }
    }

    fn grant(&mut self, worker: u32, lo: u64, hi: u64, conn: u64, now_ns: u64) -> GrantedChunk {
        let lease = self.leases.grant(worker, lo, hi, now_ns);
        self.lease_conn.insert(lease, conn);
        self.conn_leases.entry(conn).or_default().push(lease);
        *self.outstanding.entry(worker).or_insert(0) += 1;
        self.chunks_granted += 1;
        GrantedChunk { lease, lo, hi }
    }

    /// Serve up to `batch` chunks: reclaimed ranges first, then fresh
    /// advances of the two counters. Each grant carries a `from_pool`
    /// flag so the caller can journal the burst faithfully.
    fn fetch(
        &mut self,
        worker: u32,
        batch: u32,
        conn: u64,
        now_ns: u64,
    ) -> Vec<(GrantedChunk, bool)> {
        let n = self.spec.n_iters;
        let weight = self.weights.get(worker as usize).copied().unwrap_or(1.0);
        let ctx = WorkerCtx { worker, weight };
        let mut out = Vec::new();
        for _ in 0..batch {
            if let Some((lo, hi)) = self.reclaim_pool.pop_front() {
                out.push((self.grant(worker, lo, hi, conn, now_ns), true));
            } else if self.scheduled < n {
                // `next_size` consumes the size from the scheduler's
                // segment view; the global counters must advance by
                // exactly what it returned (lockstep contract).
                let size = self.sched.next_size(ctx);
                if size == 0 {
                    break;
                }
                let lo = self.scheduled;
                self.step += 1;
                self.scheduled += size;
                out.push((self.grant(worker, lo, lo + size, conn, now_ns), false));
            } else {
                break;
            }
        }
        self.fetches += 1;
        if out.is_empty() {
            self.empty_polls += 1;
        }
        out
    }

    /// Settle one reported lease. Returns the iteration count credited.
    fn report(&mut self, lease: LeaseId, now_ns: u64) -> Result<u64, ErrorCode> {
        let (owner, len, granted_ns) = match self.leases.get(lease) {
            Some(l) => (l.owner, l.hi - l.lo, l.granted_ns),
            None => return Err(ErrorCode::StaleLease),
        };
        if self.leases.complete(lease).is_err() {
            return Err(ErrorCode::StaleLease);
        }
        // Grant-to-settle latency is the monitor's whole signal: it
        // feeds the adaptive scheduler's per-worker rate estimate and
        // the tuner's streaming statistics.
        let latency_ns = now_ns.saturating_sub(granted_ns);
        self.sched.record(owner, len, latency_ns, 0);
        if let Some(t) = self.tuner.as_mut() {
            t.observe(ChunkSample { worker: owner, len, latency_ns });
        }
        self.completed += len;
        if let Some(o) = self.outstanding.get_mut(&owner) {
            *o = o.saturating_sub(1);
        }
        if let Some(conn) = self.lease_conn.remove(&lease) {
            if let Some(list) = self.conn_leases.get_mut(&conn) {
                list.retain(|&l| l != lease);
            }
        }
        if self.completed == self.spec.n_iters {
            self.done = true;
        }
        Ok(len)
    }

    /// One settle elapsed: let the tuner re-evaluate at its batch
    /// boundary. A decision both re-bases the live scheduler (the two
    /// global counters carry over — exactly-once is untouched) and is
    /// returned so the caller can journal it.
    fn tuner_tick(&mut self) -> Option<Decision> {
        if self.done {
            return None;
        }
        let global = SchedState { step: self.step, scheduled: self.scheduled };
        let decision = self.tuner.as_mut()?.on_settle(self.sched.active(), global)?;
        self.sched.switch(decision.to, global);
        self.decisions.push(decision);
        Some(decision)
    }

    /// Reclaim every unsettled lease held by `conn` (it disconnected).
    /// Returns the reclaimed lease ids (in grant order) so the caller
    /// can journal them.
    fn reclaim_conn(&mut self, conn: u64) -> Vec<LeaseId> {
        let Some(list) = self.conn_leases.remove(&conn) else { return Vec::new() };
        let mut reclaimed = Vec::new();
        for lease in list {
            // Only unsettled leases remain in the reverse index, so the
            // ledger transition must succeed; a failure here would mean
            // a double settlement and is a server bug worth surfacing.
            match self.leases.reclaim(lease, SERVER_RECLAIMER) {
                Ok((lo, hi)) => {
                    self.reclaim_pool.push_back((lo, hi));
                    if let Some(l) = self.leases.get(lease) {
                        if let Some(o) = self.outstanding.get_mut(&l.owner) {
                            *o = o.saturating_sub(1);
                        }
                    }
                    self.lease_conn.remove(&lease);
                    self.reclaims += 1;
                    reclaimed.push(lease);
                }
                Err(e) => debug_assert!(false, "disconnect reclaim hit settled lease: {e}"),
            }
        }
        reclaimed
    }

    fn snapshot(&self, job: u64) -> JobSnapshot {
        let (granted, completed, reclaimed) = self.leases.counts();
        JobSnapshot {
            job,
            n: self.spec.n_iters,
            step: self.step,
            scheduled: self.scheduled,
            completed: self.completed,
            done: self.done,
            fetches: self.fetches,
            chunks_granted: self.chunks_granted,
            reclaims: self.reclaims,
            empty_polls: self.empty_polls,
            leases_granted: granted,
            leases_completed: completed,
            leases_reclaimed: reclaimed,
            kind: Some(self.sched.active()),
            mode: Some(self.mode),
            decisions: self.decisions.clone(),
        }
    }
}

/// Per-fetch additions to the global counters, returned by
/// [`State::fetch_locked`] so the event loop can batch them into one
/// atomic add per counter per readiness cycle.
#[derive(Default)]
pub(crate) struct FetchTally {
    pub(crate) fetches: u64,
    pub(crate) granted: u64,
    pub(crate) empty: u64,
}

/// Shared server state.
pub(crate) struct State {
    pub(crate) cfg: ServiceConfig,
    epoch: Instant,
    pub(crate) shards: Vec<Mutex<HashMap<u64, Job>>>,
    next_job: AtomicU64,
    jobs_created: AtomicU64,
    pub(crate) next_conn: AtomicU64,
    // Ordering discipline for the counters below: every writer uses an
    // RMW (`fetch_add`/`fetch_sub`/`fetch_max`/`fetch_update`), and an
    // RMW always reads the *latest* value in the atomic's modification
    // order regardless of its `Ordering` — so `Relaxed` updates never
    // lose a count (verified exhaustively by the `conc-check`
    // admission model). `Relaxed` is about visibility to *other*
    // memory, which none of these counters guard. The two sites with a
    // hard cross-thread invariant — the `conns_active` admission CAS
    // and the `jobs_created` cap CAS — use `SeqCst` anyway so the cap
    // check is also ordered against the `shutdown` flag.
    pub(crate) conns_active: AtomicU64,
    pub(crate) conns_total: AtomicU64,
    /// High-water mark of concurrently admitted connections — observes
    /// that CAS admission never overshoots `max_connections`.
    pub(crate) conns_peak: AtomicU64,
    pub(crate) fetches: AtomicU64,
    pub(crate) chunks_granted: AtomicU64,
    reclaims: AtomicU64,
    pub(crate) empty_polls: AtomicU64,
    pub(crate) bytes_in: AtomicU64,
    pub(crate) bytes_out: AtomicU64,
    pub(crate) shutdown: AtomicBool,
    shutdown_cv: (Mutex<bool>, Condvar),
    pub(crate) conn_stats: Mutex<HashMap<u64, ConnSnapshot>>,
    /// Write-ahead journal (None = volatile server). Lock ordering:
    /// the journal lock is only ever taken *after* a job-table shard
    /// lock, or with no shard lock held — never the other way around.
    /// `Journal::append` does no I/O, so the under-shard-lock appends
    /// on the grant/settle paths cost a buffered encode, nothing more.
    journal: Option<Mutex<Journal>>,
    /// Epoch fencing every lease this incarnation grants (0 = no
    /// journal; monotone across restarts otherwise).
    journal_epoch: u32,
    /// Take a snapshot once this many records accumulate since the
    /// last one (0 = never snapshot).
    snapshot_every: u64,
    /// `JournalStats::records` at the last snapshot.
    last_snap_records: AtomicU64,
}

impl State {
    fn new(cfg: ServiceConfig) -> State {
        let shards = cfg.shards.max(1);
        State {
            cfg,
            epoch: Instant::now(),
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            next_job: AtomicU64::new(0),
            jobs_created: AtomicU64::new(0),
            next_conn: AtomicU64::new(0),
            conns_active: AtomicU64::new(0),
            conns_total: AtomicU64::new(0),
            conns_peak: AtomicU64::new(0),
            fetches: AtomicU64::new(0),
            chunks_granted: AtomicU64::new(0),
            reclaims: AtomicU64::new(0),
            empty_polls: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            shutdown_cv: (Mutex::new(false), Condvar::new()),
            conn_stats: Mutex::new(HashMap::new()),
            journal: None,
            journal_epoch: 0,
            snapshot_every: 0,
            last_snap_records: AtomicU64::new(0),
        }
    }

    /// Seed a fresh `State` from a recovered journal image: rebuild
    /// every job (re-armed leases land in the reclaim pools) and adopt
    /// the bumped epoch.
    fn adopt_recovered(&mut self, journal: Journal, rec: RecoveredState, snapshot_every: u64) {
        self.journal_epoch = rec.epoch;
        self.snapshot_every = snapshot_every;
        self.last_snap_records = AtomicU64::new(journal.stats().records);
        self.journal = Some(Mutex::new(journal));
        self.next_job = AtomicU64::new(rec.jobs_created);
        self.jobs_created = AtomicU64::new(rec.jobs_created);
        for (id, img) in rec.jobs {
            let shard = self.shard_index(id);
            if let Ok(mut jobs) = self.shards[shard].lock() {
                jobs.insert(id, Job::from_image(img, self.cfg.tuner_overhead_ns));
            }
        }
    }
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Index of the job-table shard holding `job` — exposed so the
    /// event loop can batch same-shard fetches under one lock.
    pub(crate) fn shard_index(&self, job: u64) -> usize {
        (job % self.shards.len() as u64) as usize
    }

    fn shard_of(&self, job: u64) -> &Mutex<HashMap<u64, Job>> {
        &self.shards[self.shard_index(job)]
    }

    /// Buffer one journal record (no-op on a volatile server). Called
    /// on the grant/settle/reclaim paths while the affected job's
    /// shard lock is held, which is what orders the records: no I/O
    /// happens here, only an encode into the journal's buffer.
    fn journal_append(&self, rec: &JournalRecord) {
        if let Some(journal) = &self.journal {
            if let Ok(mut j) = journal.lock() {
                j.append(rec);
            }
        }
    }

    /// Group-commit the journal: one buffered write + fsync (per
    /// policy) per event-loop cycle, called by every loop shard after
    /// its serve pass and *before* its flush pass — a `ReportDone` ack
    /// never reaches a socket before its `Settled` record is durable.
    /// Also the snapshot trigger: when enough records have accumulated,
    /// seal the segment, serialize live state, and install.
    pub(crate) fn journal_commit(&self) {
        let Some(journal) = &self.journal else { return };
        let boundary = {
            let Ok(mut j) = journal.lock() else { return };
            if let Err(e) = j.commit() {
                // A server that cannot persist must stop granting:
                // drain now rather than hand out leases it would
                // forget after a crash.
                eprintln!("dls-service: journal commit failed, draining: {e}");
                drop(j);
                self.request_shutdown();
                return;
            }
            let records = j.stats().records;
            let due = self.snapshot_every > 0
                && records.saturating_sub(self.last_snap_records.load(Ordering::Relaxed))
                    >= self.snapshot_every;
            if !due {
                return;
            }
            // Claim the snapshot while still holding the journal lock
            // so concurrent loop shards don't both start one.
            self.last_snap_records.store(records, Ordering::Relaxed);
            match j.begin_snapshot() {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("dls-service: snapshot rotation failed: {e}");
                    return;
                }
            }
            // Journal lock released here: serializing live state takes
            // shard locks, and shard -> journal is the locking order.
        };
        let body = self.serialize_live().serialize();
        if let Ok(mut j) = journal.lock() {
            if let Err(e) = j.install_snapshot(boundary, &body) {
                eprintln!("dls-service: snapshot install failed: {e}");
            }
        }
    }

    /// The journal's view of the live state, shard by shard (one lock
    /// at a time, never nested with the journal lock). The image may
    /// run *ahead* of the committed journal — replay idempotence makes
    /// the overlap harmless.
    fn serialize_live(&self) -> RecoveredState {
        let mut rec = RecoveredState::new();
        rec.epoch = self.journal_epoch;
        rec.jobs_created = self.jobs_created.load(Ordering::SeqCst);
        for shard in &self.shards {
            if let Ok(shard) = shard.lock() {
                for (&id, job) in shard.iter() {
                    rec.jobs.insert(id, job.to_image());
                }
            }
        }
        rec
    }

    /// Drain the journal: flush + force-fsync everything buffered and
    /// stamp the clean-exit `Drained` record. Called once from
    /// `Server::shutdown` after the loop shards have joined.
    fn journal_drain(&self) {
        if let Some(journal) = &self.journal {
            if let Ok(mut j) = journal.lock() {
                j.append(&JournalRecord::Drained { epoch: self.journal_epoch });
                if let Err(e) = j.sync() {
                    eprintln!("dls-service: journal drain sync failed: {e}");
                }
            }
        }
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let (lock, cv) = &self.shutdown_cv;
        if let Ok(mut flagged) = lock.lock() {
            *flagged = true;
            cv.notify_all();
        }
    }

    fn snapshot(&self) -> StatsSnapshot {
        let mut jobs = Vec::new();
        let mut jobs_active = 0;
        for shard in &self.shards {
            if let Ok(shard) = shard.lock() {
                for (&id, job) in shard.iter() {
                    if !job.done {
                        jobs_active += 1;
                    }
                    jobs.push(job.snapshot(id));
                }
            }
        }
        jobs.sort_by_key(|j| j.job);
        let mut conns: Vec<ConnSnapshot> =
            self.conn_stats.lock().map(|m| m.values().cloned().collect()).unwrap_or_default();
        conns.sort_by_key(|c| c.conn);
        StatsSnapshot {
            uptime_ns: self.now_ns(),
            shutting_down: self.shutdown.load(Ordering::SeqCst),
            // Relaxed loads: each counter is exact on its own (all
            // writers are RMWs), but the snapshot as a whole is
            // advisory — the values are not required to be mutually
            // consistent at a single instant.
            totals: ServiceTotals {
                fetches: self.fetches.load(Ordering::Relaxed),
                chunks_granted: self.chunks_granted.load(Ordering::Relaxed),
                reclaims: self.reclaims.load(Ordering::Relaxed),
                empty_polls: self.empty_polls.load(Ordering::Relaxed),
                jobs_created: self.jobs_created.load(Ordering::Relaxed),
                jobs_active,
                conns_active: self.conns_active.load(Ordering::Relaxed),
                conns_total: self.conns_total.load(Ordering::Relaxed),
                bytes_in: self.bytes_in.load(Ordering::Relaxed),
                bytes_out: self.bytes_out.load(Ordering::Relaxed),
            },
            journal: match &self.journal {
                Some(journal) => {
                    let s = journal.lock().map(|j| j.stats()).unwrap_or_default();
                    JournalTotals {
                        enabled: true,
                        epoch: self.journal_epoch,
                        journal_records: s.records,
                        journal_bytes: s.bytes,
                        fsyncs: s.fsyncs,
                        snapshots: s.snapshots,
                        segments: s.segments,
                    }
                }
                None => JournalTotals::default(),
            },
            jobs,
            conns,
        }
    }

    // ---- request handlers -------------------------------------------------

    pub(crate) fn handle(&self, req: Request, conn: u64, stat: &mut ConnSnapshot) -> Response {
        match req {
            Request::CreateJob { n, kind, weights } => self.create_job(n, kind, weights),
            Request::FetchChunk { job, worker, batch } => {
                stat.worker = worker;
                stat.fetches += 1;
                let resp = self.fetch(job, worker, batch, conn);
                if let Response::Chunks { chunks, .. } = &resp {
                    stat.chunks += chunks.len() as u64;
                }
                resp
            }
            Request::ReportDone { job, leases, epoch } => {
                // Epoch fence: a report against a lease granted by a
                // previous incarnation must not settle anything — the
                // recovery path already re-armed those leases, and
                // crediting them here would double-count the range.
                if epoch != self.journal_epoch {
                    return Response::Error {
                        code: ErrorCode::StaleEpoch,
                        detail: format!(
                            "report from epoch {epoch}, server is at {}",
                            self.journal_epoch
                        ),
                    };
                }
                let resp = self.report(job, &leases);
                if matches!(resp, Response::Ack) {
                    // The ledger keeps settled leases' ranges, so the
                    // per-connection row can be credited after the fact.
                    stat.iterations += self.credited(job, &leases);
                }
                resp
            }
            Request::ResumeJob { job } => self.resume_job(job),
            Request::Heartbeat { worker } => {
                stat.worker = worker;
                Response::Ack
            }
            Request::Stats => Response::Snapshot(self.snapshot()),
            Request::Shutdown => {
                self.request_shutdown();
                Response::Ack
            }
        }
    }

    /// Answer a reconnecting worker: does `job` still exist, what
    /// epoch is in force, and how far along is it. Only meaningful on
    /// a journaled server — a volatile one forgot everything, and a
    /// typed error beats letting the client poll a job that will never
    /// reappear.
    fn resume_job(&self, job: u64) -> Response {
        if self.journal.is_none() {
            return Response::Error {
                code: ErrorCode::NoJournal,
                detail: "server runs without a journal; jobs do not survive restarts".into(),
            };
        }
        let Ok(shard) = self.shard_of(job).lock() else {
            return Response::Error {
                code: ErrorCode::UnknownJob,
                detail: "shard poisoned".into(),
            };
        };
        let Some(j) = shard.get(&job) else {
            return Response::Error {
                code: ErrorCode::UnknownJob,
                detail: format!("job {job} is not in the recovered state"),
            };
        };
        Response::JobEpoch {
            job,
            epoch: self.journal_epoch,
            n: j.spec.n_iters,
            scheduled: j.scheduled,
            completed: j.completed,
            done: j.done,
            kind: j.sched.active(),
            decisions: j.decisions.clone(),
        }
    }

    fn create_job(&self, n: u64, kind: SchedKind, weights: Vec<f64>) -> Response {
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Response::Error {
                code: ErrorCode::BadTechnique,
                detail: "weights must be finite and non-negative".into(),
            };
        }
        if !self.cfg.adaptive && !matches!(kind, SchedKind::Fixed(_)) {
            return Response::Error {
                code: ErrorCode::BadTechnique,
                detail: format!("adaptive techniques are disabled on this server ({kind})"),
            };
        }
        // Admission to the job table is a single CAS. The previous
        // load-then-add pair had a lost-update window: two creates
        // racing on separate event-loop shards could both pass the
        // check and overshoot `max_jobs` (the same check-then-act shape
        // as the old connection-admission bug; pinned by the
        // `conc-check` admission model and the cap model below).
        let cap = u64::from(self.cfg.max_jobs);
        if self
            .jobs_created
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |created| {
                (created < cap).then_some(created + 1)
            })
            .is_err()
        {
            return Response::Error {
                code: ErrorCode::TooManyJobs,
                detail: format!("job table limit {} reached", self.cfg.max_jobs),
            };
        }
        let job = self.next_job.fetch_add(1, Ordering::SeqCst);
        if let Ok(mut shard) = self.shard_of(job).lock() {
            shard.insert(job, Job::new(n, kind, weights.clone(), self.cfg.tuner_overhead_ns));
            // Under the shard lock so the JobCreated record is ordered
            // before any Granted record a racing fetch could append.
            self.journal_append(&JournalRecord::JobCreated { job, n, kind, weights });
        }
        Response::JobCreated { job }
    }

    /// Standalone fetch (the `State::handle` path): takes the shard
    /// lock itself and commits its counter deltas immediately.
    fn fetch(&self, job: u64, worker: u32, batch: u32, conn: u64) -> Response {
        let Ok(mut shard) = self.shard_of(job).lock() else {
            return Response::Error {
                code: ErrorCode::UnknownJob,
                detail: "shard poisoned".into(),
            };
        };
        let (resp, tally) = self.fetch_locked(&mut shard, job, worker, batch, conn);
        if tally.fetches > 0 {
            // Relaxed: pure stat counters, each delta applied by one
            // RMW (no update can be lost), no other memory guarded.
            self.fetches.fetch_add(tally.fetches, Ordering::Relaxed);
            self.chunks_granted.fetch_add(tally.granted, Ordering::Relaxed);
            self.empty_polls.fetch_add(tally.empty, Ordering::Relaxed);
        }
        resp
    }

    /// Fetch against an already-locked job-table shard. The event loop
    /// holds one shard guard across a whole readiness cycle's fetches;
    /// counter deltas are returned, not applied, so a cycle costs one
    /// atomic add per counter however many fetches it answered.
    pub(crate) fn fetch_locked(
        &self,
        jobs: &mut HashMap<u64, Job>,
        job: u64,
        worker: u32,
        batch: u32,
        conn: u64,
    ) -> (Response, FetchTally) {
        let none = FetchTally::default();
        if batch == 0 || batch > self.cfg.max_batch {
            let resp = Response::Error {
                code: ErrorCode::BatchTooLarge,
                detail: format!("batch {batch} outside 1..={}", self.cfg.max_batch),
            };
            return (resp, none);
        }
        if self.shutdown.load(Ordering::SeqCst) {
            let resp = Response::Error {
                code: ErrorCode::ShuttingDown,
                detail: "server draining; no new grants".into(),
            };
            return (resp, none);
        }
        let Some(j) = jobs.get_mut(&job) else {
            let resp = Response::Error {
                code: ErrorCode::UnknownJob,
                detail: format!("job {job} was never created"),
            };
            return (resp, none);
        };
        if j.done {
            let resp = Response::Error {
                code: ErrorCode::JobFinished,
                detail: format!("job {job} completed all {} iterations", j.spec.n_iters),
            };
            return (resp, none);
        }
        // A weighted job defines exactly `weights.len()` worker slots;
        // an out-of-range id used to be granted chunks at a silent
        // default weight of 1.0 — reject it with a typed error instead.
        if !j.weights.is_empty() && (worker as usize) >= j.weights.len() {
            let resp = Response::Error {
                code: ErrorCode::BadWorker,
                detail: format!(
                    "worker {worker} outside weighted job's 0..{} range",
                    j.weights.len()
                ),
            };
            return (resp, none);
        }
        let out = j.outstanding.get(&worker).copied().unwrap_or(0);
        if out >= self.cfg.worker_quota {
            let resp = Response::Error {
                code: ErrorCode::QuotaExceeded,
                detail: format!(
                    "worker {worker} holds {out} unsettled leases (quota {})",
                    self.cfg.worker_quota
                ),
            };
            return (resp, none);
        }
        let batch = batch.min(self.cfg.worker_quota - out);
        let granted = j.fetch(worker, batch, conn, self.now_ns());
        if self.journal.is_some() && !granted.is_empty() {
            // One record per burst: post-burst watermarks plus every
            // lease, appended while the caller's shard lock pins the
            // counters. No I/O until the cycle's journal_commit.
            let grants = granted
                .iter()
                .map(|(g, from_pool)| GrantEntry {
                    lease: g.lease,
                    worker,
                    lo: g.lo,
                    hi: g.hi,
                    from_pool: *from_pool,
                })
                .collect();
            self.journal_append(&JournalRecord::Granted {
                job,
                step: j.step,
                scheduled: j.scheduled,
                grants,
            });
        }
        let chunks: Vec<GrantedChunk> = granted.into_iter().map(|(g, _)| g).collect();
        let tally = FetchTally {
            fetches: 1,
            granted: chunks.len() as u64,
            empty: u64::from(chunks.is_empty()),
        };
        (Response::Chunks { chunks, epoch: self.journal_epoch }, tally)
    }

    fn report(&self, job: u64, leases: &[LeaseId]) -> Response {
        let Ok(mut shard) = self.shard_of(job).lock() else {
            return Response::Error {
                code: ErrorCode::UnknownJob,
                detail: "shard poisoned".into(),
            };
        };
        let Some(j) = shard.get_mut(&job) else {
            return Response::Error {
                code: ErrorCode::UnknownJob,
                detail: format!("job {job} was never created"),
            };
        };
        let was_done = j.done;
        let now_ns = self.now_ns();
        let mut settled = Vec::new();
        let mut switched = Vec::new();
        let mut failed = None;
        for &lease in leases {
            match j.report(lease, now_ns) {
                Ok(_) => {
                    settled.push(lease);
                    // Batch boundaries are counted in settles, so the
                    // tick sits inside the settle loop; decisions are
                    // collected for journaling below.
                    if let Some(d) = j.tuner_tick() {
                        switched.push(d);
                    }
                }
                Err(code) => {
                    failed = Some((lease, code));
                    break;
                }
            }
        }
        // Journal whatever prefix actually settled — on a partial
        // failure the in-memory ledger has already transitioned those
        // leases, and the journal must agree or replay re-arms them
        // into double execution.
        if !settled.is_empty() {
            self.journal_append(&JournalRecord::Settled { job, leases: settled });
        }
        // Decisions after the settles that triggered them: replay then
        // restores the exact same (counters, active technique) pair the
        // live server had when it switched.
        for decision in switched {
            self.journal_append(&JournalRecord::TechniqueSwitched { job, decision });
        }
        if !was_done && j.done {
            self.journal_append(&JournalRecord::JobFinished { job });
        }
        match failed {
            Some((lease, code)) => Response::Error {
                code,
                detail: format!("lease {lease} is unknown or already settled"),
            },
            None => Response::Ack,
        }
    }

    /// Iterations credited to reports from `leases` — used to keep the
    /// per-connection row in sync without re-walking the ledger.
    fn credited(&self, job: u64, leases: &[LeaseId]) -> u64 {
        let Ok(shard) = self.shard_of(job).lock() else { return 0 };
        let Some(j) = shard.get(&job) else { return 0 };
        leases.iter().filter_map(|&l| j.leases.get(l)).map(|l| l.hi - l.lo).sum()
    }

    /// A connection died or closed: reclaim its unsettled leases in
    /// every job, exactly once each.
    pub(crate) fn disconnect(&self, conn: u64) {
        let mut reclaimed = 0;
        for shard in &self.shards {
            if let Ok(mut shard) = shard.lock() {
                for (&id, job) in shard.iter_mut() {
                    let leases = job.reclaim_conn(conn);
                    if !leases.is_empty() {
                        reclaimed += leases.len() as u64;
                        self.journal_append(&JournalRecord::Reclaimed { job: id, leases });
                    }
                }
            }
        }
        if reclaimed > 0 {
            self.reclaims.fetch_add(reclaimed, Ordering::Relaxed);
        }
        // Relaxed is sound for the cap invariant: the admission CAS
        // and this decrement are RMWs on the same atomic, and RMWs see
        // the latest value in modification order whatever their
        // `Ordering`. A slot freed here may become visible to a racing
        // admission a moment "late", which can only under-admit, never
        // overshoot.
        self.conns_active.fetch_sub(1, Ordering::Relaxed);
        if let Ok(mut stats) = self.conn_stats.lock() {
            if let Some(s) = stats.get_mut(&conn) {
                s.open = false;
            }
        }
    }
}

/// A running chunk-scheduling server.
///
/// Dropping a `Server` without calling [`Server::shutdown`] leaves the
/// loop shards running until process exit (threads are daemonised by
/// the OS); tests and the daemon binary always shut down explicitly.
pub struct Server {
    state: Arc<State>,
    addr: SocketAddr,
    loops: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start the loop shards. Volatile: jobs die with the process.
    pub fn start<A: ToSocketAddrs>(cfg: ServiceConfig, addr: A) -> std::io::Result<Server> {
        Server::launch(State::new(cfg), addr)
    }

    /// Like [`Server::start`], but durable: open (or recover) the
    /// write-ahead journal in `jopts.dir`, replay snapshot + segments
    /// into the job table, re-arm every lease the dead incarnation
    /// left active, and fence the new epoch before accepting traffic.
    /// `snapshot_every` is the record count between snapshots (0 =
    /// never snapshot).
    pub fn start_with_journal<A: ToSocketAddrs>(
        cfg: ServiceConfig,
        addr: A,
        jopts: JournalOptions,
        snapshot_every: u64,
    ) -> std::io::Result<Server> {
        let (journal, mut rec) =
            Journal::open(jopts).map_err(|e| std::io::Error::other(e.to_string()))?;
        let re_armed = rec.re_arm();
        if re_armed > 0 {
            eprintln!(
                "dls-service: recovery re-armed {re_armed} unsettled lease(s) into reclaim pools"
            );
        }
        let mut state = State::new(cfg);
        state.adopt_recovered(journal, rec, snapshot_every);
        Server::launch(state, addr)
    }

    fn launch<A: ToSocketAddrs>(state: State, addr: A) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let event_loops = state.cfg.event_loops.max(1);
        let state = Arc::new(state);
        let mut loops = Vec::with_capacity(event_loops as usize);
        for i in 0..event_loops {
            // Clones share one file description: every shard polls the
            // same accept queue and the kernel hands each pending
            // connection to exactly one winner.
            let mut shard = LoopShard::new(listener.try_clone()?, Arc::clone(&state))?;
            let handle = std::thread::Builder::new()
                .name(format!("dls-loop-{i}"))
                .spawn(move || shard.run())?;
            loops.push(handle);
        }
        Ok(Server { state, addr, loops })
    }

    /// The bound address (with the real port when started on port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.state.snapshot()
    }

    /// High-water mark of concurrently admitted connections. Admission
    /// is a single compare-and-swap, so this can never exceed
    /// [`ServiceConfig::max_connections`] — tests assert exactly that.
    pub fn peak_connections(&self) -> u64 {
        self.state.conns_peak.load(Ordering::SeqCst)
    }

    /// True once a `Shutdown` frame (or [`Server::shutdown`]) started
    /// the drain.
    pub fn shutdown_requested(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    /// Block until some client sends a `Shutdown` frame (the daemon's
    /// main loop; SIGTERM handling wraps this with a timeout poll).
    pub fn wait_for_shutdown_request(&self, timeout: Duration) -> bool {
        let (lock, cv) = &self.state.shutdown_cv;
        let Ok(guard) = lock.lock() else { return true };
        let (guard, _) = match cv.wait_timeout_while(guard, timeout, |flagged| !*flagged) {
            Ok(r) => r,
            Err(_) => return true,
        };
        *guard
    }

    /// Graceful shutdown: stop accepting, answer what is buffered,
    /// close connections as they go quiet, join every loop shard, and
    /// return the final snapshot (per-job progress counters preserved).
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.state.request_shutdown();
        // Loop shards notice the flag at their next poll tick; no
        // wake-up connection is needed (epoll_wait carries a timeout).
        for h in self.loops.drain(..) {
            let _ = h.join();
        }
        // Loop shards are gone: nothing appends anymore. Stamp the
        // clean-exit record and force the final fsync.
        self.state.journal_drain();
        self.state.snapshot()
    }
}

// Interleaving models that drive the *real* `State` — not a
// re-implementation — through the conc-check explorer. Compiled only by
// the dedicated checking build:
// `RUSTFLAGS="--cfg conc_check" cargo test -p dls-service --features conc-check`.
#[cfg(all(test, conc_check))]
mod conc_models {
    use super::*;
    use conc_check::{check, Outcome};

    /// A `State` with no sockets and no loop shards: exactly what
    /// `Server::start` builds, minus the listener.
    fn tiny_state(cfg: ServiceConfig) -> Arc<State> {
        Arc::new(State::new(cfg))
    }

    fn assert_pass(name: &str, outcome: &Outcome) {
        match outcome {
            Outcome::Pass(stats) => {
                assert!(stats.complete, "{name}: hit the schedule cap");
                // If the facade silently resolved to `std::sync` the
                // explorer would see no visible ops and declare victory
                // after one schedule — catch that misconfiguration.
                assert!(
                    stats.schedules > 1,
                    "{name}: only {} schedule(s) explored — facade not engaged?",
                    stats.schedules
                );
            }
            Outcome::Fail(cx) => panic!("{name}: counterexample against the real State:\n{cx}"),
        }
    }

    /// Two creates racing for one job slot: the `fetch_update` CAS in
    /// `create_job` must admit exactly one on *every* schedule. (The
    /// pre-fix load-then-add pair fails this model.)
    #[test]
    fn create_job_cap_is_exact_under_every_schedule() {
        let outcome = check(move || {
            let state = tiny_state(ServiceConfig { max_jobs: 1, shards: 1, ..Default::default() });
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let st = Arc::clone(&state);
                    conc_check::thread::spawn(move || {
                        matches!(
                            st.create_job(4, dls::Kind::SS.into(), vec![]),
                            Response::JobCreated { .. }
                        )
                    })
                })
                .collect();
            let created =
                handles.into_iter().map(|h| h.join()).filter(|r| matches!(r, Ok(true))).count();
            assert_eq!(created, 1, "cap 1, two racing creates: exactly one may win");
        });
        assert_pass("create_job cap", &outcome);
    }

    /// Two workers fetching from one real job through `State::fetch`:
    /// grants must be disjoint on every schedule, whichever worker's
    /// fetch commits first.
    #[test]
    fn standalone_fetches_never_overlap() {
        let outcome = check(move || {
            let state = tiny_state(ServiceConfig { shards: 1, ..Default::default() });
            assert!(matches!(
                state.create_job(6, dls::Kind::SS.into(), vec![]),
                Response::JobCreated { job: 0 }
            ));
            let handles: Vec<_> = (0..2)
                .map(|worker| {
                    let st = Arc::clone(&state);
                    conc_check::thread::spawn(move || {
                        match st.fetch(0, worker, 2, u64::from(worker)) {
                            Response::Chunks { chunks, .. } => {
                                chunks.into_iter().map(|g| (g.lo, g.hi)).collect::<Vec<_>>()
                            }
                            other => panic!("fetch failed: {other:?}"),
                        }
                    })
                })
                .collect();
            let mut ranges: Vec<(u64, u64)> =
                handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect();
            ranges.sort_unstable();
            for w in ranges.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "overlapping grants from racing fetches: {:?} and {:?}",
                    w[0],
                    w[1]
                );
            }
        });
        assert_pass("standalone fetch", &outcome);
    }
}
