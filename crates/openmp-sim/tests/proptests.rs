//! Property tests: every schedule must execute every iteration exactly
//! once for arbitrary team sizes and ranges, across consecutive
//! regions, with and without `nowait`.

use openmp_sim::{Schedule, Team};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::static_block()),
        (1u64..20).prop_map(|k| Schedule::Static { chunk: Some(k) }),
        (1u64..20).prop_map(|k| Schedule::Dynamic { chunk: k }),
        (1u64..20).prop_map(|k| Schedule::Guided { chunk: k }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exactly_once_any_schedule(
        threads in 1u32..9,
        start in 0u64..1000,
        len in 0u64..800,
        schedule in arb_schedule(),
    ) {
        let hits: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        Team::new(threads).parallel(|ctx| {
            ctx.for_each(start..start + len, schedule, |i| {
                hits[(i - start) as usize].fetch_add(1, Ordering::SeqCst);
            });
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn nowait_counts_sum_to_len(
        threads in 1u32..9,
        len in 0u64..500,
        schedule in arb_schedule(),
    ) {
        let out = Team::new(threads).parallel(|ctx| {
            let n = ctx.for_each_nowait(0..len, schedule, |_| {});
            ctx.barrier();
            n
        });
        prop_assert_eq!(out.iter().sum::<u64>(), len);
    }

    #[test]
    fn back_to_back_regions(
        threads in 1u32..6,
        lens in prop::collection::vec(0u64..200, 1..5),
        schedule in arb_schedule(),
    ) {
        let total = AtomicU64::new(0);
        Team::new(threads).parallel(|ctx| {
            for &len in &lens {
                ctx.for_each(0..len, schedule, |_| {
                    total.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        prop_assert_eq!(total.load(Ordering::SeqCst), lens.iter().sum::<u64>());
    }

    #[test]
    fn reduce_matches_fold(threads in 1u32..9, base in 0u64..1000) {
        let out = Team::new(threads).parallel(|ctx| {
            ctx.reduce(base + u64::from(ctx.thread_num()), |a, b| a.max(b))
        });
        let expected = base + u64::from(threads) - 1;
        prop_assert!(out.into_iter().all(|v| v == expected));
    }
}
