//! # openmp-sim — a miniature OpenMP-style worksharing runtime
//!
//! The paper's baseline executes chunks with an OpenMP thread team:
//! `#pragma omp parallel` forks a team, `#pragma omp for
//! schedule(static|dynamic|guided)` distributes iterations, and every
//! worksharing region ends in an **implicit barrier** unless `nowait`
//! is given. This crate provides those semantics as a small library
//! over OS threads, so the MPI+OpenMP executor (and its tests) run
//! against a real worksharing runtime rather than ad-hoc thread code:
//!
//! * [`Team::parallel`] — fork-join parallel region with per-thread
//!   context ([`TeamCtx`]): `thread_num`, `num_threads`.
//! * [`TeamCtx::for_each`] — worksharing loop with [`Schedule`]
//!   semantics matching the OpenMP `schedule` clause, implicit barrier,
//!   and an explicit `nowait` variant.
//! * [`TeamCtx::barrier`], [`TeamCtx::master`], [`TeamCtx::critical`],
//!   [`TeamCtx::reduce`] — the synchronisation constructs hierarchical
//!   DLS codes use.
//!
//! ```
//! use openmp_sim::{Schedule, Team};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let sum = AtomicU64::new(0);
//! Team::new(4).parallel(|ctx| {
//!     ctx.for_each(0..1000, Schedule::Guided { chunk: 1 }, |i| {
//!         sum.fetch_add(i, Ordering::Relaxed);
//!     });
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod region;
mod schedule;
mod team;

pub use schedule::Schedule;
pub use team::{Team, TeamCtx};
