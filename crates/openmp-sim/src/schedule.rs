//! The `schedule` clause: how a worksharing loop's iterations are
//! carved into dispatch units.

/// OpenMP loop schedules. The semantics follow the OpenMP standard (and
//  the Intel runtime's defaults the paper uses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// `schedule(static)` / `schedule(static, chunk)`: iterations are
    /// divided up front. With `chunk: None`, each thread gets one
    /// contiguous block of `ceil(n / threads)`; with `Some(k)`, blocks
    /// of `k` are assigned round-robin by thread id.
    Static {
        /// Optional block-cyclic chunk size.
        chunk: Option<u64>,
    },
    /// `schedule(dynamic, chunk)`: threads grab fixed-size chunks from
    /// a shared cursor.
    Dynamic {
        /// Chunk size (the clause defaults to 1).
        chunk: u64,
    },
    /// `schedule(guided, chunk)`: threads grab `max(remaining/threads,
    /// chunk)` iterations from a shared cursor.
    Guided {
        /// Minimum chunk size (the clause defaults to 1).
        chunk: u64,
    },
}

impl Schedule {
    /// `schedule(static)`.
    pub fn static_block() -> Self {
        Schedule::Static { chunk: None }
    }

    /// `schedule(dynamic, 1)` — the SS mapping of the paper's Table 1.
    pub fn dynamic1() -> Self {
        Schedule::Dynamic { chunk: 1 }
    }

    /// `schedule(guided, 1)` — the GSS mapping of the paper's Table 1.
    pub fn guided1() -> Self {
        Schedule::Guided { chunk: 1 }
    }

    /// Size of the next dispatch from a shared cursor, given `remaining`
    /// iterations and `threads` in the team (dynamic/guided only).
    pub(crate) fn next_dispatch(&self, remaining: u64, threads: u64) -> u64 {
        match *self {
            Schedule::Static { .. } => remaining, // not cursor-driven
            Schedule::Dynamic { chunk } => chunk.clamp(1, remaining),
            Schedule::Guided { chunk } => {
                (remaining.div_ceil(threads)).max(chunk.max(1)).min(remaining)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_dispatch_fixed() {
        let s = Schedule::Dynamic { chunk: 8 };
        assert_eq!(s.next_dispatch(100, 4), 8);
        assert_eq!(s.next_dispatch(5, 4), 5);
    }

    #[test]
    fn guided_dispatch_shrinks() {
        let s = Schedule::guided1();
        assert_eq!(s.next_dispatch(100, 4), 25);
        assert_eq!(s.next_dispatch(7, 4), 2);
        assert_eq!(s.next_dispatch(1, 4), 1);
    }

    #[test]
    fn guided_respects_min_chunk() {
        let s = Schedule::Guided { chunk: 10 };
        assert_eq!(s.next_dispatch(12, 4), 10);
        assert_eq!(s.next_dispatch(4, 4), 4);
    }
}
