//! Fork-join teams and the per-thread context.

use crate::region::RegionRegistry;
use crate::schedule::Schedule;
use parking_lot::Mutex;
use std::cell::Cell;
use std::ops::Range;
use std::sync::Barrier;

/// A team size — `#pragma omp parallel num_threads(n)`.
#[derive(Clone, Copy, Debug)]
pub struct Team {
    threads: u32,
}

/// Shared state of one parallel region.
struct TeamShared {
    barrier: Barrier,
    regions: RegionRegistry,
    critical: Mutex<()>,
}

/// Per-thread handle inside [`Team::parallel`].
pub struct TeamCtx<'a> {
    shared: &'a TeamShared,
    tid: u32,
    threads: u32,
    /// Worksharing-construct sequence number (per thread; all threads
    /// must encounter constructs in the same order, as OpenMP requires).
    seq: Cell<u64>,
}

impl Team {
    /// A team of `threads` threads (at least 1).
    pub fn new(threads: u32) -> Self {
        Self { threads: threads.max(1) }
    }

    /// Number of threads the team forks.
    pub fn num_threads(&self) -> u32 {
        self.threads
    }

    /// `#pragma omp parallel`: fork the team, run `f` on every thread,
    /// join, and return each thread's result in thread order.
    pub fn parallel<R: Send>(&self, f: impl Fn(&TeamCtx) -> R + Sync) -> Vec<R> {
        let shared = TeamShared {
            barrier: Barrier::new(self.threads as usize),
            regions: RegionRegistry::default(),
            critical: Mutex::new(()),
        };
        let f = &f;
        let shared = &shared;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|tid| {
                    scope.spawn(move || {
                        let ctx = TeamCtx { shared, tid, threads: self.threads, seq: Cell::new(0) };
                        f(&ctx)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("team thread")).collect()
        })
    }
}

impl TeamCtx<'_> {
    /// `omp_get_thread_num()`.
    pub fn thread_num(&self) -> u32 {
        self.tid
    }

    /// `omp_get_num_threads()`.
    pub fn num_threads(&self) -> u32 {
        self.threads
    }

    /// `#pragma omp barrier`.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// `#pragma omp master`: run `f` on thread 0 only (no implied
    /// barrier, as in OpenMP).
    pub fn master<T>(&self, f: impl FnOnce() -> T) -> Option<T> {
        (self.tid == 0).then(f)
    }

    /// `#pragma omp critical`: run `f` under the team-wide mutex.
    pub fn critical<T>(&self, f: impl FnOnce() -> T) -> T {
        let _guard = self.shared.critical.lock();
        f()
    }

    /// `#pragma omp for schedule(...)`: distribute `range` over the
    /// team, call `body(i)` for each owned iteration, and cross the
    /// implicit end-of-region barrier.
    pub fn for_each(&self, range: Range<u64>, schedule: Schedule, mut body: impl FnMut(u64)) {
        self.for_each_nowait(range, schedule, &mut body);
        self.barrier();
    }

    /// `#pragma omp for schedule(...) nowait`: as [`TeamCtx::for_each`]
    /// but without the end-of-region barrier — the construct whose
    /// implications the paper discusses at length. Returns the number
    /// of iterations this thread executed.
    pub fn for_each_nowait(
        &self,
        range: Range<u64>,
        schedule: Schedule,
        mut body: impl FnMut(u64),
    ) -> u64 {
        let mut executed = 0u64;
        self.for_each_dispatch_nowait(range, schedule, |r| {
            for i in r {
                body(i);
                executed += 1;
            }
        });
        executed
    }

    /// Dispatch-level worksharing with the implicit barrier: `body`
    /// receives each dispatch unit (the runtime's internal chunk) this
    /// thread claims — useful for per-chunk instrumentation.
    pub fn for_each_dispatch(
        &self,
        range: Range<u64>,
        schedule: Schedule,
        mut body: impl FnMut(Range<u64>),
    ) {
        self.for_each_dispatch_nowait(range, schedule, &mut body);
        self.barrier();
    }

    /// Dispatch-level worksharing without the end barrier.
    pub fn for_each_dispatch_nowait(
        &self,
        range: Range<u64>,
        schedule: Schedule,
        mut body: impl FnMut(Range<u64>),
    ) {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return;
        }
        match schedule {
            Schedule::Static { chunk } => {
                let block = chunk.unwrap_or_else(|| len.div_ceil(u64::from(self.threads)));
                let block = block.max(1);
                // Round-robin blocks by thread id.
                let mut base = u64::from(self.tid) * block;
                while base < len {
                    let hi = (base + block).min(len);
                    body(range.start + base..range.start + hi);
                    base += block * u64::from(self.threads);
                }
            }
            Schedule::Dynamic { .. } | Schedule::Guided { .. } => {
                let region = self.shared.regions.get(seq);
                let threads = u64::from(self.threads);
                while let Some((lo, hi)) =
                    region.claim(len, |remaining| schedule.next_dispatch(remaining, threads))
                {
                    body(range.start + lo..range.start + hi);
                }
            }
        }
    }

    /// `#pragma omp single`: the first thread to arrive executes `f`;
    /// everyone crosses the implicit end barrier. Returns `Some` on the
    /// executing thread.
    pub fn single<T>(&self, f: impl FnOnce() -> T) -> Option<T> {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        let region = self.shared.regions.get(seq);
        let winner = region.claim(1, |_| 1).is_some();
        let out = winner.then(f);
        self.barrier();
        if self.tid == 0 {
            self.shared.regions.retire(seq);
        }
        out
    }

    /// `#pragma omp sections`: each closure in `sections` executes
    /// exactly once, distributed over the team; implicit end barrier.
    pub fn sections(&self, sections: &[&(dyn Fn() + Sync)]) {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        let region = self.shared.regions.get(seq);
        while let Some((lo, _)) = region.claim(sections.len() as u64, |_| 1) {
            sections[lo as usize]();
        }
        self.barrier();
        if self.tid == 0 {
            self.shared.regions.retire(seq);
        }
    }

    /// `reduction(op)`: combine every thread's `value` with `op`;
    /// every thread returns the combined result. Implies barriers.
    pub fn reduce<T: Clone + Send + Sync + 'static>(&self, value: T, op: impl Fn(T, T) -> T) -> T {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        let slot = self.shared.regions.values::<T>(seq);
        slot.lock().push(value);
        self.barrier();
        let folded = {
            let v = slot.lock();
            let mut it = v.iter().cloned();
            let first = it.next().expect("at least one contribution");
            it.fold(first, &op)
        };
        // Second barrier so the master retires the region only after
        // every thread has read the folded value.
        self.barrier();
        if self.tid == 0 {
            self.shared.regions.retire(seq);
        }
        folded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn parallel_forks_n_threads() {
        let out = Team::new(4).parallel(|ctx| (ctx.thread_num(), ctx.num_threads()));
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn for_each_covers_range_every_schedule() {
        for schedule in [
            Schedule::static_block(),
            Schedule::Static { chunk: Some(3) },
            Schedule::dynamic1(),
            Schedule::Dynamic { chunk: 7 },
            Schedule::guided1(),
            Schedule::Guided { chunk: 4 },
        ] {
            let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
            Team::new(4).parallel(|ctx| {
                ctx.for_each(0..500, schedule, |i| {
                    hits[i as usize].fetch_add(1, Ordering::SeqCst);
                });
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "{schedule:?}: every iteration exactly once"
            );
        }
    }

    #[test]
    fn static_blocks_are_contiguous_per_thread() {
        let owner: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(u64::MAX)).collect();
        Team::new(4).parallel(|ctx| {
            ctx.for_each(0..100, Schedule::static_block(), |i| {
                owner[i as usize].store(u64::from(ctx.thread_num()), Ordering::SeqCst);
            });
        });
        // ceil(100/4) = 25 contiguous iterations per thread.
        for (i, o) in owner.iter().enumerate() {
            assert_eq!(o.load(Ordering::SeqCst), (i / 25) as u64);
        }
    }

    #[test]
    fn consecutive_worksharing_regions_are_independent() {
        let count = AtomicU64::new(0);
        Team::new(3).parallel(|ctx| {
            for _ in 0..5 {
                ctx.for_each(0..30, Schedule::dynamic1(), |_| {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 150);
    }

    #[test]
    fn nowait_returns_executed_count() {
        let out = Team::new(4).parallel(|ctx| {
            let n = ctx.for_each_nowait(0..97, Schedule::Dynamic { chunk: 5 }, |_| {});
            ctx.barrier();
            n
        });
        assert_eq!(out.iter().sum::<u64>(), 97);
    }

    #[test]
    fn master_runs_on_thread_zero_only() {
        let out = Team::new(4).parallel(|ctx| ctx.master(|| ctx.thread_num()));
        assert_eq!(out, vec![Some(0), None, None, None]);
    }

    #[test]
    fn critical_is_mutually_exclusive() {
        let counter = Mutex::new(0u64);
        Team::new(8).parallel(|ctx| {
            for _ in 0..100 {
                ctx.critical(|| {
                    let mut c = counter.lock();
                    let v = *c;
                    // A non-atomic RMW: only safe under the critical lock.
                    std::hint::black_box(&v);
                    *c = v + 1;
                });
            }
        });
        assert_eq!(*counter.lock(), 800);
    }

    #[test]
    fn reduce_combines_all_contributions() {
        let out =
            Team::new(5).parallel(|ctx| ctx.reduce(u64::from(ctx.thread_num()) + 1, |a, b| a + b));
        assert_eq!(out, vec![15; 5]);
    }

    #[test]
    fn reduce_then_for_each_sequence() {
        let sum = AtomicU64::new(0);
        Team::new(3).parallel(|ctx| {
            let total = ctx.reduce(1u64, |a, b| a + b);
            ctx.for_each(0..total, Schedule::guided1(), |_| {
                sum.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(sum.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn single_executes_once() {
        let count = AtomicU64::new(0);
        let winners = Team::new(6).parallel(|ctx| {
            for _ in 0..10 {
                ctx.single(|| {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 10);
        assert_eq!(winners.len(), 6);
    }

    #[test]
    fn sections_each_run_once() {
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        let c = AtomicU64::new(0);
        let fa = || {
            a.fetch_add(1, Ordering::SeqCst);
        };
        let fb = || {
            b.fetch_add(1, Ordering::SeqCst);
        };
        let fc = || {
            c.fetch_add(1, Ordering::SeqCst);
        };
        Team::new(2).parallel(|ctx| {
            ctx.sections(&[&fa, &fb, &fc]);
        });
        assert_eq!(
            [a.load(Ordering::SeqCst), b.load(Ordering::SeqCst), c.load(Ordering::SeqCst)],
            [1, 1, 1]
        );
    }

    #[test]
    fn empty_range_is_fine() {
        Team::new(4).parallel(|ctx| {
            ctx.for_each(10..10, Schedule::dynamic1(), |_| panic!("no iterations"));
        });
    }

    #[test]
    fn single_thread_team() {
        let hits = AtomicU64::new(0);
        Team::new(1).parallel(|ctx| {
            ctx.for_each(0..10, Schedule::guided1(), |_| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 10);
    }
}
