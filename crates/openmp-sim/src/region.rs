//! Shared state of one worksharing region: a cursor all threads of the
//! team pull dispatch units from.
//!
//! OpenMP requires every thread of a team to encounter worksharing
//! constructs in the same order, so regions are identified by a
//! per-thread sequence number and looked up (or created by the first
//! arriver) in a team-wide registry.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub(crate) struct Region {
    /// Next un-dispatched iteration (relative to the region's range).
    pub cursor: AtomicU64,
}

impl Region {
    fn new() -> Self {
        Self { cursor: AtomicU64::new(0) }
    }

    /// Claim `want` iterations from `len`; returns the claimed
    /// sub-range, or `None` when the cursor is exhausted. `want` is
    /// recomputed by the caller per attempt (guided).
    pub fn claim(&self, len: u64, want: impl Fn(u64) -> u64) -> Option<(u64, u64)> {
        loop {
            let cur = self.cursor.load(Ordering::SeqCst);
            if cur >= len {
                return None;
            }
            let take = want(len - cur).clamp(1, len - cur);
            if self
                .cursor
                .compare_exchange(cur, cur + take, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Some((cur, cur + take));
            }
        }
    }
}

/// Team-wide registry mapping region sequence numbers to shared state.
#[derive(Default)]
pub(crate) struct RegionRegistry {
    regions: Mutex<HashMap<u64, Arc<Region>>>,
    /// Auxiliary typed storage for reductions: one value vector per
    /// construct sequence number.
    values: Mutex<HashMap<u64, Arc<dyn std::any::Any + Send + Sync>>>,
}

impl RegionRegistry {
    pub fn get(&self, seq: u64) -> Arc<Region> {
        Arc::clone(self.regions.lock().entry(seq).or_insert_with(|| Arc::new(Region::new())))
    }

    /// The shared contribution vector of reduction construct `seq`,
    /// created by the first arriving thread.
    pub fn values<T: Send + 'static>(&self, seq: u64) -> Arc<Mutex<Vec<T>>> {
        let mut map = self.values.lock();
        let entry = map.entry(seq).or_insert_with(|| Arc::new(Mutex::new(Vec::<T>::new())));
        Arc::clone(entry)
            .downcast::<Mutex<Vec<T>>>()
            .expect("all threads must reduce with the same type")
    }

    /// Drop a finished region's state (called after its barrier, by the
    /// master) to keep the registry small.
    pub fn retire(&self, seq: u64) {
        self.regions.lock().remove(&seq);
        self.values.lock().remove(&seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_covers_range() {
        let r = Region::new();
        let mut total = 0;
        while let Some((lo, hi)) = r.claim(100, |rem| rem.min(7)) {
            total += hi - lo;
        }
        assert_eq!(total, 100);
        assert!(r.claim(100, |_| 1).is_none());
    }

    #[test]
    fn registry_shares_state() {
        let reg = RegionRegistry::default();
        let a = reg.get(3);
        let b = reg.get(3);
        a.cursor.store(5, Ordering::SeqCst);
        assert_eq!(b.cursor.load(Ordering::SeqCst), 5);
        reg.retire(3);
        let c = reg.get(3);
        assert_eq!(c.cursor.load(Ordering::SeqCst), 0);
    }
}
