//! Instrumented drop-in replacements for the `std::sync` subset the
//! `dls-service` core uses.
//!
//! Inside a model run every operation is a visible op of the
//! deterministic scheduler ([`crate::sched`]): loads/stores/RMWs honour
//! their declared [`atomic::Ordering`] (a `Relaxed` load is a branch
//! point that may observe stale stores), `Mutex` acquisition blocks
//! virtually (the scheduler never runs a thread into a held lock), and
//! `Condvar` waits model timeouts and spurious wakeups as explorable
//! transitions.
//!
//! Outside a model run — e.g. `dls-service` compiled with `--cfg
//! conc_check` but executed as a normal server — every primitive
//! degrades to its plain `std::sync` equivalent, so the instrumented
//! build still works end to end.

use crate::sched::{with_ctx, Execution, Tid};
use std::sync::OnceLock;
use std::time::Duration;

pub use std::sync::Arc;

fn ctx() -> Option<(Arc<Execution>, Tid)> {
    with_ctx(|c| c.map(|(e, t)| (Arc::clone(e), *t)))
}

/// Result of a timed condvar wait (mirrors
/// `std::sync::WaitTimeoutResult`, which has no public constructor).
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Instrumented atomics; re-exports [`std::sync::atomic::Ordering`].
pub mod atomic {
    use super::*;
    pub use std::sync::atomic::Ordering;

    /// Instrumented `AtomicU64`.
    #[derive(Debug, Default)]
    pub struct AtomicU64 {
        real: std::sync::atomic::AtomicU64,
        vid: OnceLock<usize>,
        name: OnceLock<String>,
    }

    impl AtomicU64 {
        /// New atomic with `init` as the initial store.
        pub fn new(init: u64) -> AtomicU64 {
            AtomicU64 {
                real: std::sync::atomic::AtomicU64::new(init),
                vid: OnceLock::new(),
                name: OnceLock::new(),
            }
        }

        /// Attach a display name used in counterexample traces.
        pub fn named(self, name: &str) -> AtomicU64 {
            let _ = self.name.set(name.to_string());
            self
        }

        fn vid(&self, exec: &Execution) -> usize {
            *self.vid.get_or_init(|| {
                let name = self.name.get().cloned().unwrap_or_default();
                exec.register_atomic(name, self.real.load(Ordering::Relaxed))
            })
        }

        /// Atomic load honouring `ord` (non-SeqCst loads may observe
        /// stale stores inside a model).
        pub fn load(&self, ord: Ordering) -> u64 {
            match ctx() {
                Some((exec, me)) => {
                    let id = self.vid(&exec);
                    exec.atomic_load(me, id, ord)
                }
                None => self.real.load(ord),
            }
        }

        /// Atomic store.
        pub fn store(&self, val: u64, ord: Ordering) {
            match ctx() {
                Some((exec, me)) => {
                    let id = self.vid(&exec);
                    exec.atomic_store(me, id, val, ord);
                }
                None => self.real.store(val, ord),
            }
        }

        fn rmw(
            &self,
            ord: Ordering,
            label: &'static str,
            f: impl FnOnce(u64) -> Option<u64>,
        ) -> (u64, bool) {
            let (exec, me) = ctx().expect("rmw fallback handled by callers");
            let id = self.vid(&exec);
            exec.atomic_rmw(me, id, ord, label, f)
        }

        /// Atomic add; returns the previous value.
        pub fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
            match ctx() {
                Some(_) => self.rmw(ord, "fetch_add", |old| Some(old.wrapping_add(v))).0,
                None => self.real.fetch_add(v, ord),
            }
        }

        /// Atomic subtract; returns the previous value.
        pub fn fetch_sub(&self, v: u64, ord: Ordering) -> u64 {
            match ctx() {
                Some(_) => self.rmw(ord, "fetch_sub", |old| Some(old.wrapping_sub(v))).0,
                None => self.real.fetch_sub(v, ord),
            }
        }

        /// Atomic max; returns the previous value.
        pub fn fetch_max(&self, v: u64, ord: Ordering) -> u64 {
            match ctx() {
                Some(_) => self.rmw(ord, "fetch_max", |old| Some(old.max(v))).0,
                None => self.real.fetch_max(v, ord),
            }
        }

        /// CAS loop with a pure update function; `Ok(prev)` when `f`
        /// returned `Some` and the write was applied.
        pub fn fetch_update(
            &self,
            set_order: Ordering,
            fetch_order: Ordering,
            mut f: impl FnMut(u64) -> Option<u64>,
        ) -> Result<u64, u64> {
            match ctx() {
                // Under the scheduler an RMW is one visible op reading
                // the newest store, so a single application of `f`
                // decides success or failure.
                Some(_) => {
                    let (old, wrote) = self.rmw(set_order, "fetch_update", &mut f);
                    if wrote {
                        Ok(old)
                    } else {
                        Err(old)
                    }
                }
                None => self.real.fetch_update(set_order, fetch_order, f),
            }
        }

        /// Compare-and-exchange; `Ok(prev)` on success.
        pub fn compare_exchange(
            &self,
            expect: u64,
            new: u64,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u64, u64> {
            match ctx() {
                Some(_) => {
                    let (old, wrote) =
                        self.rmw(success, "compare_exchange", |o| (o == expect).then_some(new));
                    if wrote {
                        Ok(old)
                    } else {
                        Err(old)
                    }
                }
                None => self.real.compare_exchange(expect, new, success, failure),
            }
        }
    }

    /// Instrumented `AtomicBool` (modelled as a 0/1 `AtomicU64`).
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: AtomicU64,
    }

    impl AtomicBool {
        /// New atomic flag.
        pub fn new(init: bool) -> AtomicBool {
            AtomicBool { inner: AtomicU64::new(u64::from(init)) }
        }

        /// Attach a display name used in counterexample traces.
        pub fn named(self, name: &str) -> AtomicBool {
            AtomicBool { inner: self.inner.named(name) }
        }

        /// Atomic load honouring `ord`.
        pub fn load(&self, ord: Ordering) -> bool {
            self.inner.load(ord) != 0
        }

        /// Atomic store.
        pub fn store(&self, val: bool, ord: Ordering) {
            self.inner.store(u64::from(val), ord)
        }

        /// Atomic swap; returns the previous value.
        pub fn swap(&self, val: bool, ord: Ordering) -> bool {
            match ctx() {
                Some(_) => self.inner.rmw(ord, "swap", |_| Some(u64::from(val))).0 != 0,
                None => self.inner.real.swap(u64::from(val), ord) != 0,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Instrumented mutex. Inside a model, acquisition is a scheduling
/// decision and can never deadlock silently (an all-blocked state is
/// reported with a trace); data is still carried by an inner
/// `std::sync::Mutex`, which the virtual protocol keeps uncontended.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    vid: OnceLock<usize>,
    name: OnceLock<String>,
}

/// RAII guard for [`Mutex`]; releases the virtual lock on drop.
pub struct MutexGuard<'a, T> {
    // `Option` so drop order can be controlled: the inner std guard is
    // released *before* the virtual unlock yields to the scheduler.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
    model: Option<(Arc<Execution>, Tid, usize)>,
}

impl<T> Mutex<T> {
    /// New mutex owning `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value), vid: OnceLock::new(), name: OnceLock::new() }
    }

    /// Attach a display name used in counterexample traces.
    pub fn named(self, name: &str) -> Mutex<T> {
        let _ = self.name.set(name.to_string());
        self
    }

    fn vid(&self, exec: &Execution) -> usize {
        *self.vid.get_or_init(|| {
            let name = self.name.get().cloned().unwrap_or_default();
            exec.register_lock(name)
        })
    }

    fn std_lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquire the lock (a blocking visible op inside a model). Never
    /// actually poisons; the `LockResult` shape matches `std`.
    #[allow(clippy::type_complexity)]
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, std::sync::PoisonError<MutexGuard<'_, T>>> {
        match ctx() {
            Some((exec, me)) => {
                let id = self.vid(&exec);
                exec.lock_acquire(me, id);
                Ok(MutexGuard {
                    inner: Some(self.std_lock()),
                    mutex: self,
                    model: Some((exec, me, id)),
                })
            }
            None => Ok(MutexGuard { inner: Some(self.std_lock()), mutex: self, model: None }),
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already released")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first: the virtual unlock passes the
        // baton, and the next holder re-locks the inner mutex
        // immediately.
        drop(self.inner.take());
        if let Some((exec, me, id)) = self.model.take() {
            exec.lock_release(me, id);
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Instrumented condition variable. Timed waits model the timeout (and
/// spurious wakeups) as an always-enabled transition, so properties
/// must hold whether or not the notification ever arrives — exactly the
/// contract of `Condvar::wait_timeout_while`.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    vid: OnceLock<usize>,
    name: OnceLock<String>,
}

impl Condvar {
    /// New condvar.
    pub fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new(), vid: OnceLock::new(), name: OnceLock::new() }
    }

    /// Attach a display name used in counterexample traces.
    pub fn named(self, name: &str) -> Condvar {
        let _ = self.name.set(name.to_string());
        self
    }

    fn vid(&self, exec: &Execution) -> usize {
        *self.vid.get_or_init(|| {
            let name = self.name.get().cloned().unwrap_or_default();
            exec.register_cv(name)
        })
    }

    /// Wait until `condition` returns false or the timeout fires.
    #[allow(clippy::type_complexity)]
    pub fn wait_timeout_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: Duration,
        mut condition: F,
    ) -> Result<
        (MutexGuard<'a, T>, WaitTimeoutResult),
        std::sync::PoisonError<(MutexGuard<'a, T>, WaitTimeoutResult)>,
    >
    where
        F: FnMut(&mut T) -> bool,
    {
        match guard.model.clone() {
            Some((exec, me, lock_vid)) => {
                let cv = self.vid(&exec);
                loop {
                    if !condition(&mut guard) {
                        return Ok((guard, WaitTimeoutResult { timed_out: false }));
                    }
                    // Drop the real guard, park virtually (release +
                    // wait + virtual reacquire), then re-take the real
                    // lock the protocol has just granted us.
                    drop(guard.inner.take());
                    let notified = exec.cv_wait(me, cv, lock_vid, true);
                    guard.inner = Some(guard.mutex.std_lock());
                    if !notified {
                        let timed_out = condition(&mut guard);
                        return Ok((guard, WaitTimeoutResult { timed_out }));
                    }
                }
            }
            None => {
                let inner = guard.inner.take().expect("guard already released");
                let (g, r) = match self.inner.wait_timeout_while(inner, dur, |t| condition(t)) {
                    Ok((g, r)) => (g, r),
                    Err(p) => p.into_inner(),
                };
                guard.inner = Some(g);
                Ok((guard, WaitTimeoutResult { timed_out: r.timed_out() }))
            }
        }
    }

    /// Wake every waiter (a visible op inside a model).
    pub fn notify_all(&self) {
        if let Some((exec, me)) = ctx() {
            let cv = self.vid(&exec);
            exec.cv_notify_all(me, cv);
        }
        self.inner.notify_all();
    }

    /// Wake one waiter. Modelled conservatively as `notify_all` (the
    /// waiters racing for the lock afterwards is already explored).
    pub fn notify_one(&self) {
        self.notify_all()
    }
}
