//! The deterministic cooperative scheduler underneath every model run.
//!
//! A model is a closure that spawns a handful of *model threads*
//! ([`crate::thread::spawn`]) touching shared state built from the
//! instrumented primitives in [`crate::sync`]. Each model thread is a
//! real OS thread, but only one ever runs at a time: a baton is passed
//! at every *visible operation* (atomic load/store/RMW, lock
//! acquire/release, condvar wait/notify, join), so one execution is a
//! total order of visible ops chosen by the explorer. Everything a run
//! decides — which thread steps next, which store a `Relaxed` load
//! observes — is recorded as a [`DecisionRec`], and a recorded decision
//! vector replays the exact execution, which is what lets the explorer
//! backtrack depth-first through the schedule space and re-run minimal
//! counterexamples deterministically.
//!
//! Memory-ordering model (a deliberately bounded subset of C11, the
//! loom approach scaled to what `dls-service` uses):
//!
//! * every atomic carries its full modification order (a store list);
//! * an RMW always reads the *latest* store — C11 guarantees RMWs read
//!   the last value in modification order, which is exactly why
//!   `fetch_add`/`fetch_max` counters never lose updates even when
//!   `Relaxed`;
//! * a `SeqCst` load reads the latest store (the scheduler's execution
//!   order is the SC total order);
//! * an `Acquire`/`Relaxed` load may read any store newer than both the
//!   newest store that happens-before it and the newest store this
//!   thread has already observed (per-thread coherence floor), bounded
//!   by a configurable staleness window — each extra candidate is a
//!   branch point the explorer enumerates;
//! * `Release` stores carry the writer's vector clock; an acquiring
//!   read of a release store joins it (happens-before edges); mutexes
//!   carry a clock the same way.
//!
//! The model is *sound for the protocols checked here* (it can only
//! miss weak behaviours, never invent impossible ones): it
//! under-approximates staleness (bounded window, no IRIW-style
//! SC-fence subtleties) and never reorders a thread's own operations.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

/// Model-thread identifier (dense, 0 = the model's root closure).
pub type Tid = usize;

/// Panic payload used to unwind model threads when a run is aborted
/// (violation found or replay finished); never reported as a failure.
pub(crate) struct Aborted;

/// Hard cap on model threads per run (models are meant to be tiny).
const MAX_THREADS: usize = 16;

// ---------------------------------------------------------------------------
// Decisions, traces, violations
// ---------------------------------------------------------------------------

/// Dependence information for one declared pending operation — what the
/// sleep-set pruner needs to decide whether two transitions commute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct DepInfo {
    /// Object the op touches (`None` = thread-local: start/join).
    pub obj: Option<usize>,
    /// Mutating (store/RMW/lock/unlock/notify) vs pure read.
    pub write: bool,
}

impl DepInfo {
    /// Two ops are dependent iff they touch the same object and at
    /// least one mutates it. Ops without an object commute with
    /// everything.
    pub(crate) fn dependent(&self, other: &DepInfo) -> bool {
        match (self.obj, other.obj) {
            (Some(a), Some(b)) => a == b && (self.write || other.write),
            _ => false,
        }
    }
}

/// One nondeterministic decision taken during a run.
#[derive(Clone, Debug)]
pub(crate) enum DecisionRec {
    /// Which thread performs its pending op next. Only recorded when
    /// more than one thread was enabled.
    Sched {
        /// Enabled threads, ascending tid, with their pending op info.
        enabled: Vec<(Tid, DepInfo)>,
        /// Index into `enabled`.
        chosen: usize,
        /// Thread that ran the previous transition (preemption-cost
        /// accounting for the explorer's untried alternatives).
        prev: Option<Tid>,
        /// Trace length when the decision was taken (lets the explorer
        /// see which threads executed between two decision points).
        at_step: usize,
    },
    /// Which of `arity` legal stores a stale-capable load observed.
    /// `chosen == arity - 1` is the newest (SC-consistent) store.
    Value {
        /// Number of legal candidate stores.
        arity: usize,
        /// Index into the candidate list (oldest first).
        chosen: usize,
    },
}

/// One executed visible op, for counterexample traces.
#[derive(Clone, Debug)]
pub struct Step {
    /// Thread that performed the op.
    pub tid: Tid,
    /// Human-readable description ("lock(shard)", "load conns_active -> 3").
    pub text: String,
}

impl std::fmt::Display for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{} {}", self.tid, self.text)
    }
}

/// Why a run failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A model assertion fired (message captured from the panic).
    Property(String),
    /// No thread was enabled while some had not finished.
    Deadlock,
    /// The run exceeded `max_steps` — a livelocked or unbounded model.
    TooManySteps,
}

#[derive(Clone, Debug)]
pub(crate) struct Violation {
    pub kind: ViolationKind,
    pub trace: Vec<Step>,
}

/// Everything the explorer needs from one finished run.
pub(crate) struct RunResult {
    pub decisions: Vec<DecisionRec>,
    pub trace: Vec<Step>,
    pub violation: Option<Violation>,
    pub preemptions: usize,
}

// ---------------------------------------------------------------------------
// Shared objects
// ---------------------------------------------------------------------------

type VClock = Vec<u64>;

fn clock_join(into: &mut VClock, from: &VClock) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (i, &v) in from.iter().enumerate() {
        if into[i] < v {
            into[i] = v;
        }
    }
}

#[derive(Clone, Debug)]
struct AtomicStore {
    val: u64,
    writer: Tid,
    /// Writer's clock component at the store (happens-before test).
    writer_time: u64,
    /// Full clock carried when the store had release semantics.
    release: Option<VClock>,
}

struct AtomicObj {
    name: String,
    /// Modification order, oldest first. Never empty (holds the init).
    stores: Vec<AtomicStore>,
    /// Per-thread index of the newest store already observed
    /// (read-read coherence floor).
    seen: Vec<usize>,
}

struct LockObj {
    name: String,
    held_by: Option<Tid>,
    /// Clock released with the lock (happens-before through critical
    /// sections).
    clock: VClock,
}

struct CvObj {
    name: String,
}

enum Obj {
    Atomic(AtomicObj),
    Lock(LockObj),
    Cv(CvObj),
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// What a parked thread will do once scheduled — drives enabledness.
#[derive(Clone, Copy, Debug)]
enum PendingKind {
    /// First scheduling of a freshly spawned thread.
    Start,
    /// A plain visible op on `DepInfo.obj` (runs unconditionally).
    Op,
    /// Acquire the lock; enabled only while it is free.
    LockAcquire(usize),
    /// Wait for `Tid` to finish.
    Join(Tid),
    /// Parked in a condvar wait; enabled when notified, or any time if
    /// the wait carries a timeout (timeout and spurious wakeups are the
    /// same transition).
    CvWake { cv: usize, timeout_ok: bool },
}

#[derive(Clone, Debug)]
struct Pending {
    kind: PendingKind,
    dep: DepInfo,
}

struct ThreadSlot {
    parked: Option<Pending>,
    finished: bool,
    /// Set while parked in a condvar wait and a notify arrived.
    cv_notified: bool,
    clock: VClock,
    final_clock: Option<VClock>,
    /// Synthetic object representing this thread's completion, so the
    /// sleep-set pruner sees a `join` and the joinee's final `finish`
    /// op as dependent (a join's enabledness flips when it runs).
    end_obj: usize,
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

pub(crate) struct ExecConfig {
    pub max_steps: usize,
    /// How many stores back a stale-capable load may reach.
    pub stale_window: usize,
}

struct ExecState {
    threads: Vec<ThreadSlot>,
    objs: Vec<Obj>,
    baton: Option<Tid>,
    last_scheduled: Option<Tid>,
    live: usize,
    replay: VecDeque<usize>,
    decisions: Vec<DecisionRec>,
    trace: Vec<Step>,
    preemptions: usize,
    violation: Option<Violation>,
    abort: bool,
    done: bool,
}

/// One deterministic execution of a model under a replayed decision
/// prefix. Shared between the model threads and the harness.
pub(crate) struct Execution {
    m: Mutex<ExecState>,
    cv: Condvar,
    cfg: ExecConfig,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, Tid)>> = const { RefCell::new(None) };
    static IN_MODEL: Cell<bool> = const { Cell::new(false) };
}

/// Run `f` with the calling thread's execution context, if any. Model
/// threads have one; production threads (the plain-`std` fallback of
/// the instrumented primitives) do not.
pub(crate) fn with_ctx<R>(f: impl FnOnce(Option<&(Arc<Execution>, Tid)>) -> R) -> R {
    CTX.with(|c| f(c.borrow().as_ref()))
}

fn in_model() -> bool {
    IN_MODEL.with(|f| f.get())
}

/// Install (once per process) a panic hook that keeps model-thread
/// panics quiet: every counterexample the explorer finds is a panic
/// first, and printing thousands of backtraces during a search would
/// drown the real report.
pub(crate) fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !in_model() {
                prev(info);
            }
        }));
    });
}

fn lock_recover<'a>(m: &'a Mutex<ExecState>) -> MutexGuard<'a, ExecState> {
    // Model threads unwind through this mutex on aborts; poisoning is
    // expected and harmless (state is only read after `done`).
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn panic_msg(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model panicked with a non-string payload".to_string()
    }
}

impl Execution {
    pub(crate) fn new(replay: Vec<usize>, cfg: ExecConfig) -> Arc<Execution> {
        Arc::new(Execution {
            m: Mutex::new(ExecState {
                threads: Vec::new(),
                objs: Vec::new(),
                baton: None,
                last_scheduled: None,
                live: 0,
                replay: replay.into(),
                decisions: Vec::new(),
                trace: Vec::new(),
                preemptions: 0,
                violation: None,
                abort: false,
                done: false,
            }),
            cv: Condvar::new(),
            cfg,
        })
    }

    /// Spawn the model's root closure as thread 0 and run the whole
    /// execution to completion (all threads finished or aborted).
    pub(crate) fn run(self: &Arc<Self>, model: Arc<dyn Fn() + Send + Sync>) -> RunResult {
        install_quiet_hook();
        let root = self.add_thread(None);
        debug_assert_eq!(root, 0);
        {
            let mut st = lock_recover(&self.m);
            st.baton = Some(0);
        }
        self.start_os_thread(root, move || model());
        let mut st = lock_recover(&self.m);
        while !st.done {
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        RunResult {
            decisions: std::mem::take(&mut st.decisions),
            trace: std::mem::take(&mut st.trace),
            violation: st.violation.clone(),
            preemptions: st.preemptions,
        }
    }

    fn add_thread(self: &Arc<Self>, parent: Option<Tid>) -> Tid {
        let mut st = lock_recover(&self.m);
        let tid = st.threads.len();
        assert!(tid < MAX_THREADS, "model spawned more than {MAX_THREADS} threads");
        let clock = match parent {
            // Spawn edge: the child starts with (a bumped copy of) the
            // parent's clock, so everything the parent did
            // happens-before the child.
            Some(p) => st.threads[p].clock.clone(),
            None => Vec::new(),
        };
        let end_obj = st.objs.len();
        st.objs.push(Obj::Cv(CvObj { name: format!("T{tid}-end") }));
        st.threads.push(ThreadSlot {
            parked: Some(Pending {
                kind: PendingKind::Start,
                dep: DepInfo { obj: None, write: false },
            }),
            finished: false,
            cv_notified: false,
            clock,
            final_clock: None,
            end_obj,
        });
        st.live += 1;
        tid
    }

    /// Spawn a model thread running `f`; it parks until first scheduled.
    pub(crate) fn spawn_model<T, F>(self: &Arc<Self>, f: F) -> crate::thread::JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let me = with_ctx(|c| c.map(|(_, tid)| *tid)).expect("spawn outside a model run");
        let tid = self.add_thread(Some(me));
        let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&result);
        self.start_os_thread(tid, move || {
            let r = f();
            *slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
        });
        crate::thread::JoinHandle::new(Arc::clone(self), tid, result)
    }

    fn start_os_thread(self: &Arc<Self>, tid: Tid, f: impl FnOnce() + Send + 'static) {
        let exec = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("model-{tid}"))
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
                IN_MODEL.with(|m| m.set(true));
                // The first scheduling of this thread is a decision like
                // any other: park on the synthetic `Start` op; completion
                // is a visible `finish` op on the thread's end-object so
                // pending joins observe it as a dependent transition.
                let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                    exec.wait_for_baton(tid);
                    f();
                    exec.finish_op(tid);
                }));
                match outcome {
                    Ok(()) => exec.thread_finished(tid, None),
                    Err(p) if p.is::<Aborted>() => exec.thread_finished(tid, None),
                    Err(p) => exec.thread_finished(tid, Some(panic_msg(p.as_ref()))),
                }
                CTX.with(|c| *c.borrow_mut() = None);
            })
            .expect("spawn model OS thread");
    }

    // ---- scheduling core --------------------------------------------------

    fn enabled(st: &ExecState) -> Vec<(Tid, DepInfo)> {
        let mut out = Vec::new();
        for (tid, t) in st.threads.iter().enumerate() {
            if t.finished {
                continue;
            }
            let Some(p) = &t.parked else { continue };
            let runnable = match p.kind {
                PendingKind::Start | PendingKind::Op => true,
                PendingKind::LockAcquire(l) => match &st.objs[l] {
                    Obj::Lock(lk) => lk.held_by.is_none(),
                    _ => unreachable!("lock id points at a non-lock"),
                },
                PendingKind::Join(target) => st.threads[target].finished,
                PendingKind::CvWake { timeout_ok, .. } => t.cv_notified || timeout_ok,
            };
            if runnable {
                out.push((tid, p.dep));
            }
        }
        out
    }

    /// Pick the next baton holder. Called with no thread running (the
    /// caller parked itself or finished).
    fn schedule(&self, st: &mut ExecState) {
        if st.abort {
            self.cv.notify_all();
            return;
        }
        let enabled = Self::enabled(st);
        if enabled.is_empty() {
            if st.live > 0 {
                // Every unfinished thread is blocked: deadlock.
                st.violation =
                    Some(Violation { kind: ViolationKind::Deadlock, trace: st.trace.clone() });
                st.abort = true;
            }
            self.cv.notify_all();
            return;
        }
        let chosen_idx = if enabled.len() == 1 {
            0
        } else if let Some(forced) = st.replay.pop_front() {
            assert!(
                forced < enabled.len(),
                "replay divergence: decision {} of {} enabled",
                forced,
                enabled.len()
            );
            forced
        } else {
            // Default policy: keep running the previous thread when it
            // is still enabled (no preemption), else the lowest tid.
            // Low-preemption defaults make first counterexamples short.
            st.last_scheduled
                .and_then(|prev| enabled.iter().position(|&(t, _)| t == prev))
                .unwrap_or(0)
        };
        let preempt = match st.last_scheduled {
            Some(prev) => enabled.iter().any(|&(t, _)| t == prev) && enabled[chosen_idx].0 != prev,
            None => false,
        };
        if enabled.len() > 1 {
            st.decisions.push(DecisionRec::Sched {
                enabled: enabled.clone(),
                chosen: chosen_idx,
                prev: st.last_scheduled,
                at_step: st.trace.len(),
            });
        }
        if preempt {
            st.preemptions += 1;
        }
        let tid = enabled[chosen_idx].0;
        st.last_scheduled = Some(tid);
        st.baton = Some(tid);
        self.cv.notify_all();
    }

    fn wait_for_baton(&self, me: Tid) {
        let mut st = lock_recover(&self.m);
        while st.baton != Some(me) {
            if st.abort {
                drop(st);
                panic::panic_any(Aborted);
            }
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if st.abort {
            drop(st);
            panic::panic_any(Aborted);
        }
        st.threads[me].parked = None;
    }

    /// Park at a visible op, wait to be scheduled, then run `effect`
    /// atomically (under the execution mutex, baton in hand).
    fn visible_op<R>(
        &self,
        me: Tid,
        pending: Pending,
        effect: impl FnOnce(&Execution, &mut ExecState) -> R,
    ) -> R {
        {
            let mut st = lock_recover(&self.m);
            if st.abort {
                drop(st);
                panic::panic_any(Aborted);
            }
            if st.trace.len() >= self.cfg.max_steps {
                st.violation =
                    Some(Violation { kind: ViolationKind::TooManySteps, trace: st.trace.clone() });
                st.abort = true;
                self.cv.notify_all();
                drop(st);
                panic::panic_any(Aborted);
            }
            st.threads[me].parked = Some(pending);
            st.baton = None;
            self.schedule(&mut st);
        }
        self.wait_for_baton(me);
        let mut st = lock_recover(&self.m);
        // Each visible op advances the thread's clock component.
        if st.threads[me].clock.len() <= me {
            st.threads[me].clock.resize(me + 1, 0);
        }
        st.threads[me].clock[me] += 1;
        effect(self, &mut st)
    }

    fn thread_finished(self: &Arc<Self>, me: Tid, panic_message: Option<String>) {
        let mut st = lock_recover(&self.m);
        if let Some(msg) = panic_message {
            if !st.abort {
                st.violation =
                    Some(Violation { kind: ViolationKind::Property(msg), trace: st.trace.clone() });
                st.abort = true;
            }
        }
        let clock = st.threads[me].clock.clone();
        st.threads[me].final_clock = Some(clock);
        st.threads[me].finished = true;
        st.threads[me].parked = None;
        st.live -= 1;
        if st.live == 0 {
            st.done = true;
        } else if st.baton == Some(me) || st.baton.is_none() {
            st.baton = None;
            self.schedule(&mut st);
        }
        self.cv.notify_all();
    }

    /// Record a value decision (which of `arity` candidates a stale
    /// load observes). Runs inside a visible op's effect.
    fn choose_inner(st: &mut ExecState, arity: usize) -> usize {
        if arity <= 1 {
            return 0;
        }
        let chosen = match st.replay.pop_front() {
            Some(forced) => {
                assert!(forced < arity, "replay divergence: value {forced} of {arity}");
                forced
            }
            // Default: the newest store (the SC-consistent execution).
            None => arity - 1,
        };
        st.decisions.push(DecisionRec::Value { arity, chosen });
        chosen
    }

    fn push_step(st: &mut ExecState, tid: Tid, text: String) {
        st.trace.push(Step { tid, text });
    }

    // ---- object registration ---------------------------------------------

    pub(crate) fn register_atomic(&self, name: String, init: u64) -> usize {
        let mut st = lock_recover(&self.m);
        let id = st.objs.len();
        st.objs.push(Obj::Atomic(AtomicObj {
            name,
            stores: vec![AtomicStore { val: init, writer: 0, writer_time: 0, release: None }],
            seen: Vec::new(),
        }));
        id
    }

    pub(crate) fn register_lock(&self, name: String) -> usize {
        let mut st = lock_recover(&self.m);
        let id = st.objs.len();
        st.objs.push(Obj::Lock(LockObj { name, held_by: None, clock: Vec::new() }));
        id
    }

    pub(crate) fn register_cv(&self, name: String) -> usize {
        let mut st = lock_recover(&self.m);
        let id = st.objs.len();
        st.objs.push(Obj::Cv(CvObj { name }));
        id
    }

    // ---- atomics ----------------------------------------------------------

    fn atomic_mut(st: &mut ExecState, id: usize) -> &mut AtomicObj {
        match &mut st.objs[id] {
            Obj::Atomic(a) => a,
            _ => unreachable!("atomic id points at a non-atomic"),
        }
    }

    fn is_acquire(ord: Ordering) -> bool {
        matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn is_release(ord: Ordering) -> bool {
        matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    pub(crate) fn atomic_load(&self, me: Tid, id: usize, ord: Ordering) -> u64 {
        let pending =
            Pending { kind: PendingKind::Op, dep: DepInfo { obj: Some(id), write: false } };
        let stale_window = self.cfg.stale_window;
        self.visible_op(me, pending, move |_exec, st| {
            let my_clock = st.threads[me].clock.clone();
            let a = Self::atomic_mut(st, id);
            let len = a.stores.len();
            if a.seen.len() <= me {
                a.seen.resize(me + 1, 0);
            }
            // Oldest store this load may legally observe:
            //  - nothing older than the newest store that happens-before
            //    the load (write-read coherence),
            //  - nothing older than what this thread already read
            //    (read-read coherence),
            //  - nothing outside the configured staleness window.
            let mut floor = a.seen[me];
            for (i, s) in a.stores.iter().enumerate().rev() {
                let seen_of_writer = my_clock.get(s.writer).copied().unwrap_or(0);
                if seen_of_writer >= s.writer_time {
                    floor = floor.max(i);
                    break;
                }
            }
            floor = floor.max((len - 1).saturating_sub(stale_window));
            let idx = if ord == Ordering::SeqCst || floor == len - 1 {
                len - 1
            } else {
                let arity = len - floor;
                let name = a.name.clone();
                let choice = Self::choose_inner(st, arity);
                let a = Self::atomicmut_reborrow(st, id);
                let idx = floor + choice;
                if idx != len - 1 {
                    let val = a.stores[idx].val;
                    Self::push_step(
                        st,
                        me,
                        format!("load {name} -> {val} (stale: {} newer)", len - 1 - idx),
                    );
                }
                idx
            };
            let a = Self::atomicmut_reborrow(st, id);
            a.seen[me] = idx;
            let val = a.stores[idx].val;
            let name = a.name.clone();
            let release = a.stores[idx].release.clone();
            if idx == a.stores.len() - 1 {
                Self::push_step(st, me, format!("load {name} -> {val}"));
            }
            if Self::is_acquire(ord) {
                if let Some(rc) = release {
                    clock_join(&mut st.threads[me].clock, &rc);
                }
            }
            val
        })
    }

    // `atomic_mut` reborrow helper for use after `choose_inner` (which
    // needs `&mut ExecState` itself).
    fn atomicmut_reborrow(st: &mut ExecState, id: usize) -> &mut AtomicObj {
        Self::atomic_mut(st, id)
    }

    pub(crate) fn atomic_store(&self, me: Tid, id: usize, val: u64, ord: Ordering) {
        let pending =
            Pending { kind: PendingKind::Op, dep: DepInfo { obj: Some(id), write: true } };
        self.visible_op(me, pending, move |_exec, st| {
            let clock = st.threads[me].clock.clone();
            let time = clock[me];
            let release = Self::is_release(ord).then(|| clock.clone());
            let a = Self::atomic_mut(st, id);
            a.stores.push(AtomicStore { val, writer: me, writer_time: time, release });
            let idx = a.stores.len() - 1;
            if a.seen.len() <= me {
                a.seen.resize(me + 1, 0);
            }
            a.seen[me] = idx;
            let name = a.name.clone();
            Self::push_step(st, me, format!("store {name} = {val}"));
        })
    }

    /// Atomic read-modify-write: always reads the newest store in
    /// modification order (the C11 RMW guarantee), writes back whatever
    /// `f` returns. `f` returning `None` makes it a failed
    /// `compare_exchange`/`fetch_update` (a pure read).
    pub(crate) fn atomic_rmw(
        &self,
        me: Tid,
        id: usize,
        ord: Ordering,
        label: &'static str,
        f: impl FnOnce(u64) -> Option<u64>,
    ) -> (u64, bool) {
        let pending =
            Pending { kind: PendingKind::Op, dep: DepInfo { obj: Some(id), write: true } };
        self.visible_op(me, pending, move |_exec, st| {
            let clock = st.threads[me].clock.clone();
            let time = clock[me];
            let a = Self::atomic_mut(st, id);
            let old = a.stores.last().expect("init store").val;
            let old_release = a.stores.last().expect("init store").release.clone();
            let new = f(old);
            let wrote = new.is_some();
            let name = a.name.clone();
            if let Some(new) = new {
                let release = Self::is_release(ord).then(|| clock.clone());
                a.stores.push(AtomicStore { val: new, writer: me, writer_time: time, release });
                let idx = a.stores.len() - 1;
                if a.seen.len() <= me {
                    a.seen.resize(me + 1, 0);
                }
                a.seen[me] = idx;
                Self::push_step(st, me, format!("{label} {name}: {old} -> {new}"));
            } else {
                let a = Self::atomicmut_reborrow(st, id);
                if a.seen.len() <= me {
                    a.seen.resize(me + 1, 0);
                }
                a.seen[me] = a.stores.len() - 1;
                Self::push_step(st, me, format!("{label} {name}: {old} (no write)"));
            }
            if Self::is_acquire(ord) {
                if let Some(rc) = old_release {
                    clock_join(&mut st.threads[me].clock, &rc);
                }
            }
            (old, wrote)
        })
    }

    // ---- locks ------------------------------------------------------------

    pub(crate) fn lock_acquire(&self, me: Tid, id: usize) {
        let pending = Pending {
            kind: PendingKind::LockAcquire(id),
            dep: DepInfo { obj: Some(id), write: true },
        };
        self.visible_op(me, pending, move |_exec, st| {
            let (name, clock) = match &mut st.objs[id] {
                Obj::Lock(lk) => {
                    // Enabledness guaranteed the lock was free when this
                    // thread was scheduled, and nothing ran since.
                    assert!(lk.held_by.is_none(), "scheduled a lock acquire on a held lock");
                    lk.held_by = Some(me);
                    (lk.name.clone(), lk.clock.clone())
                }
                _ => unreachable!("lock id points at a non-lock"),
            };
            clock_join(&mut st.threads[me].clock, &clock);
            Self::push_step(st, me, format!("lock {name}"));
        })
    }

    pub(crate) fn lock_release(&self, me: Tid, id: usize) {
        // Guard drops run during abort unwinding; never re-panic here,
        // just mark the lock free so nothing wedges.
        {
            let mut st = lock_recover(&self.m);
            if st.abort {
                if let Obj::Lock(lk) = &mut st.objs[id] {
                    lk.held_by = None;
                }
                return;
            }
        }
        let pending =
            Pending { kind: PendingKind::Op, dep: DepInfo { obj: Some(id), write: true } };
        self.visible_op(me, pending, move |_exec, st| {
            let my_clock = st.threads[me].clock.clone();
            let name = match &mut st.objs[id] {
                Obj::Lock(lk) => {
                    debug_assert_eq!(lk.held_by, Some(me), "unlock by non-holder");
                    lk.held_by = None;
                    lk.clock = my_clock;
                    lk.name.clone()
                }
                _ => unreachable!("lock id points at a non-lock"),
            };
            Self::push_step(st, me, format!("unlock {name}"));
        })
    }

    // ---- condvars ---------------------------------------------------------

    /// Release `lock`, park on `cv`, and once woken (notify, or timeout
    /// when `timeout_ok`) reacquire `lock`. Returns whether the wake
    /// was a notification.
    pub(crate) fn cv_wait(&self, me: Tid, cv: usize, lock: usize, timeout_ok: bool) -> bool {
        // The wait's visible half: atomically release the lock and park.
        // Its dependence is the *lock* (releasing it is what enables
        // other threads); the parked half below depends on the cv.
        let pending =
            Pending { kind: PendingKind::Op, dep: DepInfo { obj: Some(lock), write: true } };
        self.visible_op(me, pending, move |_exec, st| {
            let my_clock = st.threads[me].clock.clone();
            match &mut st.objs[lock] {
                Obj::Lock(lk) => {
                    debug_assert_eq!(lk.held_by, Some(me));
                    lk.held_by = None;
                    lk.clock = my_clock;
                }
                _ => unreachable!("cv wait on a non-lock"),
            }
            st.threads[me].cv_notified = false;
            let name = match &st.objs[cv] {
                Obj::Cv(c) => c.name.clone(),
                _ => unreachable!("cv id points at a non-cv"),
            };
            Self::push_step(st, me, format!("wait {name}"));
        });
        // Park until notified or (if allowed) timed out, as one
        // scheduling decision.
        let pending = Pending {
            kind: PendingKind::CvWake { cv, timeout_ok },
            dep: DepInfo { obj: Some(cv), write: false },
        };
        let notified = self.visible_op(me, pending, move |_exec, st| {
            let n = st.threads[me].cv_notified;
            st.threads[me].cv_notified = false;
            Self::push_step(st, me, format!("wake ({})", if n { "notified" } else { "timeout" }));
            n
        });
        self.lock_acquire(me, lock);
        notified
    }

    pub(crate) fn cv_notify_all(&self, me: Tid, cv: usize) {
        let pending =
            Pending { kind: PendingKind::Op, dep: DepInfo { obj: Some(cv), write: true } };
        self.visible_op(me, pending, move |_exec, st| {
            let name = match &st.objs[cv] {
                Obj::Cv(c) => c.name.clone(),
                _ => unreachable!("cv id points at a non-cv"),
            };
            for t in &mut st.threads {
                if let Some(p) = &t.parked {
                    if let PendingKind::CvWake { cv: waiting_on, .. } = p.kind {
                        if waiting_on == cv {
                            t.cv_notified = true;
                        }
                    }
                }
            }
            Self::push_step(st, me, format!("notify_all {name}"));
        })
    }

    // ---- joins ------------------------------------------------------------

    /// Final visible op of every model thread: flips the thread's
    /// end-object so joins become enabled through a recorded, dependent
    /// transition.
    pub(crate) fn finish_op(&self, me: Tid) {
        let end_obj = lock_recover(&self.m).threads[me].end_obj;
        let pending =
            Pending { kind: PendingKind::Op, dep: DepInfo { obj: Some(end_obj), write: true } };
        self.visible_op(me, pending, move |_exec, st| {
            Self::push_step(st, me, "finish".to_string());
        })
    }

    pub(crate) fn join_thread(&self, me: Tid, target: Tid) {
        let end_obj = lock_recover(&self.m).threads[target].end_obj;
        let pending = Pending {
            kind: PendingKind::Join(target),
            dep: DepInfo { obj: Some(end_obj), write: false },
        };
        self.visible_op(me, pending, move |_exec, st| {
            // Join edge: everything the child did happens-before the
            // joiner's continuation.
            let child = st.threads[target].final_clock.clone().unwrap_or_default();
            clock_join(&mut st.threads[me].clock, &child);
            Self::push_step(st, me, format!("join T{target}"));
        })
    }

    /// Record an annotation step in the trace (model-level markers so
    /// counterexamples read as protocol stories, not just atomics).
    pub(crate) fn annotate(&self, me: Tid, text: String) {
        let mut st = lock_recover(&self.m);
        if !st.abort {
            Self::push_step(&mut st, me, text);
        }
    }
}
