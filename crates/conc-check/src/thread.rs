//! Model-thread spawning.
//!
//! Inside a model run, [`spawn`] creates a scheduler-managed thread:
//! it parks until the explorer schedules it, and every visible op it
//! performs is a decision point. Outside a run (the plain-`std`
//! fallback used when `dls-service` is compiled with `--cfg
//! conc_check` but executed normally), it degrades to
//! `std::thread::spawn`.

use crate::sched::{with_ctx, Execution, Tid};
use std::sync::{Arc, Mutex};

enum Inner<T> {
    Model { exec: Arc<Execution>, tid: Tid, result: Arc<Mutex<Option<T>>> },
    Os(std::thread::JoinHandle<T>),
}

/// Handle to a spawned model (or fallback OS) thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    pub(crate) fn new(exec: Arc<Execution>, tid: Tid, result: Arc<Mutex<Option<T>>>) -> Self {
        JoinHandle { inner: Inner::Model { exec, tid, result } }
    }

    /// Wait for the thread to finish and return its result. Inside a
    /// model this is a visible (blocking) op: the joiner is disabled
    /// until the joinee's final `finish` op has run.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Model { exec, tid, result } => {
                let me = with_ctx(|c| c.map(|(_, t)| *t)).expect("join outside a model run");
                exec.join_thread(me, tid);
                let out = result.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
                match out {
                    Some(v) => Ok(v),
                    // The joinee panicked (its result was never stored);
                    // the violation is already recorded by the harness.
                    None => Err(Box::new("model thread panicked")),
                }
            }
            Inner::Os(h) => h.join(),
        }
    }
}

/// Spawn a thread: scheduler-managed inside a model run, plain
/// `std::thread::spawn` otherwise.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    match with_ctx(|c| c.map(|(e, _)| Arc::clone(e))) {
        Some(exec) => exec.spawn_model(f),
        None => JoinHandle { inner: Inner::Os(std::thread::spawn(f)) },
    }
}
