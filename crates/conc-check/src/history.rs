//! Concurrent-history recording for linearizability checking.
//!
//! A [`Recorder`] collects invocation/response spans from model
//! threads. Timestamps come from a recorder-local logical clock bumped
//! at every invoke and return; because the scheduler runs exactly one
//! model thread at a time, the resulting order is the real-time order
//! of that schedule and replays deterministically. Span A *really
//! precedes* span B iff `A.ret < B.invoke`; otherwise they overlap and
//! the checker may order them either way.
//!
//! The recorder deliberately uses plain `std::sync` internals (not the
//! instrumented [`crate::sync`] primitives): recording an operation
//! must not itself be a visible op, or observing a history would change
//! the schedule space being explored.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One recorded operation: invocation, response, and their timestamps.
#[derive(Clone, Debug)]
pub struct Span<O, R> {
    /// The invoked operation.
    pub op: O,
    /// Its observed result (`None` while still pending).
    pub res: Option<R>,
    /// Logical time of the invocation.
    pub invoke: u64,
    /// Logical time of the response (`u64::MAX` while pending).
    pub ret: u64,
}

struct Inner<O, R> {
    spans: Mutex<Vec<Span<O, R>>>,
    clock: AtomicU64,
}

/// Ticket for completing a previously invoked operation.
#[derive(Clone, Copy, Debug)]
pub struct OpToken(usize);

/// Shared recorder handed to every model thread.
pub struct Recorder<O, R> {
    inner: Arc<Inner<O, R>>,
}

impl<O, R> Clone for Recorder<O, R> {
    fn clone(&self) -> Self {
        Recorder { inner: Arc::clone(&self.inner) }
    }
}

impl<O, R> Default for Recorder<O, R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<O, R> Recorder<O, R> {
    /// New empty recorder.
    pub fn new() -> Recorder<O, R> {
        Recorder {
            inner: Arc::new(Inner { spans: Mutex::new(Vec::new()), clock: AtomicU64::new(0) }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Span<O, R>>> {
        self.inner.spans.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Record an invocation; call *before* the operation's first
    /// visible op.
    pub fn invoke(&self, op: O) -> OpToken {
        let t = self.inner.clock.fetch_add(1, Ordering::SeqCst);
        let mut spans = self.lock();
        spans.push(Span { op, res: None, invoke: t, ret: u64::MAX });
        OpToken(spans.len() - 1)
    }

    /// Record the response; call *after* the operation's last visible
    /// op.
    pub fn complete(&self, token: OpToken, res: R) {
        let t = self.inner.clock.fetch_add(1, Ordering::SeqCst);
        let mut spans = self.lock();
        let span = &mut spans[token.0];
        debug_assert!(span.res.is_none(), "operation completed twice");
        span.res = Some(res);
        span.ret = t;
    }

    /// Drain the recorded history (for the root thread, after joining
    /// every worker).
    pub fn take(&self) -> Vec<Span<O, R>> {
        std::mem::take(&mut *self.lock())
    }
}
