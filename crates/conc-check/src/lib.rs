//! # conc-check — deterministic concurrency checking for `dls-service`
//!
//! A loom-style model checker built from scratch (no external crates)
//! for the concurrent core of the `dls-service` chunk scheduler:
//!
//! * [`sync`] — instrumented `AtomicU64`/`AtomicBool`/`Mutex`/`Condvar`
//!   that `dls-service` swaps in under `--cfg conc_check`. Every
//!   visible operation yields to a deterministic scheduler; outside a
//!   model run they degrade to plain `std::sync`.
//! * [`thread`] — model-thread spawning ([`thread::spawn`] +
//!   [`thread::JoinHandle`]).
//! * [`explore`] — the schedule explorer: stateless DFS over every
//!   scheduling and stale-read decision, with sleep-set partial-order
//!   reduction and preemption-bounded iterative deepening for
//!   preemption-minimal counterexamples.
//! * [`history`] / [`linearize`] — concurrent operation recording and a
//!   Wing–Gong linearizability checker validating recorded
//!   fetch/report/reclaim histories against the sequential dls
//!   calculator spec.
//! * [`models`] — bounded models of the real server paths (admission
//!   CAS vs racing accepts, burst fetch/report under a shard lock,
//!   lease reclaim vs concurrent fetch, drain flag vs in-flight ops),
//!   each with seeded-broken variants that must produce pinned
//!   counterexamples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod history;
pub mod linearize;
pub mod models;
pub(crate) mod sched;
pub mod spec;
pub mod sync;
pub mod thread;

pub use explore::{check, check_minimal, explore, replay, Config, Counterexample, Outcome, Stats};
pub use sched::{Step, ViolationKind};

/// Record a marker line in the current model run's trace (no-op outside
/// a run) so counterexamples read as protocol stories.
pub fn annotate(text: &str) {
    sched::with_ctx(|c| {
        if let Some((exec, me)) = c {
            exec.annotate(*me, text.to_string());
        }
    });
}
