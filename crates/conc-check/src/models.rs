//! Bounded concurrency models of the real `dls-service` server paths.
//!
//! Each model builds fresh shared state from the instrumented
//! primitives ([`crate::sync`]), spawns a handful of model threads
//! exercising one protocol of the server, and asserts the protocol's
//! invariant; the explorer then drives it through every schedule. Each
//! model has a `Clean` variant (mirroring what the server actually
//! does, expected to pass exhaustively) and seeded-broken variants
//! (plausible-looking bug patterns — including the check-then-act
//! admission bug the service actually shipped once) that must produce
//! counterexamples.
//!
//! The protocol logic deliberately reuses the *real* building blocks:
//! the dls chunk calculators drive the two-counter queue and the
//! `resilience` lease ledger arbitrates reclaims, so a model violation
//! indicts the synchronization pattern, not a toy re-implementation.

use crate::history::Recorder;
use crate::linearize::assert_linearizable;
use crate::spec::{JobOp, JobRes, JobSpec};
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};
use crate::thread;
use dls::technique::WorkerCtx;
use dls::{ChunkCalculator, Kind, SchedState, Technique};
use resilience::{LeaseId, LeaseTable};
use std::collections::{HashMap, VecDeque};

/// Reclaimer id used by the server's disconnect path.
const RECLAIMER: u32 = u32::MAX;

/// Which implementation of a protocol a model runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// The pattern the server actually uses; must pass exhaustively.
    Clean,
    /// Admission by `load` + compare + `fetch_add` instead of one CAS —
    /// the lost-window bug the service shipped before the CAS fix.
    CheckThenActAdmission,
    /// Peak tracking by `load`/compare/`store` instead of `fetch_max` —
    /// loses concurrent updates.
    LoadStorePeak,
    /// Drain protocol with every ordering demoted to `Relaxed` — the
    /// announcement no longer happens-before the flag read.
    RelaxedShutdown,
    /// Disconnect reclaim that re-pools ranges without consulting the
    /// lease ledger — double-grants ranges settled by a racing report.
    ReclaimWithoutLedger,
}

// ---------------------------------------------------------------------------
// Model: connection admission (event_loop.rs accept path)
// ---------------------------------------------------------------------------

/// The accept-path admission protocol: `workers` racing accepts against
/// a cap of `max_conns`, exactly as `event_loop.rs` runs it —
/// admission by a single `fetch_update` CAS on `conns_active`, peak
/// tracking by `fetch_max` on `conns_peak`.
///
/// Invariants checked on every schedule:
/// * at most `max_conns` connections are ever inside concurrently;
/// * after all threads finish, `conns_peak` equals the highest
///   occupancy any admitted connection observed.
pub fn admission_model(
    variant: Variant,
    workers: usize,
    max_conns: u64,
) -> impl Fn() + Send + Sync {
    move || {
        let active = Arc::new(AtomicU64::new(0).named("conns_active"));
        let peak = Arc::new(AtomicU64::new(0).named("conns_peak"));
        // Ground truth for the cap invariant, always SeqCst.
        let in_flight = Arc::new(AtomicU64::new(0).named("in_flight"));

        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let active = Arc::clone(&active);
                let peak = Arc::clone(&peak);
                let in_flight = Arc::clone(&in_flight);
                thread::spawn(move || {
                    let admitted = match variant {
                        Variant::CheckThenActAdmission => {
                            // Seeded bug: the window between the load and
                            // the add admits over the cap.
                            if active.load(Ordering::SeqCst) < max_conns {
                                Some(active.fetch_add(1, Ordering::SeqCst))
                            } else {
                                None
                            }
                        }
                        _ => active
                            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| {
                                (c < max_conns).then_some(c + 1)
                            })
                            .ok(),
                    };
                    let prev = admitted?;
                    let occupancy = prev + 1;
                    match variant {
                        Variant::LoadStorePeak => {
                            // Seeded bug: racing read-compare-write loses
                            // one of two concurrent maxima.
                            if occupancy > peak.load(Ordering::Relaxed) {
                                peak.store(occupancy, Ordering::Relaxed);
                            }
                        }
                        // Relaxed is enough for the real pattern: an RMW
                        // always reads the latest value in modification
                        // order, so no concurrent max is ever lost.
                        _ => {
                            peak.fetch_max(occupancy, Ordering::Relaxed);
                        }
                    }
                    let inside = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    assert!(
                        inside <= max_conns,
                        "admission cap breached: {inside} connections inside, cap {max_conns}"
                    );
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    active.fetch_sub(1, Ordering::SeqCst);
                    Some(occupancy)
                })
            })
            .collect();

        let mut expected_peak = 0;
        for h in handles {
            if let Ok(Some(occupancy)) = h.join() {
                expected_peak = expected_peak.max(occupancy);
            }
        }
        if expected_peak > 0 {
            let got = peak.load(Ordering::SeqCst);
            assert!(
                got == expected_peak,
                "conns_peak lost an update: recorded {got}, observed high-water {expected_peak}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Shared job core (server.rs Job under one shard lock)
// ---------------------------------------------------------------------------

/// The server's per-job state, guarded by one shard mutex exactly as in
/// `server.rs`: two-counter queue driven by the real chunk calculator,
/// reclaim pool served first, `resilience` lease ledger for settlement.
struct JobCore {
    spec: JobSpec,
    step: u64,
    scheduled: u64,
    completed: u64,
    pool: VecDeque<(u64, u64)>,
    leases: LeaseTable,
    lease_range: HashMap<LeaseId, (u64, u64)>,
    conn_leases: HashMap<u64, Vec<LeaseId>>,
}

impl JobCore {
    fn new(spec: JobSpec) -> JobCore {
        JobCore {
            spec,
            step: 0,
            scheduled: 0,
            completed: 0,
            pool: VecDeque::new(),
            leases: LeaseTable::new(),
            lease_range: HashMap::new(),
            conn_leases: HashMap::new(),
        }
    }

    /// `Job::fetch`: reclaimed ranges first, then fresh counter
    /// advances.
    fn fetch(&mut self, worker: u32, batch: u32, conn: u64) -> Vec<(LeaseId, u64, u64)> {
        let n = self.spec.n;
        let spec = self.spec.loop_spec_for_model();
        let technique = Technique::from_kind(self.spec.kind);
        let weight = self.spec.weights.get(worker as usize).copied().unwrap_or(1.0);
        let ctx = WorkerCtx { worker, weight };
        let mut out = Vec::new();
        for _ in 0..batch {
            let (lo, hi) = if let Some(r) = self.pool.pop_front() {
                r
            } else if self.scheduled < n {
                let state = SchedState { step: self.step, scheduled: self.scheduled };
                let size = technique.chunk_size(&spec, state, ctx).clamp(1, n - self.scheduled);
                let lo = self.scheduled;
                self.step += 1;
                self.scheduled += size;
                (lo, lo + size)
            } else {
                break;
            };
            let lease = self.leases.grant(worker, lo, hi, 0);
            self.lease_range.insert(lease, (lo, hi));
            self.conn_leases.entry(conn).or_default().push(lease);
            out.push((lease, lo, hi));
        }
        out
    }

    /// `Job::report`: settle through the ledger; a second settlement is
    /// a stale lease, not a double credit.
    fn report(&mut self, lease: LeaseId) -> Option<u64> {
        let (lo, hi) = *self.lease_range.get(&lease)?;
        if self.leases.complete(lease).is_err() {
            return None;
        }
        self.completed += hi - lo;
        Some(hi - lo)
    }

    /// `Job::reclaim_conn`: re-pool the dead connection's unsettled
    /// grants. The ledger is what makes this exactly-once — the seeded
    /// variant skips it and re-pools settled ranges.
    fn disconnect(&mut self, conn: u64, variant: Variant) -> u64 {
        let Some(list) = self.conn_leases.remove(&conn) else { return 0 };
        let mut reclaimed = 0;
        for lease in list {
            match variant {
                Variant::ReclaimWithoutLedger => {
                    // Seeded bug: trust the reverse index alone.
                    let range = self.lease_range[&lease];
                    self.pool.push_back(range);
                    reclaimed += 1;
                }
                _ => {
                    // Only an Active -> Reclaimed ledger transition may
                    // re-pool a range; settled leases are skipped.
                    if let Ok(range) = self.leases.reclaim(lease, RECLAIMER) {
                        self.pool.push_back(range);
                        reclaimed += 1;
                    }
                }
            }
        }
        reclaimed
    }
}

type SharedJob = Arc<Mutex<JobCore>>;
type JobRecorder = Recorder<JobOp, JobRes>;

impl JobSpec {
    fn loop_spec_for_model(&self) -> dls::LoopSpec {
        let p = if self.weights.is_empty() { 8 } else { self.weights.len() as u32 };
        dls::LoopSpec::new(self.n, p.max(1))
    }
}

fn recorded_fetch(
    job: &SharedJob,
    rec: &JobRecorder,
    worker: u32,
    batch: u32,
    conn: u64,
) -> Vec<(LeaseId, u64, u64)> {
    let token = rec.invoke(JobOp::Fetch { worker, conn, batch });
    let granted = {
        let mut core = job.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        core.fetch(worker, batch, conn)
    };
    rec.complete(token, JobRes::Granted(granted.iter().map(|&(_, lo, hi)| (lo, hi)).collect()));
    granted
}

fn recorded_report(job: &SharedJob, rec: &JobRecorder, lease: LeaseId, lo: u64, hi: u64) {
    let token = rec.invoke(JobOp::Report { lo, hi });
    let credited = {
        let mut core = job.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        core.report(lease)
    };
    rec.complete(token, JobRes::Reported(credited));
}

fn recorded_disconnect(job: &SharedJob, rec: &JobRecorder, conn: u64, variant: Variant) {
    let token = rec.invoke(JobOp::Disconnect { conn });
    let reclaimed = {
        let mut core = job.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        core.disconnect(conn, variant)
    };
    rec.complete(token, JobRes::Reclaimed(reclaimed));
}

// ---------------------------------------------------------------------------
// Model: burst fetch/report under one shard lock
// ---------------------------------------------------------------------------

/// `workers` connections concurrently fetching `batch` chunks from one
/// job and reporting every grant — the hot fetch/report path under a
/// single shard lock. The recorded history must linearize against the
/// sequential calculator spec, and every granted range must be
/// exactly-once: pairwise disjoint with total coverage matching the
/// counters.
pub fn burst_fetch_report_model(
    kind: Kind,
    n: u64,
    workers: u32,
    batch: u32,
) -> impl Fn() + Send + Sync {
    move || {
        let spec = JobSpec::new(n, kind);
        let job: SharedJob = Arc::new(Mutex::new(JobCore::new(spec.clone())).named("shard"));
        let rec: JobRecorder = Recorder::new();

        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let job = Arc::clone(&job);
                let rec = rec.clone();
                thread::spawn(move || {
                    let conn = u64::from(w) + 1;
                    let granted = recorded_fetch(&job, &rec, w, batch, conn);
                    for (lease, lo, hi) in granted {
                        recorded_report(&job, &rec, lease, lo, hi);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread");
        }

        let history = rec.take();
        // Exactly-once: no iteration appears in two grants (no reclaims
        // happen in this model).
        let mut ranges: Vec<(u64, u64)> = history
            .iter()
            .filter_map(|s| match &s.res {
                Some(JobRes::Granted(rs)) => Some(rs.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        ranges.sort_unstable();
        for pair in ranges.windows(2) {
            assert!(
                pair[0].1 <= pair[1].0,
                "iteration granted twice: ranges {:?} and {:?} overlap",
                pair[0],
                pair[1]
            );
        }
        assert_linearizable(&spec, &history);
    }
}

// ---------------------------------------------------------------------------
// Model: lease reclaim on disconnect vs concurrent fetch/report
// ---------------------------------------------------------------------------

/// The resilience race: connection 1 fetches a chunk and reports it
/// while the server's disconnect path concurrently reclaims that
/// connection, and connection 2 keeps fetching — reclaimed ranges are
/// served from the pool before fresh counter advances. Exactly-once
/// grant/reclaim per range is checked by linearizing the recorded
/// history against the sequential spec: a range both settled and
/// re-pooled (the no-ledger variant) has no sequential explanation.
pub fn reclaim_model(variant: Variant, kind: Kind, n: u64) -> impl Fn() + Send + Sync {
    move || {
        let spec = JobSpec::new(n, kind);
        let job: SharedJob = Arc::new(Mutex::new(JobCore::new(spec.clone())).named("shard"));
        let rec: JobRecorder = Recorder::new();

        // Connection 1: fetch one chunk, report it.
        let w1 = {
            let job = Arc::clone(&job);
            let rec = rec.clone();
            thread::spawn(move || {
                for (lease, lo, hi) in recorded_fetch(&job, &rec, 0, 1, 1) {
                    recorded_report(&job, &rec, lease, lo, hi);
                }
            })
        };
        // The server's reaper: connection 1 disconnected.
        let reaper = {
            let job = Arc::clone(&job);
            let rec = rec.clone();
            thread::spawn(move || {
                recorded_disconnect(&job, &rec, 1, variant);
            })
        };
        // Connection 2: drain whatever remains (pool first).
        let w2 = {
            let job = Arc::clone(&job);
            let rec = rec.clone();
            thread::spawn(move || {
                for (lease, lo, hi) in recorded_fetch(&job, &rec, 1, 2, 2) {
                    recorded_report(&job, &rec, lease, lo, hi);
                }
            })
        };
        w1.join().expect("worker 1");
        reaper.join().expect("reaper");
        w2.join().expect("worker 2");

        let history = rec.take();
        // Exactly-once settlement: credited iterations can never exceed
        // the loop size, whatever the schedule.
        let credited: u64 = history
            .iter()
            .filter_map(|s| match &s.res {
                Some(JobRes::Reported(Some(len))) => Some(*len),
                _ => None,
            })
            .sum();
        assert!(credited <= n, "double settlement: {credited} iterations credited of {n}");
        assert_linearizable(&spec, &history);
    }
}

// ---------------------------------------------------------------------------
// Model: drain flag vs in-flight ops
// ---------------------------------------------------------------------------

/// The shutdown handshake: the controller raises the drain flag, then
/// publishes "accepting closed"; an in-flight op that observes the
/// announcement must also observe the flag. The server gets the
/// happens-before edge from `SeqCst` on the flag plus the
/// mutex/condvar handshake; the `RelaxedShutdown` variant demotes
/// everything to `Relaxed`, severing the edge — the announcement can be
/// visible while the flag read is stale.
pub fn drain_model(variant: Variant) -> impl Fn() + Send + Sync {
    move || {
        let draining = Arc::new(AtomicBool::new(false).named("shutdown"));
        let closed = Arc::new(AtomicBool::new(false).named("accepting_closed"));

        let (flag_store, announce_store, announce_load, flag_load) = match variant {
            Variant::RelaxedShutdown => {
                (Ordering::Relaxed, Ordering::Relaxed, Ordering::Relaxed, Ordering::Relaxed)
            }
            // The real pattern: SeqCst flag, release/acquire handshake
            // (the mutex inside `request_shutdown` provides the same
            // edge in the server).
            _ => (Ordering::SeqCst, Ordering::Release, Ordering::Acquire, Ordering::Relaxed),
        };

        let controller = {
            let draining = Arc::clone(&draining);
            let closed = Arc::clone(&closed);
            thread::spawn(move || {
                draining.store(true, flag_store);
                closed.store(true, announce_store);
            })
        };
        let worker = {
            let draining = Arc::clone(&draining);
            let closed = Arc::clone(&closed);
            thread::spawn(move || {
                if closed.load(announce_load) {
                    assert!(
                        draining.load(flag_load),
                        "accepting closed is visible but the drain flag reads stale false"
                    );
                }
            })
        };
        controller.join().expect("controller");
        worker.join().expect("worker");
    }
}
