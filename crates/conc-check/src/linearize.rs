//! Wing–Gong linearizability checking.
//!
//! Given a complete concurrent history (every invocation has its
//! response) and a deterministic sequential specification, search for a
//! *linearization*: a total order of the operations that (a) respects
//! real time — if A returned before B was invoked, A comes first — and
//! (b) replays through the sequential spec producing exactly the
//! responses each operation observed.
//!
//! The search is the classic Wing–Gong recursion: repeatedly pick a
//! minimal (not real-time-preceded) remaining operation, apply it to
//! the spec state, and recurse, with memoization on (remaining-set,
//! spec-state) pairs — the Lowe refinement that turns pathological
//! histories from exponential to tractable. Model histories here are
//! small (≤ 32 operations by construction).

use crate::history::Span;
use std::collections::HashSet;
use std::hash::Hash;

/// A deterministic sequential specification of the checked object.
pub trait SeqSpec {
    /// Operation type (what was invoked).
    type Op: Clone + std::fmt::Debug;
    /// Response type (what the caller observed).
    type Res: Clone + PartialEq + std::fmt::Debug;
    /// Sequential object state.
    type State: Clone + Eq + Hash;

    /// Initial state.
    fn init(&self) -> Self::State;
    /// Apply `op`, mutating the state and returning the sequential
    /// response.
    fn apply(&self, state: &mut Self::State, op: &Self::Op) -> Self::Res;
}

/// Failure evidence: no linearization exists.
#[derive(Clone, Debug)]
pub struct NotLinearizable {
    /// Rendered history, one operation per line.
    pub rendered: String,
}

impl std::fmt::Display for NotLinearizable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "history is not linearizable:\n{}", self.rendered)
    }
}

fn render<O: std::fmt::Debug, R: std::fmt::Debug>(history: &[Span<O, R>]) -> String {
    let mut out = String::new();
    for (i, s) in history.iter().enumerate() {
        out.push_str(&format!(
            "  op {i:2} [{:3},{:3}]  {:?} -> {:?}\n",
            s.invoke,
            s.ret,
            s.op,
            s.res.as_ref()
        ));
    }
    out
}

/// Check `history` against `spec`. Returns a witness linearization
/// (indices into `history` in linearized order) or the failing history.
///
/// Panics if any span is incomplete — models must join every worker
/// before checking.
pub fn linearizable<S: SeqSpec>(
    spec: &S,
    history: &[Span<S::Op, S::Res>],
) -> Result<Vec<usize>, NotLinearizable> {
    assert!(history.len() <= 32, "history too large for the bitmask search");
    assert!(
        history.iter().all(|s| s.res.is_some()),
        "incomplete span in history (join all workers before checking)"
    );
    let full: u32 = if history.len() == 32 { u32::MAX } else { (1u32 << history.len()) - 1 };
    let mut memo: HashSet<(u32, S::State)> = HashSet::new();
    let mut order = Vec::with_capacity(history.len());
    let state = spec.init();
    if dfs(spec, history, 0, state, full, &mut memo, &mut order) {
        Ok(order)
    } else {
        Err(NotLinearizable { rendered: render(history) })
    }
}

fn dfs<S: SeqSpec>(
    spec: &S,
    history: &[Span<S::Op, S::Res>],
    done: u32,
    state: S::State,
    full: u32,
    memo: &mut HashSet<(u32, S::State)>,
    order: &mut Vec<usize>,
) -> bool {
    if done == full {
        return true;
    }
    if !memo.insert((done, state.clone())) {
        return false;
    }
    for (i, span) in history.iter().enumerate() {
        if done & (1 << i) != 0 {
            continue;
        }
        // `i` is a candidate linearization point iff no other remaining
        // operation returned before `i` was invoked.
        let minimal = history
            .iter()
            .enumerate()
            .all(|(j, other)| j == i || done & (1 << j) != 0 || other.ret >= span.invoke);
        if !minimal {
            continue;
        }
        let mut next = state.clone();
        let res = spec.apply(&mut next, &span.op);
        if Some(&res) != span.res.as_ref() {
            continue;
        }
        order.push(i);
        if dfs(spec, history, done | (1 << i), next, full, memo, order) {
            return true;
        }
        order.pop();
    }
    false
}

/// Assert linearizability; inside a model run the panic becomes a
/// `Property` violation carrying the failing schedule's trace.
pub fn assert_linearizable<S: SeqSpec>(spec: &S, history: &[Span<S::Op, S::Res>]) {
    if let Err(e) = linearizable(spec, history) {
        panic!("{e}");
    }
}
