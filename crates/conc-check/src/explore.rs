//! The schedule explorer: stateless depth-first search over every
//! nondeterministic decision a model run can take.
//!
//! Each run of a model under [`crate::sched::Execution`] records its
//! decision vector (which thread stepped at each contended point, which
//! store each stale-capable load observed). The explorer re-runs the
//! model with a replayed prefix and one decision flipped, walking the
//! whole decision tree depth-first. Two prunings keep that tractable:
//!
//! * **Sleep sets** (a classic partial-order reduction): once the
//!   subtree starting with thread `t` has been fully explored from a
//!   state, sibling branches need not re-run `t` from that state until
//!   a *dependent* transition (same object, at least one write)
//!   invalidates the equivalence. Sound for safety properties: every
//!   Mazurkiewicz trace keeps at least one representative.
//! * **Preemption bounding** with iterative deepening: explore all
//!   schedules with at most `k` preemptions before trying `k + 1`.
//!   Real concurrency bugs overwhelmingly need 1–2 preemptions, and
//!   the first counterexample found this way is preemption-minimal —
//!   the shortest story a human has to read.
//!
//! The two are not combined: a preemption bound truncates subtrees,
//! which would make sleep-set inheritance unsound, so setting
//! `preemption_bound` disables sleep sets automatically.

use crate::sched::{DecisionRec, DepInfo, ExecConfig, Execution, Step, Tid, ViolationKind};
use std::sync::Arc;

/// Exploration limits and semantics knobs.
#[derive(Clone, Debug)]
pub struct Config {
    /// Hard cap on executed schedules; exceeding it yields a result
    /// with `complete == false` rather than running forever.
    pub max_schedules: usize,
    /// Per-run visible-op cap (a run past it is reported as
    /// [`ViolationKind::TooManySteps`]).
    pub max_steps: usize,
    /// Explore only schedules with at most this many preemptions
    /// (disables sleep sets). `None` = unbounded.
    pub preemption_bound: Option<usize>,
    /// Sleep-set partial-order reduction (ignored when a preemption
    /// bound is set).
    pub sleep_sets: bool,
    /// How many stores back a `Relaxed`/`Acquire` load may observe.
    pub stale_window: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_schedules: 200_000,
            max_steps: 2_000,
            preemption_bound: None,
            sleep_sets: true,
            stale_window: 2,
        }
    }
}

/// Statistics from a completed (or capped) exploration.
#[derive(Clone, Debug)]
pub struct Stats {
    /// Schedules executed.
    pub schedules: usize,
    /// Whether the decision tree was exhausted (false = `max_schedules`
    /// hit; the pass is then only a bounded smoke result).
    pub complete: bool,
    /// Whether any branch was skipped because of the preemption bound.
    pub bound_hit: bool,
}

/// A failing schedule, replayable via [`replay`].
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// What went wrong.
    pub kind: ViolationKind,
    /// The failing schedule's visible ops, in execution order.
    pub trace: Vec<Step>,
    /// Decision vector reproducing the failure deterministically.
    pub choices: Vec<usize>,
    /// Preemptions in the failing schedule.
    pub preemptions: usize,
    /// Schedules executed before the failure was found.
    pub schedules: usize,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ViolationKind::Property(msg) => writeln!(f, "property violation: {msg}")?,
            ViolationKind::Deadlock => writeln!(f, "deadlock: all live threads blocked")?,
            ViolationKind::TooManySteps => writeln!(f, "run exceeded the step limit")?,
        }
        writeln!(
            f,
            "schedule ({} preemptions, found after {} schedules):",
            self.preemptions, self.schedules
        )?;
        for (i, s) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:3}  {s}")?;
        }
        Ok(())
    }
}

/// Result of exploring one model.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// No schedule violated the model's assertions.
    Pass(Stats),
    /// Some schedule did.
    Fail(Counterexample),
}

impl Outcome {
    /// Whether the exploration passed.
    pub fn is_pass(&self) -> bool {
        matches!(self, Outcome::Pass(_))
    }

    /// The counterexample, if the exploration failed.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Outcome::Pass(_) => None,
            Outcome::Fail(cx) => Some(cx),
        }
    }

    /// Unwrap a failure (panics with the counterexample rendered when
    /// the exploration passed — for tests that expect a bug).
    pub fn expect_fail(&self, what: &str) -> &Counterexample {
        match self {
            Outcome::Fail(cx) => cx,
            Outcome::Pass(st) => {
                panic!("expected {what} to fail, but {} schedules passed", st.schedules)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// DFS frames
// ---------------------------------------------------------------------------

enum Frame {
    Sched {
        enabled: Vec<(Tid, DepInfo)>,
        prev: Option<Tid>,
        at_step: usize,
        /// Index currently being explored.
        chosen: usize,
        /// Alternatives already descended into.
        explored: Vec<bool>,
        /// Sleep set (inherited + accumulated), by `enabled` index.
        sleep: Vec<bool>,
        /// Preemptions on the path strictly above this decision.
        preemptions_before: usize,
    },
    Value {
        arity: usize,
        chosen: usize,
        explored: Vec<bool>,
    },
}

impl Frame {
    fn chosen(&self) -> usize {
        match self {
            Frame::Sched { chosen, .. } | Frame::Value { chosen, .. } => *chosen,
        }
    }
}

fn is_preempt(enabled: &[(Tid, DepInfo)], prev: Option<Tid>, idx: usize) -> bool {
    match prev {
        Some(p) => enabled.iter().any(|&(t, _)| t == p) && enabled[idx].0 != p,
        None => false,
    }
}

/// Explore every schedule of `model` under `cfg`.
pub fn explore<F>(cfg: &Config, model: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    explore_arc(cfg, Arc::new(model))
}

fn run_once(
    cfg: &Config,
    model: &Arc<dyn Fn() + Send + Sync>,
    replay: Vec<usize>,
) -> crate::sched::RunResult {
    let exec = Execution::new(
        replay,
        ExecConfig { max_steps: cfg.max_steps, stale_window: cfg.stale_window },
    );
    exec.run(Arc::clone(model))
}

fn explore_arc(cfg: &Config, model: Arc<dyn Fn() + Send + Sync>) -> Outcome {
    let sleep_on = cfg.sleep_sets && cfg.preemption_bound.is_none();
    let mut stack: Vec<Frame> = Vec::new();
    let mut schedules = 0usize;
    let mut bound_hit = false;

    loop {
        let replay: Vec<usize> = stack.iter().map(Frame::chosen).collect();
        let result = run_once(cfg, &model, replay);
        schedules += 1;

        if let Some(v) = result.violation {
            return Outcome::Fail(Counterexample {
                kind: v.kind,
                trace: v.trace,
                choices: result
                    .decisions
                    .iter()
                    .map(|d| match d {
                        DecisionRec::Sched { chosen, .. } | DecisionRec::Value { chosen, .. } => {
                            *chosen
                        }
                    })
                    .collect(),
                preemptions: result.preemptions,
                schedules,
            });
        }
        if schedules >= cfg.max_schedules {
            return Outcome::Pass(Stats { schedules, complete: false, bound_hit });
        }

        // Extend the stack with the decisions this run took beyond the
        // replayed prefix, inheriting sleep sets frame to frame.
        for (pos, dec) in result.decisions.iter().enumerate().skip(stack.len()) {
            let frame = match dec {
                DecisionRec::Value { arity, chosen } => {
                    let mut explored = vec![false; *arity];
                    explored[*chosen] = true;
                    Frame::Value { arity: *arity, chosen: *chosen, explored }
                }
                DecisionRec::Sched { enabled, chosen, prev, at_step, .. } => {
                    let mut explored = vec![false; enabled.len()];
                    explored[*chosen] = true;
                    let mut sleep = vec![false; enabled.len()];
                    let mut preemptions_before = 0;
                    // Nearest Sched ancestor (Value frames sit inside
                    // transitions and are transparent here).
                    let parent = stack[..pos].iter().rev().find_map(|f| match f {
                        Frame::Sched {
                            enabled,
                            prev,
                            at_step,
                            chosen,
                            sleep,
                            preemptions_before,
                            ..
                        } => Some((enabled, *prev, *at_step, *chosen, sleep, *preemptions_before)),
                        Frame::Value { .. } => None,
                    });
                    if let Some((p_enabled, p_prev, p_step, p_chosen, p_sleep, p_before)) = parent {
                        let (p_tid, p_dep) = p_enabled[p_chosen];
                        preemptions_before =
                            p_before + usize::from(is_preempt(p_enabled, p_prev, p_chosen));
                        // Sleep inheritance is only sound across a
                        // single transition: require that every step
                        // between the two decisions was executed by the
                        // parent's chosen thread (otherwise an
                        // unrecorded intermediate transition might be
                        // dependent with a sleeping op).
                        let single_transition =
                            result.trace[p_step..*at_step].iter().all(|s| s.tid == p_tid);
                        if sleep_on && single_transition {
                            for (u_idx, &(u_tid, u_dep)) in enabled.iter().enumerate() {
                                if u_tid == p_tid {
                                    continue;
                                }
                                let was_asleep = p_enabled
                                    .iter()
                                    .position(|&(t, _)| t == u_tid)
                                    .is_some_and(|i| p_sleep[i] && p_enabled[i].1 == u_dep);
                                if was_asleep && !u_dep.dependent(&p_dep) {
                                    sleep[u_idx] = true;
                                }
                            }
                        }
                    }
                    Frame::Sched {
                        enabled: enabled.clone(),
                        prev: *prev,
                        at_step: *at_step,
                        chosen: *chosen,
                        explored,
                        sleep,
                        preemptions_before,
                    }
                }
            };
            stack.push(frame);
        }

        // Backtrack: advance the deepest frame with an untried,
        // unpruned alternative; pop frames that are exhausted.
        let advanced = loop {
            let Some(top) = stack.last_mut() else { break false };
            let next = match top {
                Frame::Value { arity, chosen, explored } => {
                    (0..*arity).find(|&c| !explored[c]).map(|c| {
                        explored[c] = true;
                        *chosen = c;
                    })
                }
                Frame::Sched {
                    enabled, prev, chosen, explored, sleep, preemptions_before, ..
                } => {
                    // The just-finished subtree's thread goes to sleep
                    // for the remaining siblings.
                    sleep[*chosen] = true;
                    let mut found = None;
                    for c in 0..enabled.len() {
                        if explored[c] || (sleep_on && sleep[c]) {
                            continue;
                        }
                        if let Some(bound) = cfg.preemption_bound {
                            if *preemptions_before + usize::from(is_preempt(enabled, *prev, c))
                                > bound
                            {
                                bound_hit = true;
                                continue;
                            }
                        }
                        found = Some(c);
                        break;
                    }
                    found.map(|c| {
                        explored[c] = true;
                        *chosen = c;
                    })
                }
            };
            if next.is_some() {
                break true;
            }
            stack.pop();
        };
        if !advanced {
            return Outcome::Pass(Stats { schedules, complete: true, bound_hit });
        }
    }
}

/// Re-run `model` pinned to a recorded decision vector; returns the
/// violation (if it still occurs) and the trace.
pub fn replay<F>(cfg: &Config, model: F, choices: &[usize]) -> (Option<ViolationKind>, Vec<Step>)
where
    F: Fn() + Send + Sync + 'static,
{
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let result = run_once(cfg, &model, choices.to_vec());
    match result.violation {
        Some(v) => (Some(v.kind), v.trace),
        None => (None, result.trace),
    }
}

/// Exhaustive check with sleep-set reduction: the default for proving a
/// model clean.
pub fn check<F>(model: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    explore(&Config::default(), model)
}

/// Iterative-deepening search returning a *preemption-minimal*
/// counterexample: all schedules with `k` preemptions are explored
/// before any with `k + 1`, so a failure at bound `k` is as simple as
/// the bug gets. Falls back to a full sleep-set exploration if the
/// bound ladder exhausts without covering the space.
pub fn check_minimal<F>(cfg: &Config, model: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let mut total = 0usize;
    const MAX_BOUND: usize = 8;
    for bound in 0..=MAX_BOUND {
        let mut c = cfg.clone();
        c.preemption_bound = Some(bound);
        c.max_schedules = cfg.max_schedules.saturating_sub(total).max(1);
        match explore_arc(&c, Arc::clone(&model)) {
            Outcome::Fail(mut cx) => {
                cx.schedules += total;
                return Outcome::Fail(cx);
            }
            Outcome::Pass(st) => {
                total += st.schedules;
                if !st.bound_hit {
                    // No branch was cut by the bound: the space is
                    // exhausted.
                    return Outcome::Pass(Stats {
                        schedules: total,
                        complete: st.complete,
                        bound_hit: false,
                    });
                }
                if !st.complete {
                    return Outcome::Pass(Stats {
                        schedules: total,
                        complete: false,
                        bound_hit: true,
                    });
                }
            }
        }
    }
    // Ladder exhausted (a model needing > MAX_BOUND preemptions to
    // cover): fall back to the sleep-set exploration.
    let mut c = cfg.clone();
    c.preemption_bound = None;
    c.max_schedules = cfg.max_schedules.saturating_sub(total).max(1);
    match explore_arc(&c, model) {
        Outcome::Fail(mut cx) => {
            cx.schedules += total;
            Outcome::Fail(cx)
        }
        Outcome::Pass(st) => Outcome::Pass(Stats {
            schedules: total + st.schedules,
            complete: st.complete,
            bound_hit: false,
        }),
    }
}
