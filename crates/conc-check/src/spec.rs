//! Sequential specification of one `dls-service` job — the reference
//! object the linearizability checker replays histories against.
//!
//! The spec is the paper's two-counter global queue (scheduling `step`
//! and total `scheduled` iterations) driven by the *real* dls chunk
//! calculators, plus the reclaim pool and active-lease set that give
//! the service its exactly-once guarantee. It deliberately mirrors
//! `dls-service`'s `Job::fetch`/`report`/`reclaim_conn` logic — ranges
//! are the identity of a grant (lease ids are connection-local
//! bookkeeping and not part of the sequential contract).

use crate::linearize::SeqSpec;
use dls::technique::WorkerCtx;
use dls::{ChunkCalculator, Kind, LoopSpec, SchedState, Technique};

/// An operation against one job.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum JobOp {
    /// Serve up to `batch` chunks to `worker` on connection `conn`.
    Fetch {
        /// Requesting worker id.
        worker: u32,
        /// Connection issuing the request.
        conn: u64,
        /// Maximum chunks to grant.
        batch: u32,
    },
    /// Settle the grant covering `[lo, hi)`.
    Report {
        /// Range start (inclusive).
        lo: u64,
        /// Range end (exclusive).
        hi: u64,
    },
    /// Connection `conn` vanished; reclaim its unsettled grants.
    Disconnect {
        /// The dead connection.
        conn: u64,
    },
}

/// The observed response of a [`JobOp`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum JobRes {
    /// Ranges granted by a fetch (empty = nothing left right now).
    Granted(Vec<(u64, u64)>),
    /// Iterations credited by a report, or `None` for a stale lease.
    Reported(Option<u64>),
    /// Number of unsettled grants a disconnect reclaimed.
    Reclaimed(u64),
}

/// Sequential job state: the two counters plus reclaim pool and active
/// grants.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct JobState {
    /// Scheduling step (first global counter).
    pub step: u64,
    /// Iterations handed out (second global counter).
    pub scheduled: u64,
    /// Iterations reported back.
    pub completed: u64,
    /// Reclaimed ranges, served FIFO before fresh counter advances.
    pub pool: Vec<(u64, u64)>,
    /// Active (unsettled) grants with the connection holding each, in
    /// grant order.
    pub active: Vec<((u64, u64), u64)>,
}

/// The job's fixed parameters (everything `apply` needs beyond the
/// state).
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Total loop iterations.
    pub n: u64,
    /// Scheduling technique.
    pub kind: Kind,
    /// Per-worker weight table (empty = unweighted).
    pub weights: Vec<f64>,
}

impl JobSpec {
    /// New spec for `n` iterations under `kind`.
    pub fn new(n: u64, kind: Kind) -> JobSpec {
        JobSpec { n, kind, weights: Vec::new() }
    }

    fn loop_spec(&self) -> LoopSpec {
        // Mirrors `dls-service`: techniques that divide by worker count
        // are parameterised by the weight table size, default 8.
        let p = if self.weights.is_empty() { 8 } else { self.weights.len() as u32 };
        LoopSpec::new(self.n, p.max(1))
    }
}

impl SeqSpec for JobSpec {
    type Op = JobOp;
    type Res = JobRes;
    type State = JobState;

    fn init(&self) -> JobState {
        JobState { step: 0, scheduled: 0, completed: 0, pool: Vec::new(), active: Vec::new() }
    }

    fn apply(&self, state: &mut JobState, op: &JobOp) -> JobRes {
        match *op {
            JobOp::Fetch { worker, conn, batch } => {
                let spec = self.loop_spec();
                let technique = Technique::from_kind(self.kind);
                let weight = self.weights.get(worker as usize).copied().unwrap_or(1.0);
                let ctx = WorkerCtx { worker, weight };
                let n = self.n;
                let mut out = Vec::new();
                for _ in 0..batch {
                    if !state.pool.is_empty() {
                        let (lo, hi) = state.pool.remove(0);
                        state.active.push(((lo, hi), conn));
                        out.push((lo, hi));
                    } else if state.scheduled < n {
                        let st = SchedState { step: state.step, scheduled: state.scheduled };
                        let size =
                            technique.chunk_size(&spec, st, ctx).clamp(1, n - state.scheduled);
                        let lo = state.scheduled;
                        state.step += 1;
                        state.scheduled += size;
                        state.active.push(((lo, lo + size), conn));
                        out.push((lo, lo + size));
                    } else {
                        break;
                    }
                }
                JobRes::Granted(out)
            }
            JobOp::Report { lo, hi } => {
                match state.active.iter().position(|&(r, _)| r == (lo, hi)) {
                    Some(i) => {
                        state.active.remove(i);
                        state.completed += hi - lo;
                        JobRes::Reported(Some(hi - lo))
                    }
                    None => JobRes::Reported(None),
                }
            }
            JobOp::Disconnect { conn } => {
                let mut reclaimed = 0;
                let mut keep = Vec::with_capacity(state.active.len());
                for &(range, owner) in &state.active {
                    if owner == conn {
                        state.pool.push(range);
                        reclaimed += 1;
                    } else {
                        keep.push((range, owner));
                    }
                }
                state.active = keep;
                JobRes::Reclaimed(reclaimed)
            }
        }
    }
}
