//! Unit tests for the Wing–Gong checker against a minimal register
//! spec, independent of the scheduler.

use conc_check::history::Span;
use conc_check::linearize::{linearizable, SeqSpec};

#[derive(Clone, Debug)]
enum RegOp {
    Write(u64),
    Read,
}

struct RegisterSpec;

impl SeqSpec for RegisterSpec {
    type Op = RegOp;
    type Res = u64;
    type State = u64;

    fn init(&self) -> u64 {
        0
    }

    fn apply(&self, state: &mut u64, op: &RegOp) -> u64 {
        match op {
            RegOp::Write(v) => {
                *state = *v;
                *v
            }
            RegOp::Read => *state,
        }
    }
}

fn span(op: RegOp, res: u64, invoke: u64, ret: u64) -> Span<RegOp, u64> {
    Span { op, res: Some(res), invoke, ret }
}

#[test]
fn sequential_history_linearizes() {
    let h = vec![
        span(RegOp::Write(1), 1, 0, 1),
        span(RegOp::Read, 1, 2, 3),
        span(RegOp::Write(2), 2, 4, 5),
        span(RegOp::Read, 2, 6, 7),
    ];
    let order = linearizable(&RegisterSpec, &h).expect("sequential history must linearize");
    assert_eq!(order, vec![0, 1, 2, 3]);
}

#[test]
fn overlapping_ops_may_reorder() {
    // The read overlaps the write and sees the new value: legal, the
    // write linearizes first even though it returned later.
    let h = vec![span(RegOp::Write(7), 7, 0, 5), span(RegOp::Read, 7, 1, 2)];
    linearizable(&RegisterSpec, &h).expect("overlap allows write-before-read");
}

#[test]
fn stale_read_after_return_is_rejected() {
    // The write completed strictly before the read was invoked, yet the
    // read saw the old value: no linearization exists.
    let h = vec![span(RegOp::Write(7), 7, 0, 1), span(RegOp::Read, 0, 2, 3)];
    let err = linearizable(&RegisterSpec, &h).expect_err("stale read must be rejected");
    assert!(err.rendered.contains("Read"));
}

#[test]
fn real_time_order_is_respected_transitively() {
    // w(1) -> r()=2 is fine only if w(2) can slot between them; here
    // w(2) starts after the read returned, so it cannot.
    let h = vec![
        span(RegOp::Write(1), 1, 0, 1),
        span(RegOp::Read, 2, 2, 3),
        span(RegOp::Write(2), 2, 4, 5),
    ];
    linearizable(&RegisterSpec, &h).expect_err("future write cannot explain an early read");
}

#[test]
fn concurrent_reads_can_split_around_a_write() {
    // Two overlapping reads straddling a concurrent write: one sees old,
    // one sees new. Linearizable (reads order around the write point).
    let h = vec![
        span(RegOp::Write(9), 9, 0, 10),
        span(RegOp::Read, 0, 1, 2),
        span(RegOp::Read, 9, 3, 4),
    ];
    linearizable(&RegisterSpec, &h).expect("reads may split around the write");
}
