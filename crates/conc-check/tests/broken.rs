//! Every seeded-broken variant must produce a counterexample, the
//! counterexample must be preemption-minimal and deterministically
//! replayable, and its failure message must name the violated
//! invariant. These tests pin the checker's detection power: a refactor
//! that stops finding any of these bugs is a checker regression.

use conc_check::models::{admission_model, drain_model, reclaim_model, Variant};
use conc_check::{check_minimal, replay, Config, ViolationKind};
use dls::Kind;

fn property_message(kind: &ViolationKind) -> &str {
    match kind {
        ViolationKind::Property(msg) => msg,
        other => panic!("expected a property violation, got {other:?}"),
    }
}

#[test]
fn check_then_act_admission_breaches_the_cap() {
    let cfg = Config::default();
    let outcome = check_minimal(&cfg, admission_model(Variant::CheckThenActAdmission, 2, 1));
    let cx = outcome.expect_fail("check-then-act admission");
    let msg = property_message(&cx.kind);
    assert!(msg.contains("admission cap breached"), "unexpected failure message: {msg}");
    // The bug needs exactly two preemptions: the second accept's load
    // slips into the first accept's load/add window, and control must
    // then return to the first accept while the second is still inside.
    // Iterative deepening guarantees no simpler schedule exists.
    assert_eq!(cx.preemptions, 2, "counterexample is not preemption-minimal:\n{cx}");

    // Pinned replay: the recorded decision vector reproduces the exact
    // violation deterministically.
    let (kind, _trace) =
        replay(&cfg, admission_model(Variant::CheckThenActAdmission, 2, 1), &cx.choices);
    let replayed = kind.expect("replay lost the violation");
    assert!(property_message(&replayed).contains("admission cap breached"));
}

#[test]
fn load_store_peak_loses_an_update() {
    let cfg = Config::default();
    let outcome = check_minimal(&cfg, admission_model(Variant::LoadStorePeak, 3, 2));
    let cx = outcome.expect_fail("load/store peak tracking");
    let msg = property_message(&cx.kind);
    assert!(msg.contains("conns_peak lost an update"), "unexpected failure message: {msg}");
    assert!(cx.preemptions <= 1, "expected a <=1-preemption counterexample:\n{cx}");

    let (kind, _) = replay(&cfg, admission_model(Variant::LoadStorePeak, 3, 2), &cx.choices);
    assert!(property_message(&kind.expect("replay lost the violation"))
        .contains("conns_peak lost an update"));
}

#[test]
fn relaxed_shutdown_flag_goes_stale() {
    let cfg = Config::default();
    let outcome = check_minimal(&cfg, drain_model(Variant::RelaxedShutdown));
    let cx = outcome.expect_fail("relaxed drain flag");
    let msg = property_message(&cx.kind);
    assert!(msg.contains("drain flag reads stale"), "unexpected failure message: {msg}");
    // A memory-ordering bug, not a scheduling bug: the weak behaviour
    // needs no preemption at all, only a stale read.
    assert_eq!(cx.preemptions, 0, "counterexample is not preemption-minimal:\n{cx}");
    // The trace must show the stale read the `Relaxed` ordering admits.
    assert!(
        cx.trace.iter().any(|s| s.text.contains("stale")),
        "trace does not surface the stale load:\n{cx}"
    );

    let (kind, _) = replay(&cfg, drain_model(Variant::RelaxedShutdown), &cx.choices);
    assert!(property_message(&kind.expect("replay lost the violation"))
        .contains("drain flag reads stale"));
}

#[test]
fn reclaim_without_ledger_double_grants() {
    let cfg = Config::default();
    let outcome = check_minimal(&cfg, reclaim_model(Variant::ReclaimWithoutLedger, Kind::SS, 2));
    let cx = outcome.expect_fail("reclaim without ledger");
    let msg = property_message(&cx.kind);
    assert!(
        msg.contains("not linearizable") || msg.contains("double settlement"),
        "unexpected failure message: {msg}"
    );
    assert!(cx.preemptions <= 2, "expected a small counterexample:\n{cx}");

    let (kind, _) =
        replay(&cfg, reclaim_model(Variant::ReclaimWithoutLedger, Kind::SS, 2), &cx.choices);
    kind.expect("replay lost the violation");
}

#[test]
fn deadlocks_are_reported_with_a_trace() {
    // ABBA lock ordering: the checker must call it out as a deadlock,
    // not hang.
    use conc_check::sync::{Arc, Mutex};
    use conc_check::thread;
    let cfg = Config::default();
    let outcome = check_minimal(&cfg, move || {
        let a = Arc::new(Mutex::new(0u32).named("A"));
        let b = Arc::new(Mutex::new(0u32).named("B"));
        let t1 = {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            thread::spawn(move || {
                let ga = a.lock().unwrap();
                let gb = b.lock().unwrap();
                drop((ga, gb));
            })
        };
        let t2 = {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            thread::spawn(move || {
                let gb = b.lock().unwrap();
                let ga = a.lock().unwrap();
                drop((gb, ga));
            })
        };
        let _ = t1.join();
        let _ = t2.join();
    });
    let cx = outcome.expect_fail("ABBA deadlock");
    assert_eq!(cx.kind, ViolationKind::Deadlock, "expected a deadlock:\n{cx}");
    assert!(!cx.trace.is_empty(), "deadlock reported without a trace");
}
