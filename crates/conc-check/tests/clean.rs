//! The server's actual synchronization patterns must pass every
//! schedule: these are the exhaustive "proof" runs for the protocols
//! `dls-service` ships.

use conc_check::models::{
    admission_model, burst_fetch_report_model, drain_model, reclaim_model, Variant,
};
use conc_check::{check, explore, Config, Outcome};
use dls::Kind;

fn assert_exhaustive_pass(name: &str, outcome: &Outcome) {
    match outcome {
        Outcome::Pass(stats) => {
            assert!(stats.complete, "{name}: exploration hit the schedule cap before finishing");
            assert!(!stats.bound_hit, "{name}: a preemption bound truncated the exploration");
        }
        Outcome::Fail(cx) => panic!("{name}: unexpected counterexample:\n{cx}"),
    }
}

#[test]
fn admission_cas_is_safe_under_every_schedule() {
    let outcome = check(admission_model(Variant::Clean, 3, 2));
    assert_exhaustive_pass("admission(clean)", &outcome);
}

#[test]
fn admission_cas_two_slots_four_racers() {
    // Heavier contention point: 4 accepts racing for 2 slots. The
    // unbounded state space is out of reach (bound 3 alone is ~1.4M
    // schedules), so this is a CHESS-style context-bounded
    // verification: every schedule with at most two preemptions is
    // explored. Breaching a cap of `c` takes `c + 1` threads paused
    // inside the window, i.e. `c + 1` preemptions — so bound 2 covers
    // every cap-1 breach pattern and the cheap early windows of
    // higher-cap ones.
    let cfg = Config {
        max_schedules: 400_000,
        preemption_bound: Some(2),
        sleep_sets: false,
        ..Config::default()
    };
    let outcome = explore(&cfg, admission_model(Variant::Clean, 4, 2));
    match &outcome {
        Outcome::Pass(stats) => {
            assert!(
                stats.complete,
                "admission(clean, 4 racers): hit the schedule cap before finishing"
            );
        }
        Outcome::Fail(cx) => panic!("admission(clean, 4 racers): unexpected counterexample:\n{cx}"),
    }
    // Sanity: the bounded search keeps its detection power at 4 racers.
    // The seeded bug against cap 1 needs exactly 2 preemptions, so it
    // must be visible inside the bound (cap 2 would need 3).
    let broken = explore(&cfg, admission_model(Variant::CheckThenActAdmission, 4, 1));
    assert!(!broken.is_pass(), "bounded search missed the seeded bug at 4 racers");
}

#[test]
fn burst_fetch_report_linearizes_under_ss() {
    // Pure self-scheduling: chunk = 1, maximal interleaving of grants.
    let outcome = check(burst_fetch_report_model(Kind::SS, 3, 2, 2));
    assert_exhaustive_pass("burst(SS)", &outcome);
}

#[test]
fn burst_fetch_report_linearizes_under_gss() {
    // Guided self-scheduling: decreasing chunks, exercises the
    // calculator's dependence on the step/scheduled counters.
    let outcome = check(burst_fetch_report_model(Kind::GSS, 8, 2, 2));
    assert_exhaustive_pass("burst(GSS)", &outcome);
}

#[test]
fn reclaim_ledger_keeps_grants_exactly_once() {
    let outcome = check(reclaim_model(Variant::Clean, Kind::SS, 2));
    assert_exhaustive_pass("reclaim(clean)", &outcome);
}

#[test]
fn drain_handshake_publishes_the_flag() {
    let outcome = check(drain_model(Variant::Clean));
    assert_exhaustive_pass("drain(clean)", &outcome);
}

#[test]
fn sleep_sets_agree_with_full_exploration() {
    // The partial-order reduction must not change any verdict: run the
    // same models with and without sleep sets and compare outcomes.
    // Sleep sets may only reduce the schedule count.
    // The unpruned search is exponential, so the comparison runs at the
    // 2-thread size (the 3-thread clean proof above relies on pruning).
    let full = Config { sleep_sets: false, ..Config::default() };
    let pruned = Config { sleep_sets: true, ..Config::default() };

    let clean_full = explore(&full, admission_model(Variant::Clean, 2, 1));
    let clean_pruned = explore(&pruned, admission_model(Variant::Clean, 2, 1));
    assert_exhaustive_pass("admission full", &clean_full);
    assert_exhaustive_pass("admission pruned", &clean_pruned);
    let (Outcome::Pass(f), Outcome::Pass(p)) = (&clean_full, &clean_pruned) else { unreachable!() };
    assert!(
        p.schedules <= f.schedules,
        "sleep sets explored more schedules ({}) than the full search ({})",
        p.schedules,
        f.schedules
    );

    let broken_full = explore(&full, admission_model(Variant::CheckThenActAdmission, 2, 1));
    let broken_pruned = explore(&pruned, admission_model(Variant::CheckThenActAdmission, 2, 1));
    assert!(!broken_full.is_pass(), "full search missed the seeded admission bug");
    assert!(!broken_pruned.is_pass(), "sleep-set search missed the seeded admission bug");
}
