//! Distribution-shaped synthetic workloads for tests, property checks,
//! failure injection and ablations. Costs are *pure functions* of the
//! iteration index (hash-based sampling), so any scheduler backend sees
//! the exact same irregularity profile.

use crate::Workload;

/// Per-index deterministic synthetic workload.
#[derive(Clone, Debug)]
pub struct Synthetic {
    n: u64,
    name: &'static str,
    shape: Shape,
    seed: u64,
}

#[derive(Clone, Copy, Debug)]
enum Shape {
    Constant { cost: u64 },
    Uniform { min: u64, max: u64 },
    Gaussian { mean: f64, sigma: f64 },
    Exponential { mean: f64 },
    Bimodal { low: u64, high: u64, high_percent: u64 },
    Linear { first: u64, last: u64 },
}

/// SplitMix64 mixer (same construction as `dls`' RND technique).
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform f64 in `[0, 1)` from a hash.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl Synthetic {
    /// Every iteration costs `cost` ns.
    pub fn constant(n: u64, cost: u64) -> Self {
        Self { n, name: "constant", shape: Shape::Constant { cost }, seed: 0 }
    }

    /// Uniform in `[min, max]`.
    pub fn uniform(n: u64, min: u64, max: u64, seed: u64) -> Self {
        assert!(min <= max);
        Self { n, name: "uniform", shape: Shape::Uniform { min, max }, seed }
    }

    /// Gaussian with `mean`/`sigma`, truncated at 1 ns.
    pub fn gaussian(n: u64, mean: f64, sigma: f64, seed: u64) -> Self {
        Self { n, name: "gaussian", shape: Shape::Gaussian { mean, sigma }, seed }
    }

    /// Exponential with the given mean — heavy tail, strong imbalance.
    pub fn exponential(n: u64, mean: f64, seed: u64) -> Self {
        Self { n, name: "exponential", shape: Shape::Exponential { mean }, seed }
    }

    /// `high_percent`% of iterations cost `high`, the rest `low` —
    /// models a few expensive outliers.
    pub fn bimodal(n: u64, low: u64, high: u64, high_percent: u64, seed: u64) -> Self {
        assert!(high_percent <= 100);
        Self { n, name: "bimodal", shape: Shape::Bimodal { low, high, high_percent }, seed }
    }

    /// Linearly increasing from `first` to `last` — the front-loaded /
    /// back-loaded shapes classic DLS papers sweep.
    pub fn linear_increasing(n: u64, first: u64, last: u64) -> Self {
        Self { n, name: "linear-inc", shape: Shape::Linear { first, last }, seed: 0 }
    }

    /// Linearly decreasing from `first` to `last`.
    pub fn linear_decreasing(n: u64, first: u64, last: u64) -> Self {
        Self { n, name: "linear-dec", shape: Shape::Linear { first, last }, seed: 0 }
    }
}

impl Workload for Synthetic {
    fn n_iters(&self) -> u64 {
        self.n
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn execute(&self, i: u64) -> u64 {
        // Synthetic workloads have no real kernel; the checksum is the
        // cost itself, which still verifies exactly-once execution.
        self.cost(i)
    }

    fn cost(&self, i: u64) -> u64 {
        let h = mix(self.seed ^ i.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        match self.shape {
            Shape::Constant { cost } => cost,
            Shape::Uniform { min, max } => min + h % (max - min + 1),
            Shape::Gaussian { mean, sigma } => {
                let u1 = unit(h).max(f64::MIN_POSITIVE);
                let u2 = unit(mix(h));
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (mean + sigma * z).max(1.0) as u64
            }
            Shape::Exponential { mean } => {
                let u = unit(h).max(f64::MIN_POSITIVE);
                ((-u.ln()) * mean).max(1.0) as u64
            }
            Shape::Bimodal { low, high, high_percent } => {
                if h % 100 < high_percent {
                    high
                } else {
                    low
                }
            }
            Shape::Linear { first, last } => {
                if self.n <= 1 {
                    return first;
                }
                let f = first as f64;
                let l = last as f64;
                (f + (l - f) * i as f64 / (self.n - 1) as f64).round().max(1.0) as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostTable;

    #[test]
    fn constant_is_constant() {
        let w = Synthetic::constant(100, 42);
        assert!((0..100).all(|i| w.cost(i) == 42));
    }

    #[test]
    fn uniform_within_bounds() {
        let w = Synthetic::uniform(1000, 10, 20, 1);
        assert!((0..1000).all(|i| (10..=20).contains(&w.cost(i))));
    }

    #[test]
    fn uniform_mean_near_midpoint() {
        let s = CostTable::build(&Synthetic::uniform(10_000, 0, 100, 7)).stats();
        assert!((s.mean - 50.0).abs() < 3.0, "mean {}", s.mean);
    }

    #[test]
    fn gaussian_statistics() {
        let s = CostTable::build(&Synthetic::gaussian(20_000, 1000.0, 100.0, 3)).stats();
        assert!((s.mean - 1000.0).abs() < 10.0, "mean {}", s.mean);
        assert!((s.sigma - 100.0).abs() < 10.0, "sigma {}", s.sigma);
    }

    #[test]
    fn exponential_heavy_tail() {
        let s = CostTable::build(&Synthetic::exponential(20_000, 500.0, 5)).stats();
        assert!((s.cov() - 1.0).abs() < 0.1, "exponential cov ~ 1, got {}", s.cov());
    }

    #[test]
    fn bimodal_fraction() {
        let w = Synthetic::bimodal(10_000, 1, 1000, 10, 11);
        let highs = (0..10_000).filter(|&i| w.cost(i) == 1000).count();
        assert!((800..1200).contains(&highs), "high count {highs}");
    }

    #[test]
    fn linear_endpoints() {
        let inc = Synthetic::linear_increasing(100, 10, 1000);
        assert_eq!(inc.cost(0), 10);
        assert_eq!(inc.cost(99), 1000);
        let dec = Synthetic::linear_decreasing(100, 1000, 10);
        assert_eq!(dec.cost(0), 1000);
        assert_eq!(dec.cost(99), 10);
    }

    #[test]
    fn deterministic_per_index() {
        let w = Synthetic::exponential(100, 50.0, 9);
        let a: Vec<u64> = (0..100).map(|i| w.cost(i)).collect();
        let b: Vec<u64> = (0..100).map(|i| w.cost(i)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn single_iteration_linear() {
        let w = Synthetic::linear_increasing(1, 5, 50);
        assert_eq!(w.cost(0), 5);
    }
}
