//! Summary statistics of per-iteration costs — `mu` and `sigma` feed
//! FAC/FSC, and the imbalance metrics quantify the paper's observation
//! that Mandelbrot is more imbalanced than PSIA.

/// Summary statistics of a cost vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadStats {
    /// Number of iterations.
    pub n: u64,
    /// Sum of costs.
    pub total: u64,
    /// Mean cost.
    pub mean: f64,
    /// Population standard deviation.
    pub sigma: f64,
    /// Maximum cost.
    pub max: u64,
    /// Minimum cost.
    pub min: u64,
}

impl WorkloadStats {
    /// Compute statistics from raw costs.
    pub fn from_costs(costs: &[u64]) -> Self {
        let n = costs.len() as u64;
        if n == 0 {
            return Self { n: 0, total: 0, mean: 0.0, sigma: 0.0, max: 0, min: 0 };
        }
        let total: u64 = costs.iter().sum();
        let mean = total as f64 / n as f64;
        let var = costs.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        Self {
            n,
            total,
            mean,
            sigma: var.sqrt(),
            max: costs.iter().copied().max().unwrap_or(0),
            min: costs.iter().copied().min().unwrap_or(0),
        }
    }

    /// Coefficient of variation `sigma / mean` — the scale-free
    /// irregularity measure.
    pub fn cov(&self) -> f64 {
        if self.mean > 0.0 {
            self.sigma / self.mean
        } else {
            0.0
        }
    }

    /// `max / mean` — how much a single worst iteration can stall one
    /// worker relative to the average.
    pub fn imbalance_factor(&self) -> f64 {
        if self.mean > 0.0 {
            self.max as f64 / self.mean
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_costs_have_zero_sigma() {
        let s = WorkloadStats::from_costs(&[5, 5, 5, 5]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.sigma, 0.0);
        assert_eq!(s.cov(), 0.0);
        assert_eq!(s.imbalance_factor(), 1.0);
    }

    #[test]
    fn known_distribution() {
        let s = WorkloadStats::from_costs(&[2, 4, 4, 4, 5, 5, 7, 9]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.sigma, 2.0); // classic example
        assert_eq!(s.total, 40);
        assert_eq!((s.min, s.max), (2, 9));
    }

    #[test]
    fn empty_is_all_zero() {
        let s = WorkloadStats::from_costs(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.cov(), 0.0);
    }
}
