//! A wall-clock-burning wrapper: makes any workload's *virtual* cost
//! real by busy-waiting it out.
//!
//! The thread-backed executors need iterations that actually take time
//! for scheduling (and fault injection) to be observable — with
//! free-running kernels one fast thread drains the whole loop before
//! its peers are even scheduled. `Spin` keeps the wrapped workload's
//! checksum and cost profile, so serial references and simulator runs
//! agree with the burned run.

use crate::Workload;

/// Wraps a workload so `execute(i)` busy-waits `cost(i)` nanoseconds of
/// wall-clock time before returning the inner checksum.
pub struct Spin<W>(pub W);

impl<W: Workload> Workload for Spin<W> {
    fn n_iters(&self) -> u64 {
        self.0.n_iters()
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn execute(&self, i: u64) -> u64 {
        let ns = u128::from(self.0.cost(i));
        let start = std::time::Instant::now();
        while start.elapsed().as_nanos() < ns {
            std::hint::spin_loop();
        }
        self.0.execute(i)
    }

    fn cost(&self, i: u64) -> u64 {
        self.0.cost(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::Synthetic;

    #[test]
    fn checksum_and_costs_are_transparent() {
        let inner = Synthetic::uniform(50, 10, 100, 3);
        let spun = Spin(Synthetic::uniform(50, 10, 100, 3));
        for i in 0..50 {
            assert_eq!(spun.cost(i), inner.cost(i));
            assert_eq!(spun.execute(i), inner.execute(i));
        }
        assert_eq!(spun.n_iters(), 50);
        assert_eq!(spun.name(), "uniform");
    }

    #[test]
    fn execute_burns_at_least_the_cost() {
        let w = Spin(Synthetic::constant(1, 200_000)); // 200 us
        let t0 = std::time::Instant::now();
        w.execute(0);
        assert!(t0.elapsed().as_nanos() >= 200_000);
    }
}
