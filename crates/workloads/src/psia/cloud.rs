//! Synthetic oriented point clouds.
//!
//! Substitute for the paper's proprietary 3-D scan datasets. The
//! scheduler only sees per-iteration *cost*, which for spin-images is
//! driven by local point density — so clouds with controlled density
//! variation reproduce the relevant behaviour.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An oriented point cloud: positions and unit normals.
#[derive(Clone, Debug)]
pub struct PointCloud {
    /// Point positions.
    pub points: Vec<[f64; 3]>,
    /// Unit surface normals, one per point.
    pub normals: Vec<[f64; 3]>,
}

fn normalize(v: [f64; 3]) -> [f64; 3] {
    let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    if n > 0.0 {
        [v[0] / n, v[1] / n, v[2] / n]
    } else {
        [1.0, 0.0, 0.0]
    }
}

impl PointCloud {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the cloud has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points uniformly distributed on a unit sphere, radial normals —
    /// near-uniform density (low imbalance).
    pub fn sphere(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points = Vec::with_capacity(n);
        let mut normals = Vec::with_capacity(n);
        for _ in 0..n {
            // Marsaglia: uniform direction via normalized gaussians.
            let dir = normalize([gaussian(&mut rng), gaussian(&mut rng), gaussian(&mut rng)]);
            points.push(dir);
            normals.push(dir);
        }
        Self { points, normals }
    }

    /// Points on a torus `(R, r)` centred at the origin, analytic
    /// normals — ring-shaped density.
    pub fn torus(n: usize, major: f64, minor: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points = Vec::with_capacity(n);
        let mut normals = Vec::with_capacity(n);
        for _ in 0..n {
            let u = rng.gen::<f64>() * std::f64::consts::TAU;
            let v = rng.gen::<f64>() * std::f64::consts::TAU;
            let ring = [u.cos() * major, u.sin() * major, 0.0];
            let p = [
                (major + minor * v.cos()) * u.cos(),
                (major + minor * v.cos()) * u.sin(),
                minor * v.sin(),
            ];
            points.push(p);
            normals.push(normalize([p[0] - ring[0], p[1] - ring[1], p[2] - ring[2]]));
        }
        Self { points, normals }
    }

    /// Gaussian clusters centred on a unit sphere — *uneven* density,
    /// the default PSIA substrate (moderate imbalance: spin-images of
    /// points inside dense clusters bin many more neighbours).
    pub fn clustered(n: usize, clusters: usize, seed: u64) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        let mut rng = StdRng::seed_from_u64(seed);
        let centres: Vec<[f64; 3]> = (0..clusters)
            .map(|_| normalize([gaussian(&mut rng), gaussian(&mut rng), gaussian(&mut rng)]))
            .collect();
        // Uneven cluster populations: cluster k gets weight (k+1).
        let total_weight: usize = (1..=clusters).sum();
        let mut points = Vec::with_capacity(n);
        let mut normals = Vec::with_capacity(n);
        for (k, centre) in centres.iter().enumerate() {
            let share = n * (k + 1) / total_weight;
            let spread = 0.18;
            for _ in 0..share {
                let p = [
                    centre[0] + gaussian(&mut rng) * spread,
                    centre[1] + gaussian(&mut rng) * spread,
                    centre[2] + gaussian(&mut rng) * spread,
                ];
                points.push(p);
                normals.push(normalize(p));
            }
        }
        // Fill rounding remainder with points in the last cluster.
        while points.len() < n {
            let centre = centres[clusters - 1];
            let p = [
                centre[0] + gaussian(&mut rng) * 0.18,
                centre[1] + gaussian(&mut rng) * 0.18,
                centre[2] + gaussian(&mut rng) * 0.18,
            ];
            points.push(p);
            normals.push(normalize(p));
        }
        Self { points, normals }
    }
}

/// Standard gaussian via Box-Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_points_on_unit_sphere() {
        let c = PointCloud::sphere(100, 1);
        assert_eq!(c.len(), 100);
        for p in &c.points {
            let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
            assert!((r - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn normals_are_unit() {
        for c in [
            PointCloud::sphere(50, 2),
            PointCloud::torus(50, 2.0, 0.5, 2),
            PointCloud::clustered(50, 4, 2),
        ] {
            for n in &c.normals {
                let len = (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt();
                assert!((len - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = PointCloud::clustered(64, 4, 42);
        let b = PointCloud::clustered(64, 4, 42);
        assert_eq!(a.points, b.points);
        let c = PointCloud::clustered(64, 4, 43);
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn clustered_requests_exact_count() {
        for n in [10, 63, 100, 4096] {
            assert_eq!(PointCloud::clustered(n, 7, 0).len(), n);
        }
    }

    #[test]
    fn torus_points_near_torus_surface() {
        let c = PointCloud::torus(100, 2.0, 0.5, 9);
        for p in &c.points {
            let ring = (p[0] * p[0] + p[1] * p[1]).sqrt();
            let d = ((ring - 2.0).powi(2) + p[2] * p[2]).sqrt();
            assert!((d - 0.5).abs() < 1e-9);
        }
    }
}
