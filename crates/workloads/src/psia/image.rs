//! The spin-image kernel (Johnson, 1997): bin the cloud into a 2-D
//! histogram in cylindrical coordinates around one oriented point.

use super::cloud::PointCloud;

/// Spin-image generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SpinImageParams {
    /// Image width (and height) in bins, `W`.
    pub image_width: usize,
    /// Side length of one bin in model units.
    pub bin_size: f64,
    /// Support-angle filter: candidates whose normal deviates from the
    /// oriented point's normal by more than this cosine are skipped.
    pub support_angle_cos: f64,
}

impl Default for SpinImageParams {
    fn default() -> Self {
        Self { image_width: 16, bin_size: 0.05, support_angle_cos: -1.0 }
    }
}

/// A generated spin image plus its kernel statistics.
#[derive(Clone, Debug)]
pub struct SpinImage {
    /// Row-major `W x W` histogram (bilinear-weighted counts).
    pub bins: Vec<f32>,
    /// Image width `W`.
    pub width: usize,
    /// Number of cloud points that fell inside the support and were
    /// binned — the quantity that drives per-iteration cost.
    pub contributing: u64,
}

impl SpinImage {
    /// Quantised total mass of the histogram, for checksums.
    pub fn mass_checksum(&self) -> u64 {
        (self.bins.iter().map(|&b| f64::from(b)).sum::<f64>() * 16.0).round() as u64
    }
}

/// Generate the spin image of oriented point `idx`.
///
/// For every other point `x`, with `p` the oriented point and `n` its
/// normal: `beta = n . (x - p)` (elevation along the normal) and
/// `alpha = sqrt(|x - p|^2 - beta^2)` (radial distance). Points with
/// `0 <= alpha < W*bin` and `|beta| < (W/2)*bin` are accumulated
/// bilinearly into the `W x W` histogram.
pub fn spin_image(cloud: &PointCloud, idx: usize, params: &SpinImageParams) -> SpinImage {
    let w = params.image_width;
    let mut bins = vec![0.0f32; w * w];
    let p = cloud.points[idx];
    let n = cloud.normals[idx];
    let alpha_max = w as f64 * params.bin_size;
    let beta_max = (w as f64 / 2.0) * params.bin_size;
    let mut contributing = 0u64;

    for j in 0..cloud.len() {
        if j == idx {
            continue;
        }
        // Support-angle filter.
        let nj = cloud.normals[j];
        if n[0] * nj[0] + n[1] * nj[1] + n[2] * nj[2] < params.support_angle_cos {
            continue;
        }
        let d = [cloud.points[j][0] - p[0], cloud.points[j][1] - p[1], cloud.points[j][2] - p[2]];
        let beta = n[0] * d[0] + n[1] * d[1] + n[2] * d[2];
        let dist2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
        let alpha2 = dist2 - beta * beta;
        if alpha2 < 0.0 {
            continue; // numerical noise
        }
        let alpha = alpha2.sqrt();
        if alpha >= alpha_max || beta.abs() >= beta_max {
            continue;
        }
        // Continuous bin coordinates; beta = 0 maps to the vertical centre.
        let a = alpha / params.bin_size;
        let b = (beta_max - beta) / params.bin_size;
        let ai = (a.floor() as usize).min(w - 1);
        let bi = (b.floor() as usize).min(w - 1);
        let fa = (a - ai as f64).clamp(0.0, 1.0);
        let fb = (b - bi as f64).clamp(0.0, 1.0);
        // Bilinear accumulation into up to four bins.
        let mut add = |row: usize, col: usize, weight: f64| {
            if row < w && col < w {
                bins[row * w + col] += weight as f32;
            }
        };
        add(bi, ai, (1.0 - fa) * (1.0 - fb));
        add(bi, ai + 1, fa * (1.0 - fb));
        add(bi + 1, ai, (1.0 - fa) * fb);
        add(bi + 1, ai + 1, fa * fb);
        contributing += 1;
    }

    SpinImage { bins, width: w, contributing }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_point_cloud(offset: [f64; 3]) -> PointCloud {
        PointCloud {
            points: vec![[0.0, 0.0, 0.0], offset],
            normals: vec![[0.0, 0.0, 1.0], [0.0, 0.0, 1.0]],
        }
    }

    #[test]
    fn neighbour_within_support_is_binned() {
        let cloud = two_point_cloud([0.1, 0.0, 0.1]);
        let img = spin_image(&cloud, 0, &SpinImageParams::default());
        assert_eq!(img.contributing, 1);
        let mass: f32 = img.bins.iter().sum();
        assert!((mass - 1.0).abs() < 1e-5, "bilinear weights must sum to 1, got {mass}");
    }

    #[test]
    fn far_point_is_outside_support() {
        let cloud = two_point_cloud([10.0, 0.0, 0.0]);
        let img = spin_image(&cloud, 0, &SpinImageParams::default());
        assert_eq!(img.contributing, 0);
        assert!(img.bins.iter().all(|&b| b == 0.0));
    }

    #[test]
    fn beta_outside_vertical_support_skipped() {
        // alpha = 0, beta = 10 bins above centre but W/2 = 8.
        let cloud = two_point_cloud([0.0, 0.0, 0.5]);
        let img = spin_image(&cloud, 0, &SpinImageParams::default());
        assert_eq!(img.contributing, 0);
    }

    #[test]
    fn support_angle_filter() {
        let cloud = PointCloud {
            points: vec![[0.0, 0.0, 0.0], [0.1, 0.0, 0.0]],
            normals: vec![[0.0, 0.0, 1.0], [0.0, 0.0, -1.0]],
        };
        // Require normals within 90 degrees.
        let mut params = SpinImageParams { support_angle_cos: 0.0, ..Default::default() };
        let img = spin_image(&cloud, 0, &params);
        assert_eq!(img.contributing, 0);
        params.support_angle_cos = -1.0;
        let img = spin_image(&cloud, 0, &params);
        assert_eq!(img.contributing, 1);
    }

    #[test]
    fn self_point_excluded() {
        let cloud = two_point_cloud([100.0, 100.0, 100.0]);
        let img = spin_image(&cloud, 0, &SpinImageParams::default());
        assert_eq!(img.contributing, 0);
    }

    #[test]
    fn beta_sign_maps_to_rows() {
        // Above the tangent plane (beta > 0) lands in the upper half.
        let above = two_point_cloud([0.05, 0.0, 0.2]);
        let img = spin_image(&above, 0, &SpinImageParams::default());
        let w = img.width;
        let top_half: f32 = img.bins[..w * w / 2].iter().sum();
        let bottom_half: f32 = img.bins[w * w / 2..].iter().sum();
        assert!(top_half > bottom_half);
    }
}
