//! PSIA — the parallel spin-image algorithm (Eleliemy et al., 2016).
//!
//! The spin-image algorithm (Johnson, 1997) converts a 3-D object into a
//! set of 2-D images: for each *oriented point* (point + surface normal)
//! it bins every other point of the cloud into a 2-D histogram in
//! cylindrical coordinates `(alpha, beta)` around the point's normal.
//! One loop iteration of PSIA generates the spin-image of one oriented
//! point; the cost varies with the local point density (how many cloud
//! points fall into the image support), giving the *moderate* load
//! imbalance the paper contrasts with Mandelbrot's extreme one.
//!
//! The paper's 3-D scan datasets are proprietary; [`cloud`] generates
//! synthetic clouds with controlled density variation instead, which
//! preserves the cost structure the scheduler sees.

pub mod cloud;
pub mod image;

use crate::Workload;
use cloud::PointCloud;
use image::{spin_image, SpinImageParams};

/// The PSIA workload: iteration `i` computes the spin-image of oriented
/// point `i` of the cloud.
pub struct Psia {
    cloud: PointCloud,
    params: SpinImageParams,
    /// Virtual cost per candidate point scanned (ns).
    pub ns_scan: u64,
    /// Virtual cost per contributing (binned) point (ns).
    pub ns_accum: u64,
    /// Fixed virtual cost per spin-image (allocation, setup; ns).
    pub ns_base: u64,
}

impl Psia {
    /// PSIA over an explicit cloud with explicit parameters.
    ///
    /// The default virtual-cost coefficients weight the accumulation
    /// path (bilinear binning of contributing points) more heavily than
    /// the scan path, as in the real algorithm where binning dominates;
    /// this is also what gives PSIA its moderate per-iteration cost
    /// variation (the contributing count varies with local density).
    pub fn new(cloud: PointCloud, params: SpinImageParams) -> Self {
        Self { cloud, params, ns_scan: 4, ns_accum: 40, ns_base: 2_000 }
    }

    /// A single-object instance: a clustered cloud of 4096 points
    /// (density variation -> moderate imbalance). For the figure-sweep
    /// scale, see [`PsiaStream::paper`].
    pub fn single_object() -> Self {
        Self::new(PointCloud::clustered(4096, 24, 0x951A), SpinImageParams::default())
    }

    /// The paper-scale instance for the figure sweeps; see
    /// [`PsiaStream::paper`].
    pub fn paper() -> PsiaStream {
        PsiaStream::paper()
    }

    /// A small instance for unit tests.
    pub fn tiny() -> Self {
        Self::new(PointCloud::clustered(192, 6, 0x951A), SpinImageParams::default())
    }

    /// The underlying cloud.
    pub fn cloud(&self) -> &PointCloud {
        &self.cloud
    }

    /// Spin-image generation parameters.
    pub fn params(&self) -> &SpinImageParams {
        &self.params
    }

    /// Generate the full spin-image of oriented point `i`.
    pub fn image(&self, i: u64) -> image::SpinImage {
        spin_image(&self.cloud, i as usize, &self.params)
    }
}

impl Workload for Psia {
    fn n_iters(&self) -> u64 {
        self.cloud.len() as u64
    }

    fn name(&self) -> &'static str {
        "PSIA"
    }

    fn execute(&self, i: u64) -> u64 {
        let img = self.image(i);
        // Checksum: contributing count plus quantised mass, so tests
        // detect both missed points and wrong binning.
        img.contributing + img.mass_checksum()
    }

    fn cost(&self, i: u64) -> u64 {
        let img = self.image(i);
        self.ns_base + self.ns_scan * self.cloud.len() as u64 + self.ns_accum * img.contributing
    }
}

/// PSIA over a *stream of frames*: the object-recognition pipeline the
/// spin-image papers motivate matches a scene against a library frame
/// after frame, so the parallel loop generates spin-images for every
/// oriented point of every frame. One loop iteration = one spin image.
///
/// The per-point kernel costs are measured once from the real kernel on
/// the base cloud; successive frames see the same scene under small
/// seeded per-frame cost jitter (sensor noise, +-10%), which keeps the
/// moderate, fine-grained imbalance the paper describes without
/// large-scale structure.
pub struct PsiaStream {
    base: Psia,
    /// Number of frames in the stream.
    pub frames: u64,
    /// Per-frame multiplicative cost jitter amplitude (0.1 = +-10%).
    pub jitter: f64,
    point_costs: Vec<u64>,
}

impl PsiaStream {
    /// Stream over `frames` frames of `base`'s scene.
    pub fn new(base: Psia, frames: u64, jitter: f64) -> Self {
        let point_costs = (0..base.n_iters()).map(|i| base.cost(i)).collect();
        Self { base, frames, jitter, point_costs }
    }

    /// The paper-scale instance: a 4096-point clustered scene over 1536
    /// frames — 6,291,456 loop iterations whose mean cost (~80 us) is a
    /// few times an `MPI_Win_lock` acquisition, matching the regime in
    /// which the paper observes the `X+SS` overhead to be *more*
    /// visible for PSIA than for Mandelbrot.
    pub fn paper() -> Self {
        Self::new(Psia::single_object(), 1536, 0.1)
    }

    /// The single-frame scene.
    pub fn base(&self) -> &Psia {
        &self.base
    }

    fn jitter_factor(&self, i: u64) -> f64 {
        // splitmix64-style hash -> [1-jitter, 1+jitter]
        let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + self.jitter * (2.0 * unit - 1.0)
    }
}

impl Workload for PsiaStream {
    fn n_iters(&self) -> u64 {
        self.base.n_iters() * self.frames
    }

    fn name(&self) -> &'static str {
        "PSIA"
    }

    fn execute(&self, i: u64) -> u64 {
        self.base.execute(i % self.base.n_iters())
    }

    fn cost(&self, i: u64) -> u64 {
        let point = (i % self.base.n_iters()) as usize;
        let raw = self.point_costs[point] as f64;
        (raw * self.jitter_factor(i)).round().max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostTable;

    #[test]
    fn moderate_imbalance_less_than_mandelbrot() {
        let psia = Psia::tiny();
        let mandel = crate::Mandelbrot::tiny();
        let ps = CostTable::build(&psia).stats();
        let ms = CostTable::build(&mandel).stats();
        assert!(ps.cov() > 0.01, "PSIA should be irregular, cov = {}", ps.cov());
        assert!(
            ps.cov() < ms.cov(),
            "PSIA (cov {}) must be less imbalanced than Mandelbrot (cov {})",
            ps.cov(),
            ms.cov()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Psia::tiny();
        let b = Psia::tiny();
        for i in [0u64, 7, 100] {
            assert_eq!(a.execute(i), b.execute(i));
            assert_eq!(a.cost(i), b.cost(i));
        }
    }

    #[test]
    fn cost_scales_with_contributing_points() {
        let p = Psia::tiny();
        let costs: Vec<u64> = (0..p.n_iters()).map(|i| p.cost(i)).collect();
        let min = *costs.iter().min().unwrap();
        let max = *costs.iter().max().unwrap();
        assert!(max > min, "density variation must produce cost variation");
        // Every iteration at least scans the whole cloud.
        assert!(min >= p.ns_base + p.ns_scan * p.n_iters());
    }

    #[test]
    fn images_have_mass() {
        let p = Psia::tiny();
        let img = p.image(0);
        assert!(img.contributing > 0, "point 0 should see neighbours");
        assert!(img.bins.iter().copied().sum::<f32>() > 0.0);
    }

    #[test]
    fn stream_multiplies_iterations() {
        let s = PsiaStream::new(Psia::tiny(), 7, 0.0);
        assert_eq!(s.n_iters(), 7 * s.base().n_iters());
    }

    #[test]
    fn stream_without_jitter_repeats_frame_costs() {
        let s = PsiaStream::new(Psia::tiny(), 3, 0.0);
        let n = s.base().n_iters();
        for i in 0..n {
            assert_eq!(s.cost(i), s.cost(i + n));
            assert_eq!(s.cost(i), s.base().cost(i));
        }
    }

    #[test]
    fn stream_jitter_bounded() {
        let s = PsiaStream::new(Psia::tiny(), 4, 0.1);
        let n = s.base().n_iters();
        for i in 0..s.n_iters() {
            let raw = s.base().cost(i % n) as f64;
            let c = s.cost(i) as f64;
            assert!(c >= (raw * 0.9).floor() && c <= (raw * 1.1).ceil(), "i={i}");
        }
    }

    #[test]
    fn stream_execute_matches_base_frame() {
        let s = PsiaStream::new(Psia::tiny(), 2, 0.1);
        let n = s.base().n_iters();
        assert_eq!(s.execute(3), s.execute(3 + n));
    }
}
