//! Adjoint convolution — a classic irregular-loop benchmark from the
//! DLS literature (used by Banicescu et al. for factoring/AWF studies):
//! `a[i] = sum_{j=i}^{N-1} b[j] * c[j-i]`, so iteration `i` performs
//! `N - i` multiply-accumulates — a perfectly linear, monotonically
//! *decreasing* cost profile, the adversarial case for STATIC block
//! scheduling (the first block costs almost twice the mean).

use crate::Workload;

/// Adjoint convolution over synthetic operand vectors.
pub struct AdjointConvolution {
    b: Vec<f64>,
    c: Vec<f64>,
    /// Virtual cost per multiply-accumulate (ns).
    pub ns_per_mac: u64,
    /// Fixed virtual cost per iteration (ns).
    pub ns_base: u64,
}

impl AdjointConvolution {
    /// Problem of size `n` with deterministic, seed-derived operands.
    pub fn new(n: usize, seed: u64) -> Self {
        let mix = |x: u64| {
            let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let unit = |h: u64| (h >> 11) as f64 / (1u64 << 53) as f64;
        let b = (0..n).map(|i| unit(mix(seed ^ i as u64)) * 2.0 - 1.0).collect();
        let c = (0..n).map(|i| unit(mix(!seed ^ i as u64)) * 2.0 - 1.0).collect();
        Self { b, c, ns_per_mac: 4, ns_base: 100 }
    }

    /// Compute `a[i]` with the real kernel.
    pub fn value(&self, i: usize) -> f64 {
        let n = self.b.len();
        (i..n).map(|j| self.b[j] * self.c[j - i]).sum()
    }
}

impl Workload for AdjointConvolution {
    fn n_iters(&self) -> u64 {
        self.b.len() as u64
    }

    fn name(&self) -> &'static str {
        "AdjointConvolution"
    }

    fn execute(&self, i: u64) -> u64 {
        // Quantised so parallel and serial runs compare bit-exactly.
        (self.value(i as usize) * 1024.0).round() as i64 as u64
    }

    fn cost(&self, i: u64) -> u64 {
        self.ns_base + (self.n_iters() - i) * self.ns_per_mac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostTable;

    #[test]
    fn cost_is_linearly_decreasing() {
        let w = AdjointConvolution::new(100, 7);
        for i in 1..100 {
            assert_eq!(w.cost(i - 1) - w.cost(i), w.ns_per_mac);
        }
        assert_eq!(w.cost(99), 100 + 4);
        assert_eq!(w.cost(0), 100 + 100 * 4);
    }

    #[test]
    fn kernel_matches_reference() {
        let w = AdjointConvolution::new(16, 3);
        // Reference: direct double loop.
        for i in 0..16usize {
            let mut acc = 0.0;
            for j in i..16 {
                acc += w.b[j] * w.c[j - i];
            }
            assert_eq!(w.value(i), acc);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = AdjointConvolution::new(64, 9);
        let b = AdjointConvolution::new(64, 9);
        assert!((0..64).all(|i| a.execute(i) == b.execute(i)));
        let c = AdjointConvolution::new(64, 10);
        assert!((0..64).any(|i| a.execute(i) != c.execute(i)));
    }

    #[test]
    fn front_loaded_imbalance() {
        let w = AdjointConvolution::new(1_000, 1);
        let s = CostTable::build(&w).stats();
        // Linear ramp: max ~ 2x mean.
        assert!((s.imbalance_factor() - 2.0).abs() < 0.1, "{}", s.imbalance_factor());
    }
}
