//! A deterministic workload whose per-iteration cost *distribution*
//! shifts mid-run — the adversary the `autotune` tuner exists for.
//!
//! A fixed technique picks its chunk-size curve for one cost regime: a
//! regime change mid-loop (dense head of expensive, irregular
//! iterations followed by a long uniform cheap tail, or the reverse)
//! leaves it either over-synchronising (chunks far too small for the
//! cheap phase) or load-imbalanced (chunks far too big for the
//! expensive phase). [`PhasedSpin`] makes that shift exact and
//! reproducible: the loop is a sequence of [`Phase`]s, each an interval
//! of iterations with its own base cost and deterministic jitter; no
//! randomness, no wall-clock — `cost(i)` is a pure function of `i`.
//!
//! Wrap it in [`crate::Spin`] to burn the virtual cost for real on the
//! thread-backed runtime, or feed the cost profile straight to the
//! discrete-event simulator / the `autotune_bench` mini-DES.

use crate::Workload;

/// One cost regime: iterations `[.., until)` cost `base_ns` plus a
/// deterministic jitter in `[0, spread_ns)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Phase {
    /// One past the last iteration of this phase (phases are listed in
    /// increasing `until`; the last `until` is the loop size `n`).
    pub until: u64,
    /// Cost floor of every iteration in the phase, nanoseconds.
    pub base_ns: u64,
    /// Jitter span: iteration `i` adds `hash(i) % spread_ns` (0 for a
    /// perfectly uniform phase).
    pub spread_ns: u64,
}

/// Multi-phase deterministic workload (see module docs).
pub struct PhasedSpin {
    phases: Vec<Phase>,
}

/// Fibonacci-hash mix — cheap, deterministic, avalanche enough to make
/// per-iteration jitter look irregular to a scheduler.
fn mix(i: u64) -> u64 {
    i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_right(23).wrapping_mul(0x2545_f491_4f6c_dd1d)
}

impl PhasedSpin {
    /// Build from explicit phases. Panics if `phases` is empty or the
    /// `until` boundaries are not strictly increasing.
    pub fn new(phases: Vec<Phase>) -> PhasedSpin {
        assert!(!phases.is_empty(), "PhasedSpin needs at least one phase");
        assert!(
            phases.windows(2).all(|w| w[0].until < w[1].until),
            "phase boundaries must strictly increase"
        );
        PhasedSpin { phases }
    }

    /// The canonical regime-shift loop: the first quarter is expensive
    /// and irregular (base 40 µs, ±40 µs jitter — stragglers), the
    /// remaining three quarters are uniform and ~80× cheaper (1 µs
    /// flat) so per-chunk scheduling overhead dominates unless the
    /// technique coarsens.
    pub fn shifting(n: u64) -> PhasedSpin {
        let head = (n / 4).max(1);
        PhasedSpin::new(vec![
            Phase { until: head.min(n), base_ns: 40_000, spread_ns: 40_000 },
            Phase { until: n.max(1), base_ns: 1_000, spread_ns: 0 },
        ])
    }

    /// A single-regime control loop: mildly irregular throughout, no
    /// shift — a fixed technique matched to it should be near-optimal,
    /// and the tuner must not lose more than a few percent to it.
    pub fn steady(n: u64) -> PhasedSpin {
        PhasedSpin::new(vec![Phase { until: n.max(1), base_ns: 8_000, spread_ns: 4_000 }])
    }

    /// The phase table.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    fn phase_of(&self, i: u64) -> &Phase {
        let idx = self.phases.partition_point(|p| p.until <= i);
        self.phases
            .get(idx)
            .unwrap_or_else(|| self.phases.last().expect("PhasedSpin has at least one phase"))
    }
}

impl Workload for PhasedSpin {
    fn n_iters(&self) -> u64 {
        self.phases.last().map_or(0, |p| p.until)
    }

    fn name(&self) -> &'static str {
        "phased-spin"
    }

    fn execute(&self, i: u64) -> u64 {
        // Checksum folds the iteration's cost so a misrouted or
        // double-executed iteration shifts the application total.
        self.cost(i) ^ mix(i)
    }

    fn cost(&self, i: u64) -> u64 {
        let p = self.phase_of(i);
        let jitter = if p.spread_ns == 0 { 0 } else { mix(i) % p.spread_ns };
        p.base_ns.saturating_add(jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_deterministic_and_phase_bound() {
        let w = PhasedSpin::shifting(1_000);
        assert_eq!(w.n_iters(), 1_000);
        for i in 0..1_000 {
            assert_eq!(w.cost(i), w.cost(i), "pure function of i");
        }
        // Head phase: every iteration at least the expensive base.
        for i in 0..250 {
            assert!(w.cost(i) >= 40_000, "head iteration {i} costs {}", w.cost(i));
        }
        // Tail phase: exactly the flat cheap cost.
        for i in 250..1_000 {
            assert_eq!(w.cost(i), 1_000, "tail iteration {i}");
        }
    }

    #[test]
    fn distribution_actually_shifts() {
        let w = PhasedSpin::shifting(2_000);
        let head = w.phases()[0].until;
        let head_mean: u64 = (0..head).map(|i| w.cost(i)).sum::<u64>() / head;
        let tail_mean: u64 = (head..2_000).map(|i| w.cost(i)).sum::<u64>() / (2_000 - head);
        assert!(
            head_mean > 20 * tail_mean,
            "regime shift must be drastic: head {head_mean} vs tail {tail_mean}"
        );
    }

    #[test]
    fn steady_has_one_regime() {
        let w = PhasedSpin::steady(500);
        assert_eq!(w.phases().len(), 1);
        for i in 0..500 {
            let c = w.cost(i);
            assert!((8_000..12_000).contains(&c));
        }
    }

    #[test]
    fn checksums_are_stable() {
        let a = PhasedSpin::shifting(100);
        let b = PhasedSpin::shifting(100);
        let sum_a: u64 = (0..100).fold(0, |s, i| s.wrapping_add(a.execute(i)));
        let sum_b: u64 = (0..100).fold(0, |s, i| s.wrapping_add(b.execute(i)));
        assert_eq!(sum_a, sum_b);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn unordered_phases_are_rejected() {
        let _ = PhasedSpin::new(vec![
            Phase { until: 10, base_ns: 1, spread_ns: 0 },
            Phase { until: 10, base_ns: 2, spread_ns: 0 },
        ]);
    }
}
