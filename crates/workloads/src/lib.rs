//! # workloads — loop-iteration workloads with exact per-iteration cost
//!
//! The paper evaluates two computationally-intensive applications whose
//! single dominant parallel loop is irregular:
//!
//! * **Mandelbrot** ([`mandelbrot::Mandelbrot`]) — escape-time iteration
//!   over a complex-plane region; high algorithmic imbalance (pixels in
//!   the set cost `max_iter`, pixels far outside cost a handful).
//! * **PSIA** ([`psia::Psia`]) — the parallel spin-image algorithm: one
//!   loop iteration generates the spin-image of one oriented point of a
//!   3-D cloud; moderate imbalance from density variation in the cloud.
//!   The paper's proprietary 3-D object datasets are replaced by
//!   synthetic clouds ([`psia::cloud`]) with the same density-driven
//!   cost structure.
//!
//! Every workload implements [`Workload`]: a *real* computation per
//! iteration ([`Workload::execute`], used by the thread-backed runtime
//! and correctness tests) and an *exact virtual cost* per iteration
//! ([`Workload::cost`], used by the discrete-event simulator). The
//! virtual cost is derived from the real operation count of the same
//! kernel, so both backends schedule identical irregularity profiles.
//!
//! [`synthetic`] adds distribution-shaped workloads (constant, uniform,
//! gaussian, exponential, bimodal, linear ramps) for tests, property
//! checks and ablations.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod adjoint;
pub mod mandelbrot;
pub mod phased;
pub mod psia;
pub mod spin;
pub mod stats;
pub mod synthetic;

pub use adjoint::AdjointConvolution;
pub use mandelbrot::{Mandelbrot, Traversal};
pub use phased::PhasedSpin;
pub use psia::{Psia, PsiaStream};
pub use spin::Spin;
pub use stats::WorkloadStats;

/// A parallel loop whose iterations are independent, with a real
/// computation and an exact virtual cost per iteration.
pub trait Workload: Send + Sync {
    /// Number of loop iterations `N`.
    fn n_iters(&self) -> u64;

    /// Short display name (e.g. `"Mandelbrot"`).
    fn name(&self) -> &'static str;

    /// Perform iteration `i`'s real computation, returning an
    /// application checksum (escape count, accumulated bins, ...) that
    /// correctness tests compare against a serial execution.
    fn execute(&self, i: u64) -> u64;

    /// Exact virtual cost of iteration `i` in nanoseconds, derived from
    /// the kernel's real operation count.
    fn cost(&self, i: u64) -> u64;
}

/// A precomputed cost table: evaluates [`Workload::cost`] once per
/// iteration and serves lookups from memory afterwards. Build one per
/// workload and share it across the dozens of simulator runs of a
/// figure sweep.
pub struct CostTable {
    costs: Vec<u64>,
    name: &'static str,
}

impl CostTable {
    /// Precompute all iteration costs of `w`.
    pub fn build(w: &dyn Workload) -> Self {
        Self { costs: (0..w.n_iters()).map(|i| w.cost(i)).collect(), name: w.name() }
    }

    /// Cost of iteration `i`.
    #[inline]
    pub fn cost(&self, i: u64) -> u64 {
        self.costs[i as usize]
    }

    /// Number of iterations.
    pub fn n_iters(&self) -> u64 {
        self.costs.len() as u64
    }

    /// Workload name the table was built from.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sum of costs over `[start, end)` — the compute time of a chunk.
    pub fn range_cost(&self, start: u64, end: u64) -> u64 {
        self.costs[start as usize..end as usize].iter().sum()
    }

    /// All costs.
    pub fn costs(&self) -> &[u64] {
        &self.costs
    }

    /// Statistical summary of the iteration costs.
    pub fn stats(&self) -> WorkloadStats {
        WorkloadStats::from_costs(&self.costs)
    }

    /// A `dls::LoopSpec` for this workload over `p` workers, with the
    /// measured mean/sigma attached — what FAC and FSC need to apply
    /// their probabilistic chunk formulas.
    pub fn loop_spec(&self, p: u32) -> dls::LoopSpec {
        let s = self.stats();
        dls::LoopSpec::new(self.n_iters(), p).with_stats(s.mean, s.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthetic::Synthetic;

    #[test]
    fn cost_table_matches_workload() {
        let w = Synthetic::linear_increasing(100, 10, 1000);
        let t = CostTable::build(&w);
        assert_eq!(t.n_iters(), 100);
        for i in [0, 1, 50, 99] {
            assert_eq!(t.cost(i), w.cost(i));
        }
    }

    #[test]
    fn range_cost_sums() {
        let w = Synthetic::constant(10, 7);
        let t = CostTable::build(&w);
        assert_eq!(t.range_cost(2, 6), 28);
        assert_eq!(t.range_cost(0, 10), 70);
        assert_eq!(t.range_cost(3, 3), 0);
    }

    #[test]
    fn loop_spec_carries_measured_stats() {
        let w = Synthetic::uniform(1_000, 10, 100, 3);
        let t = CostTable::build(&w);
        let spec = t.loop_spec(8);
        assert_eq!(spec.n_iters, 1_000);
        assert_eq!(spec.n_workers, 8);
        let s = t.stats();
        assert_eq!(spec.mean_iter_time, s.mean);
        assert_eq!(spec.sigma_iter_time, s.sigma);
    }
}
