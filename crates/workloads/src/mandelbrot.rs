//! The Mandelbrot workload: one loop iteration computes the escape-time
//! of one pixel. The classic DLS stress test — the paper selects it
//! "due to high algorithmic load imbalance".

use crate::Workload;

/// How loop-iteration indices map onto image pixels.
///
/// Parallel Mandelbrot implementations typically iterate over *work
/// items* — contiguous pixel runs (tiles) — rather than raw row-major
/// pixels, and the tile visit order is an implementation choice. The
/// traversal matters to scheduling: row-major order concentrates the
/// expensive boundary structure into long contiguous index ranges,
/// while a shuffled tile order spreads it across the iteration space
/// (keeping only tile-local cost clusters).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Traversal {
    /// Iteration `i` is pixel `i` (row-major).
    RowMajor,
    /// Pixels grouped into contiguous runs of `tile` pixels; runs are
    /// visited in a multiplicative-permutation order.
    TiledShuffle {
        /// Pixels per tile; must divide `width * height`.
        tile: u32,
    },
}

/// Mandelbrot escape-time workload over a rectangular complex region.
#[derive(Clone, Debug)]
pub struct Mandelbrot {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Escape-iteration cap.
    pub max_iter: u32,
    /// Real-axis range `(min, max)`.
    pub re: (f64, f64),
    /// Imaginary-axis range `(min, max)`.
    pub im: (f64, f64),
    /// Virtual cost per escape iteration (ns).
    pub ns_per_iter: u64,
    /// Fixed virtual cost per pixel (loop setup etc., ns).
    pub ns_base: u64,
    /// Iteration-to-pixel mapping.
    pub traversal: Traversal,
}

impl Mandelbrot {
    /// The paper-scale instance used for the figure sweeps: a deep-zoom
    /// boundary region ("seahorse valley") at high iteration cap, with
    /// a shuffled tile traversal. Calibrated (see `bench/bin/calibrate`)
    /// so the three properties the paper's figures hinge on hold:
    /// sparse, very expensive pixel clusters scattered through the
    /// iteration space (strong fine-grained imbalance), near-uniform
    /// cost at large block scales, and a mean pixel cost a few times an
    /// `MPI_Win_lock` acquisition.
    pub fn paper() -> Self {
        Self {
            width: 4096,
            height: 3072,
            max_iter: 200_000,
            re: (-0.7485, -0.7445),
            im: (0.1290, 0.1330),
            ns_per_iter: 320,
            ns_base: 500,
            traversal: Traversal::TiledShuffle { tile: 48 },
        }
    }

    /// A reduced instance (1/16 of the paper's pixels) whose cost
    /// structure is rescaled so the figure shapes survive: spikes and
    /// mean pixel cost shrink with the pixel count, keeping their
    /// ratios to the ideal makespan and to a lock acquisition. Used by
    /// quick figure sweeps and the shape tests.
    pub fn quick() -> Self {
        Self {
            width: 1024,
            height: 768,
            max_iter: 50_000,
            re: (-0.7485, -0.7445),
            im: (0.1290, 0.1330),
            ns_per_iter: 450,
            ns_base: 500,
            traversal: Traversal::TiledShuffle { tile: 48 },
        }
    }

    /// A small instance for unit tests (completes in microseconds).
    pub fn tiny() -> Self {
        Self {
            width: 32,
            height: 24,
            max_iter: 256,
            re: (-2.0, 0.6),
            im: (-1.1, 1.1),
            ns_per_iter: 8,
            ns_base: 60,
            traversal: Traversal::RowMajor,
        }
    }

    /// Map an iteration index to a pixel index through the traversal.
    pub fn pixel_of(&self, i: u64) -> u64 {
        match self.traversal {
            Traversal::RowMajor => i,
            Traversal::TiledShuffle { tile } => {
                let tile = u64::from(tile);
                let n = self.n_iters();
                debug_assert_eq!(n % tile, 0, "tile must divide the pixel count");
                let tiles = n / tile;
                let (t, off) = (i / tile, i % tile);
                // Multiplicative permutation; the factor is made coprime
                // with the tile count so the map is a bijection.
                let mut a = 0x9E37_79B9u64 | 1;
                while gcd(a, tiles) != 1 {
                    a += 2;
                }
                (t.wrapping_mul(a) % tiles) * tile + off
            }
        }
    }

    /// Map iteration index to pixel centre in the complex plane.
    fn point(&self, i: u64) -> (f64, f64) {
        let p = self.pixel_of(i);
        let x = (p % u64::from(self.width)) as f64;
        let y = (p / u64::from(self.width)) as f64;
        let cr = self.re.0 + (x + 0.5) / f64::from(self.width) * (self.re.1 - self.re.0);
        let ci = self.im.0 + (y + 0.5) / f64::from(self.height) * (self.im.1 - self.im.0);
        (cr, ci)
    }

    /// Escape iterations of pixel `i` (the real kernel): iterate
    /// `z <- z^2 + c` until `|z| > 2` or `max_iter`.
    pub fn escape_iterations(&self, i: u64) -> u32 {
        let (cr, ci) = self.point(i);
        let (mut zr, mut zi) = (0.0f64, 0.0f64);
        let mut it = 0u32;
        while it < self.max_iter {
            let zr2 = zr * zr;
            let zi2 = zi * zi;
            if zr2 + zi2 > 4.0 {
                break;
            }
            zi = 2.0 * zr * zi + ci;
            zr = zr2 - zi2 + cr;
            it += 1;
        }
        it
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Workload for Mandelbrot {
    fn n_iters(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    fn name(&self) -> &'static str {
        "Mandelbrot"
    }

    fn execute(&self, i: u64) -> u64 {
        u64::from(self.escape_iterations(i))
    }

    fn cost(&self, i: u64) -> u64 {
        self.ns_base + u64::from(self.escape_iterations(i)) * self.ns_per_iter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostTable;

    #[test]
    fn interior_point_hits_max_iter() {
        let m = Mandelbrot::tiny();
        // Find the pixel closest to the origin (inside the set).
        let i = (0..m.n_iters())
            .min_by(|&a, &b| {
                let pa = m.point(a);
                let pb = m.point(b);
                let da = pa.0 * pa.0 + pa.1 * pa.1;
                let db = pb.0 * pb.0 + pb.1 * pb.1;
                da.partial_cmp(&db).unwrap()
            })
            .unwrap();
        assert_eq!(m.escape_iterations(i), m.max_iter);
    }

    #[test]
    fn corner_escapes_fast() {
        let m = Mandelbrot::tiny();
        assert!(m.escape_iterations(0) < 10);
    }

    #[test]
    fn high_imbalance() {
        let m = Mandelbrot::tiny();
        let stats = CostTable::build(&m).stats();
        // Interior pixels cost ~max_iter * ns_per_iter; exterior pixels
        // almost nothing: imbalance factor must be large.
        assert!(stats.imbalance_factor() > 3.0, "imbalance {}", stats.imbalance_factor());
        assert!(stats.cov() > 0.5, "cov {}", stats.cov());
    }

    #[test]
    fn cost_derived_from_escape_count() {
        let m = Mandelbrot::tiny();
        for i in [0, 5, 100, 700] {
            assert_eq!(m.cost(i), 60 + m.execute(i) * 8);
        }
    }

    #[test]
    fn deterministic() {
        let m = Mandelbrot::tiny();
        let a: Vec<u64> = (0..m.n_iters()).map(|i| m.execute(i)).collect();
        let b: Vec<u64> = (0..m.n_iters()).map(|i| m.execute(i)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn paper_instance_shape() {
        let m = Mandelbrot::paper();
        assert_eq!(m.n_iters(), 4096 * 3072);
        assert!(matches!(m.traversal, Traversal::TiledShuffle { tile: 48 }));
    }

    #[test]
    fn tiled_shuffle_is_a_bijection() {
        let mut m = Mandelbrot::tiny();
        m.traversal = Traversal::TiledShuffle { tile: 16 };
        let n = m.n_iters();
        let mut seen = vec![false; n as usize];
        for i in 0..n {
            let p = m.pixel_of(i);
            assert!(p < n);
            assert!(!seen[p as usize], "pixel {p} visited twice");
            seen[p as usize] = true;
        }
    }

    #[test]
    fn tiled_shuffle_preserves_tile_contiguity() {
        let mut m = Mandelbrot::tiny();
        m.traversal = Traversal::TiledShuffle { tile: 16 };
        for t in 0..m.n_iters() / 16 {
            let base = m.pixel_of(t * 16);
            for off in 1..16 {
                assert_eq!(m.pixel_of(t * 16 + off), base + off);
            }
        }
    }

    #[test]
    fn shuffle_keeps_the_multiset_of_costs() {
        let a = Mandelbrot::tiny();
        let mut b = Mandelbrot::tiny();
        b.traversal = Traversal::TiledShuffle { tile: 16 };
        let mut ca: Vec<u64> = (0..a.n_iters()).map(|i| a.cost(i)).collect();
        let mut cb: Vec<u64> = (0..b.n_iters()).map(|i| b.cost(i)).collect();
        // Different order...
        assert_ne!(ca, cb);
        ca.sort_unstable();
        cb.sort_unstable();
        // ...same work.
        assert_eq!(ca, cb);
    }
}
