//! Property tests for the workloads: determinism, cost/execute
//! consistency, traversal bijectivity, and stream semantics.

use proptest::prelude::*;
use workloads::synthetic::Synthetic;
use workloads::{CostTable, Mandelbrot, Psia, PsiaStream, Traversal, Workload};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn synthetic_cost_is_pure(n in 1u64..2_000, seed in any::<u64>(), idx in 0u64..2_000) {
        prop_assume!(idx < n);
        let w = Synthetic::exponential(n, 250.0, seed);
        prop_assert_eq!(w.cost(idx), w.cost(idx));
        prop_assert_eq!(w.execute(idx), w.execute(idx));
    }

    #[test]
    fn cost_table_total_matches_sum(n in 1u64..1_500, seed in any::<u64>()) {
        let w = Synthetic::uniform(n, 5, 500, seed);
        let t = CostTable::build(&w);
        let direct: u64 = (0..n).map(|i| w.cost(i)).sum();
        prop_assert_eq!(t.stats().total, direct);
        prop_assert_eq!(t.range_cost(0, n), direct);
    }

    #[test]
    fn range_cost_is_additive(n in 2u64..1_000, split in 1u64..999, seed in any::<u64>()) {
        prop_assume!(split < n);
        let w = Synthetic::gaussian(n, 200.0, 30.0, seed);
        let t = CostTable::build(&w);
        prop_assert_eq!(
            t.range_cost(0, split) + t.range_cost(split, n),
            t.range_cost(0, n)
        );
    }

    #[test]
    fn mandelbrot_tile_shuffle_bijective(tile_pow in 0u32..5) {
        let mut m = Mandelbrot::tiny();
        let tile = 1u32 << tile_pow; // powers of two divide 32*24
        m.traversal = Traversal::TiledShuffle { tile };
        let n = m.n_iters();
        let mut seen = vec![false; n as usize];
        for i in 0..n {
            let p = m.pixel_of(i);
            prop_assert!(p < n);
            prop_assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
    }

    #[test]
    fn psia_stream_frame_periodic_checksums(frames in 1u64..5, idx in 0u64..192) {
        let s = PsiaStream::new(Psia::tiny(), frames, 0.1);
        let n = s.base().n_iters();
        prop_assume!(idx < n);
        for f in 1..frames {
            prop_assert_eq!(s.execute(idx), s.execute(idx + f * n));
        }
    }

    #[test]
    fn stats_bounds(n in 1u64..2_000, lo in 1u64..100, span in 0u64..400, seed in any::<u64>()) {
        let w = Synthetic::uniform(n, lo, lo + span, seed);
        let s = CostTable::build(&w).stats();
        prop_assert!(s.min >= lo);
        prop_assert!(s.max <= lo + span);
        prop_assert!(s.mean >= s.min as f64 && s.mean <= s.max as f64);
        prop_assert!(s.imbalance_factor() >= 1.0);
    }
}
