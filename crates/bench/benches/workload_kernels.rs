//! Kernel micro-benchmarks: the real per-iteration computations of the
//! two applications (Mandelbrot escape-time, PSIA spin image) and the
//! cost-table precomputation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hdls::prelude::*;

fn bench_mandelbrot_pixel(c: &mut Criterion) {
    let m = Mandelbrot::tiny();
    // An interior pixel (max_iter) and an exterior one.
    let interior = (0..m.n_iters()).max_by_key(|&i| m.execute(i)).unwrap();
    c.bench_function("mandelbrot_interior_pixel", |b| b.iter(|| m.execute(black_box(interior))));
    c.bench_function("mandelbrot_exterior_pixel", |b| b.iter(|| m.execute(black_box(0))));
}

fn bench_psia_spin_image(c: &mut Criterion) {
    let p = Psia::tiny();
    c.bench_function("psia_spin_image_192pt", |b| b.iter(|| p.image(black_box(0))));
}

fn bench_cost_table_build(c: &mut Criterion) {
    let m = Mandelbrot::tiny();
    c.bench_function("cost_table_mandelbrot_tiny", |b| b.iter(|| CostTable::build(&m).n_iters()));
}

criterion_group!(benches, bench_mandelbrot_pixel, bench_psia_spin_image, bench_cost_table_build);
criterion_main!(benches);
