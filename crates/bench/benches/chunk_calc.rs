//! Micro-benchmarks of the distributed chunk calculation itself: the
//! per-step cost of each technique's `chunk_size` (the arithmetic every
//! worker runs inside its lock/epoch) and the cost of enumerating a
//! whole schedule.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dls::sequence::schedule_all;
use dls::technique::WorkerCtx;
use dls::{ChunkCalculator, Kind, LoopSpec, SchedState, Technique};

fn bench_chunk_size(c: &mut Criterion) {
    let spec = LoopSpec::new(1_000_000, 16).with_stats(1.0, 0.5).with_overhead(0.01);
    let mut group = c.benchmark_group("chunk_size_per_step");
    for kind in Kind::ALL {
        let t = Technique::from_kind(kind);
        // A mid-schedule state: step 40, ~3/4 scheduled.
        let state = SchedState { step: 40, scheduled: 750_000 };
        group.bench_with_input(BenchmarkId::from_parameter(kind), &t, |b, t| {
            b.iter(|| t.chunk_size(black_box(&spec), black_box(state), WorkerCtx::default()))
        });
    }
    group.finish();
}

fn bench_full_schedule(c: &mut Criterion) {
    let spec = LoopSpec::new(100_000, 16).with_stats(1.0, 0.5).with_overhead(0.01);
    let mut group = c.benchmark_group("full_schedule_enumeration");
    for kind in [Kind::STATIC, Kind::GSS, Kind::TSS, Kind::FAC2, Kind::TFSS] {
        let t = Technique::from_kind(kind);
        group.bench_with_input(BenchmarkId::from_parameter(kind), &t, |b, t| {
            b.iter(|| schedule_all(black_box(&spec), t).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chunk_size, bench_full_schedule);
criterion_main!(benches);
