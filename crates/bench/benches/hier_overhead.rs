//! Scheduling-path benchmarks of the hierarchical executors: the local
//! work queue's sub-chunk dispatch, and full virtual-time runs of both
//! approaches (simulator throughput on a fixed experiment).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hdls::prelude::*;
use hier::queue::LocalQueue;

fn bench_local_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_queue_take_sub_chunk");
    for kind in [Kind::STATIC, Kind::SS, Kind::GSS, Kind::TSS, Kind::FAC2] {
        let t = Technique::from_kind(kind);
        group.bench_with_input(BenchmarkId::from_parameter(kind), &t, |b, t| {
            b.iter(|| {
                let mut q = LocalQueue::new();
                q.deposit(0, 10_000);
                let mut taken = 0u64;
                while let Some(s) = q.take_sub_chunk(t, 16) {
                    taken += s.len();
                }
                black_box(taken)
            })
        });
    }
    group.finish();
}

fn bench_simulate_approaches(c: &mut Criterion) {
    let w = Synthetic::uniform(50_000, 1_000, 100_000, 7);
    let table = CostTable::build(&w);
    let mut group = c.benchmark_group("simulate_4x16");
    for approach in Approach::ALL {
        let schedule = HierSchedule::builder()
            .inter(Kind::GSS)
            .intra(Kind::GSS)
            .approach(approach)
            .nodes(4)
            .workers_per_node(16)
            .build();
        group.bench_with_input(BenchmarkId::from_parameter(approach), &schedule, |b, s| {
            b.iter(|| s.simulate(&table).makespan)
        });
    }
    group.finish();
}

fn bench_live_approaches(c: &mut Criterion) {
    let w = Synthetic::uniform(5_000, 100, 5_000, 7);
    let mut group = c.benchmark_group("live_2x4");
    group.sample_size(10);
    for approach in Approach::ALL {
        let schedule = HierSchedule::builder()
            .inter(Kind::GSS)
            .intra(Kind::GSS)
            .approach(approach)
            .nodes(2)
            .workers_per_node(4)
            .build();
        group.bench_with_input(BenchmarkId::from_parameter(approach), &schedule, |b, s| {
            b.iter(|| s.run_live(&w).stats.total_iterations)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_local_queue, bench_simulate_approaches, bench_live_approaches);
criterion_main!(benches);
