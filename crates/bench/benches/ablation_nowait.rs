//! Ablation: the OpenMP `nowait` clause — the paper's stated future
//! work. `nowait` removes the end-of-region barrier; any thread may
//! then fetch the next chunk (requiring `MPI_THREAD_MULTIPLE`). The
//! model runs the MPI+MPI protocol with OpenMP-atomic dispatch costs,
//! sitting between the barrier baseline and the proposed approach.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdls::prelude::*;

fn bench(c: &mut Criterion) {
    let table = CostTable::build(&Mandelbrot::quick());
    let build = |approach: Approach, nowait: bool| {
        HierSchedule::builder()
            .inter(Kind::GSS)
            .intra(Kind::STATIC)
            .approach(approach)
            .nodes(4)
            .workers_per_node(16)
            .omp_nowait(nowait)
            .build()
    };
    let barrier = build(Approach::MpiOpenMp, false);
    let nowait = build(Approach::MpiOpenMp, true);
    let mpi_mpi = build(Approach::MpiMpi, false);
    println!(
        "GSS+STATIC virtual makespan: OpenMP barrier = {:.3}s, OpenMP nowait = {:.3}s, MPI+MPI = {:.3}s",
        barrier.simulate(&table).seconds(),
        nowait.simulate(&table).seconds(),
        mpi_mpi.simulate(&table).seconds()
    );

    let mut group = c.benchmark_group("ablation_nowait");
    group.sample_size(10);
    for (label, schedule) in
        [("omp-barrier", &barrier), ("omp-nowait", &nowait), ("mpi-mpi", &mpi_mpi)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(label), schedule, |b, s| {
            b.iter(|| s.simulate(&table).makespan)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
