//! Ablation: `MPI_Win_lock` lock-polling penalty on vs. off.
//!
//! The paper attributes the poor `X+SS` MPI+MPI performance to lock
//! polling (Zhao et al.). Disabling only the per-waiter penalty in the
//! model — keeping the queue logic identical — must collapse most of
//! the slowdown, which this bench demonstrates by printing the virtual
//! makespans and measuring the simulations. See also
//! `figures --ablations` and the `figure_shapes` integration test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdls::prelude::*;

fn bench(c: &mut Criterion) {
    let table = CostTable::build(&Mandelbrot::quick());
    let build = |machine: MachineParams| {
        HierSchedule::builder()
            .inter(Kind::STATIC)
            .intra(Kind::SS)
            .approach(Approach::MpiMpi)
            .nodes(4)
            .workers_per_node(16)
            .machine(machine)
            .build()
    };
    let with_poll = build(MachineParams::default());
    let without_poll = build(MachineParams::default().without_lock_polling());
    println!(
        "STATIC+SS virtual makespan: polling on = {:.3}s, polling off = {:.3}s",
        with_poll.simulate(&table).seconds(),
        without_poll.simulate(&table).seconds()
    );

    let mut group = c.benchmark_group("ablation_lockpoll");
    group.sample_size(10);
    for (label, schedule) in [("polling-on", &with_poll), ("polling-off", &without_poll)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), schedule, |b, s| {
            b.iter(|| s.simulate(&table).makespan)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
