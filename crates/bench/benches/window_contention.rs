//! Contention micro-benchmarks of the `mpisim` RMA window — the real
//! (thread-backed) counterpart of the lock-polling model: fetch-and-op
//! throughput and exclusive lock/unlock cycles as the number of ranks
//! hammering one window grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpisim::{LockKind, RmaOp, Topology, Universe, Window};

const OPS_PER_RANK: u64 = 200;

fn bench_fetch_and_op(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_fetch_and_op");
    for ranks in [1u32, 2, 4, 8] {
        group.throughput(Throughput::Elements(u64::from(ranks) * OPS_PER_RANK));
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                Universe::run(Topology::single_node(ranks), |p| {
                    let w = p.world();
                    let win = Window::allocate(w, if w.rank() == 0 { 1 } else { 0 }).unwrap();
                    for _ in 0..OPS_PER_RANK {
                        win.fetch_and_op(0, 0, 1, RmaOp::Sum).unwrap();
                    }
                })
            })
        });
    }
    group.finish();
}

fn bench_lock_unlock(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_lock_cycle");
    for ranks in [1u32, 2, 4, 8] {
        group.throughput(Throughput::Elements(u64::from(ranks) * OPS_PER_RANK));
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                Universe::run(Topology::single_node(ranks), |p| {
                    let w = p.world();
                    let win = Window::allocate(w, if w.rank() == 0 { 2 } else { 0 }).unwrap();
                    for _ in 0..OPS_PER_RANK {
                        win.lock(LockKind::Exclusive, 0).unwrap();
                        let v = win.get(0, 0).unwrap();
                        win.put(0, 0, v + 1).unwrap();
                        win.unlock(LockKind::Exclusive, 0).unwrap();
                    }
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fetch_and_op, bench_lock_unlock);
criterion_main!(benches);
