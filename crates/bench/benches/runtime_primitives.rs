//! Micro-benchmarks of the runtime primitives underneath the
//! executors: the deterministic event queue, collective operations of
//! the thread-backed MPI runtime, and point-to-point messaging.

use cluster_sim::EventQueue;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpisim::{Topology, Universe};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_push_pop");
    for n in [1_000u64, 100_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    // Pseudo-random times, deterministic.
                    q.push(i.wrapping_mul(0x9E37_79B9) % n, i);
                }
                let mut sum = 0u64;
                while let Some((_, v)) = q.pop() {
                    sum = sum.wrapping_add(v);
                }
                black_box(sum)
            })
        });
    }
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_8_ranks");
    group.sample_size(20);
    group.bench_function("allreduce", |b| {
        b.iter(|| {
            Universe::run(Topology::new(2, 4), |p| {
                let w = p.world();
                w.allreduce(u64::from(w.rank()), |a, b| a + b).unwrap()
            })
        })
    });
    group.bench_function("allgather", |b| {
        b.iter(|| {
            Universe::run(Topology::new(2, 4), |p| {
                p.world().allgather(p.world().rank()).unwrap().len()
            })
        })
    });
    group.bench_function("barrier_x16", |b| {
        b.iter(|| {
            Universe::run(Topology::new(2, 4), |p| {
                for _ in 0..16 {
                    p.world().barrier();
                }
            })
        })
    });
    group.finish();
}

fn bench_p2p_pingpong(c: &mut Criterion) {
    c.bench_function("pingpong_x100", |b| {
        b.iter(|| {
            Universe::run(Topology::new(1, 2), |p| {
                let w = p.world();
                if w.rank() == 0 {
                    for i in 0..100u32 {
                        w.send(1, 0, i).unwrap();
                        let (_, _, _v): (_, _, u32) = w.recv(Some(1), Some(1)).unwrap();
                    }
                } else {
                    for _ in 0..100 {
                        let (_, _, v): (_, _, u32) = w.recv(Some(0), Some(0)).unwrap();
                        w.send(0, 1, v).unwrap();
                    }
                }
            })
        })
    });
}

criterion_group!(benches, bench_event_queue, bench_collectives, bench_p2p_pingpong);
criterion_main!(benches);
