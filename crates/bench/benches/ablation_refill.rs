//! Ablation: fastest-worker refill (the paper's proposal) vs. a
//! dedicated per-node refiller (hierarchical master-worker style).
//!
//! With a dedicated refiller, workers that drain the queue while the
//! refiller is busy computing must sit and re-probe; with the paper's
//! policy the first free worker refills immediately. Prints the virtual
//! makespans and measures the simulations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdls::prelude::*;
use hier::sim::RefillPolicy;

fn bench(c: &mut Criterion) {
    let table = CostTable::build(&Mandelbrot::quick());
    let build = |policy: RefillPolicy| {
        HierSchedule::builder()
            .inter(Kind::TSS)
            .intra(Kind::FAC2)
            .approach(Approach::MpiMpi)
            .nodes(4)
            .workers_per_node(16)
            .refill(policy)
            .build()
    };
    let fastest = build(RefillPolicy::Fastest);
    let dedicated = build(RefillPolicy::Dedicated);
    println!(
        "TSS+FAC2 virtual makespan: fastest-refill = {:.3}s, dedicated-refiller = {:.3}s",
        fastest.simulate(&table).seconds(),
        dedicated.simulate(&table).seconds()
    );

    let mut group = c.benchmark_group("ablation_refill");
    group.sample_size(10);
    for (label, schedule) in [("fastest", &fastest), ("dedicated", &dedicated)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), schedule, |b, s| {
            b.iter(|| s.simulate(&table).makespan)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
