//! `autotune_bench` — AUTO mode vs every fixed technique on the
//! regime-shifting workload, written as `BENCH_10.json`.
//!
//! ```text
//! cargo run --release -p bench --bin autotune_bench [-- OUT.json [N]]
//! ```
//!
//! The comparison runs in a **deterministic virtual-time mini-DES**, not
//! on wall clock: 8 virtual workers each carry a `free_at` watermark,
//! every fetch costs a fixed virtual overhead `h`, and a chunk's compute
//! time is the exact sum of the workload's per-iteration costs
//! ([`PhasedSpin`] is a pure function of the iteration index) scaled by
//! a seeded per-chunk jitter of 0–10%. Technique quality is then a pure
//! function of chunk geometry — which is precisely what a scheduling
//! technique controls — and the artefact is reproducible on any
//! machine, including the 1-CPU CI box where a wall-clock version of
//! this comparison would be all scheduler noise.
//!
//! Scenarios (best-of-5 jitter seeds each, lowest makespan kept):
//!
//! * [`PhasedSpin::shifting`] — an expensive irregular head, then a
//!   uniform cheap tail. Every fixed technique loses a regime: coarse
//!   ones (STATIC, GSS, TSS, FAC2) eat a straggler chunk in the head,
//!   SS pays `h` per iteration through the tail. AUTO starts at SS and
//!   must climb the ladder when the cheap tail makes overhead dominate.
//!   **Gate: AUTO's makespan beats the best fixed technique by >= 1.1x
//!   and it switched at least once.**
//! * [`PhasedSpin::steady`] — one mild regime; the best fixed technique
//!   is already near-optimal. **Gate: AUTO within 5% of it** (the tuner
//!   must not thrash where there is nothing to win).
//!
//! AF and AWF-C ride along as adaptive reference rows (not gated — they
//! adapt chunk *sizes*, AUTO switches *techniques*; on a regime shift
//! the two are complementary, and the gate is about the latter).
//!
//! The AUTO rows drive the real production pieces: the same
//! [`autotune::Tuner`] the service embeds (batch/cooldown/thresholds
//! included, `overhead_ns` pinned to the DES's `h`) switching a real
//! [`dls::SwitchableScheduler`] mid-job.

use autotune::{ChunkSample, Tuner, TunerConfig};
use dls::technique::WorkerCtx;
use dls::{Kind, LoopSpec, SchedKind, SchedState, SwitchableScheduler};
use workloads::{PhasedSpin, Workload};

const WORKERS: u32 = 8;
/// Virtual per-fetch scheduling overhead, nanoseconds.
const OVERHEAD_NS: u64 = 5_000;
const REPS: u64 = 5;

/// The fixed (pure-formula) techniques AUTO is gated against.
const FIXED: [SchedKind; 5] = [
    SchedKind::Fixed(Kind::STATIC),
    SchedKind::Fixed(Kind::SS),
    SchedKind::Fixed(Kind::GSS),
    SchedKind::Fixed(Kind::TSS),
    SchedKind::Fixed(Kind::FAC2),
];

/// Same avalanche mix as `PhasedSpin`'s jitter, reused for the
/// per-chunk seed stream.
fn mix(i: u64) -> u64 {
    i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_right(23).wrapping_mul(0x2545_f491_4f6c_dd1d)
}

struct Outcome {
    kind: SchedKind,
    makespan_ns: u64,
    fetches: u64,
    overhead_ns: u64,
    switches: u32,
    /// Technique active when the loop drained (AUTO's landing rung).
    final_kind: SchedKind,
}

/// One deterministic virtual-time run of `kind` over the cost profile.
fn simulate(kind: SchedKind, prefix: &[u64], seed: u64) -> Outcome {
    let n = (prefix.len() - 1) as u64;
    let spec = LoopSpec::new(n, WORKERS);
    let mut sched = SwitchableScheduler::new(spec, kind);
    let mut tuner = (kind == SchedKind::Auto).then(|| {
        let mut cfg = TunerConfig::new(WORKERS);
        cfg.overhead_ns = OVERHEAD_NS;
        Tuner::new(WORKERS, cfg)
    });
    let mut free = vec![0u64; WORKERS as usize];
    let (mut step, mut scheduled) = (0u64, 0u64);
    let (mut fetches, mut switches) = (0u64, 0u32);
    while scheduled < n {
        // The earliest-free worker fetches next (ties to the lowest id):
        // virtual time stands in for the wall clock of a real job.
        let worker =
            (0..WORKERS as usize).min_by_key(|&w| (free[w], w)).expect("at least one worker");
        let size = sched.next_size(WorkerCtx::worker(worker as u32)).clamp(1, n - scheduled);
        let lo = scheduled;
        step += 1;
        scheduled += size;
        fetches += 1;
        let base = prefix[(lo + size) as usize] - prefix[lo as usize];
        let jitter = 1.0 + (mix(seed ^ step) % 100) as f64 / 1_000.0;
        let compute = (base as f64 * jitter) as u64;
        free[worker] += OVERHEAD_NS + compute;
        sched.record(worker as u32, size, compute, OVERHEAD_NS);
        if let Some(t) = tuner.as_mut() {
            t.observe(ChunkSample {
                worker: worker as u32,
                len: size,
                latency_ns: OVERHEAD_NS + compute,
            });
            let global = SchedState { step, scheduled };
            if let Some(d) = t.on_settle(sched.active(), global) {
                sched.switch(d.to, global);
                switches += 1;
            }
        }
    }
    Outcome {
        kind,
        makespan_ns: free.into_iter().max().expect("at least one worker"),
        fetches,
        overhead_ns: fetches * OVERHEAD_NS,
        switches,
        final_kind: sched.active(),
    }
}

/// Best-of-`REPS` (lowest makespan across jitter seeds) for one kind.
fn best_of(kind: SchedKind, prefix: &[u64]) -> Outcome {
    (1..=REPS)
        .map(|seed| simulate(kind, prefix, seed * 0x9e37))
        .min_by_key(|o| o.makespan_ns)
        .expect("REPS >= 1")
}

/// Exclusive prefix sums of the per-iteration cost, so chunk compute
/// time is two lookups.
fn cost_prefix(w: &PhasedSpin) -> Vec<u64> {
    let n = w.n_iters();
    let mut prefix = Vec::with_capacity(n as usize + 1);
    let mut acc = 0u64;
    prefix.push(0);
    for i in 0..n {
        acc += w.cost(i);
        prefix.push(acc);
    }
    prefix
}

struct Scenario {
    workload: &'static str,
    rows: Vec<Outcome>,
    /// best fixed makespan / AUTO makespan (>1 means AUTO wins).
    auto_speedup: f64,
}

fn run_scenario(workload: &'static str, w: &PhasedSpin) -> Scenario {
    let prefix = cost_prefix(w);
    let mut rows: Vec<Outcome> = FIXED
        .into_iter()
        .chain([SchedKind::Af, SchedKind::Awf(dls::adaptive::AwfVariant::C)])
        .chain([SchedKind::Auto])
        .map(|k| best_of(k, &prefix))
        .collect();
    let best_fixed = rows
        .iter()
        .filter(|o| matches!(o.kind, SchedKind::Fixed(_)))
        .map(|o| o.makespan_ns)
        .min()
        .expect("fixed rows present");
    let auto = rows.iter().find(|o| o.kind == SchedKind::Auto).expect("AUTO row");
    let auto_speedup = best_fixed as f64 / auto.makespan_ns as f64;
    rows.sort_by_key(|o| o.makespan_ns);
    for o in &rows {
        eprintln!(
            "{workload:>9} {:>7}: {:>9.3} ms  {:>6} fetches  {:>2} switches  (ends {})",
            o.kind.name(),
            o.makespan_ns as f64 / 1e6,
            o.fetches,
            o.switches,
            o.final_kind.name()
        );
    }
    Scenario { workload, rows, auto_speedup }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out = args.next().unwrap_or_else(|| "BENCH_10.json".into());
    let n: u64 = args.next().map(|v| v.parse().expect("N")).unwrap_or(4_096);

    let shifting = run_scenario("shifting", &PhasedSpin::shifting(n));
    let steady = run_scenario("steady", &PhasedSpin::steady(n));

    let mut json = String::from("{\n  \"bench\": \"autotune-mini-des\",\n");
    json.push_str(&format!(
        "  \"n\": {n},\n  \"workers\": {WORKERS},\n  \"overhead_ns\": {OVERHEAD_NS},\n  \
         \"reps\": {REPS},\n"
    ));
    json.push_str("  \"scenarios\": [\n");
    let scenarios = [&shifting, &steady];
    for (si, s) in scenarios.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"auto_over_best_fixed\": {:.3}, \"rows\": [\n",
            s.workload, s.auto_speedup
        ));
        for (i, o) in s.rows.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"kind\": \"{}\", \"makespan_ms\": {:.4}, \"fetches\": {}, \
                 \"sched_overhead_ms\": {:.4}, \"switches\": {}, \"final_kind\": \"{}\"}}{}\n",
                o.kind.name(),
                o.makespan_ns as f64 / 1e6,
                o.fetches,
                o.overhead_ns as f64 / 1e6,
                o.switches,
                o.final_kind.name(),
                if i + 1 < s.rows.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!("    ]}}{}\n", if si + 1 < scenarios.len() { "," } else { "" }));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).expect("write bench json");
    print!("{json}");
    eprintln!("wrote {out}");

    // Acceptance gates (see module docs).
    let auto_shift = shifting.rows.iter().find(|o| o.kind == SchedKind::Auto).expect("AUTO row");
    assert!(
        auto_shift.switches >= 1,
        "AUTO never switched on the shifting workload — the tuner is inert"
    );
    assert!(
        shifting.auto_speedup >= 1.1,
        "AUTO is only {:.3}x the best fixed technique on shifting (floor 1.1x)",
        shifting.auto_speedup
    );
    assert!(
        steady.auto_speedup >= 1.0 / 1.05,
        "AUTO lost {:.1}% to the best fixed technique on steady (budget 5%)",
        (1.0 / steady.auto_speedup - 1.0) * 100.0
    );
}
