//! Regenerate every table and figure of the paper, plus ablations,
//! scaling reports and custom sweeps.
//!
//! ```text
//! figures [--quick] [--table1] [--fig2] [--fig3] [--fig4] [--fig5]
//!         [--fig6] [--fig7] [--ablations] [--speedup] [--csv DIR]
//!         [--trace DIR] [--all]
//! figures --run inter=GSS intra=SS nodes=2,4,8 wpn=16 \
//!               workload=mandelbrot-quick
//! ```
//!
//! `--trace DIR` runs both approaches with intra-node STATIC/SS/GSS for
//! real (OS threads) with tracing enabled and writes per-worker
//! activity JSON plus chrome://tracing event files into `DIR`.
//!
//! With no figure flag, `--all` is assumed. `--quick` shrinks the
//! workloads (fewer pixels / points, rescaled per-iteration cost) so a
//! full sweep finishes in seconds; the qualitative shapes survive.
//!
//! `--run` accepts `key=value` pairs: `inter`/`intra` (technique names,
//! optionally parameterised like `GSS:4`, `TSS:100:2`, `FSC:64`),
//! `nodes` (comma list), `wpn`, and `workload` (one of
//! `mandelbrot-paper`, `mandelbrot-quick`, `psia-paper`, `psia-quick`,
//! `adjoint:<n>`, `uniform:<n>:<min>:<max>:<seed>`,
//! `constant:<n>:<cost>`).

use bench::{mandelbrot_paper, mandelbrot_quick, psia_paper, psia_quick};
use dls::openmp::table1;
use hdls::figures::{figure_grid, point, render_grid, NODE_COUNTS, WORKERS_PER_NODE};
use hdls::prelude::*;

struct Args {
    quick: bool,
    table1: bool,
    fig2: bool,
    fig3: bool,
    fig4: bool,
    fig5: bool,
    fig6: bool,
    fig7: bool,
    ablations: bool,
    speedup: bool,
    /// Also write each figure grid as CSV into this directory.
    csv_dir: Option<std::path::PathBuf>,
    /// Write per-worker activity JSON + chrome-trace files here.
    trace_dir: Option<std::path::PathBuf>,
    /// `key=value` pairs following `--run`.
    custom: Vec<String>,
}

fn parse_args() -> Args {
    let mut a = Args {
        quick: false,
        table1: false,
        fig2: false,
        fig3: false,
        fig4: false,
        fig5: false,
        fig6: false,
        fig7: false,
        ablations: false,
        speedup: false,
        csv_dir: None,
        trace_dir: None,
        custom: Vec::new(),
    };
    let mut any = false;
    let mut args_iter = std::env::args().skip(1);
    while let Some(arg) = args_iter.next() {
        match arg.as_str() {
            "--csv" => {
                let dir = args_iter.next().unwrap_or_else(|| {
                    eprintln!("--csv requires a directory argument");
                    std::process::exit(2);
                });
                a.csv_dir = Some(dir.into());
            }
            "--trace" => {
                let dir = args_iter.next().unwrap_or_else(|| {
                    eprintln!("--trace requires a directory argument");
                    std::process::exit(2);
                });
                a.trace_dir = Some(dir.into());
                any = true;
            }
            "--quick" => a.quick = true,
            "--table1" => {
                a.table1 = true;
                any = true;
            }
            "--fig2" => {
                a.fig2 = true;
                any = true;
            }
            "--fig3" => {
                a.fig3 = true;
                any = true;
            }
            "--fig4" => {
                a.fig4 = true;
                any = true;
            }
            "--fig5" => {
                a.fig5 = true;
                any = true;
            }
            "--fig6" => {
                a.fig6 = true;
                any = true;
            }
            "--fig7" => {
                a.fig7 = true;
                any = true;
            }
            "--ablations" => {
                a.ablations = true;
                any = true;
            }
            "--speedup" => {
                a.speedup = true;
                any = true;
            }
            "--run" => {
                a.custom = args_iter.by_ref().collect();
                any = true;
            }
            "--all" => any = false,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if !any {
        a.table1 = true;
        a.fig2 = true;
        a.fig3 = true;
        a.fig4 = true;
        a.fig5 = true;
        a.fig6 = true;
        a.fig7 = true;
        a.ablations = true;
        a.speedup = true;
    }
    a
}

fn main() {
    let args = parse_args();
    let machine = MachineParams::default();

    if args.table1 {
        print_table1();
    }
    if args.fig2 || args.fig3 {
        print_trace_figures(args.fig2, args.fig3, args.quick, machine);
    }

    let figs = [
        (args.fig4, 4u32, Kind::STATIC),
        (args.fig5, 5, Kind::GSS),
        (args.fig6, 6, Kind::TSS),
        (args.fig7, 7, Kind::FAC2),
    ];
    if figs.iter().any(|f| f.0) {
        println!("\nBuilding workload cost tables...");
        let (mandel, psia): (CostTable, CostTable) = if args.quick {
            (CostTable::build(&mandelbrot_quick()), CostTable::build(&psia_quick()))
        } else {
            (CostTable::build(&mandelbrot_paper()), CostTable::build(&psia_paper()))
        };
        report_workload(&mandel);
        report_workload(&psia);
        for (enabled, fig_no, inter) in figs {
            if !enabled {
                continue;
            }
            run_figure(fig_no, inter, &mandel, &psia, machine, args.csv_dir.as_deref());
        }
    }
    if let Some(dir) = args.trace_dir.as_deref() {
        run_trace_export(dir, args.quick);
    }
    if args.ablations {
        run_ablations(args.quick);
    }
    if args.speedup {
        run_speedup(args.quick);
    }
    if !args.custom.is_empty() {
        run_custom(&args.custom, machine);
    }
}

/// Real-thread runs with tracing on, exported as per-worker activity
/// JSON plus chrome://tracing event files — the paper's Figure 2/3
/// breakdowns measured on actual executions instead of the simulator.
fn run_trace_export(dir: &std::path::Path, quick: bool) {
    println!("\n#############################################################");
    println!("Per-worker activity export (live runs, wall-clock traces)");
    let n = if quick { 4_000 } else { 20_000 };
    let workload = Synthetic::uniform(n, 1_000, 50_000, 3);
    std::fs::create_dir_all(dir).expect("create trace dir");
    let (nodes, wpn) = (2u32, 4u32);
    for approach in [Approach::MpiMpi, Approach::MpiOpenMp] {
        for intra in [Kind::STATIC, Kind::SS, Kind::GSS] {
            let r = HierSchedule::builder()
                .inter(Kind::FAC2)
                .intra(intra)
                .approach(approach)
                .nodes(nodes)
                .workers_per_node(wpn)
                .trace(true)
                .build()
                .run_live(&workload);
            let label = format!("FAC2+{intra} ({approach})");
            let report = ActivityReport::build(&label, &r.trace, &r.stats, nodes * wpn);
            let slug = format!(
                "{}_{}",
                match approach {
                    Approach::MpiMpi => "mpi_mpi",
                    Approach::MpiOpenMp => "mpi_omp",
                },
                format!("{intra}").to_lowercase()
            );
            let activity = dir.join(format!("activity_{slug}.json"));
            std::fs::write(&activity, report.to_json()).expect("write activity json");
            let chrome = dir.join(format!("chrome_{slug}.json"));
            std::fs::write(&chrome, chrome_trace(&r.trace, wpn)).expect("write chrome trace");
            let polls: u64 = report.workers.iter().map(|w| w.lock_polls).sum();
            println!(
                "  {label:<22} makespan {:>7.3}ms  compute-cov {:.3}  failed lock polls {:>6}  \
                 -> {}, {}",
                report.makespan_ns as f64 / 1e6,
                report.compute_cov,
                polls,
                activity.display(),
                chrome.display()
            );
        }
    }
    println!("  open the chrome_*.json files in chrome://tracing or https://ui.perfetto.dev");
}

/// A user-specified sweep: both approaches over the given grid.
fn run_custom(pairs: &[String], machine: MachineParams) {
    let mut inter: Technique = Technique::gss();
    let mut intra: Technique = Technique::gss();
    let mut nodes: Vec<u32> = vec![2, 4, 8, 16];
    let mut wpn: u32 = 16;
    let mut workload = String::from("mandelbrot-quick");
    for pair in pairs {
        let Some((key, value)) = pair.split_once('=') else {
            eprintln!("--run arguments must be key=value, got {pair:?}");
            std::process::exit(2);
        };
        let fail = |e: String| -> ! {
            eprintln!("bad {key}: {e}");
            std::process::exit(2);
        };
        match key {
            "inter" => inter = value.parse().unwrap_or_else(|e| fail(e)),
            "intra" => intra = value.parse().unwrap_or_else(|e| fail(e)),
            "wpn" => {
                wpn = value.parse().unwrap_or_else(|e: std::num::ParseIntError| fail(e.to_string()))
            }
            "nodes" => {
                nodes = value
                    .split(',')
                    .map(|v| v.parse().unwrap_or_else(|e| fail(format!("{e}"))))
                    .collect()
            }
            "workload" => workload = value.to_string(),
            other => {
                eprintln!("unknown --run key {other:?}");
                std::process::exit(2);
            }
        }
    }
    let table = build_workload(&workload);
    report_workload(&table);
    let spec = hier::HierSpec { inter, intra };
    println!("\ncustom sweep: {} over {nodes:?} nodes x {wpn} workers/node", spec.label());
    println!(
        "    {:<12}{}",
        "approach",
        nodes.iter().map(|n| format!("{n:>6} nodes  ")).collect::<String>()
    );
    for approach in Approach::ALL {
        if approach == Approach::MpiOpenMp && !spec.supported_by_openmp() {
            println!("    {:<12}(not supported by the Intel OpenMP runtime)", approach.name());
            continue;
        }
        print!("    {:<12}", approach.name());
        for &n in &nodes {
            let s = HierSchedule::builder()
                .inter_technique(inter)
                .intra_technique(intra)
                .approach(approach)
                .nodes(n)
                .workers_per_node(wpn)
                .machine(machine)
                .build()
                .simulate(&table)
                .seconds();
            print!("{s:>10.3}s  ");
        }
        println!();
    }
}

fn build_workload(name: &str) -> CostTable {
    let mut parts = name.split(':');
    let head = parts.next().unwrap_or_default();
    let nums: Vec<u64> = parts.map(|p| p.parse().expect("numeric workload parameter")).collect();
    match (head, nums.as_slice()) {
        ("mandelbrot-paper", []) => CostTable::build(&mandelbrot_paper()),
        ("mandelbrot-quick", []) => CostTable::build(&mandelbrot_quick()),
        ("psia-paper", []) => CostTable::build(&psia_paper()),
        ("psia-quick", []) => CostTable::build(&psia_quick()),
        ("adjoint", [n]) => {
            CostTable::build(&workloads::AdjointConvolution::new(*n as usize, 0xADC0))
        }
        ("uniform", [n, min, max, seed]) => {
            CostTable::build(&Synthetic::uniform(*n, *min, *max, *seed))
        }
        ("constant", [n, cost]) => CostTable::build(&Synthetic::constant(*n, *cost)),
        _ => {
            eprintln!("unknown workload {name:?}");
            std::process::exit(2);
        }
    }
}

/// Speedup / parallel-efficiency tables for the headline combinations —
/// the derived metrics readers compute from Figures 5 and 7 by hand.
fn run_speedup(quick: bool) {
    println!("\n#############################################################");
    println!("Scaling study (Mandelbrot, 16 workers/node)");
    let m = if quick { mandelbrot_quick() } else { mandelbrot_paper() };
    let table = CostTable::build(&m);
    for (inter, intra) in [(Kind::GSS, Kind::STATIC), (Kind::FAC2, Kind::GSS)] {
        for approach in Approach::ALL {
            let study = hdls::report::ScalingStudy::run(
                inter,
                intra,
                approach,
                &NODE_COUNTS,
                WORKERS_PER_NODE,
                MachineParams::default(),
                &table,
            );
            println!("\n{}", study.render());
        }
    }
}

/// Ablations of the design choices DESIGN.md calls out, on the
/// Mandelbrot workload at 4 nodes x 16 workers.
fn run_ablations(quick: bool) {
    println!("\n#############################################################");
    println!("Ablations (Mandelbrot, 4 nodes x 16 workers)");
    let m = if quick { mandelbrot_quick() } else { mandelbrot_paper() };
    let table = CostTable::build(&m);
    let base = |inter: Kind, intra: Kind, approach: Approach| {
        HierSchedule::builder()
            .inter(inter)
            .intra(intra)
            .approach(approach)
            .nodes(4)
            .workers_per_node(16)
    };

    // 1. Lock polling on/off: the X+SS pathology is the lock model.
    let on = base(Kind::STATIC, Kind::SS, Approach::MpiMpi).build().simulate(&table);
    let off = base(Kind::STATIC, Kind::SS, Approach::MpiMpi)
        .machine(MachineParams::default().without_lock_polling())
        .build()
        .simulate(&table);
    println!("\n  lock polling (STATIC+SS, MPI+MPI):");
    println!("    penalty on : {:>8.2}s", on.seconds());
    println!("    penalty off: {:>8.2}s", off.seconds());

    // 2. Fastest-worker refill vs dedicated refiller. TSS+FAC2 refills
    // often enough for the policy to matter.
    let fastest = base(Kind::TSS, Kind::FAC2, Approach::MpiMpi).build().simulate(&table);
    let dedicated = base(Kind::TSS, Kind::FAC2, Approach::MpiMpi)
        .refill(hier::sim::RefillPolicy::Dedicated)
        .build()
        .simulate(&table);
    println!("\n  local-queue refill policy (TSS+FAC2, MPI+MPI):");
    println!("    fastest worker (paper): {:>8.2}s", fastest.seconds());
    println!("    dedicated refiller    : {:>8.2}s", dedicated.seconds());

    // 3. Global queue realisation: the PDP'19 single-atomic distributed
    // chunk calculation vs lock-guarded counters (two extra round trips
    // per fetch).
    let atomic = base(Kind::FAC2, Kind::GSS, Approach::MpiMpi).build().simulate(&table);
    let locked = base(Kind::FAC2, Kind::GSS, Approach::MpiMpi)
        .global_queue(hier::GlobalQueueMode::LockedCounters)
        .build()
        .simulate(&table);
    println!("\n  global queue realisation (FAC2+GSS, MPI+MPI):");
    println!("    single fetch_and_op (paper [15]): {:>8.3}s", atomic.seconds());
    println!("    lock-guarded counters           : {:>8.3}s", locked.seconds());

    // 4. OpenMP nowait (the paper's future work).
    let barrier = base(Kind::GSS, Kind::STATIC, Approach::MpiOpenMp).build().simulate(&table);
    let nowait = base(Kind::GSS, Kind::STATIC, Approach::MpiOpenMp)
        .omp_nowait(true)
        .build()
        .simulate(&table);
    let proposed = base(Kind::GSS, Kind::STATIC, Approach::MpiMpi).build().simulate(&table);
    println!("\n  OpenMP nowait (GSS+STATIC):");
    println!("    MPI+OpenMP, barrier: {:>8.2}s", barrier.seconds());
    println!("    MPI+OpenMP, nowait : {:>8.2}s", nowait.seconds());
    println!("    MPI+MPI (proposed) : {:>8.2}s", proposed.seconds());
}

fn print_table1() {
    println!("Table 1: mapping between the DLS techniques and the OpenMP schedule clause");
    println!("---------------------------------------------------------------------------");
    println!("  {:<12}  OpenMP schedule clause", "DLS technique");
    for row in table1() {
        match row.omp {
            Some(omp) => println!("  {:<12}  {omp}", row.technique.name()),
            None => println!("  {:<12}  (none in the OpenMP standard)", row.technique.name()),
        }
    }
}

fn report_workload(t: &CostTable) {
    let s = t.stats();
    println!(
        "  {}: N = {}, serial = {:.1}s, cov = {:.2}, max/mean = {:.1}",
        t.name(),
        s.n,
        s.total as f64 / 1e9,
        s.cov(),
        s.imbalance_factor()
    );
}

fn print_trace_figures(fig2: bool, fig3: bool, quick: bool, machine: MachineParams) {
    // Figures 2 and 3: one node, 8 workers, an imbalanced loop; compare
    // the per-worker timelines of the two approaches. FAC2 at the
    // (single-node) global level produces the multi-chunk structure the
    // paper's illustrations show.
    let m = if quick { mandelbrot_quick() } else { mandelbrot_paper() };
    let table = CostTable::build(&m);
    let runs = [
        (
            fig2,
            "Figure 2: MPI+OpenMP at the shared-memory level (implicit synchronization)",
            Approach::MpiOpenMp,
        ),
        (
            fig3,
            "Figure 3: MPI+MPI at the shared-memory level (no implicit synchronization)",
            Approach::MpiMpi,
        ),
    ];
    for (enabled, title, approach) in runs {
        if !enabled {
            continue;
        }
        let schedule = HierSchedule::builder()
            .inter(Kind::FAC2)
            .intra(Kind::STATIC)
            .approach(approach)
            .nodes(1)
            .workers_per_node(8)
            .machine(machine)
            .trace(true)
            .build();
        let r = schedule.simulate(&table);
        println!("\n{title}");
        println!("  loop time: {:.3}s", r.seconds());
        println!("{}", r.trace.gantt(8, 64));
        println!("  worker   compute(s)   sched(s)   sync+idle(s)");
        for (w, compute, sched, idle) in r.trace.figure_rows(8) {
            println!("  {w:>6}   {compute:>10.3}   {sched:>8.3}   {idle:>12.3}");
        }
    }
}

fn run_figure(
    fig_no: u32,
    inter: Kind,
    mandel: &CostTable,
    psia: &CostTable,
    machine: MachineParams,
    csv_dir: Option<&std::path::Path>,
) {
    println!("\n#############################################################");
    println!(
        "Figure {fig_no}: {inter} at the inter-node level, 16 workers/node, nodes = {NODE_COUNTS:?}"
    );
    for (sub, table) in [("a", mandel), ("b", psia)] {
        let grid = figure_grid(inter, table, machine, WORKERS_PER_NODE);
        let title = format!("Figure {fig_no}{sub}: {} / {} inter-node", table.name(), inter);
        println!("\n{}", render_grid(&title, &grid));
        // Qualitative checks the paper's text makes for this figure.
        summarize(inter, &grid);
        if let Some(dir) = csv_dir {
            let mut csv = String::from("inter,intra,approach,nodes,seconds\n");
            for p in &grid {
                csv.push_str(&format!(
                    "{},{},{},{},{:.6}\n",
                    p.inter, p.intra, p.approach, p.nodes, p.seconds
                ));
            }
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = dir.join(format!("fig{fig_no}{sub}.csv"));
            std::fs::write(&path, csv).expect("write csv");
            println!("    wrote {}", path.display());
        }
    }
}

fn summarize(inter: Kind, grid: &[hdls::figures::FigurePoint]) {
    let get = |intra, approach, nodes| point(grid, intra, approach, nodes);
    if inter == Kind::STATIC {
        if let (Some(mm), Some(mo)) =
            (get(Kind::SS, Approach::MpiMpi, 16), get(Kind::SS, Approach::MpiOpenMp, 16))
        {
            println!(
                "    check: STATIC+SS at 16 nodes -> MPI+MPI {mm:.1}s vs MPI+OpenMP {mo:.1}s \
                 (paper: MPI+MPI poorest; here {})",
                if mm > 1.3 * mo {
                    "reproduced"
                } else if mm > mo {
                    "weakly reproduced"
                } else {
                    "NOT reproduced"
                }
            );
        }
    } else if let (Some(mm), Some(mo)) =
        (get(Kind::STATIC, Approach::MpiMpi, 2), get(Kind::STATIC, Approach::MpiOpenMp, 2))
    {
        println!(
            "    check: {inter}+STATIC at 2 nodes -> MPI+MPI {mm:.1}s vs MPI+OpenMP {mo:.1}s \
             (paper: MPI+MPI faster on Mandelbrot, near-equal on PSIA; here {})",
            if mo > 1.1 * mm {
                "clearly faster"
            } else if mo >= mm * 0.999 {
                "equal-or-faster"
            } else {
                "NOT reproduced"
            }
        );
    }
}
