//! Resilience bench smoke: makespans of the same hierarchical
//! schedule fault-free, with one rank crash, and with one 4x
//! straggler, written as `BENCH_4.json` — the number the recovery
//! protocol is judged by (how much does surviving a fault cost?).
//!
//! ```text
//! cargo run --release -p bench --bin chaos_bench [-- OUT.json]
//! ```

use hdls::prelude::*;

const N: u64 = 8_000;

fn run(faults: FaultPlan, table: &CostTable) -> (f64, usize, u64) {
    let r = HierSchedule::builder()
        .inter(Kind::GSS)
        .intra(Kind::SS)
        .approach(Approach::MpiMpi)
        .nodes(2)
        .workers_per_node(4)
        .faults(faults)
        .build()
        .simulate(table);
    assert_eq!(r.stats.total_iterations, N, "iterations lost");
    let reclaims: u64 = r.stats.workers.iter().map(|w| w.reclaims).sum();
    (r.seconds(), r.recovery.len(), reclaims)
}

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_4.json".into());
    let workload = Synthetic::exponential(N, 50_000.0, 42);
    let table = CostTable::build(&workload);

    let (clean_s, _, _) = run(FaultPlan::none(), &table);
    let (crash_s, crash_events, crash_reclaims) = run(FaultPlan::crash(5, 20_000_000), &table);
    let (strag_s, _, _) = run(FaultPlan::straggler(3, 4.0), &table);

    let json = format!(
        "{{\n  \"bench\": \"resilience-smoke\",\n  \"shape\": \"2x4\",\n  \
         \"spec\": \"GSS+SS\",\n  \"iterations\": {N},\n  \
         \"fault_free_s\": {clean_s},\n  \"one_crash_s\": {crash_s},\n  \
         \"one_straggler_4x_s\": {strag_s},\n  \
         \"crash_overhead\": {:.6},\n  \"straggler_overhead\": {:.6},\n  \
         \"crash_recovery_events\": {crash_events},\n  \
         \"crash_reclaims\": {crash_reclaims}\n}}\n",
        crash_s / clean_s - 1.0,
        strag_s / clean_s - 1.0,
    );
    std::fs::write(&out, &json).expect("write bench json");
    print!("{json}");
    eprintln!("wrote {out}");

    // Smoke thresholds: recovering from one crash on 8 workers must
    // not cost more than losing 1/8 of the machine outright, and the
    // crash must actually have exercised the recovery path.
    assert!(crash_events > 0, "the crash plan produced no recovery events");
    assert!(crash_s < clean_s * 1.5, "1-crash overhead out of bounds: {clean_s}s -> {crash_s}s");
}
