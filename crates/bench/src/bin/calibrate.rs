//! Calibration check tool: prints the imbalance structure of the
//! paper-scale workloads and the key figure ratios the reproduction
//! hinges on. Run after changing `Mandelbrot::paper()`,
//! `PsiaStream::paper()` or `MachineParams::default()` to confirm the
//! shapes still hold. Not part of the reproduction surface, but kept
//! in-tree so the calibration is repeatable.

use hdls::prelude::*;

fn block_ratio(costs: &[u64], blocks: usize) -> f64 {
    let n = costs.len();
    let block = n.div_ceil(blocks);
    let sums: Vec<u64> = costs.chunks(block).map(|c| c.iter().sum()).collect();
    let max = *sums.iter().max().unwrap() as f64;
    let mean = sums.iter().sum::<u64>() as f64 / sums.len() as f64;
    max / mean
}

fn report(name: &str, table: &CostTable) {
    let s = table.stats();
    println!(
        "{name}: N={} serial={:.1}s mean={:.1}us cov={:.2} max/mean={:.0}",
        s.n,
        s.total as f64 / 1e9,
        s.mean / 1e3,
        s.cov(),
        s.imbalance_factor()
    );
    for blocks in [32, 64, 256, 1024, 4096] {
        println!("  blocks={blocks:<5} max/mean={:.2}", block_ratio(table.costs(), blocks));
    }
}

fn key_ratios(table: &CostTable, label: &str) {
    let run = |inter: Kind, intra: Kind, approach: Approach, nodes: u32| -> f64 {
        HierSchedule::builder()
            .inter(inter)
            .intra(intra)
            .approach(approach)
            .nodes(nodes)
            .workers_per_node(16)
            .build()
            .simulate(table)
            .seconds()
    };
    let mm_gs2 = run(Kind::GSS, Kind::STATIC, Approach::MpiMpi, 2);
    let mo_gs2 = run(Kind::GSS, Kind::STATIC, Approach::MpiOpenMp, 2);
    let mm_gs16 = run(Kind::GSS, Kind::STATIC, Approach::MpiMpi, 16);
    let mo_gs16 = run(Kind::GSS, Kind::STATIC, Approach::MpiOpenMp, 16);
    let mm_ss2 = run(Kind::STATIC, Kind::SS, Approach::MpiMpi, 2);
    let mo_ss2 = run(Kind::STATIC, Kind::SS, Approach::MpiOpenMp, 2);
    let mm_gg2 = run(Kind::GSS, Kind::GSS, Approach::MpiMpi, 2);
    let mo_gg2 = run(Kind::GSS, Kind::GSS, Approach::MpiOpenMp, 2);
    let mm_st2 = run(Kind::STATIC, Kind::STATIC, Approach::MpiMpi, 2);
    let mo_st2 = run(Kind::STATIC, Kind::STATIC, Approach::MpiOpenMp, 2);
    println!("{label}:");
    println!(
        "  GSS+STATIC @2:  MPI+MPI {mm_gs2:.2}s  MPI+OpenMP {mo_gs2:.2}s  (paper 19.6 vs 61.5)"
    );
    println!(
        "  GSS+STATIC @16: MPI+MPI {mm_gs16:.2}s  MPI+OpenMP {mo_gs16:.2}s  (paper 3.1 vs 4.5)"
    );
    println!(
        "  STATIC+SS @2:   MPI+MPI {mm_ss2:.2}s  MPI+OpenMP {mo_ss2:.2}s  (paper: MPI+MPI poorest)"
    );
    println!(
        "  GSS+GSS @2:     MPI+MPI {mm_gg2:.2}s  MPI+OpenMP {mo_gg2:.2}s  (paper: MPI+MPI better)"
    );
    println!("  STATIC+STATIC @2: MPI+MPI {mm_st2:.2}s  MPI+OpenMP {mo_st2:.2}s  (paper: equal)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");

    if which == "mandel" || which == "all" {
        let table = CostTable::build(&Mandelbrot::paper());
        report("mandelbrot-paper", &table);
        key_ratios(&table, "mandelbrot-paper");
    }
    if which == "quick" || which == "all" {
        let table = CostTable::build(&Mandelbrot::quick());
        report("mandelbrot-quick", &table);
        key_ratios(&table, "mandelbrot-quick");
    }
    if which == "psia" || which == "all" {
        let table = CostTable::build(&workloads::PsiaStream::paper());
        report("psia-paper", &table);
        key_ratios(&table, "psia-paper");
    }
}
