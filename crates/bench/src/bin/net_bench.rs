//! `net_bench` — load generator for the `dls-service` chunk server,
//! written as `BENCH_5.json`.
//!
//! ```text
//! cargo run --release -p bench --bin net_bench [-- OUT.json [N]]
//! ```
//!
//! Self-hosts a server on a loopback port and drives four scenarios of
//! an SS job (chunk size 1 — the protocol-stress worst case, one lease
//! per iteration): {1, 8} concurrent clients × fetch batch {1, 8}.
//! Each scenario schedules the same number of chunks; clients skip the
//! kernel entirely, so the measurement isolates *scheduling* cost —
//! fetch round trips, lease settlement, queue contention. Reported per
//! scenario: wall time, chunks/second, and p50/p95/p99 fetch latency.
//!
//! The batching claim the service is judged by: with 8 concurrent
//! clients, batch 8 must reach at least 4x the chunk throughput of
//! batch 1 (ideal is ~8x — one fetch RTT and one eighth of a report
//! RTT per chunk instead of one of each).
//!
//! The server's own counters ride along through the standard
//! [`service_report`] pipeline, embedded in the JSON artefact.

use dls_service::{Client, FetchReply, Server, ServiceConfig};
use hdls::prelude::*;
use std::time::Instant;

struct Scenario {
    clients: u32,
    batch: u32,
}

struct Outcome {
    label: String,
    clients: u32,
    batch: u32,
    chunks: u64,
    elapsed_s: f64,
    chunks_per_s: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64 / 1e3
}

/// Drive one SS job of `n` chunks to completion and measure it.
fn run_scenario(server: &Server, s: &Scenario, n: u64) -> Outcome {
    let addr = server.addr();
    let job =
        Client::connect(addr).expect("connect").create_job(n, Kind::SS, &[]).expect("create job");

    let start = Instant::now();
    let per_client: Vec<(u64, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..s.clients)
            .map(|w| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect client");
                    let mut chunks = 0u64;
                    let mut latencies = Vec::new();
                    loop {
                        let t0 = Instant::now();
                        let reply = client.fetch(job, w, s.batch).expect("fetch");
                        latencies.push(t0.elapsed().as_nanos() as u64);
                        match reply {
                            FetchReply::Done => return (chunks, latencies),
                            FetchReply::Pending => std::thread::yield_now(),
                            FetchReply::Chunks(granted) => {
                                // No kernel: settle the whole batch and
                                // go straight back for more.
                                let leases: Vec<_> = granted.iter().map(|c| c.lease).collect();
                                client.report_done(job, &leases).expect("report");
                                chunks += granted.len() as u64;
                            }
                        }
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();

    let chunks: u64 = per_client.iter().map(|(c, _)| c).sum();
    assert_eq!(chunks, n, "SS grants one chunk per iteration, all settled");
    let mut latencies: Vec<u64> = per_client.into_iter().flat_map(|(_, l)| l).collect();
    latencies.sort_unstable();
    Outcome {
        label: format!("{}c_b{}", s.clients, s.batch),
        clients: s.clients,
        batch: s.batch,
        chunks,
        elapsed_s,
        chunks_per_s: chunks as f64 / elapsed_s,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out = args.next().unwrap_or_else(|| "BENCH_5.json".into());
    let n: u64 = args.next().map(|v| v.parse().expect("N")).unwrap_or(20_000);

    let server = Server::start(ServiceConfig::default(), "127.0.0.1:0").expect("bind server");
    let scenarios = [
        Scenario { clients: 1, batch: 1 },
        Scenario { clients: 8, batch: 1 },
        Scenario { clients: 1, batch: 8 },
        Scenario { clients: 8, batch: 8 },
    ];
    let outcomes: Vec<Outcome> = scenarios
        .iter()
        .map(|s| {
            let o = run_scenario(&server, s, n);
            eprintln!(
                "{:>7}: {:>9.0} chunks/s  p50 {:>7.1}us  p95 {:>7.1}us  p99 {:>7.1}us",
                o.label, o.chunks_per_s, o.p50_us, o.p95_us, o.p99_us
            );
            o
        })
        .collect();

    // Server-side view of the whole campaign, via the standard report
    // pipeline (4 jobs, one per scenario; 1 + 18 connections).
    let report = service_report("net_bench SS campaign", &server.snapshot());
    server.shutdown();

    let mut json = String::from("{\n  \"bench\": \"net-service-load\",\n");
    json.push_str("  \"spec\": \"SS\",\n");
    json.push_str(&format!("  \"chunks_per_scenario\": {n},\n"));
    json.push_str("  \"scenarios\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"clients\": {}, \"batch\": {}, \"chunks\": {}, \
             \"elapsed_s\": {:.6}, \"chunks_per_s\": {:.1}, \"p50_us\": {:.2}, \
             \"p95_us\": {:.2}, \"p99_us\": {:.2}}}{}\n",
            o.label,
            o.clients,
            o.batch,
            o.chunks,
            o.elapsed_s,
            o.chunks_per_s,
            o.p50_us,
            o.p95_us,
            o.p99_us,
            if i + 1 < outcomes.len() { "," } else { "" }
        ));
    }
    let b1 = &outcomes[1]; // 8 clients, batch 1
    let b8 = &outcomes[3]; // 8 clients, batch 8
    let speedup = b8.chunks_per_s / b1.chunks_per_s;
    json.push_str(&format!("  ],\n  \"batching_speedup_8c\": {speedup:.3},\n"));
    json.push_str(&format!("  \"service_report\": {}}}\n", report.to_json().trim_end()));
    std::fs::write(&out, &json).expect("write bench json");
    print!("{json}");
    eprintln!("wrote {out}");

    // The acceptance threshold: batching must actually amortise round
    // trips under concurrency, not just in the single-client case.
    assert!(
        speedup >= 4.0,
        "batch=8 under 8 clients reached only {speedup:.2}x the chunk throughput of batch=1 \
         (threshold 4x)"
    );
}
