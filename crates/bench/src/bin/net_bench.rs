//! `net_bench` — load generator for the `dls-service` chunk server,
//! written as `BENCH_6.json`.
//!
//! ```text
//! cargo run --release -p bench --bin net_bench [-- OUT.json [N]]
//! cargo run --release -p bench --bin net_bench -- BENCH_9.json N \
//!     --journal-dir DIR [--sync always|never|every:N]
//! ```
//!
//! Self-hosts a server on a loopback port and drives an SS job (chunk
//! size 1 — the protocol-stress worst case, one lease per iteration)
//! through two families of scenarios:
//!
//! * **Thread-per-client** {1, 8} clients × fetch batch {1, 8}: the
//!   strict request/response shape, one OS thread per client. These
//!   measure per-fetch latency percentiles.
//! * **Multiplexed** {64, 256, 1024} clients at batch 8: a few driver
//!   threads own many connections each and pipeline `ReportDone` +
//!   `FetchChunk` as one write per connection per round — the shape
//!   the event-loop server coalesces best (many requests per readiness
//!   cycle, answered under one job-table lock). These measure
//!   throughput at connection counts a thread-per-connection server
//!   could not reach on this hardware.
//!
//! Each scenario schedules every chunk of its own job; clients skip
//! the kernel entirely, so the measurement isolates *scheduling* cost.
//! Reported per scenario: wall time, chunks/second, p50/p95/p99 fetch
//! latency.
//!
//! The batching claim the service is judged by: with 8 concurrent
//! clients, batch 8 must reach at least 4x the chunk throughput of
//! batch 1. Latency and high-concurrency throughput figures ride along
//! in the artefact; set `NET_BENCH_STRICT=1` to also enforce the p99
//! budget at 8 clients (530us) and the 1024-client throughput floor.
//!
//! The server's own counters ride along through the standard
//! [`service_report`] pipeline, embedded in the JSON artefact.
//!
//! With `--journal-dir DIR` the binary switches to the **durability
//! comparison**: the 8-client scenarios run twice — once against a
//! plain in-memory server, once against a server journaling every
//! grant/settle to `DIR` — and the artefact records both side by side
//! plus the journaled server's own journal counters. The gate:
//! group commit must keep journaled SS throughput at ≥ 0.8× the
//! in-memory figure at 8 clients, batch 8.

use dls_service::protocol::{frame, LeaseId, Request, Response};
use dls_service::{Client, FetchReply, Server, ServiceConfig};
use durability::{JournalOptions, SyncPolicy};
use hdls::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

struct Outcome {
    label: String,
    clients: u32,
    batch: u32,
    chunks: u64,
    elapsed_s: f64,
    /// Untimed connection-establishment cost (multiplexed scenarios).
    setup_s: f64,
    chunks_per_s: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64 / 1e3
}

#[allow(clippy::too_many_arguments)]
fn outcome(
    label: String,
    clients: u32,
    batch: u32,
    chunks: u64,
    elapsed_s: f64,
    setup_s: f64,
    mut lat: Vec<u64>,
) -> Outcome {
    lat.sort_unstable();
    Outcome {
        label,
        clients,
        batch,
        chunks,
        elapsed_s,
        setup_s,
        chunks_per_s: chunks as f64 / elapsed_s,
        p50_us: percentile(&lat, 0.50),
        p95_us: percentile(&lat, 0.95),
        p99_us: percentile(&lat, 0.99),
    }
}

/// Thread-per-client driver: strict request/response, one fetch
/// latency sample per round trip.
fn run_scenario(server: &Server, clients: u32, batch: u32, n: u64) -> Outcome {
    let addr = server.addr();
    let job =
        Client::connect(addr).expect("connect").create_job(n, Kind::SS, &[]).expect("create job");

    let start = Instant::now();
    let per_client: Vec<(u64, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|w| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect client");
                    let mut chunks = 0u64;
                    let mut latencies = Vec::new();
                    loop {
                        let t0 = Instant::now();
                        let reply = client.fetch(job, w, batch).expect("fetch");
                        latencies.push(t0.elapsed().as_nanos() as u64);
                        match reply {
                            FetchReply::Done => return (chunks, latencies),
                            FetchReply::Pending => std::thread::yield_now(),
                            FetchReply::Chunks(granted) => {
                                // No kernel: settle the whole batch and
                                // go straight back for more.
                                let leases: Vec<_> = granted.iter().map(|c| c.lease).collect();
                                client.report_done(job, &leases).expect("report");
                                chunks += granted.len() as u64;
                            }
                        }
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();

    let chunks: u64 = per_client.iter().map(|(c, _)| c).sum();
    assert_eq!(chunks, n, "SS grants one chunk per iteration, all settled");
    let lat: Vec<u64> = per_client.into_iter().flat_map(|(_, l)| l).collect();
    outcome(format!("{clients}c_b{batch}"), clients, batch, chunks, elapsed_s, 0.0, lat)
}

/// One multiplexed connection: raw socket, pipelined
/// `ReportDone`+`FetchChunk` written as a single buffer per round.
struct MuxConn {
    stream: TcpStream,
    worker: u32,
    pending: Vec<LeaseId>,
    /// Server epoch adopted from the last grant, echoed in reports.
    epoch: u32,
    awaiting_ack: bool,
    chunks: u64,
    done: bool,
    t0: Instant,
}

fn read_reply(stream: &mut TcpStream) -> Response {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("read reply length");
    let len = u32::from_le_bytes(len) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).expect("read reply payload");
    Response::decode(&payload).expect("decode reply")
}

/// Multiplexed driver: `DRIVERS` threads own `clients / DRIVERS`
/// connections each. Per round, every live connection gets one write
/// (report of the previous grant + next fetch), then replies are
/// drained in order — so the server sees bursts of concurrent
/// requests and its per-cycle fetch batching is actually exercised.
///
/// Connection establishment happens *before* the clock starts: a
/// 1024-connect storm overflows the listener's SYN backlog and the
/// dropped SYNs retransmit on multi-second timers — a one-off setup
/// cost that would otherwise be billed to the steady-state throughput
/// figure. Setup time is reported separately.
fn run_mux_scenario(server: &Server, clients: u32, batch: u32, n: u64) -> Outcome {
    const DRIVERS: u32 = 4;
    let addr = server.addr();
    let job =
        Client::connect(addr).expect("connect").create_job(n, Kind::SS, &[]).expect("create job");

    // Untimed setup: connect single-threaded, yielding so the server
    // (sharing this core) can keep draining its accept queue.
    let setup = Instant::now();
    let mut pools: Vec<Vec<MuxConn>> = (0..DRIVERS).map(|_| Vec::new()).collect();
    for w in 0..clients {
        let stream = TcpStream::connect(addr).expect("connect mux");
        stream.set_nodelay(true).expect("nodelay");
        pools[(w % DRIVERS) as usize].push(MuxConn {
            stream,
            worker: w,
            pending: Vec::new(),
            epoch: 0,
            awaiting_ack: false,
            chunks: 0,
            done: false,
            t0: Instant::now(),
        });
        if w % 32 == 31 {
            std::thread::yield_now();
        }
    }
    let setup_s = setup.elapsed().as_secs_f64();

    let start = Instant::now();
    let per_driver: Vec<(u64, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = pools
            .into_iter()
            .map(|mut conns| {
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    let mut buf = Vec::new();
                    while conns.iter().any(|c| !c.done) {
                        let mut all_empty = true;
                        // Write phase: one buffer per connection.
                        for c in conns.iter_mut().filter(|c| !c.done) {
                            buf.clear();
                            if !c.pending.is_empty() {
                                let report = Request::ReportDone {
                                    job,
                                    leases: std::mem::take(&mut c.pending),
                                    epoch: c.epoch,
                                };
                                buf.extend_from_slice(&frame(&report.encode()));
                                c.awaiting_ack = true;
                            }
                            let fetch = Request::FetchChunk { job, worker: c.worker, batch };
                            buf.extend_from_slice(&frame(&fetch.encode()));
                            c.t0 = Instant::now();
                            c.stream.write_all(&buf).expect("mux write");
                        }
                        // Read phase: strictly one reply per request.
                        for c in conns.iter_mut().filter(|c| !c.done) {
                            if c.awaiting_ack {
                                c.awaiting_ack = false;
                                match read_reply(&mut c.stream) {
                                    Response::Ack => {}
                                    other => panic!("report answered {other:?}"),
                                }
                            }
                            match read_reply(&mut c.stream) {
                                Response::Chunks { chunks: granted, epoch } => {
                                    c.epoch = epoch;
                                    latencies.push(c.t0.elapsed().as_nanos() as u64);
                                    if !granted.is_empty() {
                                        all_empty = false;
                                        c.chunks += granted.len() as u64;
                                        c.pending = granted.iter().map(|g| g.lease).collect();
                                    }
                                }
                                Response::Error {
                                    code: dls_service::ErrorCode::JobFinished,
                                    ..
                                } => {
                                    c.done = true;
                                }
                                other => panic!("fetch answered {other:?}"),
                            }
                        }
                        if all_empty {
                            // Everything scheduled, leases unsettled
                            // elsewhere: back off instead of spinning.
                            std::thread::yield_now();
                        }
                    }
                    (conns.iter().map(|c| c.chunks).sum::<u64>(), latencies)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("driver panicked")).collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();

    let chunks: u64 = per_driver.iter().map(|(c, _)| c).sum();
    assert_eq!(chunks, n, "every chunk scheduled exactly once across {clients} connections");
    let lat: Vec<u64> = per_driver.into_iter().flat_map(|(_, l)| l).collect();
    outcome(format!("{clients}c_b{batch}_mux"), clients, batch, chunks, elapsed_s, setup_s, lat)
}

/// Durability comparison (`--journal-dir`): identical 8-client SS
/// scenarios against an in-memory and a journaling server, written as
/// the BENCH_9 artefact. The journaled server defaults to
/// `SyncPolicy::EveryN(512)` — group commit every cycle, fsync every
/// 512th. `kill -9` exactly-once needs no fsync at all (the page
/// cache outlives the process — the failure model the restart smoke
/// and crash adversary verify); fsyncs only bound the *power-loss*
/// window, and each one blocks the event loop, so syncing every cycle
/// (`--sync always`) or even every 64th puts a ~0.5ms stall on the
/// critical path every millisecond or two and halves throughput.
/// every:512 keeps the power-loss window around ten milliseconds of
/// records under full load with the fsync cost amortised to noise —
/// which is the trade the 0.8x gate certifies.
fn run_durability_compare(out: &str, n: u64, dir: &str, sync: SyncPolicy) {
    let cfg = || ServiceConfig { max_connections: 64, event_loops: 1, ..ServiceConfig::default() };

    // Best-of-5 per scenario, both modes: the campaigns are tens of
    // milliseconds, where one scheduler or writeback hiccup swings the
    // ratio 2x. Max-throughput-of-k is the usual noise filter and is
    // applied symmetrically.
    let best = |server: &Server, batch: u32| -> Outcome {
        (0..5)
            .map(|_| run_scenario(server, 8, batch, n))
            .max_by(|a, b| a.chunks_per_s.total_cmp(&b.chunks_per_s))
            .expect("three runs")
    };

    let memory = Server::start(cfg(), "127.0.0.1:0").expect("bind in-memory server");
    let mut mem_outcomes = Vec::new();
    for batch in [1u32, 8] {
        mem_outcomes.push(best(&memory, batch));
    }
    memory.shutdown();

    let mut jopts = JournalOptions::new(dir);
    jopts.sync = sync;
    // Snapshot sparsely: a snapshot install always fsyncs (whatever the
    // commit policy), so the interval — not the sync policy — sets the
    // stall floor on a fast campaign.
    let journaled =
        Server::start_with_journal(cfg(), "127.0.0.1:0", jopts, 65_536).expect("bind journaled");
    let mut jrn_outcomes = Vec::new();
    for batch in [1u32, 8] {
        jrn_outcomes.push(best(&journaled, batch));
    }
    let jstats = journaled.shutdown().journal;

    let mut json = String::from("{\n  \"bench\": \"net-service-durability\",\n");
    json.push_str("  \"spec\": \"SS\",\n");
    json.push_str(&format!("  \"chunks_per_scenario\": {n},\n"));
    json.push_str("  \"scenarios\": [\n");
    let labelled: Vec<(&str, &Outcome)> = mem_outcomes
        .iter()
        .map(|o| ("memory", o))
        .chain(jrn_outcomes.iter().map(|o| ("journaled", o)))
        .collect();
    for (i, (mode, o)) in labelled.iter().enumerate() {
        eprintln!(
            "{:>12} [{mode:>9}]: {:>9.0} chunks/s  p50 {:>7.1}us  p99 {:>7.1}us",
            o.label, o.chunks_per_s, o.p50_us, o.p99_us
        );
        json.push_str(&format!(
            "    {{\"mode\": \"{mode}\", \"label\": \"{}\", \"clients\": {}, \"batch\": {}, \
             \"chunks\": {}, \"elapsed_s\": {:.6}, \"chunks_per_s\": {:.1}, \
             \"p50_us\": {:.2}, \"p95_us\": {:.2}, \"p99_us\": {:.2}}}{}\n",
            o.label,
            o.clients,
            o.batch,
            o.chunks,
            o.elapsed_s,
            o.chunks_per_s,
            o.p50_us,
            o.p95_us,
            o.p99_us,
            if i + 1 < labelled.len() { "," } else { "" }
        ));
    }
    let ratio = jrn_outcomes[1].chunks_per_s / mem_outcomes[1].chunks_per_s;
    json.push_str(&format!("  ],\n  \"sync_policy\": \"{sync:?}\",\n"));
    json.push_str(&format!("  \"journaled_over_memory_8c_b8\": {ratio:.3},\n"));
    json.push_str(&format!(
        "  \"journal\": {{\"epoch\": {}, \"records\": {}, \"bytes\": {}, \"fsyncs\": {}, \
         \"snapshots\": {}, \"segments\": {}}}\n}}\n",
        jstats.epoch,
        jstats.journal_records,
        jstats.journal_bytes,
        jstats.fsyncs,
        jstats.snapshots,
        jstats.segments
    ));
    std::fs::write(out, &json).expect("write bench json");
    print!("{json}");
    eprintln!("wrote {out}");

    // The durability acceptance gate: group commit must keep the
    // journal off the per-chunk critical path.
    assert!(
        ratio >= 0.8,
        "journaled SS throughput is only {ratio:.3}x in-memory at 8 clients, batch 8 \
         (floor 0.8x)"
    );
}

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut journal_dir: Option<String> = None;
    let mut sync = SyncPolicy::EveryN(512);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--journal-dir" => journal_dir = Some(args.next().expect("--journal-dir DIR")),
            "--sync" => sync = args.next().expect("--sync POLICY").parse().expect("sync policy"),
            _ => positional.push(arg),
        }
    }
    let mut positional = positional.into_iter();
    let out = positional.next().unwrap_or_else(|| "BENCH_6.json".into());
    let n: u64 = positional.next().map(|v| v.parse().expect("N")).unwrap_or(20_000);
    let strict = std::env::var("NET_BENCH_STRICT").map(|v| v == "1").unwrap_or(false);

    if let Some(dir) = journal_dir {
        run_durability_compare(&out, n, &dir, sync);
        return;
    }

    let cfg = ServiceConfig { max_connections: 2048, event_loops: 1, ..Default::default() };
    let server = Server::start(cfg, "127.0.0.1:0").expect("bind server");

    let mut outcomes: Vec<Outcome> = Vec::new();
    for (clients, batch) in [(1, 1), (8, 1), (1, 8), (8, 8)] {
        outcomes.push(run_scenario(&server, clients, batch, n));
        let o = outcomes.last().expect("outcome");
        eprintln!(
            "{:>12}: {:>9.0} chunks/s  p50 {:>7.1}us  p95 {:>7.1}us  p99 {:>7.1}us",
            o.label, o.chunks_per_s, o.p50_us, o.p95_us, o.p99_us
        );
    }
    for clients in [64u32, 256, 1024] {
        // Give every connection enough rounds to matter, whatever N is.
        let n_mux = n.max(u64::from(clients) * 8 * 8);
        outcomes.push(run_mux_scenario(&server, clients, 8, n_mux));
        let o = outcomes.last().expect("outcome");
        eprintln!(
            "{:>12}: {:>9.0} chunks/s  p50 {:>7.1}us  p95 {:>7.1}us  p99 {:>7.1}us",
            o.label, o.chunks_per_s, o.p50_us, o.p95_us, o.p99_us
        );
    }

    // Server-side view of the whole campaign, via the standard report
    // pipeline (one job per scenario).
    let report = service_report("net_bench SS campaign", &server.snapshot());
    server.shutdown();

    let mut json = String::from("{\n  \"bench\": \"net-service-load\",\n");
    json.push_str("  \"spec\": \"SS\",\n");
    json.push_str(&format!("  \"chunks_per_scenario\": {n},\n"));
    json.push_str("  \"scenarios\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"clients\": {}, \"batch\": {}, \"chunks\": {}, \
             \"elapsed_s\": {:.6}, \"setup_s\": {:.6}, \"chunks_per_s\": {:.1}, \
             \"p50_us\": {:.2}, \"p95_us\": {:.2}, \"p99_us\": {:.2}}}{}\n",
            o.label,
            o.clients,
            o.batch,
            o.chunks,
            o.elapsed_s,
            o.setup_s,
            o.chunks_per_s,
            o.p50_us,
            o.p95_us,
            o.p99_us,
            if i + 1 < outcomes.len() { "," } else { "" }
        ));
    }
    let b1 = &outcomes[1]; // 8 clients, batch 1
    let b8 = &outcomes[3]; // 8 clients, batch 8
    let hi = outcomes.last().expect("1024-client scenario"); // 1024 clients, mux
    let speedup = b8.chunks_per_s / b1.chunks_per_s;
    json.push_str(&format!("  ],\n  \"batching_speedup_8c\": {speedup:.3},\n"));
    json.push_str(&format!("  \"high_concurrency_chunks_per_s\": {:.1},\n", hi.chunks_per_s));
    json.push_str(&format!("  \"service_report\": {}}}\n", report.to_json().trim_end()));
    std::fs::write(&out, &json).expect("write bench json");
    print!("{json}");
    eprintln!("wrote {out}");

    // The acceptance threshold: batching must actually amortise round
    // trips under concurrency, not just in the single-client case.
    assert!(
        speedup >= 4.0,
        "batch=8 under 8 clients reached only {speedup:.2}x the chunk throughput of batch=1 \
         (threshold 4x)"
    );
    if strict {
        assert!(
            b8.p99_us <= 530.0,
            "p99 fetch latency at 8 clients is {:.1}us (budget 530us)",
            b8.p99_us
        );
        assert!(
            hi.chunks_per_s > 1.0e6,
            "1024-client throughput {:.0} chunks/s (floor 1M)",
            hi.chunks_per_s
        );
    }
}
