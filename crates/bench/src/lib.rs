//! Shared helpers for the benchmark harness and the `figures` binary.

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use hdls::prelude::*;

/// Mandelbrot instance used by the figure sweeps (full paper scale).
pub fn mandelbrot_paper() -> Mandelbrot {
    Mandelbrot::paper()
}

/// Mandelbrot instance for `--quick` runs and benches.
pub fn mandelbrot_quick() -> Mandelbrot {
    Mandelbrot::quick()
}

/// PSIA instance used by the figure sweeps (full paper scale).
pub fn psia_paper() -> workloads::PsiaStream {
    workloads::PsiaStream::paper()
}

/// PSIA instance for `--quick` runs and benches: 16x fewer frames with
/// 16x the per-frame cost.
pub fn psia_quick() -> workloads::PsiaStream {
    let mut base = Psia::single_object();
    base.ns_scan *= 16;
    base.ns_accum *= 16;
    workloads::PsiaStream::new(base, 96, 0.1)
}
