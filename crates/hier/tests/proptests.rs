//! Property tests for the hierarchical executors: for arbitrary
//! cluster shapes, technique combinations and workload profiles, every
//! iteration must execute exactly once on the virtual-time backend, and
//! the local queue must partition every deposit.

use cluster_sim::{MachineParams, SimTopology};
use dls::verify::check_exactly_once;
use dls::{Kind, Technique};
use hier::queue::LocalQueue;
use hier::sim::{simulate, SimConfig};
use hier::{Approach, HierSpec};
use proptest::prelude::*;
use workloads::synthetic::Synthetic;
use workloads::{CostTable, Workload};

fn kind_strategy() -> impl Strategy<Value = Kind> {
    prop::sample::select(vec![Kind::STATIC, Kind::SS, Kind::GSS, Kind::TSS, Kind::FAC2])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sim_covers_exactly_once(
        inter in kind_strategy(),
        intra in kind_strategy(),
        nodes in 1u32..5,
        wpn in 1u32..6,
        n in 1u64..3_000,
        approach_mpi in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let w = Synthetic::uniform(n, 10, 500, seed);
        let table = CostTable::build(&w);
        let approach = if approach_mpi { Approach::MpiMpi } else { Approach::MpiOpenMp };
        let mut cfg = SimConfig::new(
            SimTopology::new(nodes, wpn),
            MachineParams::default(),
            HierSpec::new(inter, intra),
            approach,
        );
        cfg.record_chunks = true;
        let r = simulate(&cfg, &table);
        prop_assert_eq!(
            r.stats.total_iterations,
            n,
            "{}+{} {} {}x{}",
            inter,
            intra,
            approach,
            nodes,
            wpn
        );
        let chunks: Vec<dls::Chunk> = r
            .executed
            .iter()
            .map(|(_, s)| dls::Chunk { start: s.start, len: s.len(), step: 0 })
            .collect();
        prop_assert!(check_exactly_once(&chunks, n).is_ok());
    }

    #[test]
    fn sim_makespan_at_least_critical_path(
        nodes in 1u32..4,
        wpn in 1u32..5,
        n in 16u64..2_000,
        seed in any::<u64>(),
    ) {
        // Makespan can never undercut total work / total workers, nor
        // the most expensive single iteration.
        let w = Synthetic::exponential(n, 300.0, seed);
        let table = CostTable::build(&w);
        let total: u64 = (0..n).map(|i| w.cost(i)).sum();
        let max_iter = (0..n).map(|i| w.cost(i)).max().unwrap();
        let cfg = SimConfig::new(
            SimTopology::new(nodes, wpn),
            MachineParams::default(),
            HierSpec::new(Kind::GSS, Kind::GSS),
            Approach::MpiMpi,
        );
        let r = simulate(&cfg, &table);
        let workers = u64::from(nodes * wpn);
        prop_assert!(r.makespan >= total / workers);
        prop_assert!(r.makespan >= max_iter);
    }

    #[test]
    fn sim_is_deterministic(
        inter in kind_strategy(),
        intra in kind_strategy(),
        n in 1u64..1_000,
    ) {
        let w = Synthetic::uniform(n, 5, 100, 42);
        let table = CostTable::build(&w);
        let cfg = SimConfig::new(
            SimTopology::new(3, 3),
            MachineParams::default(),
            HierSpec::new(inter, intra),
            Approach::MpiMpi,
        );
        let a = simulate(&cfg, &table);
        let b = simulate(&cfg, &table);
        prop_assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn local_queue_partitions_any_deposits(
        ranges in prop::collection::vec((0u64..10_000u64, 1u64..500), 1..8),
        p in 1u32..17,
        kind in kind_strategy(),
    ) {
        let mut q = LocalQueue::new();
        let mut expected = Vec::new();
        let mut cursor = 0u64;
        for &(gap, len) in &ranges {
            let lo = cursor + gap;
            q.deposit(lo, lo + len);
            expected.extend(lo..lo + len);
            cursor = lo + len;
        }
        let t = Technique::from_kind(kind);
        let mut covered = Vec::new();
        while let Some(s) = q.take_sub_chunk(&t, p) {
            covered.extend(s.start..s.end);
        }
        prop_assert_eq!(covered, expected);
        prop_assert!(q.is_empty());
    }

    #[test]
    fn slowdown_never_speeds_things_up(
        n in 100u64..2_000,
        factor in 1.0f64..8.0,
    ) {
        let w = Synthetic::constant(n, 1_000);
        let table = CostTable::build(&w);
        let run = |slow: Vec<f64>| {
            let mut cfg = SimConfig::new(
                SimTopology::new(2, 2),
                MachineParams::default(),
                HierSpec::new(Kind::GSS, Kind::GSS),
                Approach::MpiMpi,
            );
            cfg.slowdown = slow;
            simulate(&cfg, &table).makespan
        };
        let baseline = run(vec![]);
        let slowed = run(vec![factor, 1.0, 1.0, 1.0]);
        prop_assert!(slowed >= baseline);
    }
}
