//! Adaptive weighted factoring (AWF) at the intra-node level.
//!
//! The non-adaptive techniques fix their chunk calculus before the loop
//! starts; AWF (Banicescu et al.) measures each worker's rate *during*
//! the loop and scales future sub-chunks by the learned relative speed.
//! At the intra-node level this composes naturally with the paper's
//! shared local queue: the measurement history lives next to the queue
//! counters (in the same shared-memory window under `MPI_Win_lock` on
//! the live backend), and every sub-chunk request reads the requesting
//! worker's current weight.
//!
//! The update rule follows the chunk-updating variants (AWF-C/-E): the
//! history advances at every chunk completion; -D/-E additionally charge
//! the scheduling time to the worker.

use dls::adaptive::AwfVariant;
use dls::weighted::normalize_weights;

/// Per-worker measurement history of one node: `(iterations, time_ns)`.
#[derive(Clone, Debug)]
pub struct AwfHistory {
    variant: AwfVariant,
    hist: Vec<(u64, u64)>,
}

impl AwfHistory {
    /// Fresh history for `workers` workers.
    pub fn new(variant: AwfVariant, workers: u32) -> Self {
        Self { variant, hist: vec![(0, 0); workers as usize] }
    }

    /// The AWF variant in use.
    pub fn variant(&self) -> AwfVariant {
        self.variant
    }

    /// Record a completed sub-chunk for `local` worker.
    pub fn record(&mut self, local: u32, iters: u64, compute_ns: u64, sched_ns: u64) {
        let time = if matches!(self.variant, AwfVariant::D | AwfVariant::E) {
            compute_ns + sched_ns
        } else {
            compute_ns
        };
        if let Some(h) = self.hist.get_mut(local as usize) {
            h.0 += iters;
            h.1 += time;
        }
    }

    /// Current mean-normalised weight of `local` worker.
    pub fn weight(&self, local: u32) -> f64 {
        weights_from_hist(&self.hist).get(local as usize).copied().unwrap_or(1.0)
    }

    /// Raw history (for window serialization on the live backend).
    pub fn raw(&self) -> &[(u64, u64)] {
        &self.hist
    }
}

/// Mean-normalised weights from `(iterations, time)` histories. Workers
/// without measurements get the mean rate (weight 1 before any data).
pub fn weights_from_hist(hist: &[(u64, u64)]) -> Vec<f64> {
    let rates: Vec<f64> = hist
        .iter()
        .map(|&(iters, time)| if time > 0 && iters > 0 { iters as f64 / time as f64 } else { 0.0 })
        .collect();
    let measured: Vec<f64> = rates.iter().copied().filter(|r| *r > 0.0).collect();
    if measured.is_empty() {
        return vec![1.0; hist.len()];
    }
    let mean = measured.iter().sum::<f64>() / measured.len() as f64;
    let scores: Vec<f64> = rates.iter().map(|&r| if r > 0.0 { r } else { mean }).collect();
    normalize_weights(&scores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_history_gives_unit_weights() {
        let h = AwfHistory::new(AwfVariant::C, 4);
        for w in 0..4 {
            assert_eq!(h.weight(w), 1.0);
        }
    }

    #[test]
    fn slow_worker_weight_drops() {
        let mut h = AwfHistory::new(AwfVariant::C, 3);
        h.record(0, 100, 1_000, 0); // 0.1 iters/ns
        h.record(1, 100, 1_000, 0);
        h.record(2, 100, 4_000, 0); // 4x slower
        assert!(h.weight(2) < h.weight(0));
        assert!(h.weight(2) < 1.0);
        assert!(h.weight(0) > 1.0);
    }

    #[test]
    fn weights_mean_normalised() {
        let mut h = AwfHistory::new(AwfVariant::C, 4);
        for w in 0..4 {
            h.record(w, 50, u64::from(w + 1) * 500, 0);
        }
        let ws: Vec<f64> = (0..4).map(|w| h.weight(w)).collect();
        let mean = ws.iter().sum::<f64>() / 4.0;
        assert!((mean - 1.0).abs() < 1e-9, "{ws:?}");
    }

    #[test]
    fn d_variant_charges_sched_time() {
        let mut fast_sched = AwfHistory::new(AwfVariant::C, 2);
        let mut slow_sched = AwfHistory::new(AwfVariant::D, 2);
        for h in [&mut fast_sched, &mut slow_sched] {
            h.record(0, 100, 1_000, 9_000); // lots of scheduling time
            h.record(1, 100, 1_000, 0);
        }
        // Under -C the sched time is ignored: equal weights.
        assert!((fast_sched.weight(0) - fast_sched.weight(1)).abs() < 1e-9);
        // Under -D worker 0 looks 10x slower.
        assert!(slow_sched.weight(0) < slow_sched.weight(1));
    }

    #[test]
    fn unmeasured_worker_gets_mean_rate() {
        let mut h = AwfHistory::new(AwfVariant::E, 3);
        h.record(0, 100, 1_000, 0);
        h.record(1, 100, 2_000, 0);
        // Worker 2 never reported: its weight sits between the others.
        let w2 = h.weight(2);
        assert!(w2 < h.weight(0) && w2 > h.weight(1), "{w2}");
    }
}
