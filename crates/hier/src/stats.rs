//! Per-run statistics shared by both backends.

/// Per-worker counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Iterations this worker executed.
    pub iterations: u64,
    /// Sub-chunks this worker obtained from its local queue.
    pub sub_chunks: u64,
    /// Global chunks this worker fetched (MPI+MPI: any worker may fetch;
    /// MPI+OpenMP: only thread 0 of each node).
    pub global_fetches: u64,
    /// Failed lock-poll attempts this worker made at RMA window locks
    /// (live backends only; the sim backends account polling per node).
    pub lock_polls: u64,
    /// Wall-clock nanoseconds this worker spent blocked acquiring or
    /// holding RMA window locks (live backends only).
    pub lock_time_ns: u64,
    /// RMA atomic operations (`MPI_Fetch_and_op`, `MPI_Compare_and_swap`,
    /// `MPI_Accumulate`) this worker issued (live backends only).
    pub rma_ops: u64,
    /// Recovery actions this worker performed on behalf of dead peers:
    /// expired leases reclaimed plus window locks repaired.
    pub reclaims: u64,
}

/// Per-node counters.
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    /// Chunks deposited into the node's local queue.
    pub deposits: u64,
    /// Sub-chunks handed out by the node's local queue.
    pub sub_chunks: u64,
    /// Local-queue lock acquisitions.
    pub lock_acquisitions: u64,
    /// Lock acquisitions that found the lock contended.
    pub lock_contended: u64,
    /// Failed lock-poll attempts at the local-queue lock — the
    /// lock-attempt message count behind the paper's `X+SS` pathology.
    pub lock_polls: u64,
    /// Lock grants revoked from dead holders by the recovery protocol
    /// (fault injection only).
    pub lock_revocations: u64,
}

/// Aggregate statistics of one hierarchical run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Per-worker counters, indexed by global worker id.
    pub workers: Vec<WorkerStats>,
    /// Per-node counters.
    pub nodes: Vec<NodeStats>,
    /// Total iterations executed (must equal the loop size).
    pub total_iterations: u64,
    /// Application checksum: sum of `Workload::execute` over every
    /// iteration — compared against a serial run for correctness.
    pub checksum: u64,
    /// Global-queue accesses (inter-node scheduling steps + exhaustion
    /// probes).
    pub global_accesses: u64,
}

impl RunStats {
    /// Fresh stats for `workers` workers across `nodes` nodes.
    pub fn new(workers: usize, nodes: usize) -> Self {
        Self {
            workers: vec![WorkerStats::default(); workers],
            nodes: vec![NodeStats::default(); nodes],
            ..Self::default()
        }
    }

    /// Largest / smallest per-worker iteration count — a quick imbalance
    /// indicator.
    pub fn iteration_spread(&self) -> (u64, u64) {
        let max = self.workers.iter().map(|w| w.iterations).max().unwrap_or(0);
        let min = self.workers.iter().map(|w| w.iterations).min().unwrap_or(0);
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_of_empty_stats() {
        let s = RunStats::new(0, 0);
        assert_eq!(s.iteration_spread(), (0, 0));
    }

    #[test]
    fn spread_tracks_min_max() {
        let mut s = RunStats::new(3, 1);
        s.workers[0].iterations = 5;
        s.workers[1].iterations = 9;
        s.workers[2].iterations = 7;
        assert_eq!(s.iteration_spread(), (5, 9));
    }
}
