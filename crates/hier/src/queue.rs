//! The local work queue: pure state-machine logic shared by the
//! thread-backed and virtual-time backends.
//!
//! A node's local queue holds the chunks its workers fetched from the
//! global queue but have not fully executed yet. Each deposited chunk
//! keeps its own intra-node scheduling state — the intra technique
//! treats every deposited chunk as a fresh (small) loop of `len` i
//! iterations over the node's `p` workers, which is exactly what an
//! OpenMP worksharing region over the chunk would see on the baseline
//! side.
//!
//! Usually the queue holds at most one chunk (workers only refill on
//! empty), but when several workers observe emptiness simultaneously
//! each may fetch a chunk, so the queue is a FIFO of ranges rather than
//! a single slot.

use dls::{ChunkCalculator, LoopSpec, SchedState, Technique};

/// One deposited chunk with its intra-node scheduling progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueuedRange {
    /// First iteration of the deposited chunk.
    pub lo: u64,
    /// One past the last iteration of the deposited chunk.
    pub hi: u64,
    /// Intra-node scheduling step within this chunk.
    pub step: u64,
    /// Iterations of this chunk already handed out as sub-chunks.
    pub taken: u64,
}

impl QueuedRange {
    /// A fresh deposit covering `[lo, hi)`.
    pub fn new(lo: u64, hi: u64) -> Self {
        debug_assert!(lo < hi);
        Self { lo, hi, step: 0, taken: 0 }
    }

    /// Chunk length.
    pub fn len(&self) -> u64 {
        self.hi - self.lo
    }

    /// Iterations not yet handed out.
    pub fn remaining(&self) -> u64 {
        self.len() - self.taken
    }

    /// True when fully handed out.
    pub fn is_empty(&self) -> bool {
        self.taken >= self.len()
    }
}

/// A sub-chunk handed to a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubChunk {
    /// First iteration.
    pub start: u64,
    /// One past the last iteration.
    pub end: u64,
}

impl SubChunk {
    /// Number of iterations.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when empty (never returned by the queue).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// The node-local work queue state machine. Both backends wrap this in
/// their own storage/synchronisation (window slots + `MPI_Win_lock` in
/// `live`, a [`cluster_sim::ContendedLock`]-guarded struct in `sim`).
///
/// ```
/// use hier::queue::LocalQueue;
/// use dls::Technique;
///
/// let mut q = LocalQueue::new();
/// q.deposit(100, 200); // a chunk fetched from the global queue
/// let sub = q.take_sub_chunk(&Technique::static_(), 4).unwrap();
/// assert_eq!((sub.start, sub.end), (100, 125)); // 1/4 of the deposit
/// ```
#[derive(Clone, Debug, Default)]
pub struct LocalQueue {
    ranges: std::collections::VecDeque<QueuedRange>,
    /// Total sub-chunks handed out (intra-level scheduling steps).
    pub sub_chunks: u64,
    /// Total chunks deposited.
    pub deposits: u64,
}

impl LocalQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no un-taken iterations remain.
    pub fn is_empty(&self) -> bool {
        self.ranges.iter().all(|r| r.is_empty())
    }

    /// Iterations currently queued and not handed out.
    pub fn remaining(&self) -> u64 {
        self.ranges.iter().map(|r| r.remaining()).sum()
    }

    /// Deposit a chunk fetched from the global queue.
    pub fn deposit(&mut self, lo: u64, hi: u64) {
        debug_assert!(lo < hi, "empty deposit");
        self.ranges.push_back(QueuedRange::new(lo, hi));
        self.deposits += 1;
    }

    /// Take the next sub-chunk using `intra` over a node of `p` workers,
    /// or `None` when the queue is empty. The intra technique sees each
    /// deposited chunk as a loop of `range.len()` iterations.
    pub fn take_sub_chunk(&mut self, intra: &Technique, p: u32) -> Option<SubChunk> {
        self.take_sub_chunk_for(intra, p, dls::technique::WorkerCtx::default())
    }

    /// Like [`LocalQueue::take_sub_chunk`] but with an explicit worker
    /// context — weighted techniques (WF) scale the sub-chunk by
    /// `ctx.weight`.
    pub fn take_sub_chunk_for(
        &mut self,
        intra: &Technique,
        p: u32,
        ctx: dls::technique::WorkerCtx,
    ) -> Option<SubChunk> {
        // Drop exhausted ranges from the front.
        while self.ranges.front().is_some_and(|r| r.is_empty()) {
            self.ranges.pop_front();
        }
        let range = self.ranges.front_mut()?;
        let spec = LoopSpec::new(range.len(), p);
        let state = SchedState { step: range.step, scheduled: range.taken };
        let size = intra.chunk_size(&spec, state, ctx).clamp(1, range.remaining());
        let start = range.lo + range.taken;
        range.taken += size;
        range.step += 1;
        self.sub_chunks += 1;
        Some(SubChunk { start, end: start + size })
    }

    /// Remove and return every not-yet-handed-out iteration range —
    /// the un-taken tail of each deposited chunk. Used by the recovery
    /// layer when a node loses its last live worker: the stranded
    /// ranges migrate to a surviving node's queue for re-execution.
    pub fn drain_remaining(&mut self) -> Vec<(u64, u64)> {
        let out =
            self.ranges.iter().filter(|r| !r.is_empty()).map(|r| (r.lo + r.taken, r.hi)).collect();
        self.ranges.clear();
        out
    }
}

/// Sub-chunk size for a deposited chunk of `range_len` iterations over
/// `p` workers at intra state `(step, taken)` — the raw form of
/// [`LocalQueue::take_sub_chunk`] used where the queue lives in window
/// slots rather than a Rust struct (the `live` backend).
pub fn sub_chunk_size(intra: &Technique, range_len: u64, p: u32, step: u64, taken: u64) -> u64 {
    sub_chunk_size_for(intra, range_len, p, step, taken, dls::technique::WorkerCtx::default())
}

/// [`sub_chunk_size`] with an explicit worker context (weighted and
/// adaptive techniques).
pub fn sub_chunk_size_for(
    intra: &Technique,
    range_len: u64,
    p: u32,
    step: u64,
    taken: u64,
    ctx: dls::technique::WorkerCtx,
) -> u64 {
    // Callers may race past the end of a range (two workers observing the
    // same slot before either CAS lands); an exhausted range yields 0
    // rather than underflowing `range_len - taken`.
    let remaining = range_len.saturating_sub(taken);
    if remaining == 0 {
        return 0;
    }
    let spec = LoopSpec::new(range_len, p);
    let state = SchedState { step, scheduled: taken };
    intra.chunk_size(&spec, state, ctx).clamp(1, remaining)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls::Technique;

    #[test]
    fn empty_queue_yields_nothing() {
        let mut q = LocalQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.take_sub_chunk(&Technique::gss(), 4), None);
    }

    #[test]
    fn static_intra_divides_chunk_evenly() {
        let mut q = LocalQueue::new();
        q.deposit(100, 200); // chunk of 100 over 4 workers -> 4 x 25
        let t = Technique::static_();
        let subs: Vec<_> = std::iter::from_fn(|| q.take_sub_chunk(&t, 4)).collect();
        assert_eq!(subs.len(), 4);
        assert!(subs.iter().all(|s| s.len() == 25));
        assert_eq!(subs[0], SubChunk { start: 100, end: 125 });
        assert_eq!(subs[3], SubChunk { start: 175, end: 200 });
        assert!(q.is_empty());
    }

    #[test]
    fn ss_intra_one_iteration_each() {
        let mut q = LocalQueue::new();
        q.deposit(0, 5);
        let t = Technique::ss();
        let subs: Vec<_> = std::iter::from_fn(|| q.take_sub_chunk(&t, 8)).collect();
        assert_eq!(subs.len(), 5);
        assert!(subs.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn gss_intra_decreasing_within_chunk() {
        let mut q = LocalQueue::new();
        q.deposit(0, 100);
        let t = Technique::gss();
        let sizes: Vec<u64> =
            std::iter::from_fn(|| q.take_sub_chunk(&t, 4)).map(|s| s.len()).collect();
        assert_eq!(sizes[0], 25); // ceil(100/4)
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(sizes.iter().sum::<u64>(), 100);
    }

    #[test]
    fn sub_chunks_cover_deposits_exactly() {
        let mut q = LocalQueue::new();
        q.deposit(10, 60);
        q.deposit(200, 230);
        let t = Technique::fac2();
        let mut covered = Vec::new();
        while let Some(s) = q.take_sub_chunk(&t, 3) {
            covered.extend(s.start..s.end);
        }
        let mut expected: Vec<u64> = (10..60).chain(200..230).collect();
        expected.sort_unstable();
        covered.sort_unstable();
        assert_eq!(covered, expected);
        assert_eq!(q.deposits, 2);
    }

    #[test]
    fn ranges_served_fifo() {
        let mut q = LocalQueue::new();
        q.deposit(0, 10);
        q.deposit(100, 110);
        let t = Technique::static_();
        let first = q.take_sub_chunk(&t, 1).unwrap();
        assert_eq!(first, SubChunk { start: 0, end: 10 });
        let second = q.take_sub_chunk(&t, 1).unwrap();
        assert_eq!(second, SubChunk { start: 100, end: 110 });
    }

    #[test]
    fn each_deposit_gets_fresh_intra_state() {
        // STATIC over p=2: each deposit of 10 splits 5+5, not carried over.
        let mut q = LocalQueue::new();
        q.deposit(0, 10);
        q.deposit(10, 20);
        let t = Technique::static_();
        let sizes: Vec<u64> =
            std::iter::from_fn(|| q.take_sub_chunk(&t, 2)).map(|s| s.len()).collect();
        assert_eq!(sizes, vec![5, 5, 5, 5]);
    }

    #[test]
    fn sub_chunk_size_exhausted_range_returns_zero() {
        // Regression: `taken >= range_len` used to underflow
        // `range_len - taken` (debug panic) and feed `clamp(1, 0)`
        // (release panic). An exhausted range must yield 0.
        let t = Technique::ss();
        assert_eq!(sub_chunk_size(&t, 100, 4, 100, 100), 0);
        assert_eq!(sub_chunk_size(&t, 100, 4, 101, 150), 0);
        assert_eq!(sub_chunk_size(&t, 0, 4, 0, 0), 0);
        // A live range is unaffected.
        assert_eq!(sub_chunk_size(&t, 100, 4, 0, 99), 1);
        assert!(sub_chunk_size(&Technique::gss(), 100, 4, 0, 0) > 0);
    }

    #[test]
    fn drain_remaining_returns_untaken_tails() {
        let mut q = LocalQueue::new();
        q.deposit(0, 10);
        q.deposit(50, 60);
        q.take_sub_chunk(&Technique::static_(), 2).unwrap(); // takes [0, 5)
        assert_eq!(q.drain_remaining(), vec![(5, 10), (50, 60)]);
        assert!(q.is_empty());
        assert_eq!(q.drain_remaining(), Vec::new());
    }

    #[test]
    fn remaining_tracks_progress() {
        let mut q = LocalQueue::new();
        q.deposit(0, 8);
        assert_eq!(q.remaining(), 8);
        q.take_sub_chunk(&Technique::static_(), 4).unwrap();
        assert_eq!(q.remaining(), 6);
    }
}
