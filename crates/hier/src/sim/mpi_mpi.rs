//! Virtual-time executor for the proposed MPI+MPI approach.
//!
//! Every worker is an MPI rank. A free worker takes a sub-chunk from its
//! node's local queue (an `MPI_Win_lock`-guarded shared-memory window,
//! modelled by [`ContendedLock`]). A worker that finds the queue empty
//! *and no refill in flight* marks itself the refiller — "the fastest
//! MPI process always takes this responsibility" — fetches a chunk from
//! the global queue (a passive-target RMA transaction, serialized at the
//! target by a [`Resource`]) and deposits it locally. Workers that find
//! the queue empty while a peer's refill is in flight re-probe after a
//! short back-off instead of blocking — nobody ever waits at a chunk
//! boundary (the paper's Figure 3 scenario).
//!
//! A worker terminates once the global queue is exhausted and its local
//! queue is empty.

use super::{Jitter, RmaTape, SimConfig, SimResult};
use crate::queue::LocalQueue;
use crate::stats::RunStats;
use cluster_sim::trace::SegmentKind;
use cluster_sim::{ContendedLock, EventQueue, Resource, Time, Trace};
use dls::{ChunkCalculator, LoopSpec, SchedState};
use mpisim::{AtomicOpKind, LockKind, RmaEvent};
use workloads::CostTable;

// Window layout mirrored from the live executor (see `super::layout`),
// so the synthesized log and a recorded live log describe the same
// protocol.
use super::layout::{
    node_win, GLOBAL_DONE, GLOBAL_WIN, GSCHED, GSTEP, HI, LO, REFILLING, STEP, TAKEN,
};

const EXCL: LockKind = LockKind::Exclusive;
const LOCK: RmaEvent = RmaEvent::Lock { kind: EXCL, target: 0 };
const UNLOCK: RmaEvent = RmaEvent::Unlock { kind: EXCL, target: 0 };

fn get(disp: usize) -> RmaEvent {
    RmaEvent::Get { target: 0, disp, len: 1 }
}

fn put(disp: usize) -> RmaEvent {
    RmaEvent::Put { target: 0, disp, len: 1 }
}

enum Event {
    /// Worker is free: probe the local queue.
    TryLocal(u32),
    /// Worker's RMA request reaches the global queue's host.
    GlobalArrive(u32),
    /// Worker's RMA response arrived: deposit `Some((lo, hi))`, or mark
    /// the node globally done on `None`.
    Deposit(u32, Option<(u64, u64)>),
    /// A recovery-protocol timeout fired (fault injection only).
    Recover(RecoverAction),
}

/// What a survivor does when a recovery timeout expires.
enum RecoverAction {
    /// A dead worker's leased chunk timed out: re-deposit its range
    /// into a surviving node's queue for re-execution.
    ReclaimChunk { lease: resilience::LeaseId },
    /// The node's refill stalled (the refiller died mid-fetch): clear
    /// the flag so a surviving worker takes over the responsibility.
    ClearRefill { node: usize, from: u32 },
    /// The bounded-grant timeout on the node window's FIFO ticket lock
    /// expired with a dead holder inside: revoke its grant.
    Repair { node: usize, dead_holder: u32 },
}

struct NodeState {
    queue: LocalQueue,
    lock: ContendedLock,
    /// A worker of this node is fetching from the global queue.
    refilling: bool,
    /// The global queue was observed exhausted by this node's refiller.
    global_done: bool,
    /// Adaptive weight history (AWF intra), when enabled.
    awf: Option<crate::adaptive::AwfHistory>,
}

/// Run the MPI+MPI approach in virtual time.
pub fn simulate_mpi_mpi(cfg: &SimConfig, table: &CostTable) -> SimResult {
    let nodes = cfg.topology.nodes;
    let wpn = cfg.topology.workers_per_node;
    let total_workers = cfg.topology.total_workers();
    let n_iters = table.n_iters();
    let inter_spec = LoopSpec::new(n_iters, nodes);
    let m = &cfg.machine;

    let mut global_state = SchedState::START;
    let mut global_q = Resource::new();
    let mut node_states: Vec<NodeState> = (0..nodes)
        .map(|_| NodeState {
            queue: LocalQueue::new(),
            lock: ContendedLock::new(m.shm_poll_penalty_ns),
            refilling: false,
            global_done: false,
            awf: cfg.awf.map(|v| crate::adaptive::AwfHistory::new(v, wpn)),
        })
        .collect();

    let mut stats = RunStats::new(total_workers as usize, nodes as usize);
    let mut trace = if cfg.trace { Trace::recording() } else { Trace::disabled() };
    let mut executed = Vec::new();
    let mut events = EventQueue::new();
    let mut finish_time = vec![0 as Time; total_workers as usize];
    let mut jitter = Jitter::new(cfg.perturb, wpn, total_workers);
    let mut tape = RmaTape::new(cfg.record_rma);
    let single_atomic = cfg.global_mode == crate::config::GlobalQueueMode::SingleAtomic;

    // Fault-injection state. With an inert plan every branch below is
    // dead and the run is bit-for-bit the fault-free one.
    let plan_active = cfg.faults.is_active();
    let rp = cfg.faults.recovery;
    let mut dead = vec![false; total_workers as usize];
    let mut done = vec![false; total_workers as usize];
    let mut drop_used = vec![false; total_workers as usize];
    let mut leases = resilience::LeaseTable::new();
    let mut recovery: Vec<resilience::RecoveryEvent> = Vec::new();

    if cfg.record_rma {
        for w in 0..total_workers {
            let node_idx = (w / wpn) as usize;
            tape.tx(
                0,
                GLOBAL_WIN,
                w,
                &[RmaEvent::Attach { shared: false, comm_size: total_workers }],
            );
            tape.tx(
                0,
                node_win(node_idx),
                w % wpn,
                &[RmaEvent::Attach { shared: true, comm_size: wpn }],
            );
            if single_atomic {
                // The live executor's run-long passive epoch for bare
                // fetch_and_op on the global counter.
                tape.tx(0, GLOBAL_WIN, w, &[RmaEvent::LockAll]);
            }
        }
    }

    for w in 0..total_workers {
        events.push(jitter.delay(w), Event::TryLocal(w));
    }

    // Take a sub-chunk (queue known non-empty), record it, and schedule
    // the worker's next probe after the compute burst. `sched_ns` is the
    // scheduling time this worker spent obtaining the sub-chunk (charged
    // to its AWF history under the -D/-E variants).
    #[allow(clippy::too_many_arguments)]
    let execute_sub = |w: u32,
                       node: &mut NodeState,
                       node_idx: usize,
                       grant_end: Time,
                       sched_ns: Time,
                       stats: &mut RunStats,
                       trace: &mut Trace,
                       executed: &mut Vec<(u32, crate::queue::SubChunk)>,
                       events: &mut EventQueue<Event>,
                       jitter: &mut Jitter,
                       tape: &mut RmaTape,
                       dead: &mut [bool],
                       finish_time: &mut [Time],
                       leases: &mut resilience::LeaseTable,
                       recovery: &mut Vec<resilience::RecoveryEvent>| {
        let local = w % wpn;
        // AWF is *adaptive weighted factoring*: it replaces the intra
        // technique with WF driven by the learned weights.
        let (technique, weight) = match &node.awf {
            Some(h) => (dls::Technique::wf(), h.weight(local)),
            None => (cfg.spec.intra, cfg.weights.get(w as usize).copied().unwrap_or(1.0)),
        };
        let ctx = dls::technique::WorkerCtx { worker: local, weight };
        let sub =
            node.queue.take_sub_chunk_for(&technique, wpn, ctx).expect("caller checked non-empty");
        let cost = cfg.cost_at(w, grant_end, table.range_cost(sub.start, sub.end));
        if let Some(ct) = cfg.faults.crash_at(w).filter(|&ct| ct < grant_end + cost) {
            // Took the sub-chunk under the lock, then died before
            // finishing it: the queue counters advanced, so without a
            // lease these iterations would be silently lost. Grant the
            // lease at the take and let its timeout trigger the reclaim.
            let died = ct.max(grant_end);
            dead[w as usize] = true;
            finish_time[w as usize] = died;
            if died > grant_end {
                trace.record(w, grant_end, died, SegmentKind::Compute);
            }
            recovery.push(resilience::RecoveryEvent::Crash {
                rank: w,
                at_ns: died,
                holding_lock: false,
            });
            let rp = cfg.faults.recovery;
            let id = leases.grant(w, sub.start, sub.end, grant_end);
            events.push(
                died + rp.lease_timeout_ns,
                Event::Recover(RecoverAction::ReclaimChunk { lease: id }),
            );
            // Last live worker of the node: its queued-but-untaken
            // ranges would be stranded in the dead node's window, so
            // lease them out for migration too.
            if (0..wpn as usize).all(|l| dead[node_idx * wpn as usize + l]) {
                for (lo, hi) in node.queue.drain_remaining() {
                    let id = leases.grant(w, lo, hi, died);
                    events.push(
                        died + rp.lease_timeout_ns,
                        Event::Recover(RecoverAction::ReclaimChunk { lease: id }),
                    );
                }
            }
            return;
        }
        if let Some(h) = &mut node.awf {
            h.record(local, sub.len(), cost, sched_ns);
        }
        trace.record(w, grant_end, grant_end + cost, SegmentKind::Compute);
        stats.workers[w as usize].iterations += sub.len();
        stats.workers[w as usize].sub_chunks += 1;
        stats.nodes[node_idx].sub_chunks += 1;
        if cfg.record_chunks {
            executed.push((w, sub));
        }
        // The probe-and-take window transaction this grant modelled:
        // one MPI_Win_lock / sync / read counters / advance counters /
        // sync / unlock cycle on the node's shared window.
        tape.tx(
            grant_end,
            node_win(node_idx),
            w % wpn,
            &[
                LOCK,
                RmaEvent::Sync,
                get(LO),
                get(HI),
                get(STEP),
                get(TAKEN),
                put(STEP),
                put(TAKEN),
                RmaEvent::Sync,
                UNLOCK,
            ],
        );
        events.push(grant_end + cost + jitter.delay(w), Event::TryLocal(w));
    };

    while let Some((t, ev)) = events.pop() {
        // Fault layer: drop events of dead workers, and kill a worker
        // whose scheduled crash time has passed — with recovery wired
        // to the protocol role it died in.
        if plan_active {
            let actor = match ev {
                Event::TryLocal(w) | Event::GlobalArrive(w) | Event::Deposit(w, _) => Some(w),
                Event::Recover(_) => None,
            };
            if let Some(w) = actor {
                if dead[w as usize] {
                    continue;
                }
                if let Some(ct) = cfg.faults.crash_at(w).filter(|&ct| ct <= t) {
                    let node_idx = (w / wpn) as usize;
                    dead[w as usize] = true;
                    finish_time[w as usize] = ct;
                    recovery.push(resilience::RecoveryEvent::Crash {
                        rank: w,
                        at_ns: ct,
                        holding_lock: false,
                    });
                    match ev {
                        // Idle between probes: nothing held, nothing lost.
                        Event::TryLocal(_) => {}
                        // Died as the refiller before the fetch reached
                        // the global queue: the request is lost and the
                        // refilling flag stays set until survivors time
                        // the stalled refill out.
                        Event::GlobalArrive(_) => {
                            events.push(
                                ct + rp.lease_timeout_ns,
                                Event::Recover(RecoverAction::ClearRefill {
                                    node: node_idx,
                                    from: w,
                                }),
                            );
                        }
                        // Died with a fetched chunk in hand: the global
                        // counters already advanced but the deposit
                        // never happened — the lost-chunk hazard the
                        // lease closes.
                        Event::Deposit(_, payload) => {
                            if let Some((lo, hi)) = payload {
                                let id = leases.grant(w, lo, hi, ct);
                                events.push(
                                    ct + rp.lease_timeout_ns,
                                    Event::Recover(RecoverAction::ReclaimChunk { lease: id }),
                                );
                            }
                            events.push(
                                ct + rp.lease_timeout_ns,
                                Event::Recover(RecoverAction::ClearRefill {
                                    node: node_idx,
                                    from: w,
                                }),
                            );
                        }
                        Event::Recover(_) => unreachable!("recover events have no actor"),
                    }
                    // Node lost its last live worker: migrate the
                    // stranded local queue via leases.
                    if (0..wpn as usize).all(|l| dead[node_idx * wpn as usize + l]) {
                        for (lo, hi) in node_states[node_idx].queue.drain_remaining() {
                            let id = leases.grant(w, lo, hi, ct);
                            events.push(
                                ct + rp.lease_timeout_ns,
                                Event::Recover(RecoverAction::ReclaimChunk { lease: id }),
                            );
                        }
                    }
                    continue;
                }
            }
        }
        match ev {
            Event::TryLocal(w) => {
                let node_idx = (w / wpn) as usize;
                let node = &mut node_states[node_idx];
                if plan_active && cfg.faults.crash_holding_lock_at(w).is_some_and(|ct| ct <= t) {
                    // Dies inside the critical section on its first
                    // lock acquisition past the fault time: the FIFO
                    // ticket lock stays seized by the corpse until a
                    // waiter's bounded-grant timeout expires and the
                    // grant is revoked.
                    let grant = node.lock.acquire(t, m.shm_lock_hold_ns);
                    stats.nodes[node_idx].lock_acquisitions += 1;
                    let repair_at = grant.start + rp.lock_grant_timeout_ns;
                    node.lock.seize_until(repair_at);
                    dead[w as usize] = true;
                    finish_time[w as usize] = grant.start;
                    trace.record(w, t, grant.start, SegmentKind::Sched);
                    recovery.push(resilience::RecoveryEvent::Crash {
                        rank: w,
                        at_ns: grant.start,
                        holding_lock: true,
                    });
                    events.push(
                        repair_at,
                        Event::Recover(RecoverAction::Repair { node: node_idx, dead_holder: w }),
                    );
                    if (0..wpn as usize).all(|l| dead[node_idx * wpn as usize + l]) {
                        for (lo, hi) in node.queue.drain_remaining() {
                            let id = leases.grant(w, lo, hi, grant.start);
                            events.push(
                                grant.start + rp.lease_timeout_ns,
                                Event::Recover(RecoverAction::ReclaimChunk { lease: id }),
                            );
                        }
                    }
                    continue;
                }
                // One MPI_Win_lock / update / MPI_Win_sync / unlock cycle.
                let grant = node.lock.acquire(t, m.shm_lock_hold_ns);
                stats.nodes[node_idx].lock_acquisitions += 1;
                if grant.queued_ahead > 0 {
                    stats.nodes[node_idx].lock_contended += 1;
                }
                trace.record(w, t, grant.end, SegmentKind::Sched);
                if !node.queue.is_empty() {
                    execute_sub(
                        w,
                        node,
                        node_idx,
                        grant.end,
                        grant.end - t,
                        &mut stats,
                        &mut trace,
                        &mut executed,
                        &mut events,
                        &mut jitter,
                        &mut tape,
                        &mut dead,
                        &mut finish_time,
                        &mut leases,
                        &mut recovery,
                    );
                } else {
                    // An empty probe reads the queue counters and both
                    // flags under the lock; becoming the refiller also
                    // publishes the refilling flag before releasing.
                    let probe = [
                        LOCK,
                        RmaEvent::Sync,
                        get(LO),
                        get(HI),
                        get(STEP),
                        get(TAKEN),
                        get(GLOBAL_DONE),
                        get(REFILLING),
                    ];
                    if node.global_done {
                        tape.tx_slice_then(
                            grant.end,
                            node_win(node_idx),
                            w % wpn,
                            &probe,
                            &[UNLOCK],
                        );
                        finish_time[w as usize] = grant.end;
                        done[w as usize] = true;
                    } else if !node.refilling
                        && (cfg.refill == super::RefillPolicy::Fastest || w % wpn == 0)
                    {
                        // This worker takes the refill responsibility: under
                        // the paper's policy because it is the fastest free
                        // one; under the ablation because it is the node's
                        // dedicated local master.
                        tape.tx_slice_then(
                            grant.end,
                            node_win(node_idx),
                            w % wpn,
                            &probe,
                            &[put(REFILLING), RmaEvent::Sync, UNLOCK],
                        );
                        node.refilling = true;
                        let mut depart =
                            grant.end + m.net.latency_ns + cfg.faults.message_delay(w, grant.end);
                        if plan_active {
                            if let Some(dt) = cfg.faults.message_drop_at(w) {
                                if !drop_used[w as usize] && grant.end >= dt {
                                    // The fetch request vanishes on the
                                    // wire; the refiller re-issues it
                                    // after the lease timeout. A double
                                    // fetch would be safe anyway — the
                                    // global counter just hands out the
                                    // next chunk.
                                    drop_used[w as usize] = true;
                                    depart += rp.lease_timeout_ns;
                                }
                            }
                        }
                        events.push(depart, Event::GlobalArrive(w));
                    } else {
                        // A peer's refill is in flight: re-probe shortly.
                        tape.tx_slice_then(
                            grant.end,
                            node_win(node_idx),
                            w % wpn,
                            &probe,
                            &[UNLOCK],
                        );
                        trace.record(w, grant.end, grant.end + m.shm_retry_ns, SegmentKind::Sync);
                        events
                            .push(grant.end + m.shm_retry_ns + jitter.delay(w), Event::TryLocal(w));
                    }
                }
            }
            Event::GlobalArrive(w) => {
                // Serialized service at the global queue's host; then the
                // response travels back and the origin runs the
                // distributed chunk calculation. The lock-guarded
                // two-counter variant pays two extra round trips
                // (MPI_Win_lock + MPI_Win_unlock) per fetch.
                let (_, served) = global_q.request(t, m.rma_service_ns);
                stats.global_accesses += 1;
                let mode_extra = match cfg.global_mode {
                    crate::config::GlobalQueueMode::SingleAtomic => 0,
                    crate::config::GlobalQueueMode::LockedCounters => 2 * m.net.rma_round_trip(),
                };
                let resp = served
                    + m.net.latency_ns
                    + m.chunk_calc_ns
                    + mode_extra
                    + cfg.faults.message_delay(w, served);
                trace.record(w, t, resp, SegmentKind::Sched);
                let exhausted = global_state.exhausted(&inter_spec);
                // The RMA transaction at the global queue's host, keyed
                // by its serialized service completion so exclusive
                // epochs of distinct fetches never overlap.
                if single_atomic {
                    tape.tx(
                        served,
                        GLOBAL_WIN,
                        w,
                        &[
                            RmaEvent::Atomic {
                                target: 0,
                                disp: GSTEP,
                                op: AtomicOpKind::FetchAndOp,
                            },
                            RmaEvent::Flush { target: 0 },
                        ],
                    );
                } else if exhausted {
                    tape.tx(served, GLOBAL_WIN, w, &[LOCK, get(GSTEP), get(GSCHED), UNLOCK]);
                } else {
                    tape.tx(
                        served,
                        GLOBAL_WIN,
                        w,
                        &[LOCK, get(GSTEP), get(GSCHED), put(GSTEP), put(GSCHED), UNLOCK],
                    );
                }
                let payload = if exhausted {
                    None
                } else {
                    let size = cfg.spec.inter.chunk_size(
                        &inter_spec,
                        global_state,
                        dls::technique::WorkerCtx::default(),
                    );
                    let chunk = global_state.take(&inter_spec, size).expect("not exhausted");
                    stats.workers[w as usize].global_fetches += 1;
                    Some((chunk.start, chunk.end()))
                };
                if plan_active {
                    if let Some(k) = cfg.faults.crash_as_refiller_after(w) {
                        if stats.workers[w as usize].global_fetches >= u64::from(k) {
                            // Dies right after the fetch-and-op lands:
                            // the global counters advanced but the
                            // chunk never reaches the node queue.
                            let node_idx = (w / wpn) as usize;
                            dead[w as usize] = true;
                            finish_time[w as usize] = served;
                            recovery.push(resilience::RecoveryEvent::Crash {
                                rank: w,
                                at_ns: served,
                                holding_lock: false,
                            });
                            if let Some((lo, hi)) = payload {
                                let id = leases.grant(w, lo, hi, served);
                                events.push(
                                    served + rp.lease_timeout_ns,
                                    Event::Recover(RecoverAction::ReclaimChunk { lease: id }),
                                );
                            }
                            events.push(
                                served + rp.lease_timeout_ns,
                                Event::Recover(RecoverAction::ClearRefill {
                                    node: node_idx,
                                    from: w,
                                }),
                            );
                            if (0..wpn as usize).all(|l| dead[node_idx * wpn as usize + l]) {
                                for (lo, hi) in node_states[node_idx].queue.drain_remaining() {
                                    let id = leases.grant(w, lo, hi, served);
                                    events.push(
                                        served + rp.lease_timeout_ns,
                                        Event::Recover(RecoverAction::ReclaimChunk { lease: id }),
                                    );
                                }
                            }
                            continue;
                        }
                    }
                }
                events.push(resp, Event::Deposit(w, payload));
            }
            Event::Deposit(w, payload) => {
                let node_idx = (w / wpn) as usize;
                let node = &mut node_states[node_idx];
                let grant = node.lock.acquire(t, m.shm_lock_hold_ns);
                stats.nodes[node_idx].lock_acquisitions += 1;
                if grant.queued_ahead > 0 {
                    stats.nodes[node_idx].lock_contended += 1;
                }
                trace.record(w, t, grant.end, SegmentKind::Sched);
                node.refilling = false;
                match payload {
                    Some((lo, hi)) => {
                        tape.tx(
                            grant.end,
                            node_win(node_idx),
                            w % wpn,
                            &[
                                LOCK,
                                put(LO),
                                put(HI),
                                put(STEP),
                                put(TAKEN),
                                put(REFILLING),
                                RmaEvent::Sync,
                                UNLOCK,
                            ],
                        );
                        node.queue.deposit(lo, hi);
                        stats.nodes[node_idx].deposits += 1;
                        execute_sub(
                            w,
                            node,
                            node_idx,
                            grant.end,
                            grant.end - t,
                            &mut stats,
                            &mut trace,
                            &mut executed,
                            &mut events,
                            &mut jitter,
                            &mut tape,
                            &mut dead,
                            &mut finish_time,
                            &mut leases,
                            &mut recovery,
                        );
                    }
                    None => {
                        tape.tx(
                            grant.end,
                            node_win(node_idx),
                            w % wpn,
                            &[LOCK, put(GLOBAL_DONE), put(REFILLING), RmaEvent::Sync, UNLOCK],
                        );
                        node.global_done = true;
                        // The refiller itself may still find leftovers
                        // deposited by racing peers; re-probe once.
                        if node.queue.is_empty() {
                            finish_time[w as usize] = grant.end;
                            done[w as usize] = true;
                        } else {
                            events.push(grant.end + jitter.delay(w), Event::TryLocal(w));
                        }
                    }
                }
            }
            Event::Recover(action) => match action {
                RecoverAction::ReclaimChunk { lease } => {
                    let Some(&resilience::Lease { owner, state, .. }) = leases.get(lease) else {
                        continue;
                    };
                    if state != resilience::LeaseState::Active {
                        continue;
                    }
                    // Elect the reclaiming survivor: prefer the dead
                    // owner's own node (its shared window keeps the
                    // queue reachable), prefer ranks without a pending
                    // crash of their own, fall back to any live rank.
                    let pick = |ni: usize| {
                        (0..wpn)
                            .map(|l| ni as u32 * wpn + l)
                            .find(|&u| !dead[u as usize] && !cfg.faults.crashes(u))
                    };
                    let by = pick((owner / wpn) as usize)
                        .or_else(|| (0..nodes as usize).find_map(pick))
                        .or_else(|| (0..total_workers).find(|&u| !dead[u as usize]));
                    let Some(by) = by else {
                        continue; // nobody left alive to reclaim
                    };
                    let (lo, hi) = leases.reclaim(lease, by).expect("lease checked active");
                    let target = (by / wpn) as usize;
                    recovery.push(resilience::RecoveryEvent::LeaseExpired {
                        owner,
                        lo,
                        hi,
                        at_ns: t,
                    });
                    recovery.push(resilience::RecoveryEvent::Reclaim {
                        by,
                        owner,
                        lo,
                        hi,
                        at_ns: t,
                    });
                    stats.workers[by as usize].reclaims += 1;
                    node_states[target].queue.deposit(lo, hi);
                    stats.nodes[target].deposits += 1;
                    // Wake the target node's already-finished workers so
                    // the re-deposited range gets executed.
                    for l in 0..wpn {
                        let u = target as u32 * wpn + l;
                        if !dead[u as usize] && done[u as usize] {
                            done[u as usize] = false;
                            events.push(t + jitter.delay(u), Event::TryLocal(u));
                        }
                    }
                }
                RecoverAction::ClearRefill { node: ni, from } => {
                    let node = &mut node_states[ni];
                    if node.refilling {
                        node.refilling = false;
                        recovery.push(resilience::RecoveryEvent::RefillFailover {
                            node: ni as u32,
                            from,
                            at_ns: t,
                        });
                    }
                }
                RecoverAction::Repair { node: ni, dead_holder } => {
                    // The analytic lock already released the seized
                    // grant at this timestamp; attribute the revocation
                    // to the node's first surviving waiter.
                    let by = (0..wpn)
                        .map(|l| ni as u32 * wpn + l)
                        .find(|&u| !dead[u as usize])
                        .or_else(|| (0..total_workers).find(|&u| !dead[u as usize]));
                    if let Some(by) = by {
                        recovery.push(resilience::RecoveryEvent::LockRepair {
                            node: ni as u32,
                            dead_holder,
                            by,
                            at_ns: t,
                        });
                        stats.workers[by as usize].reclaims += 1;
                    }
                }
            },
        }
    }

    let makespan = finish_time.iter().copied().max().unwrap_or(0);
    for (w, &ft) in finish_time.iter().enumerate() {
        trace.record(w as u32, ft, makespan, SegmentKind::Idle);
    }
    stats.total_iterations = stats.workers.iter().map(|w| w.iterations).sum();
    for (i, node) in node_states.iter().enumerate() {
        stats.nodes[i].lock_polls = node.lock.polls();
        stats.nodes[i].lock_revocations = node.lock.revocations();
    }
    let lock_poll_penalty = node_states.iter().map(|n| n.lock.total_penalty()).sum();

    if cfg.record_rma && single_atomic {
        // Close each worker's run-long global-window epoch where its
        // last probe released the node lock.
        for w in 0..total_workers {
            tape.tx(finish_time[w as usize], GLOBAL_WIN, w, &[RmaEvent::UnlockAll]);
        }
    }

    SimResult { makespan, stats, trace, lock_poll_penalty, executed, rma: tape.finish(), recovery }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HierSpec};
    use cluster_sim::{MachineParams, SimTopology};
    use dls::verify::check_exactly_once;
    use dls::Kind;
    use workloads::synthetic::Synthetic;

    fn run(spec: HierSpec, nodes: u32, wpn: u32, n: u64) -> SimResult {
        let w = Synthetic::uniform(n, 50, 500, 7);
        let table = CostTable::build(&w);
        let mut cfg = SimConfig::new(
            SimTopology::new(nodes, wpn),
            MachineParams::default(),
            spec,
            Approach::MpiMpi,
        );
        cfg.record_chunks = true;
        simulate_mpi_mpi(&cfg, &table)
    }

    fn assert_covers(result: &SimResult, n: u64) {
        let chunks: Vec<dls::Chunk> = result
            .executed
            .iter()
            .map(|(_, s)| dls::Chunk { start: s.start, len: s.len(), step: 0 })
            .collect();
        check_exactly_once(&chunks, n).expect("every iteration exactly once");
        assert_eq!(result.stats.total_iterations, n);
    }

    #[test]
    fn executes_every_iteration_exactly_once() {
        for inter in [Kind::STATIC, Kind::GSS, Kind::TSS, Kind::FAC2] {
            for intra in [Kind::STATIC, Kind::SS, Kind::GSS, Kind::TSS, Kind::FAC2] {
                let r = run(HierSpec::new(inter, intra), 4, 4, 3000);
                assert_covers(&r, 3000);
            }
        }
    }

    #[test]
    fn single_node_single_worker() {
        let r = run(HierSpec::new(Kind::GSS, Kind::GSS), 1, 1, 100);
        assert_covers(&r, 100);
        assert!(r.makespan > 0);
    }

    #[test]
    fn deterministic() {
        let a = run(HierSpec::new(Kind::GSS, Kind::STATIC), 4, 4, 2000);
        let b = run(HierSpec::new(Kind::GSS, Kind::STATIC), 4, 4, 2000);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.executed, b.executed);
    }

    #[test]
    fn more_nodes_faster() {
        let slow = run(HierSpec::new(Kind::GSS, Kind::GSS), 2, 4, 20_000);
        let fast = run(HierSpec::new(Kind::GSS, Kind::GSS), 8, 4, 20_000);
        assert!(
            fast.makespan < slow.makespan,
            "8 nodes ({}) should beat 2 nodes ({})",
            fast.makespan,
            slow.makespan
        );
    }

    #[test]
    fn static_inter_one_chunk_per_node() {
        let r = run(HierSpec::new(Kind::STATIC, Kind::GSS), 4, 2, 1000);
        let fetches: u64 = r.stats.workers.iter().map(|w| w.global_fetches).sum();
        assert_eq!(fetches, 4, "STATIC inter over 4 nodes = 4 chunks");
        // The refill-flag protocol must spread them one per node.
        for n in &r.stats.nodes {
            assert_eq!(n.deposits, 1);
        }
    }

    #[test]
    fn ss_intra_contends_on_the_lock() {
        let r = run(HierSpec::new(Kind::STATIC, Kind::SS), 2, 8, 4000);
        assert!(r.lock_poll_penalty > 0, "SS must trigger lock polling");
        let contended: u64 = r.stats.nodes.iter().map(|n| n.lock_contended).sum();
        assert!(contended > 0);
        let polls: u64 = r.stats.nodes.iter().map(|n| n.lock_polls).sum();
        assert!(polls >= contended, "each contended acquire polls at least once");
    }

    #[test]
    fn static_intra_less_lock_pressure_than_ss() {
        let ss = run(HierSpec::new(Kind::STATIC, Kind::SS), 2, 8, 4000);
        let st = run(HierSpec::new(Kind::STATIC, Kind::STATIC), 2, 8, 4000);
        assert!(st.lock_poll_penalty < ss.lock_poll_penalty);
        let acq =
            |r: &SimResult| -> u64 { r.stats.nodes.iter().map(|n| n.lock_acquisitions).sum() };
        assert!(acq(&st) < acq(&ss));
    }

    #[test]
    fn slowdown_injection_shifts_work_away() {
        // Compute-dominated iterations (50 us >> lock hold), so the
        // lock never equalises the workers by itself.
        let w = Synthetic::constant(4000, 50_000);
        let table = CostTable::build(&w);
        let mut cfg = SimConfig::new(
            SimTopology::new(1, 4),
            MachineParams::default(),
            HierSpec::new(Kind::GSS, Kind::SS),
            Approach::MpiMpi,
        );
        cfg.slowdown = vec![4.0, 1.0, 1.0, 1.0]; // worker 0 is 4x slower
        let r = simulate_mpi_mpi(&cfg, &table);
        assert_eq!(r.stats.total_iterations, 4000);
        let iters: Vec<u64> = r.stats.workers.iter().map(|w| w.iterations).collect();
        assert!(
            iters[0] < iters[1] / 2,
            "SS must give the slow worker far fewer iterations: {iters:?}"
        );
    }

    #[test]
    fn trace_records_when_enabled() {
        let w = Synthetic::constant(200, 100);
        let table = CostTable::build(&w);
        let mut cfg = SimConfig::new(
            SimTopology::new(1, 2),
            MachineParams::default(),
            HierSpec::new(Kind::GSS, Kind::GSS),
            Approach::MpiMpi,
        );
        cfg.trace = true;
        let r = simulate_mpi_mpi(&cfg, &table);
        assert!(!r.trace.segments().is_empty());
        let totals = r.trace.totals();
        assert!(totals.compute > 0);
        assert!(totals.sched > 0);
    }
}
