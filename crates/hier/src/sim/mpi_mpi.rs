//! Virtual-time executor for the proposed MPI+MPI approach.
//!
//! Every worker is an MPI rank. A free worker takes a sub-chunk from its
//! node's local queue (an `MPI_Win_lock`-guarded shared-memory window,
//! modelled by [`ContendedLock`]). A worker that finds the queue empty
//! *and no refill in flight* marks itself the refiller — "the fastest
//! MPI process always takes this responsibility" — fetches a chunk from
//! the global queue (a passive-target RMA transaction, serialized at the
//! target by a [`Resource`]) and deposits it locally. Workers that find
//! the queue empty while a peer's refill is in flight re-probe after a
//! short back-off instead of blocking — nobody ever waits at a chunk
//! boundary (the paper's Figure 3 scenario).
//!
//! A worker terminates once the global queue is exhausted and its local
//! queue is empty.

use super::{Jitter, RmaTape, SimConfig, SimResult};
use crate::queue::LocalQueue;
use crate::stats::RunStats;
use cluster_sim::trace::SegmentKind;
use cluster_sim::{ContendedLock, EventQueue, Resource, Time, Trace};
use dls::{ChunkCalculator, LoopSpec, SchedState};
use mpisim::{AtomicOpKind, LockKind, RmaEvent};
use workloads::CostTable;

// Window layout mirrored from the live executor (see `super::layout`),
// so the synthesized log and a recorded live log describe the same
// protocol.
use super::layout::{
    node_win, GLOBAL_DONE, GLOBAL_WIN, GSCHED, GSTEP, HI, LO, REFILLING, STEP, TAKEN,
};

const EXCL: LockKind = LockKind::Exclusive;
const LOCK: RmaEvent = RmaEvent::Lock { kind: EXCL, target: 0 };
const UNLOCK: RmaEvent = RmaEvent::Unlock { kind: EXCL, target: 0 };

fn get(disp: usize) -> RmaEvent {
    RmaEvent::Get { target: 0, disp, len: 1 }
}

fn put(disp: usize) -> RmaEvent {
    RmaEvent::Put { target: 0, disp, len: 1 }
}

enum Event {
    /// Worker is free: probe the local queue.
    TryLocal(u32),
    /// Worker's RMA request reaches the global queue's host.
    GlobalArrive(u32),
    /// Worker's RMA response arrived: deposit `Some((lo, hi))`, or mark
    /// the node globally done on `None`.
    Deposit(u32, Option<(u64, u64)>),
}

struct NodeState {
    queue: LocalQueue,
    lock: ContendedLock,
    /// A worker of this node is fetching from the global queue.
    refilling: bool,
    /// The global queue was observed exhausted by this node's refiller.
    global_done: bool,
    /// Adaptive weight history (AWF intra), when enabled.
    awf: Option<crate::adaptive::AwfHistory>,
}

/// Run the MPI+MPI approach in virtual time.
pub fn simulate_mpi_mpi(cfg: &SimConfig, table: &CostTable) -> SimResult {
    let nodes = cfg.topology.nodes;
    let wpn = cfg.topology.workers_per_node;
    let total_workers = cfg.topology.total_workers();
    let n_iters = table.n_iters();
    let inter_spec = LoopSpec::new(n_iters, nodes);
    let m = &cfg.machine;

    let mut global_state = SchedState::START;
    let mut global_q = Resource::new();
    let mut node_states: Vec<NodeState> = (0..nodes)
        .map(|_| NodeState {
            queue: LocalQueue::new(),
            lock: ContendedLock::new(m.shm_poll_penalty_ns),
            refilling: false,
            global_done: false,
            awf: cfg.awf.map(|v| crate::adaptive::AwfHistory::new(v, wpn)),
        })
        .collect();

    let mut stats = RunStats::new(total_workers as usize, nodes as usize);
    let mut trace = if cfg.trace { Trace::recording() } else { Trace::disabled() };
    let mut executed = Vec::new();
    let mut events = EventQueue::new();
    let mut finish_time = vec![0 as Time; total_workers as usize];
    let mut jitter = Jitter::new(cfg.perturb, wpn, total_workers);
    let mut tape = RmaTape::new(cfg.record_rma);
    let single_atomic = cfg.global_mode == crate::config::GlobalQueueMode::SingleAtomic;

    if cfg.record_rma {
        for w in 0..total_workers {
            let node_idx = (w / wpn) as usize;
            tape.tx(
                0,
                GLOBAL_WIN,
                w,
                &[RmaEvent::Attach { shared: false, comm_size: total_workers }],
            );
            tape.tx(
                0,
                node_win(node_idx),
                w % wpn,
                &[RmaEvent::Attach { shared: true, comm_size: wpn }],
            );
            if single_atomic {
                // The live executor's run-long passive epoch for bare
                // fetch_and_op on the global counter.
                tape.tx(0, GLOBAL_WIN, w, &[RmaEvent::LockAll]);
            }
        }
    }

    for w in 0..total_workers {
        events.push(jitter.delay(w), Event::TryLocal(w));
    }

    // Take a sub-chunk (queue known non-empty), record it, and schedule
    // the worker's next probe after the compute burst. `sched_ns` is the
    // scheduling time this worker spent obtaining the sub-chunk (charged
    // to its AWF history under the -D/-E variants).
    #[allow(clippy::too_many_arguments)]
    let execute_sub = |w: u32,
                       node: &mut NodeState,
                       node_idx: usize,
                       grant_end: Time,
                       sched_ns: Time,
                       stats: &mut RunStats,
                       trace: &mut Trace,
                       executed: &mut Vec<(u32, crate::queue::SubChunk)>,
                       events: &mut EventQueue<Event>,
                       jitter: &mut Jitter,
                       tape: &mut RmaTape| {
        let local = w % wpn;
        // AWF is *adaptive weighted factoring*: it replaces the intra
        // technique with WF driven by the learned weights.
        let (technique, weight) = match &node.awf {
            Some(h) => (dls::Technique::wf(), h.weight(local)),
            None => (cfg.spec.intra, cfg.weights.get(w as usize).copied().unwrap_or(1.0)),
        };
        let ctx = dls::technique::WorkerCtx { worker: local, weight };
        let sub =
            node.queue.take_sub_chunk_for(&technique, wpn, ctx).expect("caller checked non-empty");
        let cost = cfg.scaled_cost(w, table.range_cost(sub.start, sub.end));
        if let Some(h) = &mut node.awf {
            h.record(local, sub.len(), cost, sched_ns);
        }
        trace.record(w, grant_end, grant_end + cost, SegmentKind::Compute);
        stats.workers[w as usize].iterations += sub.len();
        stats.workers[w as usize].sub_chunks += 1;
        stats.nodes[node_idx].sub_chunks += 1;
        if cfg.record_chunks {
            executed.push((w, sub));
        }
        // The probe-and-take window transaction this grant modelled:
        // one MPI_Win_lock / sync / read counters / advance counters /
        // sync / unlock cycle on the node's shared window.
        tape.tx(
            grant_end,
            node_win(node_idx),
            w % wpn,
            &[
                LOCK,
                RmaEvent::Sync,
                get(LO),
                get(HI),
                get(STEP),
                get(TAKEN),
                put(STEP),
                put(TAKEN),
                RmaEvent::Sync,
                UNLOCK,
            ],
        );
        events.push(grant_end + cost + jitter.delay(w), Event::TryLocal(w));
    };

    while let Some((t, ev)) = events.pop() {
        match ev {
            Event::TryLocal(w) => {
                let node_idx = (w / wpn) as usize;
                let node = &mut node_states[node_idx];
                // One MPI_Win_lock / update / MPI_Win_sync / unlock cycle.
                let grant = node.lock.acquire(t, m.shm_lock_hold_ns);
                stats.nodes[node_idx].lock_acquisitions += 1;
                if grant.queued_ahead > 0 {
                    stats.nodes[node_idx].lock_contended += 1;
                }
                trace.record(w, t, grant.end, SegmentKind::Sched);
                if !node.queue.is_empty() {
                    execute_sub(
                        w,
                        node,
                        node_idx,
                        grant.end,
                        grant.end - t,
                        &mut stats,
                        &mut trace,
                        &mut executed,
                        &mut events,
                        &mut jitter,
                        &mut tape,
                    );
                } else {
                    // An empty probe reads the queue counters and both
                    // flags under the lock; becoming the refiller also
                    // publishes the refilling flag before releasing.
                    let probe = [
                        LOCK,
                        RmaEvent::Sync,
                        get(LO),
                        get(HI),
                        get(STEP),
                        get(TAKEN),
                        get(GLOBAL_DONE),
                        get(REFILLING),
                    ];
                    if node.global_done {
                        tape.tx_slice_then(
                            grant.end,
                            node_win(node_idx),
                            w % wpn,
                            &probe,
                            &[UNLOCK],
                        );
                        finish_time[w as usize] = grant.end;
                    } else if !node.refilling
                        && (cfg.refill == super::RefillPolicy::Fastest || w % wpn == 0)
                    {
                        // This worker takes the refill responsibility: under
                        // the paper's policy because it is the fastest free
                        // one; under the ablation because it is the node's
                        // dedicated local master.
                        tape.tx_slice_then(
                            grant.end,
                            node_win(node_idx),
                            w % wpn,
                            &probe,
                            &[put(REFILLING), RmaEvent::Sync, UNLOCK],
                        );
                        node.refilling = true;
                        events.push(grant.end + m.net.latency_ns, Event::GlobalArrive(w));
                    } else {
                        // A peer's refill is in flight: re-probe shortly.
                        tape.tx_slice_then(
                            grant.end,
                            node_win(node_idx),
                            w % wpn,
                            &probe,
                            &[UNLOCK],
                        );
                        trace.record(w, grant.end, grant.end + m.shm_retry_ns, SegmentKind::Sync);
                        events
                            .push(grant.end + m.shm_retry_ns + jitter.delay(w), Event::TryLocal(w));
                    }
                }
            }
            Event::GlobalArrive(w) => {
                // Serialized service at the global queue's host; then the
                // response travels back and the origin runs the
                // distributed chunk calculation. The lock-guarded
                // two-counter variant pays two extra round trips
                // (MPI_Win_lock + MPI_Win_unlock) per fetch.
                let (_, served) = global_q.request(t, m.rma_service_ns);
                stats.global_accesses += 1;
                let mode_extra = match cfg.global_mode {
                    crate::config::GlobalQueueMode::SingleAtomic => 0,
                    crate::config::GlobalQueueMode::LockedCounters => 2 * m.net.rma_round_trip(),
                };
                let done = served + m.net.latency_ns + m.chunk_calc_ns + mode_extra;
                trace.record(w, t, done, SegmentKind::Sched);
                let exhausted = global_state.exhausted(&inter_spec);
                // The RMA transaction at the global queue's host, keyed
                // by its serialized service completion so exclusive
                // epochs of distinct fetches never overlap.
                if single_atomic {
                    tape.tx(
                        served,
                        GLOBAL_WIN,
                        w,
                        &[
                            RmaEvent::Atomic {
                                target: 0,
                                disp: GSTEP,
                                op: AtomicOpKind::FetchAndOp,
                            },
                            RmaEvent::Flush { target: 0 },
                        ],
                    );
                } else if exhausted {
                    tape.tx(served, GLOBAL_WIN, w, &[LOCK, get(GSTEP), get(GSCHED), UNLOCK]);
                } else {
                    tape.tx(
                        served,
                        GLOBAL_WIN,
                        w,
                        &[LOCK, get(GSTEP), get(GSCHED), put(GSTEP), put(GSCHED), UNLOCK],
                    );
                }
                let payload = if exhausted {
                    None
                } else {
                    let size = cfg.spec.inter.chunk_size(
                        &inter_spec,
                        global_state,
                        dls::technique::WorkerCtx::default(),
                    );
                    let chunk = global_state.take(&inter_spec, size).expect("not exhausted");
                    stats.workers[w as usize].global_fetches += 1;
                    Some((chunk.start, chunk.end()))
                };
                events.push(done, Event::Deposit(w, payload));
            }
            Event::Deposit(w, payload) => {
                let node_idx = (w / wpn) as usize;
                let node = &mut node_states[node_idx];
                let grant = node.lock.acquire(t, m.shm_lock_hold_ns);
                stats.nodes[node_idx].lock_acquisitions += 1;
                if grant.queued_ahead > 0 {
                    stats.nodes[node_idx].lock_contended += 1;
                }
                trace.record(w, t, grant.end, SegmentKind::Sched);
                node.refilling = false;
                match payload {
                    Some((lo, hi)) => {
                        tape.tx(
                            grant.end,
                            node_win(node_idx),
                            w % wpn,
                            &[
                                LOCK,
                                put(LO),
                                put(HI),
                                put(STEP),
                                put(TAKEN),
                                put(REFILLING),
                                RmaEvent::Sync,
                                UNLOCK,
                            ],
                        );
                        node.queue.deposit(lo, hi);
                        stats.nodes[node_idx].deposits += 1;
                        execute_sub(
                            w,
                            node,
                            node_idx,
                            grant.end,
                            grant.end - t,
                            &mut stats,
                            &mut trace,
                            &mut executed,
                            &mut events,
                            &mut jitter,
                            &mut tape,
                        );
                    }
                    None => {
                        tape.tx(
                            grant.end,
                            node_win(node_idx),
                            w % wpn,
                            &[LOCK, put(GLOBAL_DONE), put(REFILLING), RmaEvent::Sync, UNLOCK],
                        );
                        node.global_done = true;
                        // The refiller itself may still find leftovers
                        // deposited by racing peers; re-probe once.
                        if node.queue.is_empty() {
                            finish_time[w as usize] = grant.end;
                        } else {
                            events.push(grant.end + jitter.delay(w), Event::TryLocal(w));
                        }
                    }
                }
            }
        }
    }

    let makespan = finish_time.iter().copied().max().unwrap_or(0);
    for (w, &ft) in finish_time.iter().enumerate() {
        trace.record(w as u32, ft, makespan, SegmentKind::Idle);
    }
    stats.total_iterations = stats.workers.iter().map(|w| w.iterations).sum();
    for (i, node) in node_states.iter().enumerate() {
        stats.nodes[i].lock_polls = node.lock.polls();
    }
    let lock_poll_penalty = node_states.iter().map(|n| n.lock.total_penalty()).sum();

    if cfg.record_rma && single_atomic {
        // Close each worker's run-long global-window epoch where its
        // last probe released the node lock.
        for w in 0..total_workers {
            tape.tx(finish_time[w as usize], GLOBAL_WIN, w, &[RmaEvent::UnlockAll]);
        }
    }

    SimResult { makespan, stats, trace, lock_poll_penalty, executed, rma: tape.finish() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HierSpec};
    use cluster_sim::{MachineParams, SimTopology};
    use dls::verify::check_exactly_once;
    use dls::Kind;
    use workloads::synthetic::Synthetic;

    fn run(spec: HierSpec, nodes: u32, wpn: u32, n: u64) -> SimResult {
        let w = Synthetic::uniform(n, 50, 500, 7);
        let table = CostTable::build(&w);
        let mut cfg = SimConfig::new(
            SimTopology::new(nodes, wpn),
            MachineParams::default(),
            spec,
            Approach::MpiMpi,
        );
        cfg.record_chunks = true;
        simulate_mpi_mpi(&cfg, &table)
    }

    fn assert_covers(result: &SimResult, n: u64) {
        let chunks: Vec<dls::Chunk> = result
            .executed
            .iter()
            .map(|(_, s)| dls::Chunk { start: s.start, len: s.len(), step: 0 })
            .collect();
        check_exactly_once(&chunks, n).expect("every iteration exactly once");
        assert_eq!(result.stats.total_iterations, n);
    }

    #[test]
    fn executes_every_iteration_exactly_once() {
        for inter in [Kind::STATIC, Kind::GSS, Kind::TSS, Kind::FAC2] {
            for intra in [Kind::STATIC, Kind::SS, Kind::GSS, Kind::TSS, Kind::FAC2] {
                let r = run(HierSpec::new(inter, intra), 4, 4, 3000);
                assert_covers(&r, 3000);
            }
        }
    }

    #[test]
    fn single_node_single_worker() {
        let r = run(HierSpec::new(Kind::GSS, Kind::GSS), 1, 1, 100);
        assert_covers(&r, 100);
        assert!(r.makespan > 0);
    }

    #[test]
    fn deterministic() {
        let a = run(HierSpec::new(Kind::GSS, Kind::STATIC), 4, 4, 2000);
        let b = run(HierSpec::new(Kind::GSS, Kind::STATIC), 4, 4, 2000);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.executed, b.executed);
    }

    #[test]
    fn more_nodes_faster() {
        let slow = run(HierSpec::new(Kind::GSS, Kind::GSS), 2, 4, 20_000);
        let fast = run(HierSpec::new(Kind::GSS, Kind::GSS), 8, 4, 20_000);
        assert!(
            fast.makespan < slow.makespan,
            "8 nodes ({}) should beat 2 nodes ({})",
            fast.makespan,
            slow.makespan
        );
    }

    #[test]
    fn static_inter_one_chunk_per_node() {
        let r = run(HierSpec::new(Kind::STATIC, Kind::GSS), 4, 2, 1000);
        let fetches: u64 = r.stats.workers.iter().map(|w| w.global_fetches).sum();
        assert_eq!(fetches, 4, "STATIC inter over 4 nodes = 4 chunks");
        // The refill-flag protocol must spread them one per node.
        for n in &r.stats.nodes {
            assert_eq!(n.deposits, 1);
        }
    }

    #[test]
    fn ss_intra_contends_on_the_lock() {
        let r = run(HierSpec::new(Kind::STATIC, Kind::SS), 2, 8, 4000);
        assert!(r.lock_poll_penalty > 0, "SS must trigger lock polling");
        let contended: u64 = r.stats.nodes.iter().map(|n| n.lock_contended).sum();
        assert!(contended > 0);
        let polls: u64 = r.stats.nodes.iter().map(|n| n.lock_polls).sum();
        assert!(polls >= contended, "each contended acquire polls at least once");
    }

    #[test]
    fn static_intra_less_lock_pressure_than_ss() {
        let ss = run(HierSpec::new(Kind::STATIC, Kind::SS), 2, 8, 4000);
        let st = run(HierSpec::new(Kind::STATIC, Kind::STATIC), 2, 8, 4000);
        assert!(st.lock_poll_penalty < ss.lock_poll_penalty);
        let acq =
            |r: &SimResult| -> u64 { r.stats.nodes.iter().map(|n| n.lock_acquisitions).sum() };
        assert!(acq(&st) < acq(&ss));
    }

    #[test]
    fn slowdown_injection_shifts_work_away() {
        // Compute-dominated iterations (50 us >> lock hold), so the
        // lock never equalises the workers by itself.
        let w = Synthetic::constant(4000, 50_000);
        let table = CostTable::build(&w);
        let mut cfg = SimConfig::new(
            SimTopology::new(1, 4),
            MachineParams::default(),
            HierSpec::new(Kind::GSS, Kind::SS),
            Approach::MpiMpi,
        );
        cfg.slowdown = vec![4.0, 1.0, 1.0, 1.0]; // worker 0 is 4x slower
        let r = simulate_mpi_mpi(&cfg, &table);
        assert_eq!(r.stats.total_iterations, 4000);
        let iters: Vec<u64> = r.stats.workers.iter().map(|w| w.iterations).collect();
        assert!(
            iters[0] < iters[1] / 2,
            "SS must give the slow worker far fewer iterations: {iters:?}"
        );
    }

    #[test]
    fn trace_records_when_enabled() {
        let w = Synthetic::constant(200, 100);
        let table = CostTable::build(&w);
        let mut cfg = SimConfig::new(
            SimTopology::new(1, 2),
            MachineParams::default(),
            HierSpec::new(Kind::GSS, Kind::GSS),
            Approach::MpiMpi,
        );
        cfg.trace = true;
        let r = simulate_mpi_mpi(&cfg, &table);
        assert!(!r.trace.segments().is_empty());
        let totals = r.trace.totals();
        assert!(totals.compute > 0);
        assert!(totals.sched > 0);
    }
}
