//! The RMA window layout of the MPI+MPI protocol — the single source of
//! truth shared by the virtual-time executor's synthesized access logs
//! ([`super::RmaTape`]), the live executor, and external tooling that
//! replays abstract protocol traces against the same displacements
//! (the `model-check` crate's counterexample replay).
//!
//! Window 0 is the global queue; window `1 + node` is that node's
//! shared-memory local queue. Displacements within each window are the
//! protocol's counters and flags.

/// Window id of the global work queue.
pub const GLOBAL_WIN: u64 = 0;

/// Local-queue window id for node `node_idx`.
pub fn node_win(node_idx: usize) -> u64 {
    1 + node_idx as u64
}

/// Local-queue slot: first iteration of the deposited chunk.
pub const LO: usize = 2;
/// Local-queue slot: one past the last iteration of the deposited chunk.
pub const HI: usize = 3;
/// Local-queue slot: intra-node scheduling step within the chunk.
pub const STEP: usize = 4;
/// Local-queue slot: iterations of the chunk already handed out.
pub const TAKEN: usize = 5;
/// Local-queue flag: a worker of this node is fetching from the global
/// queue.
pub const REFILLING: usize = 0;
/// Local-queue flag: the global queue was observed exhausted.
pub const GLOBAL_DONE: usize = 1;
/// Global-queue slot: the latest inter-node scheduling step.
pub const GSTEP: usize = 0;
/// Global-queue slot: total iterations scheduled at the inter level.
pub const GSCHED: usize = 1;
