//! Virtual-time executor for the baseline hybrid MPI+OpenMP approach.
//!
//! One MPI process per node. Its main thread (thread 0) fetches chunks
//! from the global queue; an OpenMP worksharing region executes each
//! chunk over the team with `schedule(static|dynamic|guided)` and an
//! **implicit barrier at the end of the region**: every thread waits for
//! the slowest one before the next chunk can be fetched — the idle time
//! the paper's Figure 2 illustrates and its MPI+MPI approach removes.

use super::{Jitter, RmaTape, SimConfig, SimResult};
use crate::queue::{LocalQueue, SubChunk};
use crate::stats::RunStats;
use cluster_sim::trace::SegmentKind;
use cluster_sim::{EventQueue, Resource, Time, Trace};
use dls::{ChunkCalculator, LoopSpec, SchedState};
use mpisim::{LockKind, RmaEvent};
use workloads::CostTable;

const GSTEP: usize = 0;
const GSCHED: usize = 1;

fn get(disp: usize) -> RmaEvent {
    RmaEvent::Get { target: 0, disp, len: 1 }
}

fn put(disp: usize) -> RmaEvent {
    RmaEvent::Put { target: 0, disp, len: 1 }
}

enum Event {
    /// Node `n`'s master thread's RMA request reaches the global
    /// queue's host.
    FetchArrive(u32),
    /// A dead node's chunk lease timed out (fault injection only).
    Reclaim { lease: resilience::LeaseId },
}

/// Run the MPI+OpenMP approach in virtual time.
pub fn simulate_mpi_omp(cfg: &SimConfig, table: &CostTable) -> SimResult {
    let nodes = cfg.topology.nodes;
    let threads = cfg.topology.workers_per_node;
    let total_workers = cfg.topology.total_workers();
    let n_iters = table.n_iters();
    let inter_spec = LoopSpec::new(n_iters, nodes);
    let m = &cfg.machine;

    let mut global_state = SchedState::START;
    let mut global_q = Resource::new();
    let mut stats = RunStats::new(total_workers as usize, nodes as usize);
    let mut trace = if cfg.trace { Trace::recording() } else { Trace::disabled() };
    let mut executed: Vec<(u32, SubChunk)> = Vec::new();
    let mut events = EventQueue::new();
    let mut node_finish = vec![0 as Time; nodes as usize];
    // End of each node's previous worksharing region, for attributing
    // the fetch gap as Sync time on the non-master threads.
    let mut region_ends = vec![0 as Time; nodes as usize];
    let mut jitter = Jitter::new(cfg.perturb, threads, total_workers);
    let mut tape = RmaTape::new(cfg.record_rma);

    // Fault-injection state. Under MPI+OpenMP a crash of *any* thread
    // kills its whole node — the OpenMP team dies with the MPI process.
    // Crashes take effect at protocol-step boundaries (fetch, deposit,
    // end of region), the same discretization the model checker uses.
    let plan_active = cfg.faults.is_active();
    let rp = cfg.faults.recovery;
    let mut dead_node = vec![false; nodes as usize];
    let mut reclaim_queue: Vec<(u64, u64)> = Vec::new();
    let mut leases = resilience::LeaseTable::new();
    let mut recovery: Vec<resilience::RecoveryEvent> = Vec::new();
    // Earliest crash fault on any of the node's threads.
    let node_crash = |node: u32| -> Option<(Time, u32)> {
        (0..threads)
            .filter_map(|i| {
                let w = node * threads + i;
                let c = match (cfg.faults.crash_at(w), cfg.faults.crash_holding_lock_at(w)) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }?;
                Some((c, w))
            })
            .min()
    };

    if cfg.record_rma {
        // Window ranks are the node masters (one MPI process per node).
        for node in 0..nodes {
            tape.tx(0, 0, node, &[RmaEvent::Attach { shared: false, comm_size: nodes }]);
        }
    }

    for node in 0..nodes {
        events.push(m.net.latency_ns + jitter.delay(node * threads), Event::FetchArrive(node));
    }

    while let Some((t, ev)) = events.pop() {
        let node = match ev {
            Event::FetchArrive(n) => n,
            Event::Reclaim { lease } => {
                let Some(&resilience::Lease { owner, state, .. }) = leases.get(lease) else {
                    continue;
                };
                if state != resilience::LeaseState::Active {
                    continue;
                }
                // Hand the expired lease's range to the first surviving
                // node's master and wake it.
                let Some(target) = (0..nodes).find(|&n| !dead_node[n as usize]) else {
                    continue; // nobody left alive to reclaim
                };
                let by = target * threads;
                let (lo, hi) = leases.reclaim(lease, by).expect("lease checked active");
                recovery.push(resilience::RecoveryEvent::LeaseExpired { owner, lo, hi, at_ns: t });
                recovery.push(resilience::RecoveryEvent::Reclaim { by, owner, lo, hi, at_ns: t });
                stats.workers[by as usize].reclaims += 1;
                reclaim_queue.push((lo, hi));
                events.push(t + m.net.latency_ns, Event::FetchArrive(target));
                continue;
            }
        };
        if plan_active {
            if dead_node[node as usize] {
                continue;
            }
            if let Some((c, rank)) = node_crash(node).filter(|&(c, _)| c <= t) {
                // Died at (or before) this fetch boundary: regions
                // completed earlier are counted, nothing is in hand.
                let at = c.max(region_ends[node as usize]);
                dead_node[node as usize] = true;
                node_finish[node as usize] = at;
                recovery.push(resilience::RecoveryEvent::Crash {
                    rank,
                    at_ns: at,
                    holding_lock: false,
                });
                continue;
            }
        }
        let (_, served) = global_q.request(t, m.rma_service_ns);
        stats.global_accesses += 1;
        let master = node * threads;
        let fetched_at =
            served + m.net.latency_ns + m.chunk_calc_ns + cfg.faults.message_delay(master, served);
        trace.record(master, t - m.net.latency_ns, fetched_at, SegmentKind::Sched);

        let lock = RmaEvent::Lock { kind: LockKind::Exclusive, target: 0 };
        let unlock = RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 };
        // Reclaimed ranges take priority over fresh global chunks.
        let reclaimed = if plan_active { reclaim_queue.pop() } else { None };
        if reclaimed.is_none() && global_state.exhausted(&inter_spec) {
            tape.tx(served, 0, node, &[lock, get(GSTEP), get(GSCHED), unlock]);
            node_finish[node as usize] = fetched_at;
            continue;
        }
        let (c_lo, c_hi) = match reclaimed {
            Some(range) => range,
            None => {
                tape.tx(
                    served,
                    0,
                    node,
                    &[lock, get(GSTEP), get(GSCHED), put(GSTEP), put(GSCHED), unlock],
                );
                let size = cfg.spec.inter.chunk_size(
                    &inter_spec,
                    global_state,
                    dls::technique::WorkerCtx::default(),
                );
                let chunk = global_state.take(&inter_spec, size).expect("not exhausted");
                stats.workers[master as usize].global_fetches += 1;
                (chunk.start, chunk.end())
            }
        };
        stats.nodes[node as usize].deposits += 1;

        if plan_active {
            // Died with the fetched chunk in hand (before the team
            // starts the region), or on the fetch that a CrashAsRefiller
            // fault targets: the chunk is lost until its lease expires.
            let in_hand = node_crash(node).filter(|&(c, _)| c <= fetched_at).or_else(|| {
                cfg.faults.crash_as_refiller_after(master).and_then(|k| {
                    (stats.workers[master as usize].global_fetches >= u64::from(k))
                        .then_some((served, master))
                })
            });
            if let Some((c, rank)) = in_hand {
                let at = c.max(region_ends[node as usize]);
                dead_node[node as usize] = true;
                node_finish[node as usize] = at;
                recovery.push(resilience::RecoveryEvent::Crash {
                    rank,
                    at_ns: at,
                    holding_lock: false,
                });
                let id = leases.grant(rank, c_lo, c_hi, served);
                events.push(at + rp.lease_timeout_ns, Event::Reclaim { lease: id });
                continue;
            }
        }

        // While the master is in MPI, the rest of the team sits at the
        // region boundary.
        for i in 1..threads {
            let w = node * threads + i;
            trace.record(w, region_ends[node as usize], fetched_at, SegmentKind::Sync);
        }

        // ---- OpenMP worksharing region over [c_lo, c_hi) ----
        let region_start = fetched_at;
        let finishes = run_team(
            cfg,
            table,
            node,
            threads,
            c_lo,
            c_hi,
            region_start,
            &mut stats,
            &mut executed,
            &mut trace,
            &mut jitter,
        );
        // Implicit barrier: everyone advances to the slowest thread.
        let slowest = finishes.iter().copied().max().expect("non-empty team");
        let region_end = slowest + m.omp_barrier(threads);
        for (i, &f) in finishes.iter().enumerate() {
            let w = node * threads + i as u32;
            trace.record(w, f, region_end, SegmentKind::Sync);
        }
        region_ends[node as usize] = region_end;
        events.push(region_end + m.net.latency_ns + jitter.delay(master), Event::FetchArrive(node));
    }

    let makespan = node_finish.iter().copied().max().unwrap_or(0);
    for node in 0..nodes {
        for i in 0..threads {
            let w = node * threads + i;
            trace.record(w, node_finish[node as usize], makespan, SegmentKind::Idle);
        }
    }
    stats.total_iterations = stats.workers.iter().map(|w| w.iterations).sum();

    SimResult {
        makespan,
        stats,
        trace,
        lock_poll_penalty: 0,
        executed,
        rma: tape.finish(),
        recovery,
    }
}

/// Execute one chunk over the team; returns each thread's finish time.
#[allow(clippy::too_many_arguments)]
fn run_team(
    cfg: &SimConfig,
    table: &CostTable,
    node: u32,
    threads: u32,
    lo: u64,
    hi: u64,
    start: Time,
    stats: &mut RunStats,
    executed: &mut Vec<(u32, SubChunk)>,
    trace: &mut Trace,
    jitter: &mut Jitter,
) -> Vec<Time> {
    let m = &cfg.machine;
    let intra = &cfg.spec.intra;
    let len = hi - lo;

    if !intra.is_dynamic() {
        // schedule(static): contiguous blocks of ceil(len/threads),
        // assigned round-robin by thread id; no dispatch cost.
        let block = len.div_ceil(u64::from(threads));
        let mut finishes = Vec::with_capacity(threads as usize);
        for i in 0..threads {
            let w = node * threads + i;
            let s = lo + u64::from(i) * block;
            let e = (s + block).min(hi);
            let mut finish = start;
            if s < e {
                let cost = cfg.cost_at(w, start, table.range_cost(s, e));
                trace.record(w, start, start + cost, SegmentKind::Compute);
                stats.workers[w as usize].iterations += e - s;
                stats.workers[w as usize].sub_chunks += 1;
                stats.nodes[node as usize].sub_chunks += 1;
                if cfg.record_chunks {
                    executed.push((w, SubChunk { start: s, end: e }));
                }
                finish += cost;
            }
            finishes.push(finish);
        }
        return finishes;
    }

    // schedule(dynamic,k) / schedule(guided,k) (and, under MPI+MPI-only
    // combinations that tests exercise directly, any dynamic technique):
    // threads pull sub-chunks from a shared dispatcher; each dispatch is
    // one atomic in the OpenMP runtime, serialized per node.
    let mut queue = LocalQueue::new();
    queue.deposit(lo, hi);
    let mut dispatcher = Resource::new();
    // Perturbation staggers each thread's arrival at the dispatcher,
    // reshuffling which thread wins each pull.
    let mut clocks: Vec<Time> =
        (0..threads).map(|i| start + jitter.delay(node * threads + i)).collect();
    loop {
        // The earliest-free thread grabs the next sub-chunk.
        let (i, _) =
            clocks.iter().enumerate().min_by_key(|&(i, &c)| (c, i)).expect("non-empty team");
        let w = node * threads + i as u32;
        let (_, dispatched) = dispatcher.request(clocks[i], m.omp_dispatch_ns);
        let Some(sub) = queue.take_sub_chunk(intra, threads) else {
            break;
        };
        trace.record(w, clocks[i], dispatched, SegmentKind::Sched);
        let cost = cfg.cost_at(w, dispatched, table.range_cost(sub.start, sub.end));
        trace.record(w, dispatched, dispatched + cost, SegmentKind::Compute);
        stats.workers[w as usize].iterations += sub.len();
        stats.workers[w as usize].sub_chunks += 1;
        stats.nodes[node as usize].sub_chunks += 1;
        if cfg.record_chunks {
            executed.push((w, sub));
        }
        clocks[i] = dispatched + cost;
    }
    clocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HierSpec};
    use cluster_sim::{MachineParams, SimTopology};
    use dls::verify::check_exactly_once;
    use dls::Kind;
    use workloads::synthetic::Synthetic;

    fn run(spec: HierSpec, nodes: u32, wpn: u32, n: u64) -> SimResult {
        let w = Synthetic::uniform(n, 50, 500, 7);
        let table = CostTable::build(&w);
        let mut cfg = SimConfig::new(
            SimTopology::new(nodes, wpn),
            MachineParams::default(),
            spec,
            Approach::MpiOpenMp,
        );
        cfg.record_chunks = true;
        simulate_mpi_omp(&cfg, &table)
    }

    fn assert_covers(result: &SimResult, n: u64) {
        let chunks: Vec<dls::Chunk> = result
            .executed
            .iter()
            .map(|(_, s)| dls::Chunk { start: s.start, len: s.len(), step: 0 })
            .collect();
        check_exactly_once(&chunks, n).expect("every iteration exactly once");
        assert_eq!(result.stats.total_iterations, n);
    }

    #[test]
    fn executes_every_iteration_exactly_once() {
        for inter in [Kind::STATIC, Kind::GSS, Kind::TSS, Kind::FAC2] {
            for intra in [Kind::STATIC, Kind::SS, Kind::GSS] {
                let r = run(HierSpec::new(inter, intra), 4, 4, 3000);
                assert_covers(&r, 3000);
            }
        }
    }

    #[test]
    fn only_masters_fetch() {
        let r = run(HierSpec::new(Kind::GSS, Kind::GSS), 4, 4, 5000);
        for (w, ws) in r.stats.workers.iter().enumerate() {
            if w % 4 != 0 {
                assert_eq!(ws.global_fetches, 0, "worker {w} is not a master");
            }
        }
        let fetches: u64 = r.stats.workers.iter().map(|w| w.global_fetches).sum();
        assert!(fetches >= 4);
    }

    #[test]
    fn deterministic() {
        let a = run(HierSpec::new(Kind::TSS, Kind::GSS), 4, 4, 2000);
        let b = run(HierSpec::new(Kind::TSS, Kind::GSS), 4, 4, 2000);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.executed, b.executed);
    }

    #[test]
    fn static_intra_has_barrier_idle_time() {
        // Imbalanced costs + static intra => threads wait at each
        // end-of-chunk barrier (the paper's Figure 2).
        let w = Synthetic::linear_increasing(2000, 10, 2000);
        let table = CostTable::build(&w);
        let mut cfg = SimConfig::new(
            SimTopology::new(2, 4),
            MachineParams::default(),
            HierSpec::new(Kind::GSS, Kind::STATIC),
            Approach::MpiOpenMp,
        );
        cfg.trace = true;
        let r = simulate_mpi_omp(&cfg, &table);
        let totals = r.trace.totals();
        assert!(
            totals.sync > totals.compute / 20,
            "expected visible barrier idle time, sync = {} compute = {}",
            totals.sync,
            totals.compute
        );
    }

    #[test]
    fn more_nodes_faster() {
        let slow = run(HierSpec::new(Kind::GSS, Kind::GSS), 2, 4, 20_000);
        let fast = run(HierSpec::new(Kind::GSS, Kind::GSS), 8, 4, 20_000);
        assert!(fast.makespan < slow.makespan);
    }

    #[test]
    fn single_thread_team() {
        let r = run(HierSpec::new(Kind::GSS, Kind::STATIC), 2, 1, 500);
        assert_covers(&r, 500);
    }
}
