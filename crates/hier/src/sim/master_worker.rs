//! The master-worker execution models the paper's related work builds
//! on — implemented as virtual-time executors so the paper's motivation
//! ("for a large number of workers, the master becomes a performance
//! bottleneck") is reproducible, not just cited.
//!
//! * **Flat master-worker** (DLB-tool style, Cariño & Banicescu): every
//!   worker requests its next chunk directly from one global master
//!   over the network; the chunk calculus runs at the master with the
//!   technique spanning *all* workers.
//! * **Hierarchical master-worker** (HDSS style, Chronopoulos et al.):
//!   a dedicated global master hands chunks to per-node local masters
//!   (inter-node technique over nodes); workers request sub-chunks from
//!   their local master over intra-node messages (intra technique over
//!   the node's workers).
//!
//! Both masters are *dedicated* processes: they serve requests
//! serially ([`Resource`]) but do not execute iterations — exactly the
//! serialization the distributed chunk-calculation approach and the
//! paper's shared work queues remove.

use super::{SimConfig, SimResult};
use crate::queue::LocalQueue;
use crate::stats::RunStats;
use cluster_sim::trace::SegmentKind;
use cluster_sim::{EventQueue, Resource, Time, Trace};
use dls::{ChunkCalculator, LoopSpec, SchedState};
use workloads::CostTable;

enum Event {
    /// Worker `w`'s request reaches its serving master.
    RequestArrive(u32),
    /// A local master's forwarded request reaches the global master
    /// (hierarchical only); `u32` is the node.
    GlobalArrive(u32),
    /// The global master's chunk (or exhaustion notice) reaches node
    /// `u32`'s local master.
    ChunkArrive(u32, Option<(u64, u64)>),
    /// A reply with a sub-chunk (or exhaustion) reaches worker `w`.
    Reply(u32, Option<(u64, u64)>),
}

struct MasterState {
    queue: LocalQueue,
    service: Resource,
    /// Workers whose requests wait for a chunk in flight from the
    /// global master.
    pending: std::collections::VecDeque<u32>,
    refilling: bool,
    global_done: bool,
}

/// Run the flat (single-master) model: chunk calculus at the global
/// master with the *inter* technique over all workers.
pub fn simulate_flat_master_worker(cfg: &SimConfig, table: &CostTable) -> SimResult {
    simulate_master_worker_inner(cfg, table, true)
}

/// Run the hierarchical master-worker model (HDSS style).
pub fn simulate_master_worker(cfg: &SimConfig, table: &CostTable) -> SimResult {
    simulate_master_worker_inner(cfg, table, false)
}

fn simulate_master_worker_inner(cfg: &SimConfig, table: &CostTable, flat: bool) -> SimResult {
    let nodes = cfg.topology.nodes;
    let wpn = cfg.topology.workers_per_node;
    let total_workers = cfg.topology.total_workers();
    let n_iters = table.n_iters();
    let m = &cfg.machine;

    // Flat: one level, technique over all workers. Hierarchical: inter
    // over nodes feeding per-node local queues.
    let global_spec = LoopSpec::new(n_iters, if flat { total_workers } else { nodes });
    let mut global_state = SchedState::START;
    let mut global_master = Resource::new();
    let mut locals: Vec<MasterState> = (0..nodes)
        .map(|_| MasterState {
            queue: LocalQueue::new(),
            service: Resource::new(),
            pending: std::collections::VecDeque::new(),
            refilling: false,
            global_done: false,
        })
        .collect();

    let mut stats = RunStats::new(total_workers as usize, nodes as usize);
    let mut trace = if cfg.trace { Trace::recording() } else { Trace::disabled() };
    let mut executed = Vec::new();
    let mut events = EventQueue::new();
    let mut finish_time = vec![0 as Time; total_workers as usize];
    let mut request_sent = vec![0 as Time; total_workers as usize];

    for w in 0..total_workers {
        request_sent[w as usize] = 0;
        let lat = if flat { m.net.latency_ns } else { m.intra_msg_latency_ns };
        events.push(lat, Event::RequestArrive(w));
    }

    while let Some((t, ev)) = events.pop() {
        match ev {
            Event::RequestArrive(w) if flat => {
                // Served directly by the global master.
                let (_, served) = global_master.request(t, m.master_service_ns);
                stats.global_accesses += 1;
                let payload = if global_state.exhausted(&global_spec) {
                    None
                } else {
                    let size = cfg.spec.inter.chunk_size(
                        &global_spec,
                        global_state,
                        dls::technique::WorkerCtx::default(),
                    );
                    let c = global_state.take(&global_spec, size).expect("not exhausted");
                    stats.workers[w as usize].global_fetches += 1;
                    Some((c.start, c.end()))
                };
                events.push(served + m.net.latency_ns, Event::Reply(w, payload));
            }
            Event::RequestArrive(w) => {
                let node = (w / wpn) as usize;
                let lm = &mut locals[node];
                let (_, served) = lm.service.request(t, m.master_service_ns);
                match lm.queue.take_sub_chunk(&cfg.spec.intra, wpn) {
                    Some(sub) => {
                        events.push(
                            served + m.intra_msg_latency_ns,
                            Event::Reply(w, Some((sub.start, sub.end))),
                        );
                        stats.nodes[node].sub_chunks += 1;
                    }
                    None if lm.global_done => {
                        events.push(served + m.intra_msg_latency_ns, Event::Reply(w, None));
                    }
                    None => {
                        lm.pending.push_back(w);
                        if !lm.refilling {
                            lm.refilling = true;
                            events
                                .push(served + m.net.latency_ns, Event::GlobalArrive(node as u32));
                        }
                    }
                }
            }
            Event::GlobalArrive(node) => {
                let (_, served) = global_master.request(t, m.master_service_ns);
                stats.global_accesses += 1;
                let payload = if global_state.exhausted(&global_spec) {
                    None
                } else {
                    let size = cfg.spec.inter.chunk_size(
                        &global_spec,
                        global_state,
                        dls::technique::WorkerCtx::default(),
                    );
                    let c = global_state.take(&global_spec, size).expect("not exhausted");
                    Some((c.start, c.end()))
                };
                events.push(served + m.net.latency_ns, Event::ChunkArrive(node, payload));
            }
            Event::ChunkArrive(node, payload) => {
                let node_idx = node as usize;
                let lm = &mut locals[node_idx];
                lm.refilling = false;
                match payload {
                    Some((lo, hi)) => {
                        lm.queue.deposit(lo, hi);
                        stats.nodes[node_idx].deposits += 1;
                        // Serve the waiting workers in arrival order;
                        // each reply is one more master service.
                        let mut reply_t = t;
                        while let Some(w) = lm.pending.pop_front() {
                            let (_, served) = lm.service.request(reply_t, m.master_service_ns);
                            reply_t = served;
                            match lm.queue.take_sub_chunk(&cfg.spec.intra, wpn) {
                                Some(sub) => {
                                    stats.nodes[node_idx].sub_chunks += 1;
                                    events.push(
                                        served + m.intra_msg_latency_ns,
                                        Event::Reply(w, Some((sub.start, sub.end))),
                                    );
                                }
                                None => {
                                    // Chunk already drained: the
                                    // remaining waiters trigger another
                                    // refill round.
                                    lm.pending.push_front(w);
                                    if !lm.refilling && !lm.global_done {
                                        lm.refilling = true;
                                        events.push(
                                            served + m.net.latency_ns,
                                            Event::GlobalArrive(node),
                                        );
                                    }
                                    break;
                                }
                            }
                        }
                    }
                    None => {
                        lm.global_done = true;
                        while let Some(w) = lm.pending.pop_front() {
                            let (_, served) = lm.service.request(t, m.master_service_ns);
                            events.push(served + m.intra_msg_latency_ns, Event::Reply(w, None));
                        }
                    }
                }
            }
            Event::Reply(w, payload) => {
                trace.record(w, request_sent[w as usize], t, SegmentKind::Sched);
                match payload {
                    Some((lo, hi)) => {
                        let cost = cfg.scaled_cost(w, table.range_cost(lo, hi));
                        trace.record(w, t, t + cost, SegmentKind::Compute);
                        stats.workers[w as usize].iterations += hi - lo;
                        stats.workers[w as usize].sub_chunks += 1;
                        if cfg.record_chunks {
                            executed.push((w, crate::queue::SubChunk { start: lo, end: hi }));
                        }
                        let done = t + cost;
                        request_sent[w as usize] = done;
                        let lat = if flat { m.net.latency_ns } else { m.intra_msg_latency_ns };
                        events.push(done + lat, Event::RequestArrive(w));
                    }
                    None => {
                        finish_time[w as usize] = t;
                    }
                }
            }
        }
    }

    let makespan = finish_time.iter().copied().max().unwrap_or(0);
    for (w, &ft) in finish_time.iter().enumerate() {
        trace.record(w as u32, ft, makespan, SegmentKind::Idle);
    }
    stats.total_iterations = stats.workers.iter().map(|w| w.iterations).sum();

    SimResult { makespan, stats, trace, lock_poll_penalty: 0, executed, rma: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HierSpec};
    use cluster_sim::{MachineParams, SimTopology};
    use dls::verify::check_exactly_once;
    use dls::Kind;
    use workloads::synthetic::Synthetic;

    fn cfg(spec: HierSpec, nodes: u32, wpn: u32) -> SimConfig {
        let mut c = SimConfig::new(
            SimTopology::new(nodes, wpn),
            MachineParams::default(),
            spec,
            Approach::MpiMpi, // unused by these executors
        );
        c.record_chunks = true;
        c
    }

    fn assert_covers(r: &SimResult, n: u64) {
        let chunks: Vec<dls::Chunk> = r
            .executed
            .iter()
            .map(|(_, s)| dls::Chunk { start: s.start, len: s.len(), step: 0 })
            .collect();
        check_exactly_once(&chunks, n).expect("exactly-once");
        assert_eq!(r.stats.total_iterations, n);
    }

    #[test]
    fn hierarchical_covers_exactly_once() {
        for inter in [Kind::STATIC, Kind::GSS, Kind::FAC2] {
            for intra in [Kind::STATIC, Kind::SS, Kind::GSS] {
                let w = Synthetic::uniform(2_000, 20, 300, 3);
                let table = CostTable::build(&w);
                let r = simulate_master_worker(&cfg(HierSpec::new(inter, intra), 3, 4), &table);
                assert_covers(&r, 2_000);
            }
        }
    }

    #[test]
    fn flat_covers_exactly_once() {
        for tech in [Kind::SS, Kind::GSS, Kind::FAC2] {
            let w = Synthetic::uniform(2_000, 20, 300, 3);
            let table = CostTable::build(&w);
            let r = simulate_flat_master_worker(&cfg(HierSpec::new(tech, tech), 3, 4), &table);
            assert_covers(&r, 2_000);
        }
    }

    #[test]
    fn flat_master_bottlenecks_at_scale() {
        // Cheap iterations + SS: the flat master serializes every
        // single-iteration request from 256 workers.
        let w = Synthetic::constant(100_000, 2_000);
        let table = CostTable::build(&w);
        let flat =
            simulate_flat_master_worker(&cfg(HierSpec::new(Kind::SS, Kind::SS), 16, 16), &table);
        let hier = simulate_master_worker(&cfg(HierSpec::new(Kind::GSS, Kind::SS), 16, 16), &table);
        // The flat master handles one request per iteration, serially.
        let serialized = 100_000 * MachineParams::default().master_service_ns;
        assert!(flat.makespan >= serialized);
        assert!(
            flat.makespan > 2 * hier.makespan,
            "flat {} should be far worse than hierarchical {}",
            flat.makespan,
            hier.makespan
        );
    }

    #[test]
    fn hierarchical_close_to_mpi_mpi_but_not_better() {
        // The dedicated-master model pays message latency per sub-chunk;
        // the paper's shared-queue approach avoids the middleman.
        let w = Synthetic::uniform(20_000, 5_000, 50_000, 9);
        let table = CostTable::build(&w);
        let c = cfg(HierSpec::new(Kind::GSS, Kind::GSS), 4, 8);
        let mw = simulate_master_worker(&c, &table);
        let mpi = super::super::simulate_mpi_mpi(&c, &table);
        assert_covers(&mw, 20_000);
        assert!(
            mw.makespan as f64 >= 0.95 * mpi.makespan as f64,
            "master-worker ({}) should not beat the shared queue ({})",
            mw.makespan,
            mpi.makespan
        );
    }

    #[test]
    fn deterministic() {
        let w = Synthetic::uniform(1_000, 10, 100, 1);
        let table = CostTable::build(&w);
        let c = cfg(HierSpec::new(Kind::TSS, Kind::GSS), 2, 3);
        let a = simulate_master_worker(&c, &table);
        let b = simulate_master_worker(&c, &table);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn single_worker_cluster() {
        let w = Synthetic::constant(50, 1_000);
        let table = CostTable::build(&w);
        let r = simulate_master_worker(&cfg(HierSpec::new(Kind::GSS, Kind::GSS), 1, 1), &table);
        assert_covers(&r, 50);
    }
}
