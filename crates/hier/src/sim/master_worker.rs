//! The master-worker execution models the paper's related work builds
//! on — implemented as virtual-time executors so the paper's motivation
//! ("for a large number of workers, the master becomes a performance
//! bottleneck") is reproducible, not just cited.
//!
//! * **Flat master-worker** (DLB-tool style, Cariño & Banicescu): every
//!   worker requests its next chunk directly from one global master
//!   over the network; the chunk calculus runs at the master with the
//!   technique spanning *all* workers.
//! * **Hierarchical master-worker** (HDSS style, Chronopoulos et al.):
//!   a dedicated global master hands chunks to per-node local masters
//!   (inter-node technique over nodes); workers request sub-chunks from
//!   their local master over intra-node messages (intra technique over
//!   the node's workers).
//!
//! Both masters are *dedicated* processes: they serve requests
//! serially ([`Resource`]) but do not execute iterations — exactly the
//! serialization the distributed chunk-calculation approach and the
//! paper's shared work queues remove.

use super::{SimConfig, SimResult};
use crate::queue::LocalQueue;
use crate::stats::RunStats;
use cluster_sim::trace::SegmentKind;
use cluster_sim::{EventQueue, Resource, Time, Trace};
use dls::{ChunkCalculator, LoopSpec, SchedState};
use workloads::CostTable;

enum Event {
    /// Worker `w`'s request reaches its serving master.
    RequestArrive(u32),
    /// A local master's forwarded request reaches the global master
    /// (hierarchical only); `u32` is the node.
    GlobalArrive(u32),
    /// The global master's chunk (or exhaustion notice) reaches node
    /// `u32`'s local master.
    ChunkArrive(u32, Option<(u64, u64)>),
    /// A reply with a sub-chunk (or exhaustion) reaches worker `w`.
    Reply(u32, Option<(u64, u64)>),
    /// A dead worker's chunk lease timed out (fault injection only).
    /// The masters are modelled as reliable; only workers crash.
    Reclaim { lease: resilience::LeaseId },
}

struct MasterState {
    queue: LocalQueue,
    service: Resource,
    /// Workers whose requests wait for a chunk in flight from the
    /// global master.
    pending: std::collections::VecDeque<u32>,
    refilling: bool,
    global_done: bool,
}

/// Run the flat (single-master) model: chunk calculus at the global
/// master with the *inter* technique over all workers.
pub fn simulate_flat_master_worker(cfg: &SimConfig, table: &CostTable) -> SimResult {
    simulate_master_worker_inner(cfg, table, true)
}

/// Run the hierarchical master-worker model (HDSS style).
pub fn simulate_master_worker(cfg: &SimConfig, table: &CostTable) -> SimResult {
    simulate_master_worker_inner(cfg, table, false)
}

fn simulate_master_worker_inner(cfg: &SimConfig, table: &CostTable, flat: bool) -> SimResult {
    let nodes = cfg.topology.nodes;
    let wpn = cfg.topology.workers_per_node;
    let total_workers = cfg.topology.total_workers();
    let n_iters = table.n_iters();
    let m = &cfg.machine;

    // Flat: one level, technique over all workers. Hierarchical: inter
    // over nodes feeding per-node local queues.
    let global_spec = LoopSpec::new(n_iters, if flat { total_workers } else { nodes });
    let mut global_state = SchedState::START;
    let mut global_master = Resource::new();
    let mut locals: Vec<MasterState> = (0..nodes)
        .map(|_| MasterState {
            queue: LocalQueue::new(),
            service: Resource::new(),
            pending: std::collections::VecDeque::new(),
            refilling: false,
            global_done: false,
        })
        .collect();

    let mut stats = RunStats::new(total_workers as usize, nodes as usize);
    let mut trace = if cfg.trace { Trace::recording() } else { Trace::disabled() };
    let mut executed = Vec::new();
    let mut events = EventQueue::new();
    let mut finish_time = vec![0 as Time; total_workers as usize];
    let mut request_sent = vec![0 as Time; total_workers as usize];

    // Fault-injection state: only workers crash (the masters are
    // modelled reliable — the paper's related-work schemes assume a
    // living master). A chunk replied to a worker that dies before
    // completing it is leased and re-issued by the master once the
    // lease times out.
    let plan_active = cfg.faults.is_active();
    let rp = cfg.faults.recovery;
    let mut dead = vec![false; total_workers as usize];
    let mut done = vec![false; total_workers as usize];
    let mut reclaim_pool: Vec<(u64, u64)> = Vec::new();
    let mut leases = resilience::LeaseTable::new();
    let mut recovery: Vec<resilience::RecoveryEvent> = Vec::new();
    let crash_time = |w: u32| -> Option<Time> {
        match (cfg.faults.crash_at(w), cfg.faults.crash_holding_lock_at(w)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    };

    for w in 0..total_workers {
        request_sent[w as usize] = 0;
        let lat = if flat { m.net.latency_ns } else { m.intra_msg_latency_ns };
        events.push(lat, Event::RequestArrive(w));
    }

    while let Some((t, ev)) = events.pop() {
        // Fault layer: drop events of dead workers (leasing any chunk
        // still in flight to the corpse) and kill workers whose crash
        // time has passed.
        if plan_active {
            let actor = match ev {
                Event::RequestArrive(w) | Event::Reply(w, _) => Some(w),
                _ => None,
            };
            if let Some(w) = actor {
                let lease_in_flight = |leases: &mut resilience::LeaseTable,
                                       events: &mut EventQueue<Event>,
                                       at: Time| {
                    if let Event::Reply(_, Some((lo, hi))) = ev {
                        // The master detects the undeliverable reply
                        // and leases the chunk for re-issue.
                        let id = leases.grant(w, lo, hi, at);
                        events.push(at + rp.lease_timeout_ns, Event::Reclaim { lease: id });
                    }
                };
                if dead[w as usize] {
                    lease_in_flight(&mut leases, &mut events, t);
                    continue;
                }
                if let Some(ct) = crash_time(w).filter(|&ct| ct <= t) {
                    dead[w as usize] = true;
                    finish_time[w as usize] = ct;
                    recovery.push(resilience::RecoveryEvent::Crash {
                        rank: w,
                        at_ns: ct,
                        holding_lock: false,
                    });
                    lease_in_flight(&mut leases, &mut events, ct);
                    // Last live worker of a node: the local master's
                    // remaining queue has nobody to serve — lease it
                    // out for migration (hierarchical only).
                    let node = (w / wpn) as usize;
                    if !flat && (0..wpn as usize).all(|l| dead[node * wpn as usize + l]) {
                        for (lo, hi) in locals[node].queue.drain_remaining() {
                            let id = leases.grant(w, lo, hi, ct);
                            events.push(ct + rp.lease_timeout_ns, Event::Reclaim { lease: id });
                        }
                    }
                    continue;
                }
            }
        }
        match ev {
            Event::RequestArrive(w) if flat => {
                // Served directly by the global master. Reclaimed
                // chunks are re-issued before fresh ones.
                let (_, served) = global_master.request(t, m.master_service_ns);
                stats.global_accesses += 1;
                let payload = if let Some(range) = reclaim_pool.pop() {
                    Some(range)
                } else if global_state.exhausted(&global_spec) {
                    None
                } else {
                    let size = cfg.spec.inter.chunk_size(
                        &global_spec,
                        global_state,
                        dls::technique::WorkerCtx::default(),
                    );
                    let c = global_state.take(&global_spec, size).expect("not exhausted");
                    stats.workers[w as usize].global_fetches += 1;
                    Some((c.start, c.end()))
                };
                events.push(served + m.net.latency_ns, Event::Reply(w, payload));
            }
            Event::RequestArrive(w) => {
                let node = (w / wpn) as usize;
                let lm = &mut locals[node];
                let (_, served) = lm.service.request(t, m.master_service_ns);
                match lm.queue.take_sub_chunk(&cfg.spec.intra, wpn) {
                    Some(sub) => {
                        events.push(
                            served + m.intra_msg_latency_ns,
                            Event::Reply(w, Some((sub.start, sub.end))),
                        );
                        stats.nodes[node].sub_chunks += 1;
                    }
                    None if lm.global_done => {
                        events.push(served + m.intra_msg_latency_ns, Event::Reply(w, None));
                    }
                    None => {
                        lm.pending.push_back(w);
                        if !lm.refilling {
                            lm.refilling = true;
                            events
                                .push(served + m.net.latency_ns, Event::GlobalArrive(node as u32));
                        }
                    }
                }
            }
            Event::GlobalArrive(node) => {
                let (_, served) = global_master.request(t, m.master_service_ns);
                stats.global_accesses += 1;
                let payload = if global_state.exhausted(&global_spec) {
                    None
                } else {
                    let size = cfg.spec.inter.chunk_size(
                        &global_spec,
                        global_state,
                        dls::technique::WorkerCtx::default(),
                    );
                    let c = global_state.take(&global_spec, size).expect("not exhausted");
                    Some((c.start, c.end()))
                };
                events.push(served + m.net.latency_ns, Event::ChunkArrive(node, payload));
            }
            Event::ChunkArrive(node, payload) => {
                let node_idx = node as usize;
                let lm = &mut locals[node_idx];
                lm.refilling = false;
                match payload {
                    Some((lo, hi)) => {
                        lm.queue.deposit(lo, hi);
                        stats.nodes[node_idx].deposits += 1;
                        // Serve the waiting workers in arrival order;
                        // each reply is one more master service.
                        let mut reply_t = t;
                        while let Some(w) = lm.pending.pop_front() {
                            let (_, served) = lm.service.request(reply_t, m.master_service_ns);
                            reply_t = served;
                            match lm.queue.take_sub_chunk(&cfg.spec.intra, wpn) {
                                Some(sub) => {
                                    stats.nodes[node_idx].sub_chunks += 1;
                                    events.push(
                                        served + m.intra_msg_latency_ns,
                                        Event::Reply(w, Some((sub.start, sub.end))),
                                    );
                                }
                                None => {
                                    // Chunk already drained: the
                                    // remaining waiters trigger another
                                    // refill round.
                                    lm.pending.push_front(w);
                                    if !lm.refilling && !lm.global_done {
                                        lm.refilling = true;
                                        events.push(
                                            served + m.net.latency_ns,
                                            Event::GlobalArrive(node),
                                        );
                                    }
                                    break;
                                }
                            }
                        }
                    }
                    None => {
                        lm.global_done = true;
                        while let Some(w) = lm.pending.pop_front() {
                            let (_, served) = lm.service.request(t, m.master_service_ns);
                            events.push(served + m.intra_msg_latency_ns, Event::Reply(w, None));
                        }
                    }
                }
            }
            Event::Reply(w, payload) => {
                trace.record(w, request_sent[w as usize], t, SegmentKind::Sched);
                match payload {
                    Some((lo, hi)) => {
                        let cost = cfg.cost_at(w, t, table.range_cost(lo, hi));
                        if plan_active {
                            if let Some(ct) = crash_time(w).filter(|&ct| ct < t + cost) {
                                // Took the chunk, died before finishing
                                // it: lease it so the master re-issues
                                // the whole range after the timeout.
                                dead[w as usize] = true;
                                finish_time[w as usize] = ct;
                                trace.record(w, t, ct, SegmentKind::Compute);
                                recovery.push(resilience::RecoveryEvent::Crash {
                                    rank: w,
                                    at_ns: ct,
                                    holding_lock: false,
                                });
                                let id = leases.grant(w, lo, hi, t);
                                events.push(ct + rp.lease_timeout_ns, Event::Reclaim { lease: id });
                                let node = (w / wpn) as usize;
                                if !flat && (0..wpn as usize).all(|l| dead[node * wpn as usize + l])
                                {
                                    for (qlo, qhi) in locals[node].queue.drain_remaining() {
                                        let id = leases.grant(w, qlo, qhi, ct);
                                        events.push(
                                            ct + rp.lease_timeout_ns,
                                            Event::Reclaim { lease: id },
                                        );
                                    }
                                }
                                continue;
                            }
                        }
                        trace.record(w, t, t + cost, SegmentKind::Compute);
                        stats.workers[w as usize].iterations += hi - lo;
                        stats.workers[w as usize].sub_chunks += 1;
                        if cfg.record_chunks {
                            executed.push((w, crate::queue::SubChunk { start: lo, end: hi }));
                        }
                        let fin = t + cost;
                        request_sent[w as usize] = fin;
                        let lat = if flat { m.net.latency_ns } else { m.intra_msg_latency_ns };
                        events.push(
                            fin + lat + cfg.faults.message_delay(w, fin),
                            Event::RequestArrive(w),
                        );
                    }
                    None => {
                        finish_time[w as usize] = t;
                        done[w as usize] = true;
                    }
                }
            }
            Event::Reclaim { lease } => {
                let Some(&resilience::Lease { owner, state, .. }) = leases.get(lease) else {
                    continue;
                };
                if state != resilience::LeaseState::Active {
                    continue;
                }
                // Elect the surviving worker the re-issued chunk goes
                // to: prefer the dead owner's node (hierarchical),
                // prefer ranks without a pending crash of their own.
                let pick = |ni: usize| {
                    (0..wpn)
                        .map(|l| ni as u32 * wpn + l)
                        .find(|&u| !dead[u as usize] && !cfg.faults.crashes(u))
                };
                let by = if flat {
                    (0..total_workers)
                        .find(|&u| !dead[u as usize] && !cfg.faults.crashes(u))
                        .or_else(|| (0..total_workers).find(|&u| !dead[u as usize]))
                } else {
                    pick((owner / wpn) as usize)
                        .or_else(|| (0..nodes as usize).find_map(pick))
                        .or_else(|| (0..total_workers).find(|&u| !dead[u as usize]))
                };
                let Some(by) = by else {
                    continue; // nobody left alive to reclaim
                };
                let (lo, hi) = leases.reclaim(lease, by).expect("lease checked active");
                recovery.push(resilience::RecoveryEvent::LeaseExpired { owner, lo, hi, at_ns: t });
                recovery.push(resilience::RecoveryEvent::Reclaim { by, owner, lo, hi, at_ns: t });
                stats.workers[by as usize].reclaims += 1;
                if flat {
                    reclaim_pool.push((lo, hi));
                    if done[by as usize] {
                        done[by as usize] = false;
                        request_sent[by as usize] = t;
                        events.push(t + m.net.latency_ns, Event::RequestArrive(by));
                    }
                } else {
                    let target = (by / wpn) as usize;
                    locals[target].queue.deposit(lo, hi);
                    stats.nodes[target].deposits += 1;
                    for l in 0..wpn {
                        let u = target as u32 * wpn + l;
                        if !dead[u as usize] && done[u as usize] {
                            done[u as usize] = false;
                            request_sent[u as usize] = t;
                            events.push(t + m.intra_msg_latency_ns, Event::RequestArrive(u));
                        }
                    }
                }
            }
        }
    }

    let makespan = finish_time.iter().copied().max().unwrap_or(0);
    for (w, &ft) in finish_time.iter().enumerate() {
        trace.record(w as u32, ft, makespan, SegmentKind::Idle);
    }
    stats.total_iterations = stats.workers.iter().map(|w| w.iterations).sum();

    SimResult { makespan, stats, trace, lock_poll_penalty: 0, executed, rma: Vec::new(), recovery }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HierSpec};
    use cluster_sim::{MachineParams, SimTopology};
    use dls::verify::check_exactly_once;
    use dls::Kind;
    use workloads::synthetic::Synthetic;

    fn cfg(spec: HierSpec, nodes: u32, wpn: u32) -> SimConfig {
        let mut c = SimConfig::new(
            SimTopology::new(nodes, wpn),
            MachineParams::default(),
            spec,
            Approach::MpiMpi, // unused by these executors
        );
        c.record_chunks = true;
        c
    }

    fn assert_covers(r: &SimResult, n: u64) {
        let chunks: Vec<dls::Chunk> = r
            .executed
            .iter()
            .map(|(_, s)| dls::Chunk { start: s.start, len: s.len(), step: 0 })
            .collect();
        check_exactly_once(&chunks, n).expect("exactly-once");
        assert_eq!(r.stats.total_iterations, n);
    }

    #[test]
    fn hierarchical_covers_exactly_once() {
        for inter in [Kind::STATIC, Kind::GSS, Kind::FAC2] {
            for intra in [Kind::STATIC, Kind::SS, Kind::GSS] {
                let w = Synthetic::uniform(2_000, 20, 300, 3);
                let table = CostTable::build(&w);
                let r = simulate_master_worker(&cfg(HierSpec::new(inter, intra), 3, 4), &table);
                assert_covers(&r, 2_000);
            }
        }
    }

    #[test]
    fn flat_covers_exactly_once() {
        for tech in [Kind::SS, Kind::GSS, Kind::FAC2] {
            let w = Synthetic::uniform(2_000, 20, 300, 3);
            let table = CostTable::build(&w);
            let r = simulate_flat_master_worker(&cfg(HierSpec::new(tech, tech), 3, 4), &table);
            assert_covers(&r, 2_000);
        }
    }

    #[test]
    fn flat_master_bottlenecks_at_scale() {
        // Cheap iterations + SS: the flat master serializes every
        // single-iteration request from 256 workers.
        let w = Synthetic::constant(100_000, 2_000);
        let table = CostTable::build(&w);
        let flat =
            simulate_flat_master_worker(&cfg(HierSpec::new(Kind::SS, Kind::SS), 16, 16), &table);
        let hier = simulate_master_worker(&cfg(HierSpec::new(Kind::GSS, Kind::SS), 16, 16), &table);
        // The flat master handles one request per iteration, serially.
        let serialized = 100_000 * MachineParams::default().master_service_ns;
        assert!(flat.makespan >= serialized);
        assert!(
            flat.makespan > 2 * hier.makespan,
            "flat {} should be far worse than hierarchical {}",
            flat.makespan,
            hier.makespan
        );
    }

    #[test]
    fn hierarchical_close_to_mpi_mpi_but_not_better() {
        // The dedicated-master model pays message latency per sub-chunk;
        // the paper's shared-queue approach avoids the middleman.
        let w = Synthetic::uniform(20_000, 5_000, 50_000, 9);
        let table = CostTable::build(&w);
        let c = cfg(HierSpec::new(Kind::GSS, Kind::GSS), 4, 8);
        let mw = simulate_master_worker(&c, &table);
        let mpi = super::super::simulate_mpi_mpi(&c, &table);
        assert_covers(&mw, 20_000);
        assert!(
            mw.makespan as f64 >= 0.95 * mpi.makespan as f64,
            "master-worker ({}) should not beat the shared queue ({})",
            mw.makespan,
            mpi.makespan
        );
    }

    #[test]
    fn deterministic() {
        let w = Synthetic::uniform(1_000, 10, 100, 1);
        let table = CostTable::build(&w);
        let c = cfg(HierSpec::new(Kind::TSS, Kind::GSS), 2, 3);
        let a = simulate_master_worker(&c, &table);
        let b = simulate_master_worker(&c, &table);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn single_worker_cluster() {
        let w = Synthetic::constant(50, 1_000);
        let table = CostTable::build(&w);
        let r = simulate_master_worker(&cfg(HierSpec::new(Kind::GSS, Kind::GSS), 1, 1), &table);
        assert_covers(&r, 50);
    }
}
