//! Virtual-time (discrete-event) executors for both approaches.
//!
//! Workers never touch the wall clock: compute time comes from a
//! [`workloads::CostTable`], scheduling costs from
//! [`cluster_sim::MachineParams`], and contention from
//! [`cluster_sim::Resource`] / [`cluster_sim::ContendedLock`]. Results
//! are exactly reproducible and independent of host load — which is how
//! the paper's 16-node figures are regenerated on a single-core machine.

pub mod layout;
mod master_worker;
mod mpi_mpi;
mod mpi_omp;

pub use master_worker::{simulate_flat_master_worker, simulate_master_worker};
pub use mpi_mpi::simulate_mpi_mpi;
pub use mpi_omp::simulate_mpi_omp;

/// Who may refill a node's local queue from the global queue (MPI+MPI).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RefillPolicy {
    /// The paper's proposal: whichever worker first finds the queue
    /// empty refills it ("the fastest MPI process always takes this
    /// responsibility").
    #[default]
    Fastest,
    /// Ablation: only the node's first rank may refill (a dedicated
    /// local master, as in hierarchical master-worker schemes); other
    /// workers re-probe until it does.
    Dedicated,
}

use crate::config::{Approach, HierSpec};
use crate::queue::SubChunk;
use crate::stats::RunStats;
use cluster_sim::{MachineParams, SimTopology, Time, Trace};
use workloads::CostTable;

/// Schedule perturbation for interleaving exploration: deterministic
/// timing noise injected into the virtual-time executors so one
/// configuration can be replayed under many distinct (but reproducible)
/// lock acquisition and refill orders. [`Perturbation::None`] leaves
/// the executor bit-for-bit identical to the unperturbed run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Perturbation {
    /// No perturbation (the default): fully deterministic baseline.
    #[default]
    None,
    /// Seeded pseudo-random probe jitter: every worker's queue probes
    /// are delayed by `hash(seed, worker, count) % (max_ns + 1)`
    /// virtual nanoseconds, reshuffling lock arrival orders while
    /// staying exactly reproducible for a given seed.
    Seeded {
        /// Seed selecting one interleaving.
        seed: u64,
        /// Upper bound on each injected delay (virtual ns).
        max_ns: u64,
    },
    /// Adversarial lock-handoff reordering: alternate probe rounds
    /// invert each node's intra-node arrival order, forcing the lock to
    /// hand off against the natural FCFS pattern (back-to-back refills,
    /// last-rank-first probes) that a seeded shuffle rarely produces.
    AdversarialHandoff,
}

/// Per-worker perturbation state for one run.
pub(crate) struct Jitter {
    mode: Perturbation,
    wpn: u32,
    counts: Vec<u64>,
}

impl Jitter {
    pub(crate) fn new(mode: Perturbation, wpn: u32, workers: u32) -> Self {
        Self { mode, wpn, counts: vec![0; workers as usize] }
    }

    /// Delay to add to worker `w`'s next probe event.
    pub(crate) fn delay(&mut self, w: u32) -> Time {
        let count = &mut self.counts[w as usize];
        *count += 1;
        match self.mode {
            Perturbation::None => 0,
            Perturbation::Seeded { seed, max_ns } => {
                let mut x = seed ^ (u64::from(w) << 32) ^ *count;
                // splitmix64 finalizer: cheap, well-mixed, stable.
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^= x >> 31;
                x % (max_ns + 1)
            }
            Perturbation::AdversarialHandoff => {
                // Odd rounds: invert the node's rank order (last local
                // rank arrives first); even rounds: keep it. The stride
                // is tiny so only ties/near-ties are reordered — the
                // protocol sees maximally unnatural handoffs without a
                // materially different load.
                let local = w % self.wpn;
                if *count % 2 == 1 {
                    Time::from(self.wpn - 1 - local)
                } else {
                    Time::from(local)
                }
            }
        }
    }
}

/// Deferred RMA log synthesis for the virtual-time executors: the sim
/// backends model whole lock transactions as single events, so each
/// transaction's operations are emitted as one block keyed by its
/// virtual completion time, then globally ordered into an
/// [`mpisim::RmaLog`] once the run ends. FCFS lock grants guarantee
/// blocks of the same lock never share a key, so the synthesized log
/// has the same epoch structure a live run would record.
pub(crate) struct RmaTape {
    enabled: bool,
    counter: u64,
    items: Vec<(Time, u64, u64, u32, mpisim::RmaEvent)>,
}

impl RmaTape {
    pub(crate) fn new(enabled: bool) -> Self {
        Self { enabled, counter: 0, items: Vec::new() }
    }

    /// Emit one transaction: `events` happened atomically on window
    /// `win` by `rank` at virtual time `t`.
    pub(crate) fn tx(&mut self, t: Time, win: u64, rank: u32, events: &[mpisim::RmaEvent]) {
        if !self.enabled {
            return;
        }
        for ev in events {
            self.items.push((t, self.counter, win, rank, *ev));
            self.counter += 1;
        }
    }

    /// [`RmaTape::tx`] with the transaction split across two slices
    /// (shared prologue + branch-specific tail).
    pub(crate) fn tx_slice_then(
        &mut self,
        t: Time,
        win: u64,
        rank: u32,
        head: &[mpisim::RmaEvent],
        tail: &[mpisim::RmaEvent],
    ) {
        self.tx(t, win, rank, head);
        self.tx(t, win, rank, tail);
    }

    /// Order every transaction by (virtual time, emission order) and
    /// stamp the records through a real [`mpisim::RmaLog`].
    pub(crate) fn finish(mut self) -> Vec<mpisim::RmaRecord> {
        if !self.enabled {
            return Vec::new();
        }
        self.items.sort_by_key(|i| (i.0, i.1));
        let log = mpisim::RmaLog::new();
        for (_, _, win, rank, ev) in self.items {
            log.push(win, rank, ev);
        }
        log.records()
    }
}

/// Configuration of one virtual-time run.
#[derive(Clone)]
pub struct SimConfig {
    /// Cluster shape.
    pub topology: SimTopology,
    /// Cost constants.
    pub machine: MachineParams,
    /// The `X+Y` scheduling combination.
    pub spec: HierSpec,
    /// Which implementation of the intra-node level.
    pub approach: Approach,
    /// Record per-worker timeline segments (Figures 2/3).
    pub trace: bool,
    /// Record every executed sub-chunk (for exactly-once verification).
    pub record_chunks: bool,
    /// Per-worker speed multipliers for failure injection / systemic
    /// imbalance: iteration costs on worker `w` are scaled by
    /// `slowdown[w]`. Empty means all 1.0.
    pub slowdown: Vec<f64>,
    /// Who refills the local queue (MPI+MPI only).
    pub refill: RefillPolicy,
    /// How the global queue is realised over RMA (MPI+MPI only).
    pub global_mode: crate::config::GlobalQueueMode,
    /// Static per-worker weights for weighted techniques (WF): indexed
    /// by global worker id, mean-normalised. Empty means unit weights.
    pub weights: Vec<f64>,
    /// Adaptive weighted factoring at the intra-node level (MPI+MPI
    /// only): when set, the intra technique's sub-chunk is scaled by
    /// weights learned from measured worker rates.
    pub awf: Option<dls::adaptive::AwfVariant>,
    /// Model the `nowait` clause for MPI+OpenMP (the paper's future
    /// work): no end-of-region barrier; threads dispatch through the
    /// OpenMP runtime's atomic and any thread may fetch the next chunk
    /// (which requires `MPI_THREAD_MULTIPLE`). Implemented as the
    /// MPI+MPI protocol with the window lock replaced by an OpenMP
    /// dispatch.
    pub omp_nowait: bool,
    /// Deterministic schedule perturbation for interleaving
    /// exploration ([`Perturbation::None`] reproduces the unperturbed
    /// run exactly).
    pub perturb: Perturbation,
    /// Synthesize the RMA access log the modelled protocol would
    /// produce (lock/sync/get/put/atomic per transaction) into
    /// [`SimResult::rma`] for `rma-check`.
    pub record_rma: bool,
    /// Injected failures (rank crashes, stragglers, message faults) and
    /// the recovery-protocol timeouts. [`resilience::FaultPlan::none`]
    /// (the default) leaves every executor bit-for-bit identical to the
    /// fault-free run.
    pub faults: resilience::FaultPlan,
}

impl SimConfig {
    /// A run with tracing and chunk recording off.
    pub fn new(
        topology: SimTopology,
        machine: MachineParams,
        spec: HierSpec,
        approach: Approach,
    ) -> Self {
        Self {
            topology,
            machine,
            spec,
            approach,
            trace: false,
            record_chunks: false,
            slowdown: Vec::new(),
            refill: RefillPolicy::Fastest,
            global_mode: crate::config::GlobalQueueMode::SingleAtomic,
            weights: Vec::new(),
            awf: None,
            omp_nowait: false,
            perturb: Perturbation::default(),
            record_rma: false,
            faults: resilience::FaultPlan::none(),
        }
    }

    pub(crate) fn scaled_cost(&self, worker: u32, raw: u64) -> Time {
        match self.slowdown.get(worker as usize) {
            Some(&f) if f != 1.0 => (raw as f64 * f).round().max(1.0) as Time,
            _ => raw,
        }
    }

    /// [`SimConfig::scaled_cost`] further scaled by any straggler fault
    /// active on `worker` at virtual time `now`.
    pub(crate) fn cost_at(&self, worker: u32, now: Time, raw: u64) -> Time {
        let base = self.scaled_cost(worker, raw);
        let f = self.faults.straggle_factor(worker, now);
        if f == 1.0 {
            base
        } else {
            (base as f64 * f).round().max(1.0) as Time
        }
    }
}

/// Result of one virtual-time run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Parallel loop time (the y-axis of Figures 4-7).
    pub makespan: Time,
    /// Counters.
    pub stats: RunStats,
    /// Timeline (empty unless `SimConfig::trace`).
    pub trace: Trace,
    /// Total lock-polling penalty accumulated at local-queue locks
    /// (MPI+MPI only; the Fig. 4 `X+SS` pathology).
    pub lock_poll_penalty: Time,
    /// Executed sub-chunks per worker (empty unless
    /// `SimConfig::record_chunks`).
    pub executed: Vec<(u32, SubChunk)>,
    /// Synthesized RMA access log of the modelled protocol (empty
    /// unless `SimConfig::record_rma`), ready for `rma_check::check`.
    pub rma: Vec<mpisim::RmaRecord>,
    /// Detection and repair actions taken during the run (empty unless
    /// `SimConfig::faults` is active): crashes, lease expiries,
    /// reclaims, refill failovers, lock repairs — time-ordered.
    pub recovery: Vec<resilience::RecoveryEvent>,
}

impl SimResult {
    /// Makespan in seconds — the unit of the paper's figures.
    pub fn seconds(&self) -> f64 {
        cluster_sim::time::to_secs(self.makespan)
    }
}

/// Run one virtual-time experiment, dispatching on the approach.
pub fn simulate(cfg: &SimConfig, table: &CostTable) -> SimResult {
    match cfg.approach {
        Approach::MpiMpi => simulate_mpi_mpi(cfg, table),
        Approach::MpiOpenMp if cfg.omp_nowait => simulate_mpi_omp_nowait(cfg, table),
        Approach::MpiOpenMp => simulate_mpi_omp(cfg, table),
    }
}

/// The `nowait` variant of MPI+OpenMP: structurally the MPI+MPI
/// protocol (no end-of-region barrier, fastest-thread refill), but the
/// local dispatch costs one OpenMP runtime atomic instead of an
/// `MPI_Win_lock` cycle and suffers no lock polling.
pub fn simulate_mpi_omp_nowait(cfg: &SimConfig, table: &CostTable) -> SimResult {
    let mut nowait_cfg = cfg.clone();
    nowait_cfg.machine.shm_lock_hold_ns = cfg.machine.omp_dispatch_ns;
    nowait_cfg.machine.shm_poll_penalty_ns = 0;
    simulate_mpi_mpi(&nowait_cfg, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::SimTopology;
    use dls::Kind;
    use workloads::synthetic::Synthetic;

    #[test]
    fn nowait_between_barrier_and_mpi_mpi() {
        // nowait removes the barrier but keeps the cheap OpenMP
        // dispatch: never slower than the barrier baseline, never
        // slower than MPI+MPI (whose lock costs more per dispatch).
        let w = Synthetic::bimodal(20_000, 50_000, 5_000_000, 3, 7);
        let table = CostTable::build(&w);
        let run = |approach, nowait| {
            let mut cfg = SimConfig::new(
                SimTopology::new(2, 8),
                MachineParams::default(),
                HierSpec::new(Kind::GSS, Kind::STATIC),
                approach,
            );
            cfg.omp_nowait = nowait;
            simulate(&cfg, &table)
        };
        let barrier = run(Approach::MpiOpenMp, false);
        let nowait = run(Approach::MpiOpenMp, true);
        let mpi_mpi = run(Approach::MpiMpi, false);
        assert_eq!(nowait.stats.total_iterations, 20_000);
        assert!(nowait.makespan <= barrier.makespan);
        assert!(nowait.makespan <= mpi_mpi.makespan);
    }

    #[test]
    fn nowait_flag_ignored_for_mpi_mpi() {
        let w = Synthetic::constant(2_000, 1_000);
        let table = CostTable::build(&w);
        let mut cfg = SimConfig::new(
            SimTopology::new(2, 4),
            MachineParams::default(),
            HierSpec::new(Kind::GSS, Kind::GSS),
            Approach::MpiMpi,
        );
        let plain = simulate(&cfg, &table).makespan;
        cfg.omp_nowait = true;
        assert_eq!(simulate(&cfg, &table).makespan, plain);
    }
}
