//! Virtual-time (discrete-event) executors for both approaches.
//!
//! Workers never touch the wall clock: compute time comes from a
//! [`workloads::CostTable`], scheduling costs from
//! [`cluster_sim::MachineParams`], and contention from
//! [`cluster_sim::Resource`] / [`cluster_sim::ContendedLock`]. Results
//! are exactly reproducible and independent of host load — which is how
//! the paper's 16-node figures are regenerated on a single-core machine.

mod master_worker;
mod mpi_mpi;
mod mpi_omp;

pub use master_worker::{simulate_flat_master_worker, simulate_master_worker};
pub use mpi_mpi::simulate_mpi_mpi;
pub use mpi_omp::simulate_mpi_omp;

/// Who may refill a node's local queue from the global queue (MPI+MPI).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RefillPolicy {
    /// The paper's proposal: whichever worker first finds the queue
    /// empty refills it ("the fastest MPI process always takes this
    /// responsibility").
    #[default]
    Fastest,
    /// Ablation: only the node's first rank may refill (a dedicated
    /// local master, as in hierarchical master-worker schemes); other
    /// workers re-probe until it does.
    Dedicated,
}

use crate::config::{Approach, HierSpec};
use crate::queue::SubChunk;
use crate::stats::RunStats;
use cluster_sim::{MachineParams, SimTopology, Time, Trace};
use workloads::CostTable;

/// Configuration of one virtual-time run.
#[derive(Clone)]
pub struct SimConfig {
    /// Cluster shape.
    pub topology: SimTopology,
    /// Cost constants.
    pub machine: MachineParams,
    /// The `X+Y` scheduling combination.
    pub spec: HierSpec,
    /// Which implementation of the intra-node level.
    pub approach: Approach,
    /// Record per-worker timeline segments (Figures 2/3).
    pub trace: bool,
    /// Record every executed sub-chunk (for exactly-once verification).
    pub record_chunks: bool,
    /// Per-worker speed multipliers for failure injection / systemic
    /// imbalance: iteration costs on worker `w` are scaled by
    /// `slowdown[w]`. Empty means all 1.0.
    pub slowdown: Vec<f64>,
    /// Who refills the local queue (MPI+MPI only).
    pub refill: RefillPolicy,
    /// How the global queue is realised over RMA (MPI+MPI only).
    pub global_mode: crate::config::GlobalQueueMode,
    /// Static per-worker weights for weighted techniques (WF): indexed
    /// by global worker id, mean-normalised. Empty means unit weights.
    pub weights: Vec<f64>,
    /// Adaptive weighted factoring at the intra-node level (MPI+MPI
    /// only): when set, the intra technique's sub-chunk is scaled by
    /// weights learned from measured worker rates.
    pub awf: Option<dls::adaptive::AwfVariant>,
    /// Model the `nowait` clause for MPI+OpenMP (the paper's future
    /// work): no end-of-region barrier; threads dispatch through the
    /// OpenMP runtime's atomic and any thread may fetch the next chunk
    /// (which requires `MPI_THREAD_MULTIPLE`). Implemented as the
    /// MPI+MPI protocol with the window lock replaced by an OpenMP
    /// dispatch.
    pub omp_nowait: bool,
}

impl SimConfig {
    /// A run with tracing and chunk recording off.
    pub fn new(
        topology: SimTopology,
        machine: MachineParams,
        spec: HierSpec,
        approach: Approach,
    ) -> Self {
        Self {
            topology,
            machine,
            spec,
            approach,
            trace: false,
            record_chunks: false,
            slowdown: Vec::new(),
            refill: RefillPolicy::Fastest,
            global_mode: crate::config::GlobalQueueMode::SingleAtomic,
            weights: Vec::new(),
            awf: None,
            omp_nowait: false,
        }
    }

    pub(crate) fn scaled_cost(&self, worker: u32, raw: u64) -> Time {
        match self.slowdown.get(worker as usize) {
            Some(&f) if f != 1.0 => (raw as f64 * f).round().max(1.0) as Time,
            _ => raw,
        }
    }
}

/// Result of one virtual-time run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Parallel loop time (the y-axis of Figures 4-7).
    pub makespan: Time,
    /// Counters.
    pub stats: RunStats,
    /// Timeline (empty unless `SimConfig::trace`).
    pub trace: Trace,
    /// Total lock-polling penalty accumulated at local-queue locks
    /// (MPI+MPI only; the Fig. 4 `X+SS` pathology).
    pub lock_poll_penalty: Time,
    /// Executed sub-chunks per worker (empty unless
    /// `SimConfig::record_chunks`).
    pub executed: Vec<(u32, SubChunk)>,
}

impl SimResult {
    /// Makespan in seconds — the unit of the paper's figures.
    pub fn seconds(&self) -> f64 {
        cluster_sim::time::to_secs(self.makespan)
    }
}

/// Run one virtual-time experiment, dispatching on the approach.
pub fn simulate(cfg: &SimConfig, table: &CostTable) -> SimResult {
    match cfg.approach {
        Approach::MpiMpi => simulate_mpi_mpi(cfg, table),
        Approach::MpiOpenMp if cfg.omp_nowait => simulate_mpi_omp_nowait(cfg, table),
        Approach::MpiOpenMp => simulate_mpi_omp(cfg, table),
    }
}

/// The `nowait` variant of MPI+OpenMP: structurally the MPI+MPI
/// protocol (no end-of-region barrier, fastest-thread refill), but the
/// local dispatch costs one OpenMP runtime atomic instead of an
/// `MPI_Win_lock` cycle and suffers no lock polling.
pub fn simulate_mpi_omp_nowait(cfg: &SimConfig, table: &CostTable) -> SimResult {
    let mut nowait_cfg = cfg.clone();
    nowait_cfg.machine.shm_lock_hold_ns = cfg.machine.omp_dispatch_ns;
    nowait_cfg.machine.shm_poll_penalty_ns = 0;
    simulate_mpi_mpi(&nowait_cfg, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::SimTopology;
    use dls::Kind;
    use workloads::synthetic::Synthetic;

    #[test]
    fn nowait_between_barrier_and_mpi_mpi() {
        // nowait removes the barrier but keeps the cheap OpenMP
        // dispatch: never slower than the barrier baseline, never
        // slower than MPI+MPI (whose lock costs more per dispatch).
        let w = Synthetic::bimodal(20_000, 50_000, 5_000_000, 3, 7);
        let table = CostTable::build(&w);
        let run = |approach, nowait| {
            let mut cfg = SimConfig::new(
                SimTopology::new(2, 8),
                MachineParams::default(),
                HierSpec::new(Kind::GSS, Kind::STATIC),
                approach,
            );
            cfg.omp_nowait = nowait;
            simulate(&cfg, &table)
        };
        let barrier = run(Approach::MpiOpenMp, false);
        let nowait = run(Approach::MpiOpenMp, true);
        let mpi_mpi = run(Approach::MpiMpi, false);
        assert_eq!(nowait.stats.total_iterations, 20_000);
        assert!(nowait.makespan <= barrier.makespan);
        assert!(nowait.makespan <= mpi_mpi.makespan);
    }

    #[test]
    fn nowait_flag_ignored_for_mpi_mpi() {
        let w = Synthetic::constant(2_000, 1_000);
        let table = CostTable::build(&w);
        let mut cfg = SimConfig::new(
            SimTopology::new(2, 4),
            MachineParams::default(),
            HierSpec::new(Kind::GSS, Kind::GSS),
            Approach::MpiMpi,
        );
        let plain = simulate(&cfg, &table).makespan;
        cfg.omp_nowait = true;
        assert_eq!(simulate(&cfg, &table).makespan, plain);
    }
}
