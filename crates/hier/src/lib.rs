//! # hier — hierarchical dynamic loop self-scheduling
//!
//! The paper's contribution: loop iterations are self-scheduled at two
//! levels. At the **inter-node** level, compute nodes obtain chunks from
//! a *global work queue* (two shared counters — latest scheduling step
//! and total scheduled iterations — advanced with passive-target RMA).
//! At the **intra-node** level, the workers of a node obtain sub-chunks
//! from a *local work queue*.
//!
//! Two implementations of the intra-node level are provided, matching
//! the paper's comparison:
//!
//! * **MPI+MPI** ([`Approach::MpiMpi`]) — the proposed approach: the
//!   local queue lives in an MPI-3 shared-memory window guarded by
//!   `MPI_Win_lock`. *Any* worker that finds the queue empty refills it
//!   from the global queue — the fastest worker takes the
//!   responsibility, and nobody ever waits at a chunk boundary.
//! * **MPI+OpenMP** ([`Approach::MpiOpenMp`]) — the baseline: one MPI
//!   process per node obtains chunks; an OpenMP-style thread team
//!   executes each chunk under `schedule(static|dynamic|guided)` with an
//!   **implicit barrier at the end of every chunk** — the
//!   synchronization the MPI+MPI approach eliminates (paper Fig. 2
//!   vs. Fig. 3).
//!
//! Each approach runs on two backends:
//!
//! * [`live`] — real OS threads over the `mpisim` runtime (windows,
//!   locks, collectives): functional execution, used for correctness.
//! * [`sim`] — deterministic virtual time over `cluster-sim`:
//!   regenerates the paper's figures with modelled network, lock and
//!   barrier costs at full 16-node scale.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod adaptive;
pub mod config;
pub mod live;
pub mod queue;
pub mod sim;
pub mod stats;

pub use config::{Approach, GlobalQueueMode, HierSpec};
pub use stats::{NodeStats, RunStats, WorkerStats};
