//! Configuration of a hierarchical run: which technique at which level,
//! executed with which approach.

use dls::openmp::omp_equivalent;
use dls::{ChunkCalculator, Kind, Technique};
use std::fmt;

/// Which implementation executes the intra-node level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Approach {
    /// The paper's proposed MPI+MPI approach: shared local work queue in
    /// an MPI-3 shared-memory window; no end-of-chunk barrier.
    MpiMpi,
    /// The baseline hybrid: one MPI process per node plus an OpenMP
    /// thread team with an implicit barrier after every chunk.
    MpiOpenMp,
}

impl Approach {
    /// Both approaches, proposal first.
    pub const ALL: [Approach; 2] = [Approach::MpiMpi, Approach::MpiOpenMp];

    /// Display name as used in the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Approach::MpiMpi => "MPI+MPI",
            Approach::MpiOpenMp => "MPI+OpenMP",
        }
    }
}

impl fmt::Display for Approach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How the global work queue is realised over RMA.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GlobalQueueMode {
    /// The distributed chunk-calculation formulation of the paper's
    /// reference [15]: one shared counter (the latest scheduling step),
    /// advanced with a single `MPI_Fetch_and_op`; every worker computes
    /// its chunk bounds locally as a pure function of the step.
    #[default]
    SingleAtomic,
    /// Both counters (step, scheduled) kept in the window and updated
    /// under `MPI_Win_lock(EXCLUSIVE)` — simpler, but each fetch costs
    /// lock + access + unlock round trips.
    LockedCounters,
}

/// A two-level scheduling combination, written `X+Y` in the paper:
/// `X` at the inter-node level, `Y` at the intra-node level.
#[derive(Clone, Copy, Debug)]
pub struct HierSpec {
    /// Inter-node technique (global queue).
    pub inter: Technique,
    /// Intra-node technique (local queue / OpenMP schedule).
    pub intra: Technique,
}

impl HierSpec {
    /// Build from two technique kinds with default parameters.
    pub fn new(inter: Kind, intra: Kind) -> Self {
        Self { inter: Technique::from_kind(inter), intra: Technique::from_kind(intra) }
    }

    /// `"X+Y"` label as used in the paper.
    pub fn label(&self) -> String {
        format!("{}+{}", self.inter.name(), self.intra.name())
    }

    /// Whether the Intel OpenMP runtime the paper uses can execute the
    /// intra-node technique (`static`, `dynamic,1`, `guided,1` only) —
    /// combinations like `GSS+TSS` exist *only* under MPI+MPI, which is
    /// one of the paper's points.
    pub fn supported_by_openmp(&self) -> bool {
        omp_equivalent(self.intra.kind()).is_some()
    }
}

impl fmt::Display for HierSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(HierSpec::new(Kind::GSS, Kind::STATIC).label(), "GSS+STATIC");
        assert_eq!(HierSpec::new(Kind::FAC2, Kind::SS).label(), "FAC2+SS");
    }

    #[test]
    fn openmp_support_matrix() {
        assert!(HierSpec::new(Kind::GSS, Kind::STATIC).supported_by_openmp());
        assert!(HierSpec::new(Kind::GSS, Kind::SS).supported_by_openmp());
        assert!(HierSpec::new(Kind::GSS, Kind::GSS).supported_by_openmp());
        assert!(!HierSpec::new(Kind::GSS, Kind::TSS).supported_by_openmp());
        assert!(!HierSpec::new(Kind::GSS, Kind::FAC2).supported_by_openmp());
    }

    #[test]
    fn approach_names() {
        assert_eq!(Approach::MpiMpi.to_string(), "MPI+MPI");
        assert_eq!(Approach::MpiOpenMp.to_string(), "MPI+OpenMP");
    }
}
