//! Real-thread MPI+MPI executor: the paper's proposed approach on the
//! `mpisim` runtime.
//!
//! * The **global work queue** is an RMA window exposed by world rank 0
//!   holding `[step, scheduled]`, updated under `MPI_Win_lock(EXCLUSIVE)`
//!   — the distributed chunk-calculation state.
//! * Each node's **local work queue** is an `MPI_Win_allocate_shared`
//!   window on the node communicator holding
//!   `[refilling, global_done, lo, hi, step, taken]`, updated under
//!   `MPI_Win_lock(EXCLUSIVE)` + `MPI_Win_sync`.
//! * A worker that drains the local queue and sees no refill in flight
//!   sets the `refilling` flag and fetches the next chunk itself — the
//!   fastest worker takes the responsibility; nobody blocks.

use super::{LiveConfig, LiveResult};
use crate::queue::SubChunk;
use crate::stats::RunStats;
use cluster_sim::trace::{SegmentKind, Trace};
use mpisim::{LockKind, RankWinStats, RmaLog, RmaRecord, Topology, Universe, Window};
use std::time::Instant;
use workloads::Workload;

// Local window slot indices.
const REFILLING: usize = 0;
const GLOBAL_DONE: usize = 1;
const LO: usize = 2;
const HI: usize = 3;
const STEP: usize = 4;
const TAKEN: usize = 5;
/// Start of the AWF measurement history: per local rank, two slots —
/// cumulative iterations and cumulative time in ns.
const HIST_BASE: usize = 6;

/// Start of the lease area: per local rank, four slots —
/// `[lo, hi, epoch, heartbeat]`. An odd epoch means the range
/// `[lo, hi)` is granted but not completed; the owner bumps it even on
/// completion (settled at its next queue poll), a reclaimer bumps it
/// even when re-depositing a dead owner's range. The heartbeat ticks on
/// every queue poll — piggybacked liveness, no extra messages.
fn lease_base(wpn: u32) -> usize {
    HIST_BASE + 2 * wpn as usize
}

const LEASE_LO: usize = 0;
const LEASE_HI: usize = 1;
const LEASE_EPOCH: usize = 2;
const HEARTBEAT: usize = 3;

fn lease_slot(wpn: u32, local: u32, field: usize) -> usize {
    lease_base(wpn) + 4 * local as usize + field
}

/// Which local rank currently holds the refill role (valid while
/// `REFILLING == 1`); lets survivors detect a refiller that died
/// between claiming the role and depositing.
fn refiller_slot(wpn: u32) -> usize {
    lease_base(wpn) + 4 * wpn as usize
}

fn local_slots(wpn: u32) -> usize {
    refiller_slot(wpn) + 1
}

// Global window slot indices (on world rank 0).
const GSTEP: usize = 0;
const GSCHED: usize = 1;

pub(super) struct RankOutcome {
    pub(super) worker: u32,
    pub(super) node: u32,
    pub(super) iterations: u64,
    pub(super) sub_chunks: u64,
    pub(super) global_fetches: u64,
    pub(super) deposits: u64,
    pub(super) checksum: u64,
    pub(super) executed: Vec<(u32, SubChunk)>,
    /// `(acquisitions, contended, polls)` of the node lock, reported by
    /// local rank 0 only (None elsewhere) to avoid double counting.
    pub(super) lock_stats: Option<(u64, u64, u64)>,
    pub(super) global_accesses: u64,
    /// This rank's window counters, local + global window summed.
    pub(super) win_stats: RankWinStats,
    /// Wall-clock timeline of this rank (empty unless tracing).
    pub(super) trace: Trace,
    /// When this rank left the main loop, in ns since the run epoch.
    pub(super) finish_ns: u64,
    /// Recovery actions this rank performed (lease reclaims + lock
    /// repairs).
    pub(super) reclaims: u64,
    /// Crash / detection / repair events this rank observed.
    pub(super) recovery: Vec<resilience::RecoveryEvent>,
}

/// Acquire the node-window lock. Fault-free runs use the blocking FIFO
/// path untouched; under an active fault plan the acquisition is a
/// bounded-poll loop so a lock abandoned by a dead holder is detected
/// (after `detect_polls` failed attempts) and revoked via
/// [`Window::repair_lock`]. Returns the dead holder's local rank when
/// *this* call performed a repair.
fn lock_queue(
    win: &Window,
    node_comm: &mpisim::Comm,
    plan_active: bool,
    detect_polls: u32,
) -> mpisim::Result<Option<u32>> {
    if !plan_active {
        win.lock(LockKind::Exclusive, 0)?;
        return Ok(None);
    }
    let mut repaired = None;
    let mut polls = 0u32;
    loop {
        if win.try_lock_exclusive(0)? {
            return Ok(repaired);
        }
        polls += 1;
        if polls >= detect_polls {
            polls = 0;
            if let Some(h) = win.exclusive_holder(0)? {
                if node_comm.is_failed(h) && win.repair_lock(0)? {
                    repaired = Some(h);
                }
            }
            std::thread::yield_now();
        }
        std::hint::spin_loop();
    }
}

/// Run the MPI+MPI approach with real threads.
///
/// Allocation or RMA failures from any rank surface as `Err`.
pub fn run_live_mpi_mpi(
    cfg: &LiveConfig,
    workload: &(dyn Workload + Sync),
) -> mpisim::Result<LiveResult> {
    let topology = Topology::new(cfg.nodes, cfg.workers_per_node);
    let n = workload.n_iters();
    assert!(n <= i64::MAX as u64, "loop too large for i64 window slots");
    let inter_spec = dls::LoopSpec::new(n, cfg.nodes);
    let wpn = cfg.workers_per_node;
    let spec = cfg.spec;
    let awf = cfg.awf;
    let weights = cfg.weights.clone();
    let global_mode = cfg.global_mode;
    let do_trace = cfg.trace;
    let rma_log = cfg.record_rma.then(RmaLog::new);
    let log_for_ranks = rma_log.clone();
    let faults = cfg.faults.clone();
    let epoch = Instant::now();

    let outcomes = Universe::run(topology, move |p| -> mpisim::Result<RankOutcome> {
        let now = || epoch.elapsed().as_nanos() as u64;
        let world = p.world();
        let me = world.rank();
        let mut global_win = Window::allocate(world, if me == 0 { 2 } else { 0 })?;
        let node_comm = world.split_shared()?;
        let mut local_win = Window::allocate_shared(
            &node_comm,
            if node_comm.rank() == 0 { local_slots(wpn) } else { 0 },
        )?;
        if let Some(log) = &log_for_ranks {
            global_win.record_to(log);
            local_win.record_to(log);
        }
        world.barrier();
        global_win.note_barrier();
        local_win.note_barrier();
        if global_mode == crate::config::GlobalQueueMode::SingleAtomic {
            // The distributed chunk calculation runs on bare
            // fetch_and_op, so the whole run is one passive-target
            // access epoch on the global window (the MPI-3 idiom for
            // lock-free shared counters).
            global_win.lock_all();
        }

        let mut out = RankOutcome {
            worker: me,
            node: p.node_id(),
            iterations: 0,
            sub_chunks: 0,
            global_fetches: 0,
            deposits: 0,
            checksum: 0,
            executed: Vec::new(),
            lock_stats: None,
            global_accesses: 0,
            win_stats: RankWinStats::default(),
            trace: if do_trace { Trace::recording() } else { Trace::disabled() },
            finish_ns: 0,
            reclaims: 0,
            recovery: Vec::new(),
        };

        let plan_active = faults.is_active();
        let detect_polls = faults.recovery.detect_polls;
        let my_local = node_comm.rank();
        let my_node = p.node_id();
        let world_of = |local: u32| my_node * wpn + local;
        let straggle = faults.straggle_factor(me, u64::MAX);
        // Mirror of my own LEASE_EPOCH slot — single-writer while alive.
        let mut my_epoch: i64 = 0;
        let mut fetches_done: u32 = 0;

        loop {
            // ---- probe the local queue under the window lock ----
            let probe_start = now();
            if let Some(h) = lock_queue(&local_win, &node_comm, plan_active, detect_polls)? {
                out.reclaims += 1;
                out.recovery.push(resilience::RecoveryEvent::LockRepair {
                    node: my_node,
                    dead_holder: world_of(h),
                    by: me,
                    at_ns: now(),
                });
            }
            local_win.sync();
            if plan_active {
                // Settle my previous grant (the sub-chunk it covered is
                // done — this poll is the completion acknowledgement)
                // and tick the piggybacked heartbeat.
                if my_epoch % 2 == 1 {
                    my_epoch += 1;
                    local_win.put(0, lease_slot(wpn, my_local, LEASE_EPOCH), my_epoch)?;
                }
                let hb_slot = lease_slot(wpn, my_local, HEARTBEAT);
                let hb = local_win.get(0, hb_slot)?;
                local_win.put(0, hb_slot, hb + 1)?;
                if faults
                    .crash_holding_lock_after(me)
                    .is_some_and(|k| out.sub_chunks >= u64::from(k))
                {
                    // Die inside the critical section: mark the failure
                    // and leave without unlocking — survivors must
                    // detect the abandoned grant and repair the lock.
                    node_comm.mark_failed();
                    local_win.sync();
                    out.recovery.push(resilience::RecoveryEvent::Crash {
                        rank: me,
                        at_ns: now(),
                        holding_lock: true,
                    });
                    break;
                }
            }
            let lo = local_win.get(0, LO)? as u64;
            let hi = local_win.get(0, HI)? as u64;
            let step = local_win.get(0, STEP)? as u64;
            let taken = local_win.get(0, TAKEN)? as u64;
            let len = hi - lo;

            if taken < len {
                let local = node_comm.rank();
                // Weight: learned from the shared history under AWF,
                // configured statically otherwise. AWF replaces the
                // intra technique with WF over the learned weights.
                let (technique, weight) = if awf.is_some() {
                    let mut hist: Vec<(u64, u64)> = Vec::with_capacity(wpn as usize);
                    for r in 0..wpn as usize {
                        let iters = local_win.get(0, HIST_BASE + 2 * r)? as u64;
                        let time = local_win.get(0, HIST_BASE + 2 * r + 1)? as u64;
                        hist.push((iters, time));
                    }
                    let w = crate::adaptive::weights_from_hist(&hist)[local as usize];
                    (dls::Technique::wf(), w)
                } else {
                    (spec.intra, weights.get(me as usize).copied().unwrap_or(1.0))
                };
                let ctx = dls::technique::WorkerCtx { worker: local, weight };
                let size = crate::queue::sub_chunk_size_for(&technique, len, wpn, step, taken, ctx);
                local_win.put(0, STEP, (step + 1) as i64)?;
                local_win.put(0, TAKEN, (taken + size) as i64)?;
                let sub = SubChunk { start: lo + taken, end: lo + taken + size };
                if plan_active {
                    // Record the grant as a lease *in the same critical
                    // section as the take*: if this rank dies before the
                    // next poll settles it, the odd epoch plus the dead
                    // flag tell survivors exactly which range was lost.
                    local_win.put(0, lease_slot(wpn, my_local, LEASE_LO), sub.start as i64)?;
                    local_win.put(0, lease_slot(wpn, my_local, LEASE_HI), sub.end as i64)?;
                    my_epoch += 1; // odd: active
                    local_win.put(0, lease_slot(wpn, my_local, LEASE_EPOCH), my_epoch)?;
                    if faults
                        .crash_after_sub_chunks(me)
                        .is_some_and(|k| out.sub_chunks + 1 >= u64::from(k))
                    {
                        // Die after taking, before executing: the queue
                        // counters already account the range to this
                        // rank, so only the lease can get it back.
                        node_comm.mark_failed();
                        local_win.sync();
                        local_win.unlock(LockKind::Exclusive, 0)?;
                        out.recovery.push(resilience::RecoveryEvent::Crash {
                            rank: me,
                            at_ns: now(),
                            holding_lock: false,
                        });
                        break;
                    }
                }
                local_win.sync();
                local_win.unlock(LockKind::Exclusive, 0)?;
                out.trace.record(me, probe_start, now(), SegmentKind::Sched);
                let started = std::time::Instant::now();
                let compute_start = now();
                execute(workload, &sub, &mut out);
                if straggle > 1.0 {
                    // Injected straggler: stretch the kernel time to
                    // `straggle`× by busy-waiting out the difference.
                    let target = started.elapsed().mul_f64(straggle);
                    while started.elapsed() < target {
                        std::hint::spin_loop();
                    }
                }
                out.trace.record(me, compute_start, now(), SegmentKind::Compute);
                if awf.is_some() {
                    // Charge the measured kernel time to the shared
                    // history (AWF-C style: per chunk completion).
                    let elapsed = started.elapsed().as_nanos().min(i64::MAX as u128) as i64;
                    let hist_start = now();
                    lock_queue(&local_win, &node_comm, plan_active, detect_polls)?;
                    // Unified-model visibility: sync before reading
                    // counters peers put under their own epochs (the
                    // rma-check MissingSync rule flags the read-modify-
                    // write below as stale without it).
                    local_win.sync();
                    let i_slot = HIST_BASE + 2 * local as usize;
                    let it = local_win.get(0, i_slot)?;
                    let tm = local_win.get(0, i_slot + 1)?;
                    local_win.put(0, i_slot, it + sub.len() as i64)?;
                    // Ensure a nonzero time so rates stay finite.
                    local_win.put(0, i_slot + 1, tm + elapsed.max(1))?;
                    local_win.sync();
                    local_win.unlock(LockKind::Exclusive, 0)?;
                    out.trace.record(me, hist_start, now(), SegmentKind::Sched);
                }
                continue;
            }

            let global_done = local_win.get(0, GLOBAL_DONE)? != 0;
            let refilling = local_win.get(0, REFILLING)? != 0;
            if plan_active {
                // Queue drained: scan peer leases for a range stranded
                // by a dead owner before exiting, backing off, or
                // refilling. The queue holds one range, so reclaim one
                // lease per poll; the next poll picks up any others.
                let mut reclaimed = false;
                for r in (0..wpn).filter(|&r| r != my_local && node_comm.is_failed(r)) {
                    let e = local_win.get(0, lease_slot(wpn, r, LEASE_EPOCH))?;
                    if e % 2 == 1 {
                        let rlo = local_win.get(0, lease_slot(wpn, r, LEASE_LO))?;
                        let rhi = local_win.get(0, lease_slot(wpn, r, LEASE_HI))?;
                        local_win.put(0, LO, rlo)?;
                        local_win.put(0, HI, rhi)?;
                        local_win.put(0, STEP, 0)?;
                        local_win.put(0, TAKEN, 0)?;
                        local_win.put(0, lease_slot(wpn, r, LEASE_EPOCH), e + 1)?;
                        local_win.note_reclaim();
                        out.reclaims += 1;
                        out.deposits += 1;
                        let at = now();
                        out.recovery.push(resilience::RecoveryEvent::LeaseExpired {
                            owner: world_of(r),
                            lo: rlo as u64,
                            hi: rhi as u64,
                            at_ns: at,
                        });
                        out.recovery.push(resilience::RecoveryEvent::Reclaim {
                            by: me,
                            owner: world_of(r),
                            lo: rlo as u64,
                            hi: rhi as u64,
                            at_ns: at,
                        });
                        reclaimed = true;
                        break;
                    }
                }
                if reclaimed {
                    local_win.sync();
                    local_win.unlock(LockKind::Exclusive, 0)?;
                    out.trace.record(me, probe_start, now(), SegmentKind::Sched);
                    continue;
                }
                if refilling {
                    // Refill in flight: if the rank that claimed the
                    // role died before depositing, fail the role over
                    // (its fetched chunk, if any, sits in its lease and
                    // was reclaimed by the scan above).
                    let rr = local_win.get(0, refiller_slot(wpn))? as u32;
                    if node_comm.is_failed(rr) {
                        local_win.put(0, REFILLING, 0)?;
                        local_win.sync();
                        local_win.unlock(LockKind::Exclusive, 0)?;
                        out.recovery.push(resilience::RecoveryEvent::RefillFailover {
                            node: my_node,
                            from: world_of(rr),
                            at_ns: now(),
                        });
                        out.trace.record(me, probe_start, now(), SegmentKind::Sched);
                        continue;
                    }
                }
            }
            if global_done {
                local_win.unlock(LockKind::Exclusive, 0)?;
                out.trace.record(me, probe_start, now(), SegmentKind::Sched);
                break;
            }
            if refilling {
                // A peer is refilling: back off briefly and re-probe.
                local_win.unlock(LockKind::Exclusive, 0)?;
                std::thread::yield_now();
                // A queue-empty observation while a peer refills is peer
                // waiting, not scheduling work of our own.
                out.trace.record(me, probe_start, now(), SegmentKind::Sync);
                continue;
            }
            // This worker becomes the refiller.
            local_win.put(0, REFILLING, 1)?;
            if plan_active {
                local_win.put(0, refiller_slot(wpn), i64::from(my_local))?;
            }
            local_win.sync();
            local_win.unlock(LockKind::Exclusive, 0)?;

            // ---- fetch a chunk from the global queue ----
            out.global_accesses += 1;
            let fetched = match global_mode {
                crate::config::GlobalQueueMode::SingleAtomic => {
                    // The PDP'19 distributed chunk calculation: one
                    // fetch-and-increment of the step counter, then the
                    // chunk bounds are a pure local function of it. The
                    // run-long lock_all epoch covers it; the flush
                    // completes the operation at the target before the
                    // local deposit proceeds.
                    let my_step = global_win.fetch_and_op(0, GSTEP, 1, mpisim::RmaOp::Sum)? as u64;
                    global_win.flush(0)?;
                    dls::single_counter::assignment(&spec.inter, &inter_spec, my_step)
                        .map(|(start, len)| (start, start + len))
                }
                crate::config::GlobalQueueMode::LockedCounters => {
                    global_win.lock(LockKind::Exclusive, 0)?;
                    let gstep = global_win.get(0, GSTEP)? as u64;
                    let gsched = global_win.get(0, GSCHED)? as u64;
                    let fetched = if gsched < n {
                        let state = dls::SchedState { step: gstep, scheduled: gsched };
                        let size = dls::ChunkCalculator::chunk_size(
                            &spec.inter,
                            &inter_spec,
                            state,
                            dls::technique::WorkerCtx::default(),
                        )
                        .clamp(1, n - gsched);
                        global_win.put(0, GSTEP, (gstep + 1) as i64)?;
                        global_win.put(0, GSCHED, (gsched + size) as i64)?;
                        Some((gsched, gsched + size))
                    } else {
                        None
                    };
                    global_win.unlock(LockKind::Exclusive, 0)?;
                    fetched
                }
            };

            if plan_active && fetched.is_some() {
                fetches_done += 1;
                if faults.crash_as_refiller_after(me).is_some_and(|g| fetches_done >= g) {
                    // Die as the refiller: the global step is already
                    // consumed, so the fetched chunk exists only in this
                    // rank's lease. Publish it and stop — REFILLING
                    // stays set until a survivor fails the role over.
                    let (clo, chi) = fetched.unwrap_or((0, 0));
                    lock_queue(&local_win, &node_comm, plan_active, detect_polls)?;
                    local_win.put(0, lease_slot(wpn, my_local, LEASE_LO), clo as i64)?;
                    local_win.put(0, lease_slot(wpn, my_local, LEASE_HI), chi as i64)?;
                    my_epoch += 1; // odd: active
                    local_win.put(0, lease_slot(wpn, my_local, LEASE_EPOCH), my_epoch)?;
                    node_comm.mark_failed();
                    local_win.sync();
                    local_win.unlock(LockKind::Exclusive, 0)?;
                    out.recovery.push(resilience::RecoveryEvent::Crash {
                        rank: me,
                        at_ns: now(),
                        holding_lock: false,
                    });
                    break;
                }
            }

            // ---- deposit (or mark the node done) ----
            if let Some(h) = lock_queue(&local_win, &node_comm, plan_active, detect_polls)? {
                out.reclaims += 1;
                out.recovery.push(resilience::RecoveryEvent::LockRepair {
                    node: my_node,
                    dead_holder: world_of(h),
                    by: me,
                    at_ns: now(),
                });
            }
            match fetched {
                Some((clo, chi)) => {
                    out.global_fetches += 1;
                    out.deposits += 1;
                    local_win.put(0, LO, clo as i64)?;
                    local_win.put(0, HI, chi as i64)?;
                    local_win.put(0, STEP, 0)?;
                    local_win.put(0, TAKEN, 0)?;
                }
                None => {
                    local_win.put(0, GLOBAL_DONE, 1)?;
                }
            }
            local_win.put(0, REFILLING, 0)?;
            local_win.sync();
            local_win.unlock(LockKind::Exclusive, 0)?;
            // The whole refill transaction (global fetch + deposit) is
            // scheduling overhead.
            out.trace.record(me, probe_start, now(), SegmentKind::Sched);
        }

        if global_mode == crate::config::GlobalQueueMode::SingleAtomic {
            global_win.unlock_all()?;
        }
        out.finish_ns = now();
        world.barrier();
        global_win.note_barrier();
        local_win.note_barrier();
        if node_comm.rank() == 0 {
            out.lock_stats = Some(local_win.lock_stats(0)?);
        }
        let lw = local_win.rank_stats();
        let gw = global_win.rank_stats();
        out.win_stats = RankWinStats {
            lock_acquisitions: lw.lock_acquisitions + gw.lock_acquisitions,
            failed_polls: lw.failed_polls + gw.failed_polls,
            lock_wait_ns: lw.lock_wait_ns + gw.lock_wait_ns,
            lock_held_ns: lw.lock_held_ns + gw.lock_held_ns,
            rma_atomic_ops: lw.rma_atomic_ops + gw.rma_atomic_ops,
            puts: lw.puts + gw.puts,
            gets: lw.gets + gw.gets,
            reclaims: lw.reclaims + gw.reclaims,
        };
        Ok(out)
    });

    let outcomes = outcomes.into_iter().collect::<mpisim::Result<Vec<_>>>()?;
    let rma = rma_log.map(|l| l.records()).unwrap_or_default();
    Ok(aggregate(cfg, outcomes, rma))
}

pub(super) fn execute(workload: &dyn Workload, sub: &SubChunk, out: &mut RankOutcome) {
    for i in sub.start..sub.end {
        out.checksum = out.checksum.wrapping_add(workload.execute(i));
    }
    out.iterations += sub.len();
    out.sub_chunks += 1;
    out.executed.push((out.worker, *sub));
}

pub(super) fn aggregate(
    cfg: &LiveConfig,
    outcomes: Vec<RankOutcome>,
    rma: Vec<RmaRecord>,
) -> LiveResult {
    let total_workers = (cfg.nodes * cfg.workers_per_node) as usize;
    let mut stats = RunStats::new(total_workers, cfg.nodes as usize);
    let mut checksum = 0u64;
    let mut executed = Vec::new();
    let mut trace = if cfg.trace { Trace::recording() } else { Trace::disabled() };
    let mut recovery = Vec::new();
    let makespan_ns = outcomes.iter().map(|o| o.finish_ns).max().unwrap_or(0);
    for o in outcomes {
        let w = o.worker as usize;
        stats.workers[w].iterations = o.iterations;
        stats.workers[w].sub_chunks = o.sub_chunks;
        stats.workers[w].global_fetches = o.global_fetches;
        stats.workers[w].lock_polls = o.win_stats.failed_polls;
        stats.workers[w].lock_time_ns = o.win_stats.lock_wait_ns + o.win_stats.lock_held_ns;
        stats.workers[w].rma_ops = o.win_stats.rma_atomic_ops;
        stats.workers[w].reclaims = o.reclaims;
        recovery.extend(o.recovery.iter().copied());
        let node = &mut stats.nodes[o.node as usize];
        node.deposits += o.deposits;
        node.sub_chunks += o.sub_chunks;
        if let Some((acq, contended, polls)) = o.lock_stats {
            node.lock_acquisitions = acq;
            node.lock_contended = contended;
            node.lock_polls = polls;
        }
        stats.global_accesses += o.global_accesses;
        stats.total_iterations += o.iterations;
        checksum = checksum.wrapping_add(o.checksum);
        executed.extend(o.executed);
        for s in o.trace.segments() {
            trace.record(s.worker, s.start, s.end, s.kind);
        }
        // Pad the tail so every worker's timeline spans the makespan.
        trace.record(o.worker, o.finish_ns, makespan_ns, SegmentKind::Idle);
    }
    recovery.sort_by_key(resilience::RecoveryEvent::at_ns);
    LiveResult { stats, checksum, executed, trace, rma, recovery }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HierSpec};
    use crate::live::serial_checksum;
    use dls::verify::check_exactly_once;
    use dls::Kind;
    use workloads::synthetic::Synthetic;

    fn run(spec: HierSpec, nodes: u32, wpn: u32, n: u64) -> (LiveResult, u64) {
        let w = Synthetic::uniform(n, 1, 100, 3);
        let cfg = LiveConfig::new(nodes, wpn, spec, Approach::MpiMpi);
        let serial = serial_checksum(&w);
        (run_live_mpi_mpi(&cfg, &w).expect("live run"), serial)
    }

    fn assert_exact(r: &LiveResult, serial: u64, n: u64) {
        assert_eq!(r.checksum, serial, "checksum mismatch vs serial");
        assert_eq!(r.stats.total_iterations, n);
        let chunks: Vec<dls::Chunk> = r
            .executed
            .iter()
            .map(|(_, s)| dls::Chunk { start: s.start, len: s.len(), step: 0 })
            .collect();
        check_exactly_once(&chunks, n).expect("exactly-once");
    }

    #[test]
    fn all_paper_combinations_execute_exactly_once() {
        for inter in [Kind::STATIC, Kind::GSS, Kind::TSS, Kind::FAC2] {
            for intra in [Kind::STATIC, Kind::SS, Kind::GSS, Kind::TSS, Kind::FAC2] {
                let (r, serial) = run(HierSpec::new(inter, intra), 2, 3, 600);
                assert_exact(&r, serial, 600);
            }
        }
    }

    #[test]
    fn single_node() {
        let (r, serial) = run(HierSpec::new(Kind::GSS, Kind::SS), 1, 4, 300);
        assert_exact(&r, serial, 300);
    }

    #[test]
    fn single_worker_per_node() {
        let (r, serial) = run(HierSpec::new(Kind::FAC2, Kind::GSS), 3, 1, 300);
        assert_exact(&r, serial, 300);
    }

    #[test]
    fn tiny_loop_fewer_iterations_than_workers() {
        let (r, serial) = run(HierSpec::new(Kind::GSS, Kind::GSS), 2, 4, 5);
        assert_exact(&r, serial, 5);
    }

    #[test]
    fn lock_stats_populated() {
        let (r, _) = run(HierSpec::new(Kind::GSS, Kind::SS), 2, 4, 500);
        for node in &r.stats.nodes {
            assert!(node.lock_acquisitions > 0);
        }
    }

    #[test]
    fn trace_and_window_counters_recorded() {
        let w = Synthetic::uniform(600, 1, 100, 3);
        let mut cfg = LiveConfig::new(2, 3, HierSpec::new(Kind::GSS, Kind::SS), Approach::MpiMpi);
        cfg.trace = true;
        let r = run_live_mpi_mpi(&cfg, &w).expect("live run");
        assert!(!r.trace.segments().is_empty());
        let totals = r.trace.totals();
        assert!(totals.compute > 0, "compute segments must be recorded");
        assert!(totals.sched > 0, "sched segments must be recorded");
        for w in 0..6 {
            assert!(r.trace.worker_totals(w).total() > 0, "worker {w} has an empty timeline");
        }
        // Every rank locks the local window at least once per sub-chunk
        // and issues a global fetch_and_op per refill attempt (successful
        // fetches plus the exhaustion probe that comes back empty).
        for ws in &r.stats.workers {
            assert!(ws.lock_time_ns > 0, "time-in-lock must accumulate");
            assert!(ws.rma_ops >= ws.global_fetches);
        }
        for node in &r.stats.nodes {
            assert!(node.lock_acquisitions > 0);
        }
    }

    #[test]
    fn trace_disabled_by_default() {
        let (r, _) = run(HierSpec::new(Kind::GSS, Kind::SS), 1, 2, 100);
        assert!(r.trace.segments().is_empty());
    }

    #[test]
    fn every_worker_participates_on_balanced_load() {
        let w = Synthetic::constant(2000, 20_000); // ~20us per iteration
        let cfg = LiveConfig::new(2, 3, HierSpec::new(Kind::GSS, Kind::SS), Approach::MpiMpi);
        let r = run_live_mpi_mpi(&cfg, &w).expect("live run");
        assert_eq!(r.stats.total_iterations, 2000);
    }

    #[test]
    fn rma_log_disabled_by_default_and_recorded_on_request() {
        let w = Synthetic::uniform(300, 1, 100, 3);
        let cfg = LiveConfig::new(2, 2, HierSpec::new(Kind::GSS, Kind::SS), Approach::MpiMpi);
        let r = run_live_mpi_mpi(&cfg, &w).expect("live run");
        assert!(r.rma.is_empty());

        let mut cfg = cfg;
        cfg.record_rma = true;
        let r = run_live_mpi_mpi(&cfg, &w).expect("live run");
        // Every rank attaches both windows and the protocol locks,
        // syncs, gets and puts throughout — the log must see them all.
        assert!(r.rma.len() > 50, "only {} records", r.rma.len());
        let wins: std::collections::HashSet<u64> = r.rma.iter().map(|rec| rec.win).collect();
        assert_eq!(wins.len(), 3, "global + one shared window per node");
    }
}
