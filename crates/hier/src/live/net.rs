//! The fifth backend: the paper's two-level hierarchy with a **real
//! network at the inter-node level**.
//!
//! The global work queue is no longer an RMA window on rank 0 — it is
//! a `dls-service` server reached over TCP. Each node keeps exactly
//! one *node-agent connection*; the node's ranks keep self-scheduling
//! sub-chunks out of the `mpisim` shared-memory window exactly as in
//! [`super::run_live_mpi_mpi`]. When a rank drains the local queue and
//! wins the refill role, it locks the node's agent and performs one
//! `FetchChunk` round trip instead of one `MPI_Fetch_and_op` — the
//! paper's structure, with the top level crossing a socket.
//!
//! Fetched chunks carry leases; the agent settles each lease right
//! after depositing the chunk (the ranks of one process cannot die
//! independently, so the in-process backend has no use for revocation
//! — multi-process recovery is exercised by the `net-worker` smoke
//! tests in `dls-service`).

use super::mpi_mpi::{aggregate, execute, RankOutcome};
use super::{LiveConfig, LiveResult};
use crate::queue::SubChunk;
use cluster_sim::trace::{SegmentKind, Trace};
use dls_service::{Client, FetchReply};
use mpisim::{LockKind, RankWinStats, Topology, Universe, Window};
use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use workloads::Workload;

// Local window slot indices (the fault-free subset of `mpi_mpi`'s).
const REFILLING: usize = 0;
const GLOBAL_DONE: usize = 1;
const LO: usize = 2;
const HI: usize = 3;
const STEP: usize = 4;
const TAKEN: usize = 5;
const LOCAL_SLOTS: usize = 6;

/// Run the hierarchy with the global queue behind `addr`.
///
/// The server is multi-tenant: this call creates its own job and
/// leaves unrelated jobs untouched, so many `run_live_net` invocations
/// (or entirely different tenants) can share one server. Network
/// failures panic — this backend asserts a reachable server the same
/// way the RMA backends assert allocatable windows; scheduling-level
/// errors surface as `Err` like the other live executors.
///
/// Fault injection and AWF are not supported here: crashes of in-
/// process ranks are the RMA backends' story, and the multi-process
/// lease recovery path is exercised end-to-end by the `dls-service`
/// smoke tests.
pub fn run_live_net(
    cfg: &LiveConfig,
    workload: &(dyn Workload + Sync),
    addr: SocketAddr,
) -> mpisim::Result<LiveResult> {
    assert!(!cfg.faults.is_active(), "run_live_net does not inject faults");
    assert!(cfg.awf.is_none(), "run_live_net does not support AWF");
    let topology = Topology::new(cfg.nodes, cfg.workers_per_node);
    let n = workload.n_iters();
    assert!(n <= i64::MAX as u64, "loop too large for i64 window slots");
    let wpn = cfg.workers_per_node;
    let spec = cfg.spec;
    let weights = cfg.weights.clone();
    let do_trace = cfg.trace;
    let epoch = Instant::now();

    // One connection per node — the node agent. The job itself is
    // created over a separate setup connection.
    let mut setup = Client::connect(addr).expect("connect to dls-service");
    let inter_kind: dls::SchedKind = cfg.net_inter.unwrap_or_else(|| spec.inter.kind().into());
    let job = setup
        .create_job(n, inter_kind, &node_weights(&weights, cfg.nodes, wpn))
        .expect("create job");
    // A bounded reply wait per agent call: a wedged server surfaces as
    // a typed TimedOut error instead of hanging every rank on the node.
    let agents: Vec<Mutex<Client>> = (0..cfg.nodes)
        .map(|_| {
            let mut agent = Client::connect(addr).expect("connect node agent");
            agent
                .set_read_deadline(Some(Duration::from_secs(30)))
                .expect("set agent read deadline");
            Mutex::new(agent)
        })
        .collect();

    let outcomes = Universe::run(topology, move |p| -> mpisim::Result<RankOutcome> {
        let now = || epoch.elapsed().as_nanos() as u64;
        let world = p.world();
        let me = world.rank();
        let node_comm = world.split_shared()?;
        let local_win = Window::allocate_shared(
            &node_comm,
            if node_comm.rank() == 0 { LOCAL_SLOTS } else { 0 },
        )?;
        world.barrier();
        local_win.note_barrier();

        let mut out = RankOutcome {
            worker: me,
            node: p.node_id(),
            iterations: 0,
            sub_chunks: 0,
            global_fetches: 0,
            deposits: 0,
            checksum: 0,
            executed: Vec::new(),
            lock_stats: None,
            global_accesses: 0,
            win_stats: RankWinStats::default(),
            trace: if do_trace { Trace::recording() } else { Trace::disabled() },
            finish_ns: 0,
            reclaims: 0,
            recovery: Vec::new(),
        };

        let my_node = p.node_id();

        loop {
            // ---- probe the local queue under the window lock ----
            let probe_start = now();
            local_win.lock(LockKind::Exclusive, 0)?;
            local_win.sync();
            let lo = local_win.get(0, LO)? as u64;
            let hi = local_win.get(0, HI)? as u64;
            let step = local_win.get(0, STEP)? as u64;
            let taken = local_win.get(0, TAKEN)? as u64;
            let len = hi - lo;

            if taken < len {
                let local = node_comm.rank();
                let weight = weights.get(me as usize).copied().unwrap_or(1.0);
                let ctx = dls::technique::WorkerCtx { worker: local, weight };
                let size =
                    crate::queue::sub_chunk_size_for(&spec.intra, len, wpn, step, taken, ctx);
                local_win.put(0, STEP, (step + 1) as i64)?;
                local_win.put(0, TAKEN, (taken + size) as i64)?;
                let sub = SubChunk { start: lo + taken, end: lo + taken + size };
                local_win.sync();
                local_win.unlock(LockKind::Exclusive, 0)?;
                out.trace.record(me, probe_start, now(), SegmentKind::Sched);
                let compute_start = now();
                execute(workload, &sub, &mut out);
                out.trace.record(me, compute_start, now(), SegmentKind::Compute);
                continue;
            }

            let global_done = local_win.get(0, GLOBAL_DONE)? != 0;
            let refilling = local_win.get(0, REFILLING)? != 0;
            if global_done {
                local_win.unlock(LockKind::Exclusive, 0)?;
                out.trace.record(me, probe_start, now(), SegmentKind::Sched);
                break;
            }
            if refilling {
                // A peer is refilling: back off briefly and re-probe.
                local_win.unlock(LockKind::Exclusive, 0)?;
                std::thread::yield_now();
                out.trace.record(me, probe_start, now(), SegmentKind::Sync);
                continue;
            }
            // This worker becomes the refiller.
            local_win.put(0, REFILLING, 1)?;
            local_win.sync();
            local_win.unlock(LockKind::Exclusive, 0)?;

            // ---- fetch a chunk over TCP via the node agent ----
            out.global_accesses += 1;
            let fetched = {
                let mut agent = agents[my_node as usize].lock().expect("node agent poisoned");
                match agent.fetch(job, my_node, 1).expect("fetch chunk") {
                    FetchReply::Chunks(chunks) => {
                        let c = chunks[0];
                        // Settle the lease as soon as the chunk is
                        // safely ours: in-process ranks cannot die
                        // independently of the agent connection.
                        agent.report_done(job, &[c.lease]).expect("report lease");
                        Some((c.lo, c.hi))
                    }
                    FetchReply::Pending => {
                        // Another node holds an unsettled lease; the
                        // queue may still grow via reclamation. Clear
                        // the refill role and re-poll.
                        local_win.lock(LockKind::Exclusive, 0)?;
                        local_win.put(0, REFILLING, 0)?;
                        local_win.sync();
                        local_win.unlock(LockKind::Exclusive, 0)?;
                        std::thread::yield_now();
                        out.trace.record(me, probe_start, now(), SegmentKind::Sync);
                        continue;
                    }
                    FetchReply::Done => None,
                }
            };

            // ---- deposit (or mark the node done) ----
            local_win.lock(LockKind::Exclusive, 0)?;
            match fetched {
                Some((clo, chi)) => {
                    out.global_fetches += 1;
                    out.deposits += 1;
                    local_win.put(0, LO, clo as i64)?;
                    local_win.put(0, HI, chi as i64)?;
                    local_win.put(0, STEP, 0)?;
                    local_win.put(0, TAKEN, 0)?;
                }
                None => {
                    local_win.put(0, GLOBAL_DONE, 1)?;
                }
            }
            local_win.put(0, REFILLING, 0)?;
            local_win.sync();
            local_win.unlock(LockKind::Exclusive, 0)?;
            out.trace.record(me, probe_start, now(), SegmentKind::Sched);
        }

        out.finish_ns = now();
        world.barrier();
        local_win.note_barrier();
        if node_comm.rank() == 0 {
            out.lock_stats = Some(local_win.lock_stats(0)?);
        }
        out.win_stats = local_win.rank_stats();
        Ok(out)
    });

    let outcomes = outcomes.into_iter().collect::<mpisim::Result<Vec<_>>>()?;
    Ok(aggregate(cfg, outcomes, Vec::new()))
}

/// Weights for the *inter-node* level: the service schedules chunks
/// per node, so per-worker weights collapse to their per-node sums
/// (mean-normalised by the technique itself). Empty stays empty (unit
/// weights).
fn node_weights(weights: &[f64], nodes: u32, wpn: u32) -> Vec<f64> {
    if weights.is_empty() {
        return Vec::new();
    }
    (0..nodes)
        .map(|node| {
            (0..wpn)
                .map(|w| weights.get((node * wpn + w) as usize).copied().unwrap_or(1.0))
                .sum::<f64>()
                / f64::from(wpn)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HierSpec};
    use crate::live::serial_checksum;
    use dls::verify::check_exactly_once;
    use dls::Kind;
    use dls_service::{Server, ServiceConfig};
    use workloads::synthetic::Synthetic;

    fn run(spec: HierSpec, nodes: u32, wpn: u32, n: u64) -> (LiveResult, u64) {
        let srv = Server::start(ServiceConfig::default(), "127.0.0.1:0").expect("bind");
        let w = Synthetic::uniform(n, 1, 100, 3);
        let cfg = LiveConfig::new(nodes, wpn, spec, Approach::MpiMpi);
        let serial = serial_checksum(&w);
        let r = run_live_net(&cfg, &w, srv.addr()).expect("net run");
        let snap = srv.shutdown();
        // The job this run created must have completed exactly.
        let job = &snap.jobs[0];
        assert!(job.done);
        assert_eq!(job.completed, n);
        assert_eq!(job.leases_granted, job.leases_completed);
        (r, serial)
    }

    fn assert_exact(r: &LiveResult, serial: u64, n: u64) {
        assert_eq!(r.checksum, serial, "checksum mismatch vs serial");
        assert_eq!(r.stats.total_iterations, n);
        let chunks: Vec<dls::Chunk> = r
            .executed
            .iter()
            .map(|(_, s)| dls::Chunk { start: s.start, len: s.len(), step: 0 })
            .collect();
        check_exactly_once(&chunks, n).expect("exactly-once");
    }

    #[test]
    fn paper_pairs_execute_exactly_once_over_tcp() {
        for inter in [Kind::GSS, Kind::FAC2] {
            for intra in [Kind::STATIC, Kind::SS, Kind::TSS] {
                let (r, serial) = run(HierSpec::new(inter, intra), 2, 3, 400);
                assert_exact(&r, serial, 400);
            }
        }
    }

    #[test]
    fn single_node_single_worker() {
        let (r, serial) = run(HierSpec::new(Kind::GSS, Kind::SS), 1, 1, 120);
        assert_exact(&r, serial, 120);
    }

    #[test]
    fn tiny_loop_fewer_iterations_than_workers() {
        let (r, serial) = run(HierSpec::new(Kind::GSS, Kind::GSS), 2, 4, 5);
        assert_exact(&r, serial, 5);
    }

    #[test]
    fn one_agent_connection_per_node() {
        let srv = Server::start(ServiceConfig::default(), "127.0.0.1:0").expect("bind");
        let w = Synthetic::uniform(300, 1, 100, 3);
        let cfg = LiveConfig::new(3, 2, HierSpec::new(Kind::GSS, Kind::SS), Approach::MpiMpi);
        run_live_net(&cfg, &w, srv.addr()).expect("net run");
        let snap = srv.shutdown();
        // 1 setup connection + one agent per node, all closed now.
        assert_eq!(snap.totals.conns_total, 1 + 3);
        assert_eq!(snap.totals.conns_active, 0);
        // Only agent connections fetch; every fetch went through them.
        let fetching: Vec<_> = snap.conns.iter().filter(|c| c.fetches > 0).collect();
        assert_eq!(fetching.len(), 3, "exactly the three node agents fetch");
    }

    #[test]
    fn trace_records_compute_and_sched() {
        let srv = Server::start(ServiceConfig::default(), "127.0.0.1:0").expect("bind");
        let w = Synthetic::uniform(400, 1, 100, 3);
        let mut cfg = LiveConfig::new(2, 2, HierSpec::new(Kind::GSS, Kind::SS), Approach::MpiMpi);
        cfg.trace = true;
        let r = run_live_net(&cfg, &w, srv.addr()).expect("net run");
        srv.shutdown();
        let totals = r.trace.totals();
        assert!(totals.compute > 0);
        assert!(totals.sched > 0);
    }
}
