//! Real-thread executors over the `mpisim` runtime.
//!
//! These run the *actual* protocols — MPI-3 shared-memory windows with
//! `MPI_Win_lock` for the proposed approach, an OpenMP-style persistent
//! thread team with implicit region barriers for the baseline — and the
//! *actual* application kernels. They validate functional correctness
//! (every iteration executed exactly once, checksums equal to a serial
//! run); timing fidelity at scale is the `sim` backend's job.

mod master_worker;
mod mpi_mpi;
mod mpi_omp;
mod net;

pub use master_worker::{run_live_flat_master_worker, run_live_master_worker};
pub use mpi_mpi::run_live_mpi_mpi;
pub use mpi_omp::run_live_mpi_omp;
pub use net::run_live_net;

use crate::config::{Approach, HierSpec};
use crate::queue::SubChunk;
use crate::stats::RunStats;
use workloads::Workload;

/// Configuration of one real-thread run.
#[derive(Clone, Debug)]
pub struct LiveConfig {
    /// Simulated compute nodes.
    pub nodes: u32,
    /// Workers per node: MPI ranks (MPI+MPI) or team threads
    /// (MPI+OpenMP).
    pub workers_per_node: u32,
    /// The `X+Y` scheduling combination.
    pub spec: HierSpec,
    /// Which implementation of the intra-node level.
    pub approach: Approach,
    /// Static per-worker weights for weighted techniques (WF): indexed
    /// by global worker id, mean-normalised. Empty means unit weights.
    pub weights: Vec<f64>,
    /// Adaptive weighted factoring at the intra-node level (MPI+MPI
    /// only): when set, sub-chunks are WF-sized with weights learned
    /// from measured rates, whose history lives in the node's shared
    /// window next to the queue counters.
    pub awf: Option<dls::adaptive::AwfVariant>,
    /// How the global queue is realised over RMA (MPI+MPI only).
    pub global_mode: crate::config::GlobalQueueMode,
    /// Record per-worker timeline segments (wall-clock, relative to the
    /// run's start) into [`LiveResult::trace`].
    pub trace: bool,
    /// Record every passive-target RMA operation (locks, syncs, puts,
    /// gets, atomics) into [`LiveResult::rma`] for `rma-check`'s
    /// epoch-discipline and happens-before analyses.
    pub record_rma: bool,
    /// Injected failures (MPI+MPI only: the baseline's fork-join team
    /// has no per-thread recovery story — a crashed team member would
    /// hang the region barrier, which is exactly the resilience argument
    /// for the shared-window approach). Crash triggers count sub-chunks
    /// (`after_sub_chunks` / `after_global_fetches`); stragglers slow
    /// the kernel by busy-waiting. The empty plan is bit-identical to a
    /// fault-free run.
    pub faults: resilience::FaultPlan,
    /// Override the technique the **net backend** asks the
    /// `dls-service` global queue to use (`CreateJob`'s kind). `None`
    /// sends `spec.inter`'s kind. This is how the inter level runs the
    /// adaptive techniques (`AF`, `AWF-*`) or the self-switching
    /// `AUTO` mode, which size chunks from server-side measurements
    /// and have no pure in-process `Technique` equivalent; the other
    /// live backends ignore it.
    pub net_inter: Option<dls::SchedKind>,
}

impl LiveConfig {
    /// Configuration with unit weights and no adaptivity.
    pub fn new(nodes: u32, workers_per_node: u32, spec: HierSpec, approach: Approach) -> Self {
        Self {
            nodes,
            workers_per_node,
            spec,
            approach,
            weights: Vec::new(),
            awf: None,
            global_mode: crate::config::GlobalQueueMode::SingleAtomic,
            trace: false,
            record_rma: false,
            faults: resilience::FaultPlan::none(),
            net_inter: None,
        }
    }
}

/// Result of one real-thread run.
#[derive(Clone, Debug)]
pub struct LiveResult {
    /// Counters (iterations, sub-chunks, fetches, lock stats).
    pub stats: RunStats,
    /// Sum of `Workload::execute` over every executed iteration —
    /// equals the serial checksum iff execution was exactly-once.
    pub checksum: u64,
    /// Every executed sub-chunk, tagged with its global worker id.
    pub executed: Vec<(u32, SubChunk)>,
    /// Per-worker timeline in wall-clock nanoseconds since the run
    /// started (empty unless [`LiveConfig::trace`]). Unlike the `sim`
    /// backend's virtual-time traces these are measurements, so they
    /// vary run to run — use them for activity breakdowns, not for
    /// reproducible makespans.
    pub trace: cluster_sim::Trace,
    /// The full RMA access log of the run (empty unless
    /// [`LiveConfig::record_rma`]), ready for `rma_check::check`.
    pub rma: Vec<mpisim::RmaRecord>,
    /// Detection and repair actions taken during the run (empty unless
    /// [`LiveConfig::faults`] injected something), time-ordered.
    pub recovery: Vec<resilience::RecoveryEvent>,
}

/// Run a hierarchical loop for real, dispatching on the approach.
///
/// Window allocation or RMA failures surface as `Err` instead of
/// panicking inside worker threads; wrappers that want the old
/// infallible behaviour `.expect()` at their own boundary.
pub fn run_live(cfg: &LiveConfig, workload: &(dyn Workload + Sync)) -> mpisim::Result<LiveResult> {
    match cfg.approach {
        Approach::MpiMpi => run_live_mpi_mpi(cfg, workload),
        Approach::MpiOpenMp => run_live_mpi_omp(cfg, workload),
    }
}

/// The serial reference checksum a correct run must reproduce.
pub fn serial_checksum(workload: &dyn Workload) -> u64 {
    (0..workload.n_iters()).map(|i| workload.execute(i)).sum()
}
