//! Real-thread MPI+OpenMP executor: the baseline hybrid on the `mpisim`
//! runtime, with the intra-node level running on the `openmp-sim`
//! worksharing runtime.
//!
//! One MPI rank per node. Inside each rank, an OpenMP-style team
//! executes chunks: thread 0 (the main thread — the only one allowed to
//! call MPI, as the paper notes) fetches chunks from the global RMA
//! window; every worksharing region over a chunk ends in the **implicit
//! team barrier** `openmp_sim::TeamCtx::for_each` provides, so fast
//! threads wait for the slowest one before the next chunk can be
//! fetched.
//!
//! As on the paper's testbed (Intel OpenMP), only `schedule(static)`,
//! `schedule(dynamic)` and `schedule(guided)` exist at this level:
//! requesting TSS/FAC2/... intra-node under MPI+OpenMP panics with the
//! same limitation message the paper gives for skipping those
//! combinations.

use super::{LiveConfig, LiveResult};
use crate::queue::SubChunk;
use crate::stats::RunStats;
use dls::openmp::{omp_equivalent, OmpSchedule};
use dls::technique::WorkerCtx;
use dls::ChunkCalculator;
use mpisim::{LockKind, Topology, Universe, Window};
use openmp_sim::{Schedule, Team, TeamCtx};
use parking_lot::Mutex;
use workloads::Workload;

const GSTEP: usize = 0;
const GSCHED: usize = 1;

#[derive(Default)]
struct ThreadOutcome {
    iterations: u64,
    sub_chunks: u64,
    checksum: u64,
    executed: Vec<SubChunk>,
}

struct NodeOutcome {
    node: u32,
    threads: Vec<ThreadOutcome>,
    global_fetches: u64,
    global_accesses: u64,
    deposits: u64,
}

/// The intra technique as an `openmp-sim` schedule, or the paper's
/// limitation message.
fn omp_schedule(intra: &dls::Technique) -> Schedule {
    match omp_equivalent(intra.kind()) {
        Some(OmpSchedule::Static { chunk }) => Schedule::Static { chunk },
        Some(OmpSchedule::Dynamic { chunk }) => Schedule::Dynamic { chunk },
        Some(OmpSchedule::Guided { chunk }) => Schedule::Guided { chunk },
        None => panic!(
            "the Intel OpenMP runtime only supports schedule(static|dynamic|guided); \
             {} at the intra-node level requires Approach::MpiMpi",
            intra.kind()
        ),
    }
}

/// Run the MPI+OpenMP approach with real threads.
pub fn run_live_mpi_omp(cfg: &LiveConfig, workload: &(dyn Workload + Sync)) -> LiveResult {
    // One MPI process per node; the team provides the node's parallelism.
    let topology = Topology::new(cfg.nodes, 1);
    let n = workload.n_iters();
    assert!(n <= i64::MAX as u64, "loop too large for i64 window slots");
    let inter_spec = dls::LoopSpec::new(n, cfg.nodes);
    let schedule = omp_schedule(&cfg.spec.intra);
    let team_size = cfg.workers_per_node;
    let spec = cfg.spec;

    let outcomes = Universe::run(topology, move |p| {
        let world = p.world();
        let me = world.rank();
        let global_win =
            Window::allocate(world, if me == 0 { 2 } else { 0 }).expect("global window");
        world.barrier();

        let chunk_slot: Mutex<Option<(u64, u64)>> = Mutex::new(None);
        let fetches = Mutex::new((0u64, 0u64, 0u64)); // fetches, accesses, deposits

        let thread_outcomes = Team::new(team_size).parallel(|ctx| {
            team_thread(
                ctx, workload, &global_win, &chunk_slot, &fetches, &spec, &inter_spec,
                schedule, n,
            )
        });

        let f = fetches.into_inner();
        NodeOutcome {
            node: me,
            threads: thread_outcomes,
            global_fetches: f.0,
            global_accesses: f.1,
            deposits: f.2,
        }
    });

    aggregate(cfg, outcomes)
}

/// One team thread's life: thread 0 fetches chunks over MPI; everyone
/// executes worksharing regions with the implicit end barrier.
#[allow(clippy::too_many_arguments)]
fn team_thread(
    ctx: &TeamCtx,
    workload: &dyn Workload,
    global_win: &Window,
    chunk_slot: &Mutex<Option<(u64, u64)>>,
    fetches: &Mutex<(u64, u64, u64)>,
    spec: &crate::config::HierSpec,
    inter_spec: &dls::LoopSpec,
    schedule: Schedule,
    n: u64,
) -> ThreadOutcome {
    let mut out = ThreadOutcome::default();
    loop {
        // Only the main thread calls MPI.
        ctx.master(|| {
            global_win.lock(LockKind::Exclusive, 0).expect("lock global");
            let gstep = global_win.get(0, GSTEP).expect("gstep") as u64;
            let gsched = global_win.get(0, GSCHED).expect("gsched") as u64;
            let mut f = fetches.lock();
            f.1 += 1;
            let fetched = if gsched < n {
                let state = dls::SchedState { step: gstep, scheduled: gsched };
                let size = spec
                    .inter
                    .chunk_size(inter_spec, state, WorkerCtx::default())
                    .clamp(1, n - gsched);
                global_win.put(0, GSTEP, (gstep + 1) as i64).expect("gstep");
                global_win.put(0, GSCHED, (gsched + size) as i64).expect("gsched");
                f.0 += 1;
                f.2 += 1;
                Some((gsched, gsched + size))
            } else {
                None
            };
            drop(f);
            global_win.unlock(LockKind::Exclusive, 0).expect("unlock global");
            *chunk_slot.lock() = fetched;
        });
        // Region start: the team waits for the fetch.
        ctx.barrier();
        let Some((lo, hi)) = *chunk_slot.lock() else {
            break;
        };
        // The worksharing region; `for_each_dispatch` ends in the
        // implicit barrier the paper's Figure 2 illustrates.
        ctx.for_each_dispatch(lo..hi, schedule, |r| {
            for i in r.clone() {
                out.checksum = out.checksum.wrapping_add(workload.execute(i));
            }
            out.iterations += r.end - r.start;
            out.sub_chunks += 1;
            out.executed.push(SubChunk { start: r.start, end: r.end });
        });
    }
    out
}

fn aggregate(cfg: &LiveConfig, outcomes: Vec<NodeOutcome>) -> LiveResult {
    let team = cfg.workers_per_node;
    let total_workers = (cfg.nodes * team) as usize;
    let mut stats = RunStats::new(total_workers, cfg.nodes as usize);
    let mut checksum = 0u64;
    let mut executed = Vec::new();
    for o in outcomes {
        for (tid, t) in o.threads.into_iter().enumerate() {
            let w = o.node * team + tid as u32;
            stats.workers[w as usize].iterations = t.iterations;
            stats.workers[w as usize].sub_chunks = t.sub_chunks;
            stats.nodes[o.node as usize].sub_chunks += t.sub_chunks;
            stats.total_iterations += t.iterations;
            checksum = checksum.wrapping_add(t.checksum);
            executed.extend(t.executed.into_iter().map(|s| (w, s)));
        }
        stats.workers[(o.node * team) as usize].global_fetches = o.global_fetches;
        stats.nodes[o.node as usize].deposits = o.deposits;
        stats.global_accesses += o.global_accesses;
    }
    LiveResult { stats, checksum, executed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HierSpec};
    use crate::live::serial_checksum;
    use dls::verify::check_exactly_once;
    use dls::Kind;
    use workloads::synthetic::Synthetic;

    fn run(spec: HierSpec, nodes: u32, wpn: u32, n: u64) -> (LiveResult, u64) {
        let w = Synthetic::uniform(n, 1, 100, 3);
        let cfg = LiveConfig::new(nodes, wpn, spec, Approach::MpiOpenMp);
        let serial = serial_checksum(&w);
        (run_live_mpi_omp(&cfg, &w), serial)
    }

    fn assert_exact(r: &LiveResult, serial: u64, n: u64) {
        assert_eq!(r.checksum, serial, "checksum mismatch vs serial");
        assert_eq!(r.stats.total_iterations, n);
        let chunks: Vec<dls::Chunk> = r
            .executed
            .iter()
            .map(|(_, s)| dls::Chunk { start: s.start, len: s.len(), step: 0 })
            .collect();
        check_exactly_once(&chunks, n).expect("exactly-once");
    }

    #[test]
    fn openmp_supported_combinations_execute_exactly_once() {
        for inter in [Kind::STATIC, Kind::GSS, Kind::TSS, Kind::FAC2] {
            for intra in [Kind::STATIC, Kind::SS, Kind::GSS] {
                let (r, serial) = run(HierSpec::new(inter, intra), 2, 3, 600);
                assert_exact(&r, serial, 600);
            }
        }
    }

    #[test]
    fn only_thread_zero_fetches() {
        let (r, _) = run(HierSpec::new(Kind::GSS, Kind::GSS), 2, 4, 800);
        for (w, ws) in r.stats.workers.iter().enumerate() {
            if w % 4 != 0 {
                assert_eq!(ws.global_fetches, 0);
            }
        }
    }

    #[test]
    fn static_intra_splits_blocks() {
        let (r, serial) = run(HierSpec::new(Kind::STATIC, Kind::STATIC), 2, 4, 800);
        assert_exact(&r, serial, 800);
        // STATIC+STATIC: every thread executes exactly one block of 100.
        for ws in &r.stats.workers {
            assert_eq!(ws.iterations, 100);
            assert_eq!(ws.sub_chunks, 1);
        }
    }

    #[test]
    fn tiny_loop() {
        let (r, serial) = run(HierSpec::new(Kind::GSS, Kind::SS), 2, 4, 3);
        assert_exact(&r, serial, 3);
    }

    #[test]
    fn single_node_single_thread() {
        let (r, serial) = run(HierSpec::new(Kind::FAC2, Kind::GSS), 1, 1, 200);
        assert_exact(&r, serial, 200);
    }

    #[test]
    #[should_panic(expected = "Intel OpenMP runtime only supports")]
    fn unsupported_intra_technique_rejected() {
        let w = Synthetic::constant(10, 1);
        let cfg =
            LiveConfig::new(1, 2, HierSpec::new(Kind::GSS, Kind::TSS), Approach::MpiOpenMp);
        run_live_mpi_omp(&cfg, &w);
    }
}
