//! Real-thread MPI+OpenMP executor: the baseline hybrid on the `mpisim`
//! runtime, with the intra-node level running on the `openmp-sim`
//! worksharing runtime.
//!
//! One MPI rank per node. Inside each rank, an OpenMP-style team
//! executes chunks: thread 0 (the main thread — the only one allowed to
//! call MPI, as the paper notes) fetches chunks from the global RMA
//! window; every worksharing region over a chunk ends in the **implicit
//! team barrier** `openmp_sim::TeamCtx::for_each` provides, so fast
//! threads wait for the slowest one before the next chunk can be
//! fetched.
//!
//! As on the paper's testbed (Intel OpenMP), only `schedule(static)`,
//! `schedule(dynamic)` and `schedule(guided)` exist at this level:
//! requesting TSS/FAC2/... intra-node under MPI+OpenMP panics with the
//! same limitation message the paper gives for skipping those
//! combinations.

use super::{LiveConfig, LiveResult};
use crate::queue::SubChunk;
use crate::stats::RunStats;
use cluster_sim::trace::{SegmentKind, Trace};
use dls::openmp::{omp_equivalent, OmpSchedule};
use dls::technique::WorkerCtx;
use dls::ChunkCalculator;
use mpisim::{LockKind, RankWinStats, RmaLog, RmaRecord, Topology, Universe, Window};
use openmp_sim::{Schedule, Team, TeamCtx};
use parking_lot::Mutex;
use std::time::Instant;
use workloads::Workload;

const GSTEP: usize = 0;
const GSCHED: usize = 1;

struct ThreadOutcome {
    iterations: u64,
    sub_chunks: u64,
    checksum: u64,
    executed: Vec<SubChunk>,
    /// Timeline keyed by the *local* thread id; remapped to global
    /// worker ids during aggregation.
    trace: Trace,
    finish_ns: u64,
}

struct NodeOutcome {
    node: u32,
    threads: Vec<ThreadOutcome>,
    global_fetches: u64,
    global_accesses: u64,
    deposits: u64,
    /// The node rank's window counters (only thread 0 calls MPI).
    win_stats: RankWinStats,
}

/// The intra technique as an `openmp-sim` schedule, or the paper's
/// limitation message.
fn omp_schedule(intra: &dls::Technique) -> Schedule {
    match omp_equivalent(intra.kind()) {
        Some(OmpSchedule::Static { chunk }) => Schedule::Static { chunk },
        Some(OmpSchedule::Dynamic { chunk }) => Schedule::Dynamic { chunk },
        Some(OmpSchedule::Guided { chunk }) => Schedule::Guided { chunk },
        None => panic!(
            "the Intel OpenMP runtime only supports schedule(static|dynamic|guided); \
             {} at the intra-node level requires Approach::MpiMpi",
            intra.kind()
        ),
    }
}

/// Run the MPI+OpenMP approach with real threads.
///
/// Allocation or RMA failures from any node's master thread surface as
/// `Err`.
pub fn run_live_mpi_omp(
    cfg: &LiveConfig,
    workload: &(dyn Workload + Sync),
) -> mpisim::Result<LiveResult> {
    // One MPI process per node; the team provides the node's parallelism.
    let topology = Topology::new(cfg.nodes, 1);
    let n = workload.n_iters();
    assert!(n <= i64::MAX as u64, "loop too large for i64 window slots");
    let inter_spec = dls::LoopSpec::new(n, cfg.nodes);
    let schedule = omp_schedule(&cfg.spec.intra);
    let team_size = cfg.workers_per_node;
    let spec = cfg.spec;
    let do_trace = cfg.trace;
    let rma_log = cfg.record_rma.then(RmaLog::new);
    let log_for_ranks = rma_log.clone();
    // Timeline epoch: every thread stamps segments relative to this.
    let epoch = Instant::now();

    let outcomes = Universe::run(topology, move |p| -> mpisim::Result<NodeOutcome> {
        let world = p.world();
        let me = world.rank();
        let mut global_win = Window::allocate(world, if me == 0 { 2 } else { 0 })?;
        if let Some(log) = &log_for_ranks {
            global_win.record_to(log);
        }
        world.barrier();
        global_win.note_barrier();

        let chunk_slot: Mutex<Option<(u64, u64)>> = Mutex::new(None);
        let fetches = Mutex::new((0u64, 0u64, 0u64)); // fetches, accesses, deposits
                                                      // First RMA error the master thread hit (it cannot return a
                                                      // Result through the worksharing closure); reported after the
                                                      // team joins.
        let fetch_err: Mutex<Option<mpisim::Error>> = Mutex::new(None);

        let thread_outcomes = Team::new(team_size).parallel(|ctx| {
            team_thread(
                ctx,
                workload,
                &global_win,
                &chunk_slot,
                &fetches,
                &fetch_err,
                &spec,
                &inter_spec,
                schedule,
                n,
                do_trace,
                epoch,
            )
        });

        if let Some(e) = fetch_err.into_inner() {
            return Err(e);
        }
        let win_stats = global_win.rank_stats();
        let f = fetches.into_inner();
        Ok(NodeOutcome {
            node: me,
            threads: thread_outcomes,
            global_fetches: f.0,
            global_accesses: f.1,
            deposits: f.2,
            win_stats,
        })
    });

    let outcomes = outcomes.into_iter().collect::<mpisim::Result<Vec<_>>>()?;
    let rma = rma_log.map(|l| l.records()).unwrap_or_default();
    Ok(aggregate(cfg, outcomes, rma))
}

/// One team thread's life: thread 0 fetches chunks over MPI; everyone
/// executes worksharing regions with the implicit end barrier.
#[allow(clippy::too_many_arguments)]
fn team_thread(
    ctx: &TeamCtx,
    workload: &dyn Workload,
    global_win: &Window,
    chunk_slot: &Mutex<Option<(u64, u64)>>,
    fetches: &Mutex<(u64, u64, u64)>,
    fetch_err: &Mutex<Option<mpisim::Error>>,
    spec: &crate::config::HierSpec,
    inter_spec: &dls::LoopSpec,
    schedule: Schedule,
    n: u64,
    do_trace: bool,
    epoch: Instant,
) -> ThreadOutcome {
    let mut out = ThreadOutcome {
        iterations: 0,
        sub_chunks: 0,
        checksum: 0,
        executed: Vec::new(),
        trace: if do_trace { Trace::recording() } else { Trace::disabled() },
        finish_ns: 0,
    };
    let now = || epoch.elapsed().as_nanos() as u64;
    let tid = ctx.thread_num();
    loop {
        let fetch_start = now();
        // Only the main thread calls MPI. An RMA failure parks its
        // error in `fetch_err` and posts `None` so the whole team
        // drains out of the loop.
        ctx.master(|| {
            let fetched = (|| -> mpisim::Result<Option<(u64, u64)>> {
                global_win.lock(LockKind::Exclusive, 0)?;
                let gstep = global_win.get(0, GSTEP)? as u64;
                let gsched = global_win.get(0, GSCHED)? as u64;
                let mut f = fetches.lock();
                f.1 += 1;
                let fetched = if gsched < n {
                    let state = dls::SchedState { step: gstep, scheduled: gsched };
                    let size = spec
                        .inter
                        .chunk_size(inter_spec, state, WorkerCtx::default())
                        .clamp(1, n - gsched);
                    global_win.put(0, GSTEP, (gstep + 1) as i64)?;
                    global_win.put(0, GSCHED, (gsched + size) as i64)?;
                    f.0 += 1;
                    f.2 += 1;
                    Some((gsched, gsched + size))
                } else {
                    None
                };
                drop(f);
                global_win.unlock(LockKind::Exclusive, 0)?;
                Ok(fetched)
            })();
            *chunk_slot.lock() = match fetched {
                Ok(c) => c,
                Err(e) => {
                    fetch_err.lock().get_or_insert(e);
                    None
                }
            };
        });
        if tid == 0 {
            // The master's MPI round-trip is scheduling overhead.
            out.trace.record(tid, fetch_start, now(), SegmentKind::Sched);
        }
        // Region start: the team waits for the fetch.
        let barrier_start = now();
        ctx.barrier();
        out.trace.record(tid, barrier_start, now(), SegmentKind::Sync);
        let Some((lo, hi)) = *chunk_slot.lock() else {
            break;
        };
        // The worksharing region; `for_each_dispatch` ends in the
        // implicit barrier the paper's Figure 2 illustrates.
        let mut last_end = now();
        ctx.for_each_dispatch(lo..hi, schedule, |r| {
            let c0 = now();
            for i in r.clone() {
                out.checksum = out.checksum.wrapping_add(workload.execute(i));
            }
            out.iterations += r.end - r.start;
            out.sub_chunks += 1;
            out.executed.push(SubChunk { start: r.start, end: r.end });
            last_end = now();
            out.trace.record(tid, c0, last_end, SegmentKind::Compute);
        });
        // Fast threads sit in the region's implicit end barrier until
        // the slowest one drains its share.
        out.trace.record(tid, last_end, now(), SegmentKind::Sync);
    }
    out.finish_ns = now();
    out
}

fn aggregate(cfg: &LiveConfig, outcomes: Vec<NodeOutcome>, rma: Vec<RmaRecord>) -> LiveResult {
    let team = cfg.workers_per_node;
    let total_workers = (cfg.nodes * team) as usize;
    let mut stats = RunStats::new(total_workers, cfg.nodes as usize);
    let mut checksum = 0u64;
    let mut executed = Vec::new();
    let mut trace = if cfg.trace { Trace::recording() } else { Trace::disabled() };
    let makespan_ns =
        outcomes.iter().flat_map(|o| o.threads.iter().map(|t| t.finish_ns)).max().unwrap_or(0);
    for o in outcomes {
        for (tid, t) in o.threads.into_iter().enumerate() {
            let w = o.node * team + tid as u32;
            stats.workers[w as usize].iterations = t.iterations;
            stats.workers[w as usize].sub_chunks = t.sub_chunks;
            stats.nodes[o.node as usize].sub_chunks += t.sub_chunks;
            stats.total_iterations += t.iterations;
            checksum = checksum.wrapping_add(t.checksum);
            executed.extend(t.executed.into_iter().map(|s| (w, s)));
            // Thread timelines are keyed by the local thread id; remap
            // to the global worker id and pad the tail so every worker
            // timeline spans the whole run.
            for s in t.trace.segments() {
                trace.record(w, s.start, s.end, s.kind);
            }
            trace.record(w, t.finish_ns, makespan_ns, SegmentKind::Idle);
        }
        let master = (o.node * team) as usize;
        stats.workers[master].global_fetches = o.global_fetches;
        // Only thread 0 touches the global window, so the rank's window
        // counters are the master worker's.
        stats.workers[master].lock_polls = o.win_stats.failed_polls;
        stats.workers[master].lock_time_ns = o.win_stats.lock_wait_ns + o.win_stats.lock_held_ns;
        stats.workers[master].rma_ops = o.win_stats.rma_atomic_ops;
        stats.nodes[o.node as usize].lock_acquisitions = o.win_stats.lock_acquisitions;
        stats.nodes[o.node as usize].lock_polls = o.win_stats.failed_polls;
        stats.nodes[o.node as usize].deposits = o.deposits;
        stats.global_accesses += o.global_accesses;
    }
    LiveResult { stats, checksum, executed, trace, rma, recovery: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HierSpec};
    use crate::live::serial_checksum;
    use dls::verify::check_exactly_once;
    use dls::Kind;
    use workloads::synthetic::Synthetic;

    fn run(spec: HierSpec, nodes: u32, wpn: u32, n: u64) -> (LiveResult, u64) {
        let w = Synthetic::uniform(n, 1, 100, 3);
        let cfg = LiveConfig::new(nodes, wpn, spec, Approach::MpiOpenMp);
        let serial = serial_checksum(&w);
        (run_live_mpi_omp(&cfg, &w).expect("live run"), serial)
    }

    fn assert_exact(r: &LiveResult, serial: u64, n: u64) {
        assert_eq!(r.checksum, serial, "checksum mismatch vs serial");
        assert_eq!(r.stats.total_iterations, n);
        let chunks: Vec<dls::Chunk> = r
            .executed
            .iter()
            .map(|(_, s)| dls::Chunk { start: s.start, len: s.len(), step: 0 })
            .collect();
        check_exactly_once(&chunks, n).expect("exactly-once");
    }

    #[test]
    fn openmp_supported_combinations_execute_exactly_once() {
        for inter in [Kind::STATIC, Kind::GSS, Kind::TSS, Kind::FAC2] {
            for intra in [Kind::STATIC, Kind::SS, Kind::GSS] {
                let (r, serial) = run(HierSpec::new(inter, intra), 2, 3, 600);
                assert_exact(&r, serial, 600);
            }
        }
    }

    #[test]
    fn only_thread_zero_fetches() {
        let (r, _) = run(HierSpec::new(Kind::GSS, Kind::GSS), 2, 4, 800);
        for (w, ws) in r.stats.workers.iter().enumerate() {
            if w % 4 != 0 {
                assert_eq!(ws.global_fetches, 0);
            }
        }
    }

    #[test]
    fn static_intra_splits_blocks() {
        let (r, serial) = run(HierSpec::new(Kind::STATIC, Kind::STATIC), 2, 4, 800);
        assert_exact(&r, serial, 800);
        // STATIC+STATIC: every thread executes exactly one block of 100.
        for ws in &r.stats.workers {
            assert_eq!(ws.iterations, 100);
            assert_eq!(ws.sub_chunks, 1);
        }
    }

    #[test]
    fn tiny_loop() {
        let (r, serial) = run(HierSpec::new(Kind::GSS, Kind::SS), 2, 4, 3);
        assert_exact(&r, serial, 3);
    }

    #[test]
    fn single_node_single_thread() {
        let (r, serial) = run(HierSpec::new(Kind::FAC2, Kind::GSS), 1, 1, 200);
        assert_exact(&r, serial, 200);
    }

    #[test]
    fn trace_covers_every_team_thread() {
        let w = Synthetic::uniform(600, 1, 100, 3);
        let mut cfg =
            LiveConfig::new(2, 3, HierSpec::new(Kind::GSS, Kind::SS), Approach::MpiOpenMp);
        cfg.trace = true;
        let r = run_live_mpi_omp(&cfg, &w).expect("live run");
        let totals = r.trace.totals();
        assert!(totals.compute > 0, "compute segments must be recorded");
        assert!(totals.sched > 0, "the master's fetches are sched time");
        assert!(totals.sync > 0, "region barriers are sync time");
        for w in 0..6 {
            assert!(r.trace.worker_totals(w).total() > 0, "worker {w} has an empty timeline");
        }
        // Only the master thread of each node touches MPI, so only it
        // can accumulate window counters.
        for (w, ws) in r.stats.workers.iter().enumerate() {
            if w % 3 == 0 {
                assert!(ws.rma_ops == 0, "chunk fetches use put/get, not atomics");
                assert!(ws.lock_time_ns > 0, "the master holds the global lock");
            } else {
                assert_eq!(ws.lock_time_ns, 0);
                assert_eq!(ws.lock_polls, 0);
            }
        }
        for node in &r.stats.nodes {
            assert!(node.lock_acquisitions > 0);
        }
    }

    #[test]
    fn trace_disabled_by_default() {
        let (r, _) = run(HierSpec::new(Kind::GSS, Kind::SS), 1, 2, 100);
        assert!(r.trace.segments().is_empty());
    }

    #[test]
    #[should_panic(expected = "Intel OpenMP runtime only supports")]
    fn unsupported_intra_technique_rejected() {
        let w = Synthetic::constant(10, 1);
        let cfg = LiveConfig::new(1, 2, HierSpec::new(Kind::GSS, Kind::TSS), Approach::MpiOpenMp);
        let _ = run_live_mpi_omp(&cfg, &w);
    }

    #[test]
    fn rma_log_records_master_protocol() {
        let w = Synthetic::uniform(400, 1, 100, 3);
        let mut cfg =
            LiveConfig::new(2, 3, HierSpec::new(Kind::GSS, Kind::SS), Approach::MpiOpenMp);
        cfg.record_rma = true;
        let r = run_live_mpi_omp(&cfg, &w).expect("live run");
        assert!(!r.rma.is_empty());
        // Only masters call MPI: every non-barrier record comes from a
        // lock/get/put/unlock fetch cycle on the one global window.
        let wins: std::collections::HashSet<u64> = r.rma.iter().map(|rec| rec.win).collect();
        assert_eq!(wins.len(), 1);
    }
}
