//! Real-thread master-worker executors over `mpisim` two-sided
//! messaging — the execution models of the paper's related work
//! (DLB-tool, HDSS), implemented with actual `send`/`recv` so the
//! protocol (request, serve, terminate) runs for real.
//!
//! * **Flat**: world rank 0 is a dedicated master serving every other
//!   rank; chunk calculus spans all workers.
//! * **Hierarchical**: world rank 0 is the dedicated global master;
//!   each node's rank 0 is a *local master* that forwards to the global
//!   master when its node queue drains. Local masters also work —
//!   matching the DLB tool's "non-dedicated master" at the node level —
//!   by serving requests between their own iterations.
//!
//! For simplicity and determinism of termination, the hierarchical
//! variant's local master interleaves serving and computing in a simple
//! loop: it first answers all queued requests, then takes a sub-chunk
//! for itself.

use super::{LiveConfig, LiveResult};
use crate::queue::{LocalQueue, SubChunk};
use crate::stats::RunStats;
use dls::technique::WorkerCtx;
use dls::{ChunkCalculator, LoopSpec, SchedState};
use mpisim::{Comm, Topology, Universe};
use workloads::Workload;

/// Tags of the master-worker protocol.
const TAG_REQUEST: i32 = 100;
const TAG_ASSIGN: i32 = 101;

/// A work assignment or the termination notice.
type Assignment = Option<(u64, u64)>;

/// Run the flat (single dedicated master) model for real. World rank 0
/// serves; ranks `1..` work. `workers_per_node * nodes` ranks are
/// launched, so the worker count is one less than the other executors —
/// the dedicated master is exactly the resource this model burns.
pub fn run_live_flat_master_worker(
    cfg: &LiveConfig,
    workload: &(dyn Workload + Sync),
) -> LiveResult {
    let topology = Topology::new(cfg.nodes, cfg.workers_per_node);
    let n = workload.n_iters();
    let total = topology.world_size();
    assert!(total >= 2, "flat master-worker needs at least one worker");
    let spec = cfg.spec;
    // Chunk calculus over the actual workers (everyone but the master).
    let calc_spec = LoopSpec::new(n, total - 1);

    let outcomes = Universe::run(topology, move |p| {
        let world = p.world();
        if world.rank() == 0 {
            master_serve(world, &spec.inter, &calc_spec, total - 1);
            (0u64, 0u64, Vec::new())
        } else {
            worker_loop(world, workload)
        }
    });
    aggregate(cfg, outcomes)
}

/// The dedicated master: serve requests until every worker has been
/// sent the termination notice.
fn master_serve(world: &Comm, technique: &dls::Technique, spec: &LoopSpec, workers: u32) {
    let mut state = SchedState::START;
    let mut terminated = 0u32;
    while terminated < workers {
        let (src, _, ()) = world.recv(None, Some(TAG_REQUEST)).expect("request");
        let assignment: Assignment = if state.exhausted(spec) {
            terminated += 1;
            None
        } else {
            let size = technique.chunk_size(spec, state, WorkerCtx::default());
            let chunk = state.take(spec, size).expect("not exhausted");
            Some((chunk.start, chunk.end()))
        };
        world.send(src, TAG_ASSIGN, assignment).expect("assign");
    }
}

/// A worker: request, execute, repeat until the termination notice.
fn worker_loop(world: &Comm, workload: &dyn Workload) -> (u64, u64, Vec<SubChunk>) {
    let mut checksum = 0u64;
    let mut iterations = 0u64;
    let mut executed = Vec::new();
    loop {
        world.send(0, TAG_REQUEST, ()).expect("request");
        let (_, _, assignment): (_, _, Assignment) =
            world.recv(Some(0), Some(TAG_ASSIGN)).expect("assignment");
        match assignment {
            Some((lo, hi)) => {
                for i in lo..hi {
                    checksum = checksum.wrapping_add(workload.execute(i));
                }
                iterations += hi - lo;
                executed.push(SubChunk { start: lo, end: hi });
            }
            None => return (checksum, iterations, executed),
        }
    }
}

fn aggregate(cfg: &LiveConfig, outcomes: Vec<(u64, u64, Vec<SubChunk>)>) -> LiveResult {
    let total_workers = (cfg.nodes * cfg.workers_per_node) as usize;
    let mut stats = RunStats::new(total_workers, cfg.nodes as usize);
    let mut checksum = 0u64;
    let mut executed = Vec::new();
    for (w, (cs, iters, subs)) in outcomes.into_iter().enumerate() {
        stats.workers[w].iterations = iters;
        stats.workers[w].sub_chunks = subs.len() as u64;
        stats.total_iterations += iters;
        checksum = checksum.wrapping_add(cs);
        executed.extend(subs.into_iter().map(|s| (w as u32, s)));
    }
    // The message-passing models are comparison baselines; they do not
    // record timelines.
    LiveResult {
        stats,
        checksum,
        executed,
        trace: cluster_sim::Trace::disabled(),
        rma: Vec::new(),
        recovery: Vec::new(),
    }
}

/// Run the hierarchical master-worker model for real: rank 0 is the
/// dedicated global master (inter technique over nodes); each node's
/// first rank is a working local master that owns the node queue and
/// serves its node's other ranks; plain workers request from their
/// local master.
pub fn run_live_master_worker(cfg: &LiveConfig, workload: &(dyn Workload + Sync)) -> LiveResult {
    let topology = Topology::new(cfg.nodes, cfg.workers_per_node);
    let n = workload.n_iters();
    let wpn = cfg.workers_per_node;
    assert!(
        wpn >= 2,
        "hierarchical master-worker needs >= 2 ranks per node (node 0 \
         hosts the dedicated global master)"
    );
    let spec = cfg.spec;
    let inter_spec = LoopSpec::new(n, cfg.nodes);

    let outcomes = Universe::run(topology, move |p| {
        let world = p.world();
        let me = world.rank();
        if me == 0 {
            // Global master: serve the local masters. Each node sends
            // exactly one final request that returns None.
            master_serve(world, &spec.inter, &inter_spec, cfg.nodes);
            // Rank 0 of node 0 doubles as that node's local master in
            // this layout? No — the global master is dedicated; node
            // 0's local master is handled below only for me != 0. To
            // keep every node uniform, node 0's local master is rank 1.
            (0u64, 0u64, Vec::new())
        } else if p.local_rank() == local_master_rank(p.node_id()) {
            local_master_loop(world, p.node_id(), wpn, &spec.intra, workload)
        } else {
            let lm = p.node_id() * wpn + local_master_rank(p.node_id());
            plain_worker_loop(world, lm, workload)
        }
    });
    aggregate(cfg, outcomes)
}

/// Local rank of the node's local master: rank 1 on node 0 (whose rank
/// 0 is the dedicated global master), rank 0 elsewhere.
fn local_master_rank(node: u32) -> u32 {
    u32::from(node == 0)
}

/// The working local master: pulls chunks from the global master into a
/// queue, serves its node's requests (held in an explicit pending list
/// while a refill is needed), and executes sub-chunks itself in
/// between.
fn local_master_loop(
    world: &Comm,
    node: u32,
    wpn: u32,
    intra: &dls::Technique,
    workload: &dyn Workload,
) -> (u64, u64, Vec<SubChunk>) {
    let mut queue = LocalQueue::new();
    let mut pending: std::collections::VecDeque<u32> = Default::default();
    let mut global_done = false;
    let mut checksum = 0u64;
    let mut iterations = 0u64;
    let mut executed = Vec::new();
    // Peers: every rank of this node except the local master itself
    // (and except the dedicated global master on node 0).
    let my_world = node * wpn + local_master_rank(node);
    let mut active_peers =
        (node * wpn..(node + 1) * wpn).filter(|&r| r != my_world && r != 0).count() as u32;

    loop {
        if queue.is_empty() && !global_done {
            world.send(0, TAG_REQUEST, ()).expect("request global");
            let (_, _, assignment): (_, _, Assignment) =
                world.recv(Some(0), Some(TAG_ASSIGN)).expect("global assign");
            match assignment {
                Some((lo, hi)) => queue.deposit(lo, hi),
                None => global_done = true,
            }
        }
        // Absorb every arrived request, then serve as many as possible.
        while world.probe(None, Some(TAG_REQUEST)) {
            let (src, _, ()) = world.recv(None, Some(TAG_REQUEST)).expect("peer request");
            pending.push_back(src);
        }
        while let Some(&src) = pending.front() {
            if let Some(sub) = queue.take_sub_chunk(intra, wpn) {
                world.send(src, TAG_ASSIGN, Some((sub.start, sub.end))).expect("assign peer");
                pending.pop_front();
            } else if global_done {
                world.send(src, TAG_ASSIGN, None::<(u64, u64)>).expect("terminate peer");
                pending.pop_front();
                active_peers -= 1;
            } else {
                break; // refill first, keep the request pending
            }
        }
        // One sub-chunk of our own between serving rounds.
        if let Some(sub) = queue.take_sub_chunk(intra, wpn) {
            for i in sub.start..sub.end {
                checksum = checksum.wrapping_add(workload.execute(i));
            }
            iterations += sub.len();
            executed.push(sub);
        } else if global_done {
            if active_peers == 0 && pending.is_empty() {
                break;
            }
            // Nothing left to compute: block for the next peer request
            // and terminate it.
            let (src, _, ()) = world.recv(None, Some(TAG_REQUEST)).expect("final request");
            world.send(src, TAG_ASSIGN, None::<(u64, u64)>).expect("terminate");
            active_peers -= 1;
        }
        // Otherwise loop back to refill.
    }
    (checksum, iterations, executed)
}

fn plain_worker_loop(
    world: &Comm,
    local_master: u32,
    workload: &dyn Workload,
) -> (u64, u64, Vec<SubChunk>) {
    let mut checksum = 0u64;
    let mut iterations = 0u64;
    let mut executed = Vec::new();
    loop {
        world.send(local_master, TAG_REQUEST, ()).expect("request");
        let (_, _, assignment): (_, _, Assignment) =
            world.recv(Some(local_master), Some(TAG_ASSIGN)).expect("assignment");
        match assignment {
            Some((lo, hi)) => {
                for i in lo..hi {
                    checksum = checksum.wrapping_add(workload.execute(i));
                }
                iterations += hi - lo;
                executed.push(SubChunk { start: lo, end: hi });
            }
            None => return (checksum, iterations, executed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Approach, HierSpec};
    use crate::live::serial_checksum;
    use dls::verify::check_exactly_once;
    use dls::Kind;
    use workloads::synthetic::Synthetic;

    fn assert_exact(r: &LiveResult, serial: u64, n: u64) {
        assert_eq!(r.checksum, serial, "checksum mismatch");
        assert_eq!(r.stats.total_iterations, n);
        let chunks: Vec<dls::Chunk> = r
            .executed
            .iter()
            .map(|(_, s)| dls::Chunk { start: s.start, len: s.len(), step: 0 })
            .collect();
        check_exactly_once(&chunks, n).expect("exactly-once");
    }

    #[test]
    fn flat_master_worker_exactly_once() {
        for tech in [Kind::SS, Kind::GSS, Kind::FAC2] {
            let w = Synthetic::uniform(700, 1, 80, 4);
            let cfg = LiveConfig::new(2, 3, HierSpec::new(tech, tech), Approach::MpiMpi);
            let serial = serial_checksum(&w);
            let r = run_live_flat_master_worker(&cfg, &w);
            assert_exact(&r, serial, 700);
        }
    }

    #[test]
    fn flat_master_does_not_compute() {
        let w = Synthetic::constant(500, 10);
        let cfg = LiveConfig::new(2, 2, HierSpec::new(Kind::GSS, Kind::GSS), Approach::MpiMpi);
        let r = run_live_flat_master_worker(&cfg, &w);
        assert_eq!(r.stats.workers[0].iterations, 0, "rank 0 is dedicated");
        assert_eq!(r.stats.total_iterations, 500);
    }

    #[test]
    fn hierarchical_master_worker_exactly_once() {
        for (inter, intra) in
            [(Kind::GSS, Kind::STATIC), (Kind::FAC2, Kind::SS), (Kind::TSS, Kind::GSS)]
        {
            let w = Synthetic::uniform(900, 1, 80, 8);
            let cfg = LiveConfig::new(2, 3, HierSpec::new(inter, intra), Approach::MpiMpi);
            let serial = serial_checksum(&w);
            let r = run_live_master_worker(&cfg, &w);
            assert_exact(&r, serial, 900);
        }
    }

    #[test]
    fn hierarchical_global_master_dedicated_local_masters_work() {
        let w = Synthetic::constant(1_200, 10);
        let cfg = LiveConfig::new(3, 3, HierSpec::new(Kind::GSS, Kind::GSS), Approach::MpiMpi);
        let r = run_live_master_worker(&cfg, &w);
        assert_eq!(r.stats.workers[0].iterations, 0, "global master is dedicated");
        // Local masters (rank 1 on node 0; ranks 3 and 6 otherwise) do
        // participate in the loop.
        let local_masters = [1usize, 3, 6];
        assert!(
            local_masters.iter().any(|&m| r.stats.workers[m].iterations > 0),
            "local masters should compute too"
        );
        assert_eq!(r.stats.total_iterations, 1_200);
    }

    #[test]
    #[should_panic(expected = ">= 2 ranks per node")]
    fn hierarchical_rejects_single_rank_nodes() {
        let w = Synthetic::constant(10, 1);
        let cfg = LiveConfig::new(2, 1, HierSpec::new(Kind::GSS, Kind::GSS), Approach::MpiMpi);
        run_live_master_worker(&cfg, &w);
    }

    #[test]
    fn single_node_flat() {
        let w = Synthetic::uniform(300, 1, 50, 5);
        let cfg = LiveConfig::new(1, 4, HierSpec::new(Kind::GSS, Kind::GSS), Approach::MpiMpi);
        let serial = serial_checksum(&w);
        let r = run_live_flat_master_worker(&cfg, &w);
        assert_exact(&r, serial, 300);
    }
}
