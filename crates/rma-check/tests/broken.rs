//! Regression pins for the seeded-broken protocol variants: each must
//! trip exactly the rule it was built to violate, proving the checker
//! has teeth (a checker that passes everything would pass the clean
//! sweep too).

use rma_check::{check, ViolationKind};

#[test]
fn skip_sync_yields_missing_sync() {
    let records = rma_check::broken::skip_sync().expect("broken run");
    let report = check(&records);
    assert_eq!(report.count_of(ViolationKind::MissingSync), 1, "{}", report.render());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
}

#[test]
fn unlocked_rmw_yields_epoch_and_race_violations() {
    let records = rma_check::broken::unlocked_rmw().expect("broken run");
    let report = check(&records);
    // One get + one put per rank, each outside any epoch.
    assert_eq!(report.count_of(ViolationKind::AccessOutsideEpoch), 4, "{}", report.render());
    // With no synchronisation edges at all, whichever rank's RMW lands
    // second must race the first — the lost-update the paper's
    // fetch_and_op protocol exists to prevent.
    assert!(report.has(ViolationKind::DataRace), "{}", report.render());
}

#[test]
fn unlock_without_lock_is_flagged_even_though_runtime_refuses() {
    let records = rma_check::broken::unlock_without_lock().expect("broken run");
    let report = check(&records);
    assert_eq!(report.count_of(ViolationKind::UnlockWithoutLock), 1, "{}", report.render());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
}

#[test]
fn unreleased_lock_yields_epoch_leak() {
    let records = rma_check::broken::epoch_leak().expect("broken run");
    let report = check(&records);
    assert_eq!(report.count_of(ViolationKind::EpochLeak), 1, "{}", report.render());
    assert_eq!(report.violations.len(), 1, "{}", report.render());
}
