//! Quick live-backend cleanliness probe (superseded by sweep.rs).

use hier::config::{Approach, HierSpec};
use hier::live::{run_live_mpi_mpi, run_live_mpi_omp, LiveConfig};
use workloads::synthetic::Synthetic;

#[test]
fn live_mpi_mpi_log_is_clean() {
    let w = Synthetic::uniform(400, 1, 100, 7);
    let mut cfg =
        LiveConfig::new(2, 3, HierSpec::new(dls::Kind::GSS, dls::Kind::SS), Approach::MpiMpi);
    cfg.record_rma = true;
    let r = run_live_mpi_mpi(&cfg, &w).expect("live run");
    let report = rma_check::check(&r.rma);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn live_mpi_mpi_locked_counters_log_is_clean() {
    let w = Synthetic::uniform(400, 1, 100, 7);
    let mut cfg =
        LiveConfig::new(2, 3, HierSpec::new(dls::Kind::TSS, dls::Kind::GSS), Approach::MpiMpi);
    cfg.global_mode = hier::config::GlobalQueueMode::LockedCounters;
    cfg.record_rma = true;
    let r = run_live_mpi_mpi(&cfg, &w).expect("live run");
    let report = rma_check::check(&r.rma);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn live_mpi_mpi_awf_log_is_clean() {
    let w = Synthetic::uniform(400, 1, 100, 7);
    let mut cfg =
        LiveConfig::new(2, 3, HierSpec::new(dls::Kind::GSS, dls::Kind::SS), Approach::MpiMpi);
    cfg.awf = Some(dls::adaptive::AwfVariant::C);
    cfg.record_rma = true;
    let r = run_live_mpi_mpi(&cfg, &w).expect("live run");
    let report = rma_check::check(&r.rma);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn live_mpi_omp_log_is_clean() {
    let w = Synthetic::uniform(400, 1, 100, 7);
    let mut cfg =
        LiveConfig::new(2, 3, HierSpec::new(dls::Kind::GSS, dls::Kind::SS), Approach::MpiOpenMp);
    cfg.record_rma = true;
    let r = run_live_mpi_omp(&cfg, &w).expect("live run");
    let report = rma_check::check(&r.rma);
    assert!(report.is_clean(), "{}", report.render());
}
