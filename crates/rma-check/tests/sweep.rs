//! The acceptance sweep: every backend × technique pair × schedule
//! variant must produce a violation-free RMA log and schedule each of
//! the loop's iterations exactly once. The sim backends run the
//! unperturbed baseline, eight seeded jitter interleavings, and the
//! adversarial lock-handoff reordering; the live backends run eight
//! independently-seeded real-thread executions.

use hier::config::GlobalQueueMode;
use rma_check::harness::{explore, Backend, Exploration};

fn sweep(backend: Backend, cfg: &Exploration) {
    let s = explore(backend, cfg);
    assert!(s.is_clean(), "{}", s.render());
    assert!(s.runs > 0, "sweep performed no runs");
    assert!(s.records > 0, "sweep checked no RMA records");
}

#[test]
fn sim_mpi_mpi_grid_clean_under_all_schedules() {
    sweep(Backend::SimMpiMpi, &Exploration::default());
}

#[test]
fn sim_mpi_omp_grid_clean_under_all_schedules() {
    sweep(Backend::SimMpiOmp, &Exploration::default());
}

#[test]
fn live_mpi_mpi_grid_clean_across_seeds() {
    sweep(Backend::LiveMpiMpi, &Exploration::default());
}

#[test]
fn live_mpi_omp_grid_clean_across_seeds() {
    sweep(Backend::LiveMpiOmp, &Exploration::default());
}

#[test]
fn locked_counters_global_queue_clean() {
    // The lock-based global-queue realisation exercises a different
    // epoch pattern (exclusive lock + get/put instead of fetch_and_op
    // under lock_all); a shorter seed roster keeps the suite fast.
    let cfg = Exploration {
        global_mode: GlobalQueueMode::LockedCounters,
        seeds: 0..2,
        ..Exploration::default()
    };
    sweep(Backend::SimMpiMpi, &cfg);
    sweep(Backend::LiveMpiMpi, &cfg);
}
