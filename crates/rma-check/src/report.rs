//! Violation taxonomy and the checker's report type.

use std::fmt;

/// The MPI-3 RMA rule a logged operation broke.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A get/put/atomic/flush was issued with no passive-target access
    /// epoch (lock or `lock_all`) covering the target.
    AccessOutsideEpoch,
    /// `MPI_Win_lock` on a target already locked by this origin (or any
    /// lock taken while a `lock_all` epoch is open, or `lock_all` while
    /// holding locks) — MPI forbids nesting on the same window.
    NestedLock,
    /// `MPI_Win_unlock` with no matching open epoch on that target.
    UnlockWithoutLock,
    /// `MPI_Win_unlock` whose lock kind does not match the open epoch.
    MismatchedUnlock,
    /// `MPI_Win_unlock_all` with no open `lock_all` epoch.
    UnlockAllWithoutLockAll,
    /// An epoch (lock or `lock_all`) still open when the log ends.
    EpochLeak,
    /// Two origins held overlapping epochs on the same target where at
    /// least one was exclusive — the runtime's mutual exclusion failed
    /// or the log's stamping discipline was bypassed.
    ExclusiveOverlap,
    /// Shared-memory window read observed a remote put with no
    /// `MPI_Win_sync` (or barrier) on the reading rank in between — a
    /// stale read under the unified memory model.
    MissingSync,
    /// Happens-before race: two conflicting accesses to the same window
    /// displacement with no ordering between them (lost update when both
    /// are writes).
    DataRace,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::AccessOutsideEpoch => "access-outside-epoch",
            Self::NestedLock => "nested-lock",
            Self::UnlockWithoutLock => "unlock-without-lock",
            Self::MismatchedUnlock => "mismatched-unlock",
            Self::UnlockAllWithoutLockAll => "unlock_all-without-lock_all",
            Self::EpochLeak => "epoch-leak",
            Self::ExclusiveOverlap => "exclusive-lock-overlap",
            Self::MissingSync => "missing-sync",
            Self::DataRace => "data-race",
        };
        f.write_str(s)
    }
}

/// One detected violation, with provenance into the access log.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which rule was broken.
    pub kind: ViolationKind,
    /// Window the offending operation targeted.
    pub win: u64,
    /// Origin rank (window-communicator relative) that issued it.
    pub rank: u32,
    /// Global sequence number of the offending record (its position in
    /// the totally-ordered log).
    pub seq: u64,
    /// Human-readable specifics: operation, displacement, the other
    /// party of a race, and so on.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] win {} rank {} @ seq {}: {}",
            self.kind, self.win, self.rank, self.seq, self.detail
        )
    }
}

/// Outcome of running the checker over one access log.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All violations, ordered by log sequence number.
    pub violations: Vec<Violation>,
    /// How many records were analysed.
    pub records_checked: usize,
}

impl Report {
    /// True when no rule was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations of one kind.
    pub fn count_of(&self, kind: ViolationKind) -> usize {
        self.violations.iter().filter(|v| v.kind == kind).count()
    }

    /// True when at least one violation of `kind` was found.
    pub fn has(&self, kind: ViolationKind) -> bool {
        self.count_of(kind) > 0
    }

    /// Multi-line human-readable summary (one line per violation).
    pub fn render(&self) -> String {
        if self.is_clean() {
            return format!("clean ({} records checked)", self.records_checked);
        }
        let mut s = format!(
            "{} violation(s) in {} records:\n",
            self.violations.len(),
            self.records_checked
        );
        for v in &self.violations {
            s.push_str(&format!("  {v}\n"));
        }
        s
    }
}
