//! Interleaving-exploration harness over the `hier` executors.
//!
//! One [`explore`] call sweeps a grid of `X+Y` technique pairs on one
//! [`Backend`], re-running each configuration under several schedule
//! variants, and for every run asserts two properties:
//!
//! 1. **RMA cleanliness** — the run's access log passes
//!    [`crate::check`] with zero violations (epoch discipline *and* no
//!    happens-before races);
//! 2. **Ledger exactness** — the executed sub-chunks are exactly a
//!    partition of `[0, n)`: every iteration scheduled once and only
//!    once, verified with [`dls::verify::check_exactly_once`].
//!
//! Schedule variants differ by backend. The virtual-time executors are
//! deterministic, so distinct interleavings are *constructed*: the
//! unperturbed baseline, N seeded jitter schedules
//! ([`Perturbation::Seeded`]), and the adversarial lock-handoff
//! reordering ([`Perturbation::AdversarialHandoff`]). The live
//! executors get their nondeterminism from the OS scheduler, so each
//! "schedule" is an independent run with a reseeded workload;
//! cleanliness there additionally proves the checksum against the
//! serial reference.

use crate::Report;
use cluster_sim::{MachineParams, SimTopology};
use hier::config::{Approach, GlobalQueueMode, HierSpec};
use hier::live::{run_live, serial_checksum, LiveConfig};
use hier::queue::SubChunk;
use hier::sim::{simulate, Perturbation, SimConfig};
use workloads::synthetic::Synthetic;
use workloads::CostTable;

/// Which executor a harness run drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Virtual-time MPI+MPI (the paper's proposal).
    SimMpiMpi,
    /// Virtual-time MPI+OpenMP baseline.
    SimMpiOmp,
    /// Real-thread MPI+MPI over `mpisim` windows.
    LiveMpiMpi,
    /// Real-thread MPI+OpenMP over the persistent team.
    LiveMpiOmp,
}

impl Backend {
    /// All four backends, sim first.
    pub const ALL: [Backend; 4] =
        [Backend::SimMpiMpi, Backend::SimMpiOmp, Backend::LiveMpiMpi, Backend::LiveMpiOmp];

    /// The `hier` approach this backend runs.
    pub fn approach(self) -> Approach {
        match self {
            Backend::SimMpiMpi | Backend::LiveMpiMpi => Approach::MpiMpi,
            Backend::SimMpiOmp | Backend::LiveMpiOmp => Approach::MpiOpenMp,
        }
    }

    /// True for the virtual-time executors.
    pub fn is_sim(self) -> bool {
        matches!(self, Backend::SimMpiMpi | Backend::SimMpiOmp)
    }

    /// Human-readable name.
    pub fn label(self) -> &'static str {
        match self {
            Backend::SimMpiMpi => "sim MPI+MPI",
            Backend::SimMpiOmp => "sim MPI+OpenMP",
            Backend::LiveMpiMpi => "live MPI+MPI",
            Backend::LiveMpiOmp => "live MPI+OpenMP",
        }
    }
}

/// The inter/intra kinds the exploration grid crosses.
pub const GRID_KINDS: [dls::Kind; 5] =
    [dls::Kind::STATIC, dls::Kind::SS, dls::Kind::GSS, dls::Kind::TSS, dls::Kind::FAC2];

/// The `X+Y` pairs explored on `backend`: the full 5×5 cross of
/// [`GRID_KINDS`] for MPI+MPI, restricted to OpenMP-expressible intra
/// techniques for the baseline (one of the paper's points is that the
/// rest exist *only* under MPI+MPI).
pub fn technique_pairs(backend: Backend) -> Vec<HierSpec> {
    let mut out = Vec::new();
    for inter in GRID_KINDS {
        for intra in GRID_KINDS {
            let spec = HierSpec::new(inter, intra);
            if backend.approach() == Approach::MpiOpenMp && !spec.supported_by_openmp() {
                continue;
            }
            out.push(spec);
        }
    }
    out
}

/// Exploration parameters. The defaults are sized so the full
/// four-backend sweep stays well inside a CI minute while still
/// exercising ≥8 seeded interleavings per technique pair.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Simulated compute nodes.
    pub nodes: u32,
    /// Workers (ranks or threads) per node.
    pub workers_per_node: u32,
    /// Loop size of the synthetic workload.
    pub n_iters: u64,
    /// Seeds for [`Perturbation::Seeded`] (sim) or workload reseeding
    /// (live); one run per seed per pair.
    pub seeds: std::ops::Range<u64>,
    /// Upper bound on seeded jitter delays (virtual ns, sim only).
    pub max_jitter_ns: u64,
    /// Also run [`Perturbation::AdversarialHandoff`] (sim only).
    pub adversarial: bool,
    /// Global-queue realisation (MPI+MPI backends only).
    pub global_mode: GlobalQueueMode,
}

impl Default for Exploration {
    fn default() -> Self {
        Self {
            nodes: 2,
            workers_per_node: 3,
            n_iters: 240,
            seeds: 0..8,
            max_jitter_ns: 3000,
            adversarial: true,
            global_mode: GlobalQueueMode::SingleAtomic,
        }
    }
}

/// One property failure found during exploration.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Backend the failing run used.
    pub backend: Backend,
    /// Technique pair of the failing run.
    pub spec: HierSpec,
    /// Which schedule variant failed (e.g. `seed 3`, `adversarial`).
    pub schedule: String,
    /// What went wrong: rendered checker violations, a ledger
    /// partition error, or a runtime error from the executor.
    pub detail: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} {} / {}] {}", self.backend.label(), self.spec, self.schedule, self.detail)
    }
}

/// Aggregate result of one [`explore`] sweep.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Executor runs performed.
    pub runs: usize,
    /// RMA records checked across all runs.
    pub records: usize,
    /// Property failures (empty for a correct protocol).
    pub findings: Vec<Finding>,
}

impl Summary {
    /// True when every run passed both properties.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Multi-line human-readable report.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{} runs, {} RMA records, {} finding(s)\n",
            self.runs,
            self.records,
            self.findings.len()
        );
        for f in &self.findings {
            s.push_str(&format!("  {f}\n"));
        }
        s
    }

    /// Merge another summary into this one.
    pub fn absorb(&mut self, other: Summary) {
        self.runs += other.runs;
        self.records += other.records;
        self.findings.extend(other.findings);
    }
}

/// Map a run's executed sub-chunk ledger to `dls` chunks and verify it
/// is exactly a partition of `[0, n)` (no lost or doubled iterations).
fn ledger_error(executed: &[(u32, SubChunk)], n: u64) -> Option<String> {
    let chunks: Vec<dls::Chunk> = executed
        .iter()
        .map(|(_, sc)| dls::Chunk { start: sc.start, len: sc.end - sc.start, step: 0 })
        .collect();
    dls::verify::check_exactly_once(&chunks, n)
        .err()
        .map(|e| format!("ledger not a partition: {e:?}"))
}

fn note(summary: &mut Summary, backend: Backend, spec: HierSpec, schedule: &str, detail: String) {
    summary.findings.push(Finding { backend, spec, schedule: schedule.to_string(), detail });
}

/// Check one run's artefacts (RMA log + ledger) into `summary`.
fn check_run(
    summary: &mut Summary,
    backend: Backend,
    spec: HierSpec,
    schedule: &str,
    rma: &[mpisim::RmaRecord],
    executed: &[(u32, SubChunk)],
    n: u64,
) {
    summary.runs += 1;
    summary.records += rma.len();
    if rma.is_empty() {
        note(summary, backend, spec, schedule, "empty RMA log (recording broken?)".into());
    }
    let report: Report = crate::check(rma);
    if !report.is_clean() {
        note(summary, backend, spec, schedule, report.render());
    }
    if let Some(e) = ledger_error(executed, n) {
        note(summary, backend, spec, schedule, e);
    }
}

/// The sim-side schedule variants an [`Exploration`] requests.
fn sim_schedules(cfg: &Exploration) -> Vec<(String, Perturbation)> {
    let mut out = vec![("baseline".to_string(), Perturbation::None)];
    for seed in cfg.seeds.clone() {
        out.push((
            format!("seed {seed}"),
            Perturbation::Seeded { seed, max_ns: cfg.max_jitter_ns },
        ));
    }
    if cfg.adversarial {
        out.push(("adversarial".to_string(), Perturbation::AdversarialHandoff));
    }
    out
}

/// Sweep `backend` over its technique grid under every schedule variant
/// of `cfg`, collecting property failures.
pub fn explore(backend: Backend, cfg: &Exploration) -> Summary {
    let mut summary = Summary::default();
    if backend.is_sim() {
        let workload = Synthetic::uniform(cfg.n_iters, 1, 100, 7);
        let table = CostTable::build(&workload);
        let schedules = sim_schedules(cfg);
        for spec in technique_pairs(backend) {
            for (name, perturb) in &schedules {
                let mut sim = SimConfig::new(
                    SimTopology::new(cfg.nodes, cfg.workers_per_node),
                    MachineParams::default(),
                    spec,
                    backend.approach(),
                );
                sim.global_mode = cfg.global_mode;
                sim.record_chunks = true;
                sim.record_rma = true;
                sim.perturb = *perturb;
                let r = simulate(&sim, &table);
                check_run(&mut summary, backend, spec, name, &r.rma, &r.executed, cfg.n_iters);
            }
        }
    } else {
        for spec in technique_pairs(backend) {
            for seed in cfg.seeds.clone() {
                let schedule = format!("seed {seed}");
                let workload = Synthetic::uniform(cfg.n_iters, 1, 100, seed);
                let mut live =
                    LiveConfig::new(cfg.nodes, cfg.workers_per_node, spec, backend.approach());
                live.global_mode = cfg.global_mode;
                live.record_rma = true;
                match run_live(&live, &workload) {
                    Ok(r) => {
                        check_run(
                            &mut summary,
                            backend,
                            spec,
                            &schedule,
                            &r.rma,
                            &r.executed,
                            cfg.n_iters,
                        );
                        let want = serial_checksum(&workload);
                        if r.checksum != want {
                            note(
                                &mut summary,
                                backend,
                                spec,
                                &schedule,
                                format!("checksum {} != serial {}", r.checksum, want),
                            );
                        }
                    }
                    Err(e) => {
                        summary.runs += 1;
                        note(&mut summary, backend, spec, &schedule, format!("runtime error: {e}"));
                    }
                }
            }
        }
    }
    summary
}

/// [`explore`] every backend in [`Backend::ALL`] and merge the results.
pub fn explore_all(cfg: &Exploration) -> Summary {
    let mut summary = Summary::default();
    for backend in Backend::ALL {
        summary.absorb(explore(backend, cfg));
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_sizes_match_openmp_support() {
        assert_eq!(technique_pairs(Backend::SimMpiMpi).len(), 25);
        assert_eq!(technique_pairs(Backend::LiveMpiMpi).len(), 25);
        // OpenMP can express static, dynamic,1 (SS) and guided,1 (GSS).
        assert_eq!(technique_pairs(Backend::SimMpiOmp).len(), 15);
        assert_eq!(technique_pairs(Backend::LiveMpiOmp).len(), 15);
    }

    #[test]
    fn schedule_roster_counts() {
        let cfg = Exploration::default();
        let s = sim_schedules(&cfg);
        // Baseline + 8 seeds + adversarial.
        assert_eq!(s.len(), 10);
        assert_eq!(s[0].1, Perturbation::None);
        assert_eq!(s[9].1, Perturbation::AdversarialHandoff);
    }

    #[test]
    fn ledger_checker_flags_gap_and_duplicate() {
        let lost = [(0, SubChunk { start: 0, end: 10 }), (1, SubChunk { start: 20, end: 40 })];
        assert!(ledger_error(&lost, 40).is_some());
        let dup = [
            (0, SubChunk { start: 0, end: 20 }),
            (1, SubChunk { start: 10, end: 20 }),
            (0, SubChunk { start: 20, end: 40 }),
        ];
        assert!(ledger_error(&dup, 40).is_some());
        let good = [(0, SubChunk { start: 20, end: 40 }), (1, SubChunk { start: 0, end: 20 })];
        assert!(ledger_error(&good, 40).is_none());
    }
}
