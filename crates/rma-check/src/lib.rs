//! # rma-check — correctness tooling for the MPI+MPI RMA protocols
//!
//! The paper's contribution rests on a delicate passive-target RMA
//! discipline: `MPI_Win_lock`/`MPI_Win_sync` epochs guarding each node's
//! shared-memory local queue, and lock-free `MPI_Fetch_and_op` on the
//! global queue. This crate makes violations of that discipline loud —
//! the moral equivalent of MUST/ThreadSanitizer for the `mpisim`
//! runtime:
//!
//! * [`epoch`] — validates MPI-3 epoch/lock rules over an access log
//!   recorded by [`mpisim::Window::record_to`];
//! * [`race`] — vector-clock happens-before detection of conflicting
//!   unordered accesses to the same window displacement (lost updates
//!   on the queue counters);
//! * [`harness`] — interleaving exploration: reruns the deterministic
//!   executors under seeded schedule perturbations and an adversarial
//!   lock-handoff scheduler, asserting the checker stays clean and the
//!   scheduled-iteration ledger is exactly a permutation of `0..n`;
//! * [`broken`] — intentionally broken protocol variants proving the
//!   checker catches what it claims to catch.
//!
//! ```
//! use mpisim::{RmaEvent, RmaLog};
//!
//! let log = RmaLog::new();
//! log.push(0, 0, RmaEvent::Attach { shared: false, comm_size: 1 });
//! log.push(0, 0, RmaEvent::Put { target: 0, disp: 0, len: 1 }); // no epoch!
//! let report = rma_check::check(&log.records());
//! assert!(report.has(rma_check::ViolationKind::AccessOutsideEpoch));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod broken;
pub mod epoch;
pub mod harness;
pub mod race;
pub mod report;
pub mod vc;

pub use report::{Report, Violation, ViolationKind};

use mpisim::RmaRecord;

/// Run both analyses (epoch discipline + happens-before races) over a
/// full access log. Records are grouped per window — each window's
/// epochs, locks and slots are independent — and violations come back
/// ordered by log sequence.
pub fn check(records: &[RmaRecord]) -> Report {
    let mut wins: Vec<u64> = records.iter().map(|r| r.win).collect();
    wins.sort_unstable();
    wins.dedup();

    let mut violations = Vec::new();
    for win in wins {
        let mut group: Vec<RmaRecord> = records.iter().filter(|r| r.win == win).copied().collect();
        group.sort_by_key(|r| r.seq);
        epoch::check_epochs(&group, &mut violations);
        race::check_races(&group, &mut violations);
    }
    violations.sort_by_key(|v| v.seq);
    Report { violations, records_checked: records.len() }
}

/// Convenience: [`check`] over a live [`mpisim::RmaLog`].
pub fn check_log(log: &mpisim::RmaLog) -> Report {
    check(&log.records())
}

/// Convenience: [`check`] over a raw `(win, rank, event)` stream, such
/// as a synthesized replay of a model counterexample. Events are
/// sequenced in slice order.
pub fn check_events(events: &[(u64, u32, mpisim::RmaEvent)]) -> Report {
    let log = mpisim::RmaLog::new();
    for &(win, rank, ev) in events {
        log.push(win, rank, ev);
    }
    check_log(&log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{LockKind, RmaEvent, RmaLog};

    #[test]
    fn windows_are_checked_independently() {
        let log = RmaLog::new();
        // Win 0: rank 0 holds an exclusive lock; win 1: rank 1 holds
        // one on the same target id. Same target, different windows —
        // no overlap.
        log.push(0, 0, RmaEvent::Attach { shared: false, comm_size: 2 });
        log.push(1, 1, RmaEvent::Attach { shared: false, comm_size: 2 });
        log.push(0, 0, RmaEvent::Lock { kind: LockKind::Exclusive, target: 0 });
        log.push(1, 1, RmaEvent::Lock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 0, RmaEvent::Put { target: 0, disp: 0, len: 1 });
        log.push(1, 1, RmaEvent::Put { target: 0, disp: 0, len: 1 });
        log.push(0, 0, RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 });
        log.push(1, 1, RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 });
        let report = check_log(&log);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.records_checked, 8);
    }

    #[test]
    fn violations_sorted_by_seq() {
        let log = RmaLog::new();
        log.push(0, 0, RmaEvent::Attach { shared: false, comm_size: 2 });
        log.push(0, 0, RmaEvent::Put { target: 0, disp: 0, len: 1 });
        log.push(0, 1, RmaEvent::Put { target: 0, disp: 0, len: 1 });
        let report = check_log(&log);
        assert!(!report.is_clean());
        assert!(report.violations.windows(2).all(|w| w[0].seq <= w[1].seq));
        assert!(report.has(ViolationKind::AccessOutsideEpoch));
        assert!(report.has(ViolationKind::DataRace));
    }

    #[test]
    fn check_events_matches_check_log() {
        let events = vec![
            (0u64, 0u32, RmaEvent::Attach { shared: false, comm_size: 2 }),
            (0, 0, RmaEvent::Put { target: 0, disp: 0, len: 1 }),
            (0, 1, RmaEvent::Put { target: 0, disp: 0, len: 1 }),
        ];
        let report = check_events(&events);
        assert_eq!(report.records_checked, 3);
        assert!(report.has(ViolationKind::AccessOutsideEpoch));
        assert!(report.has(ViolationKind::DataRace));
    }

    #[test]
    fn render_mentions_kind_and_provenance() {
        let log = RmaLog::new();
        log.push(0, 3, RmaEvent::Attach { shared: false, comm_size: 4 });
        log.push(0, 3, RmaEvent::Put { target: 0, disp: 5, len: 1 });
        let report = check_log(&log);
        let text = report.render();
        assert!(text.contains("access-outside-epoch"), "{text}");
        assert!(text.contains("rank 3"), "{text}");
    }
}
