//! Happens-before race detection over one window's access log.
//!
//! Classic vector-clock detection adapted to MPI RMA:
//!
//! * each origin rank carries a clock, advanced on synchronisation;
//! * window locks are sync objects — acquiring joins the lock's clock,
//!   releasing publishes the holder's clock into it (`lock_all` /
//!   `unlock_all` do this for every target's lock);
//! * an RMA atomic is a sync object *per displacement*: atomics on one
//!   slot are totally ordered (`MPI_Fetch_and_op` semantics), so each
//!   joins the slot clock and republishes;
//! * a barrier joins every rank's clock. Because `mpisim` stamps a
//!   rank's barrier record after the real barrier returns, every
//!   participant's pre-barrier records precede the round's first
//!   barrier record in the log — so the detector performs the collective
//!   join exactly when that first record arrives;
//! * two accesses to the same (target, displacement) conflict when at
//!   least one writes and they are not both atomics; unordered
//!   conflicting accesses are reported as [`ViolationKind::DataRace`]
//!   (a write-write pair is the queue-counter *lost update*).
//!
//! Shared locks are modelled like exclusive ones (join on acquire,
//! publish on release), which over-synchronises concurrent shared
//! holders; the repo's protocols only run atomics under shared epochs,
//! so no real race is masked.

use crate::report::{Violation, ViolationKind};
use crate::vc::VectorClock;
use mpisim::{RmaEvent, RmaRecord};
use std::collections::HashMap;

/// One recorded access to a slot, reduced to the FastTrack epoch test:
/// it happens-before a later access by rank `r` iff `clock <=
/// C_r[rank]`.
#[derive(Clone, Copy, Debug)]
struct Access {
    /// The accessing rank's own clock component at access time.
    clock: u64,
    /// Log sequence of the access (for reporting).
    seq: u64,
    /// Issued by an RMA atomic (coherent against other atomics).
    atomic: bool,
}

#[derive(Default)]
struct Detector {
    clocks: Vec<VectorClock>,
    lock_vc: HashMap<u32, VectorClock>,
    slot_vc: HashMap<(u32, usize), VectorClock>,
    /// Per slot: each rank's latest write / read.
    writes: HashMap<(u32, usize), HashMap<u32, Access>>,
    reads: HashMap<(u32, usize), HashMap<u32, Access>>,
    /// Barrier bookkeeping: per-rank rounds recorded, rounds joined.
    barrier_counts: Vec<u64>,
    rounds_done: u64,
    comm_size: usize,
}

impl Detector {
    fn ensure_rank(&mut self, r: u32) {
        let need = (r as usize + 1).max(self.comm_size);
        while self.clocks.len() < need {
            // Each rank's own component starts at 1, so an access by a
            // rank nobody has synchronised with yet tests as unordered
            // (a fresh clock knows 0 of everyone).
            let i = self.clocks.len();
            let mut c = VectorClock::new();
            c.tick(i);
            self.clocks.push(c);
            self.barrier_counts.push(0);
        }
    }

    fn ordered(&self, a: &Access, a_rank: u32, current_rank: u32) -> bool {
        self.clocks[current_rank as usize].get(a_rank as usize) >= a.clock
    }

    fn access(&self, rank: u32, seq: u64, atomic: bool) -> Access {
        Access { clock: self.clocks[rank as usize].get(rank as usize), seq, atomic }
    }

    /// Report the first conflicting unordered prior access to `slot`,
    /// if any. `is_write` / `atomic` describe the current access.
    fn find_race(
        &self,
        slot: (u32, usize),
        rank: u32,
        is_write: bool,
        atomic: bool,
    ) -> Option<(u32, Access, &'static str)> {
        // Any unordered prior *write* by another rank conflicts (unless
        // both sides are atomics).
        if let Some(ws) = self.writes.get(&slot) {
            for (&r2, a) in ws {
                if r2 != rank && !(atomic && a.atomic) && !self.ordered(a, r2, rank) {
                    let label = if is_write { "write-write (lost update)" } else { "write-read" };
                    return Some((r2, *a, label));
                }
            }
        }
        // A write additionally conflicts with unordered prior reads.
        if is_write {
            if let Some(rs) = self.reads.get(&slot) {
                for (&r2, a) in rs {
                    if r2 != rank && !(atomic && a.atomic) && !self.ordered(a, r2, rank) {
                        return Some((r2, *a, "read-write"));
                    }
                }
            }
        }
        None
    }
}

/// Run race detection over one window's records (same `win`, sorted by
/// `seq`), appending violations.
pub fn check_races(records: &[RmaRecord], out: &mut Vec<Violation>) {
    let mut d = Detector::default();

    for r in records {
        d.ensure_rank(r.rank);
        let rank = r.rank as usize;
        match r.event {
            RmaEvent::Attach { comm_size, .. } => {
                d.comm_size = d.comm_size.max(comm_size as usize);
                d.ensure_rank(comm_size.saturating_sub(1));
            }
            RmaEvent::Lock { target, .. } => {
                if let Some(l) = d.lock_vc.get(&target) {
                    let l = l.clone();
                    d.clocks[rank].join(&l);
                }
            }
            RmaEvent::Unlock { target, .. } => {
                let c = d.clocks[rank].clone();
                d.lock_vc.entry(target).or_default().join(&c);
                d.clocks[rank].tick(rank);
            }
            RmaEvent::LockAll => {
                for l in d.lock_vc.values() {
                    // Joining every target's lock mirrors lock_all
                    // acquiring them all.
                    let l = l.clone();
                    d.clocks[rank].join(&l);
                }
            }
            RmaEvent::UnlockAll => {
                let c = d.clocks[rank].clone();
                for t in 0..d.comm_size as u32 {
                    d.lock_vc.entry(t).or_default().join(&c);
                }
                d.clocks[rank].tick(rank);
            }
            RmaEvent::Barrier => {
                d.barrier_counts[rank] += 1;
                if d.barrier_counts[rank] == d.rounds_done + 1 {
                    // First record of a new round: every participant's
                    // pre-barrier history is already processed (their
                    // barrier records can only come later), so the
                    // collective join is exact here.
                    let mut joined = VectorClock::new();
                    for c in &d.clocks {
                        joined.join(c);
                    }
                    for (i, c) in d.clocks.iter_mut().enumerate() {
                        *c = joined.clone();
                        c.tick(i);
                    }
                    d.rounds_done += 1;
                }
            }
            RmaEvent::Sync | RmaEvent::Flush { .. } => {
                // Memory fences order this rank's own accesses (already
                // ordered by program order); no cross-rank edge.
            }
            RmaEvent::Get { target, disp, len } => {
                let mut reported = false;
                for dsp in disp..disp + len {
                    let slot = (target, dsp);
                    if !reported {
                        if let Some((r2, a, label)) = d.find_race(slot, r.rank, false, false) {
                            out.push(race(r, dsp, r2, a, label));
                            reported = true;
                        }
                    }
                    let acc = d.access(r.rank, r.seq, false);
                    d.reads.entry(slot).or_default().insert(r.rank, acc);
                }
            }
            RmaEvent::Put { target, disp, len } => {
                let mut reported = false;
                for dsp in disp..disp + len {
                    let slot = (target, dsp);
                    if !reported {
                        if let Some((r2, a, label)) = d.find_race(slot, r.rank, true, false) {
                            out.push(race(r, dsp, r2, a, label));
                            reported = true;
                        }
                    }
                    let acc = d.access(r.rank, r.seq, false);
                    d.writes.entry(slot).or_default().insert(r.rank, acc);
                }
            }
            RmaEvent::Atomic { target, disp, .. } => {
                let slot = (target, disp);
                // Acquire side: atomics on one slot are totally ordered.
                if let Some(s) = d.slot_vc.get(&slot) {
                    let s = s.clone();
                    d.clocks[rank].join(&s);
                }
                if let Some((r2, a, label)) = d.find_race(slot, r.rank, true, true) {
                    out.push(race(r, disp, r2, a, label));
                }
                let acc = d.access(r.rank, r.seq, true);
                d.writes.entry(slot).or_default().insert(r.rank, acc);
                d.reads.entry(slot).or_default().insert(r.rank, acc);
                // Release side: publish into the slot clock.
                let c = d.clocks[rank].clone();
                d.slot_vc.insert(slot, c);
                d.clocks[rank].tick(rank);
            }
        }
    }
}

fn race(r: &RmaRecord, disp: usize, other: u32, a: Access, label: &str) -> Violation {
    Violation {
        kind: ViolationKind::DataRace,
        win: r.win,
        rank: r.rank,
        seq: r.seq,
        detail: format!(
            "{label} race on disp {disp}: concurrent with rank {other}'s access @ seq {}",
            a.seq
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{AtomicOpKind, LockKind, RmaLog};

    fn check(log: &RmaLog) -> Vec<Violation> {
        let mut out = Vec::new();
        check_races(&log.records(), &mut out);
        out
    }

    fn attach(log: &RmaLog, ranks: u32) {
        for r in 0..ranks {
            log.push(0, r, RmaEvent::Attach { shared: false, comm_size: ranks });
        }
    }

    fn locked_rmw(log: &RmaLog, rank: u32, disp: usize) {
        log.push(0, rank, RmaEvent::Lock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, rank, RmaEvent::Get { target: 0, disp, len: 1 });
        log.push(0, rank, RmaEvent::Put { target: 0, disp, len: 1 });
        log.push(0, rank, RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 });
    }

    #[test]
    fn lock_ordered_rmws_are_clean() {
        let log = RmaLog::new();
        attach(&log, 3);
        for round in 0..3 {
            for rank in 0..3 {
                locked_rmw(&log, (rank + round) % 3, 0);
            }
        }
        assert!(check(&log).is_empty());
    }

    #[test]
    fn unlocked_write_write_is_lost_update() {
        let log = RmaLog::new();
        attach(&log, 2);
        log.push(0, 0, RmaEvent::Put { target: 0, disp: 0, len: 1 });
        log.push(0, 1, RmaEvent::Put { target: 0, disp: 0, len: 1 });
        let v = check(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::DataRace);
        assert!(v[0].detail.contains("lost update"), "{}", v[0].detail);
    }

    #[test]
    fn unlocked_read_vs_write_races() {
        let log = RmaLog::new();
        attach(&log, 2);
        log.push(0, 0, RmaEvent::Get { target: 0, disp: 2, len: 1 });
        log.push(0, 1, RmaEvent::Put { target: 0, disp: 2, len: 1 });
        let v = check(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::DataRace);
    }

    #[test]
    fn disjoint_displacements_do_not_race() {
        let log = RmaLog::new();
        attach(&log, 2);
        log.push(0, 0, RmaEvent::Put { target: 0, disp: 0, len: 1 });
        log.push(0, 1, RmaEvent::Put { target: 0, disp: 1, len: 1 });
        assert!(check(&log).is_empty());
    }

    #[test]
    fn atomics_are_exempt_from_each_other() {
        let log = RmaLog::new();
        attach(&log, 4);
        for i in 0..12 {
            log.push(
                0,
                i % 4,
                RmaEvent::Atomic { target: 0, disp: 0, op: AtomicOpKind::FetchAndOp },
            );
        }
        assert!(check(&log).is_empty());
    }

    #[test]
    fn non_atomic_rmw_races_with_atomics() {
        let log = RmaLog::new();
        attach(&log, 2);
        // Rank 0 uses the atomic; rank 1 "optimises" it into a plain
        // get+put — the seeded-broken queue-head variant.
        log.push(0, 0, RmaEvent::Atomic { target: 0, disp: 0, op: AtomicOpKind::FetchAndOp });
        log.push(0, 1, RmaEvent::Get { target: 0, disp: 0, len: 1 });
        log.push(0, 1, RmaEvent::Put { target: 0, disp: 0, len: 1 });
        log.push(0, 0, RmaEvent::Atomic { target: 0, disp: 0, op: AtomicOpKind::FetchAndOp });
        let v = check(&log);
        assert!(!v.is_empty());
        assert!(v.iter().all(|v| v.kind == ViolationKind::DataRace));
    }

    #[test]
    fn barrier_orders_pre_and_post_accesses() {
        let log = RmaLog::new();
        attach(&log, 2);
        log.push(0, 0, RmaEvent::Put { target: 0, disp: 0, len: 1 });
        log.push(0, 0, RmaEvent::Barrier);
        log.push(0, 1, RmaEvent::Barrier);
        log.push(0, 1, RmaEvent::Get { target: 0, disp: 0, len: 1 });
        assert!(check(&log).is_empty());
    }

    #[test]
    fn post_barrier_access_before_other_ranks_barrier_record_is_ordered() {
        // The stamping argument: rank 1's post-barrier get may appear in
        // the log *before* rank 0's barrier record of the same round —
        // the round join must already have happened at rank 1's record.
        let log = RmaLog::new();
        attach(&log, 2);
        log.push(0, 0, RmaEvent::Put { target: 0, disp: 0, len: 1 });
        log.push(0, 1, RmaEvent::Barrier);
        log.push(0, 1, RmaEvent::Get { target: 0, disp: 0, len: 1 });
        log.push(0, 0, RmaEvent::Barrier);
        assert!(check(&log).is_empty());
    }

    #[test]
    fn lock_all_epochs_order_against_exclusive() {
        let log = RmaLog::new();
        attach(&log, 2);
        log.push(0, 0, RmaEvent::Lock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 0, RmaEvent::Put { target: 0, disp: 0, len: 1 });
        log.push(0, 0, RmaEvent::Unlock { kind: LockKind::Exclusive, target: 0 });
        log.push(0, 1, RmaEvent::LockAll);
        log.push(0, 1, RmaEvent::Get { target: 0, disp: 0, len: 1 });
        log.push(0, 1, RmaEvent::UnlockAll);
        assert!(check(&log).is_empty());
    }
}
