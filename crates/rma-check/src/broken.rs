//! Intentionally broken protocol variants — the checker's ground truth.
//!
//! Each function performs a *real* recorded `mpisim` run that violates
//! one specific rule the correct protocols obey, and returns the
//! resulting access log. The regression suite pins each variant to the
//! [`ViolationKind`](crate::ViolationKind) it must produce, proving the
//! checker detects the bug classes it claims to (rather than passing
//! everything). Keep these in sync with the discipline rules in
//! [`crate::epoch`] and [`crate::race`].

use mpisim::{LockKind, Result, RmaLog, RmaRecord, Topology, Universe, Window};

/// Run `f` on every rank of a 1-node world of `ranks`, collecting the
/// shared recording log.
fn record_run<F>(ranks: u32, f: F) -> Result<Vec<RmaRecord>>
where
    F: Fn(&mpisim::Process, &RmaLog) -> Result<()> + Send + Sync,
{
    let log = RmaLog::new();
    let outcomes = Universe::run(Topology::new(1, ranks), |p| f(p, &log));
    for o in outcomes {
        o?;
    }
    Ok(log.records())
}

/// The skip-sync bug: a reader on a shared-memory window omits the
/// `MPI_Win_sync` the unified memory model requires before observing a
/// remote rank's put. The ranks *are* ordered by a real barrier — but
/// one the application never reports via `note_barrier`, exactly like
/// production code that synchronises "by luck" without telling MPI.
/// Expected: [`ViolationKind::MissingSync`](crate::ViolationKind::MissingSync).
pub fn skip_sync() -> Result<Vec<RmaRecord>> {
    record_run(2, |p, log| {
        let shm = p.world().split_shared()?;
        let mut win = Window::allocate_shared(&shm, 1)?;
        win.record_to(log);
        if p.rank() == 0 {
            win.lock(LockKind::Exclusive, 0)?;
            win.put(0, 0, 42)?;
            win.sync();
            win.unlock(LockKind::Exclusive, 0)?;
        }
        // Orders the ranks for real, but is deliberately not reported
        // with `note_barrier`: the log shows no sync point.
        p.world().barrier();
        if p.rank() == 1 {
            win.lock(LockKind::Exclusive, 0)?;
            let _ = win.get(0, 0)?;
            win.unlock(LockKind::Exclusive, 0)?;
        }
        Ok(())
    })
}

/// The non-atomic queue-head bug: two ranks "optimise" the
/// `MPI_Fetch_and_op` on the global-queue head into a plain get+put,
/// with no lock around the read-modify-write. Both the epoch rule
/// (access outside any epoch) and the happens-before analysis (a
/// write-write lost update) must fire.
/// Expected: [`ViolationKind::AccessOutsideEpoch`](crate::ViolationKind::AccessOutsideEpoch)
/// and [`ViolationKind::DataRace`](crate::ViolationKind::DataRace).
pub fn unlocked_rmw() -> Result<Vec<RmaRecord>> {
    record_run(2, |p, log| {
        let mut win = Window::allocate(p.world(), 1)?;
        win.record_to(log);
        let head = win.get(0, 0)?;
        win.put(0, 0, head + 1)?;
        Ok(())
    })
}

/// Unlock with no open epoch: the runtime refuses it (`Err`), but the
/// attempt is still logged and the discipline checker must flag it.
/// Expected: [`ViolationKind::UnlockWithoutLock`](crate::ViolationKind::UnlockWithoutLock).
pub fn unlock_without_lock() -> Result<Vec<RmaRecord>> {
    record_run(1, |p, log| {
        let mut win = Window::allocate(p.world(), 1)?;
        win.record_to(log);
        // The runtime reports the error; the *log* must still show the
        // undisciplined attempt.
        let _ = win.unlock(LockKind::Exclusive, 0);
        Ok(())
    })
}

/// A lock acquired and never released before the run ends.
/// Expected: [`ViolationKind::EpochLeak`](crate::ViolationKind::EpochLeak).
pub fn epoch_leak() -> Result<Vec<RmaRecord>> {
    record_run(1, |p, log| {
        let mut win = Window::allocate(p.world(), 1)?;
        win.record_to(log);
        win.lock(LockKind::Exclusive, 0)?;
        win.put(0, 0, 7)?;
        Ok(())
    })
}
