//! Vector clocks for the happens-before race detector.

/// A classic vector clock over window-communicator ranks. Grows on
/// demand so partially-attached logs still analyse cleanly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    c: Vec<u64>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Component for rank `i` (0 if never grown that far).
    pub fn get(&self, i: usize) -> u64 {
        self.c.get(i).copied().unwrap_or(0)
    }

    /// Advance rank `i`'s own component.
    pub fn tick(&mut self, i: usize) {
        if self.c.len() <= i {
            self.c.resize(i + 1, 0);
        }
        self.c[i] += 1;
    }

    /// Component-wise maximum with `other` (the join of the two causal
    /// histories).
    pub fn join(&mut self, other: &VectorClock) {
        if self.c.len() < other.c.len() {
            self.c.resize(other.c.len(), 0);
        }
        for (s, &o) in self.c.iter_mut().zip(other.c.iter()) {
            *s = (*s).max(o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut v = VectorClock::new();
        assert_eq!(v.get(3), 0);
        v.tick(3);
        v.tick(3);
        assert_eq!(v.get(3), 2);
        assert_eq!(v.get(0), 0);
    }

    #[test]
    fn join_is_componentwise_max() {
        let mut a = VectorClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(1);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
        // join never decreases
        b.join(&a);
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 1);
    }
}
